// C4 — paper §II claim: with JTAG, "GDM will always be notified and then
// execute appropriate reactions when the selected monitored variable
// changes its value at runtime."
// "Always" has limits: a change-based poller detects a change only at the
// next poll, and misses pulses shorter than the poll period. Table:
// detection latency (mean/max) and missed-event rate vs. poll period, for
// a state variable toggling at a fixed rate.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "link/jtag.hpp"
#include "link/watch.hpp"
#include "rt/des.hpp"
#include "rt/memory.hpp"

using namespace gmdf;

namespace {

struct Result {
    double mean_latency_ms = 0.0;
    double max_latency_ms = 0.0;
    double detected_fraction = 0.0;
    double poll_round_us = 0.0;
};

/// The variable flips 0<->1 every `toggle_period`; the poller samples
/// every `poll_period`. Ground truth toggle times vs. detection times.
Result run(rt::SimTime toggle_period, rt::SimTime poll_period, rt::SimTime duration) {
    rt::Simulator sim;
    rt::MemoryMap mem;
    auto addr = mem.alloc("sm_state");
    link::JtagTap tap(mem);
    link::JtagProbe probe(tap, 1e6); // 1 MHz TCK
    link::WatchPoller poller(sim, probe, poll_period);
    poller.watch(addr);

    std::vector<rt::SimTime> changes;      // ground truth
    std::vector<rt::SimTime> detections;   // watch events
    poller.set_callback([&](const link::WatchEvent& ev) { detections.push_back(ev.at); });
    poller.start();

    std::uint32_t value = 0;
    sim.every(toggle_period, toggle_period, [&] {
        value ^= 1u;
        mem.write_u32(addr, value);
        changes.push_back(sim.now());
    });

    sim.run_until(duration);
    poller.stop();

    Result r;
    r.poll_round_us = static_cast<double>(poller.round_cost()) / 1000.0;
    if (changes.empty()) return r;
    // Match each detection to the most recent change before it.
    double sum = 0, worst = 0;
    std::size_t matched = 0;
    for (rt::SimTime det : detections) {
        auto it = std::upper_bound(changes.begin(), changes.end(), det);
        if (it == changes.begin()) continue;
        double latency_ms = static_cast<double>(det - *(it - 1)) / 1e6;
        sum += latency_ms;
        worst = std::max(worst, latency_ms);
        ++matched;
    }
    if (matched > 0) {
        r.mean_latency_ms = sum / static_cast<double>(matched);
        r.max_latency_ms = worst;
    }
    r.detected_fraction =
        static_cast<double>(detections.size()) / static_cast<double>(changes.size());
    return r;
}

} // namespace

int main() {
    const rt::SimTime duration = 20 * rt::kSec;
    std::cout << "C4: passive watch detection latency vs poll period (1 MHz TCK)\n";
    std::cout << "watched SM state variable toggling every 50 ms\n\n";
    std::cout << std::left << std::setw(18) << "poll period (ms)" << std::setw(18)
              << "mean latency(ms)" << std::setw(18) << "max latency (ms)" << std::setw(14)
              << "detected" << std::setw(16) << "poll cost (us)" << "\n";
    for (rt::SimTime poll : {1 * rt::kMs, 5 * rt::kMs, 20 * rt::kMs, 100 * rt::kMs}) {
        auto r = run(/*toggle=*/50 * rt::kMs, poll, duration);
        std::cout << std::setw(18) << static_cast<double>(poll) / 1e6 << std::setw(18)
                  << std::fixed << std::setprecision(2) << r.mean_latency_ms << std::setw(18)
                  << r.max_latency_ms << std::setw(14) << std::setprecision(2)
                  << r.detected_fraction << std::setw(16) << r.poll_round_us << "\n";
        std::cout.unsetf(std::ios::fixed);
    }

    std::cout << "\nfast-toggle aliasing: variable toggling every 2 ms, detected fraction\n";
    for (rt::SimTime poll : {1 * rt::kMs, 4 * rt::kMs, 16 * rt::kMs}) {
        auto r = run(/*toggle=*/2 * rt::kMs, poll, duration);
        std::cout << "  poll " << std::setw(6) << static_cast<double>(poll) / 1e6
                  << " ms -> detected " << std::fixed << std::setprecision(3)
                  << r.detected_fraction << "\n";
        std::cout.unsetf(std::ios::fixed);
    }
    std::cout << "\nExpected shape: mean latency ~ poll/2 + read cost, max ~ poll; events\n"
                 "faster than the poll period alias away (0<->1<->0 between samples).\n";
    return 0;
}
