// Shared writer for the BENCH_p*.json reports.
//
// Every C-series bench used to hand-roll its `std::fprintf` JSON; this is
// the one streaming writer they share. It reproduces the established
// report style — two-space indented objects, arrays of one-line ("compact")
// row objects — so regenerated BENCH files diff cleanly against history:
//
//   gmdf::benchjson::Writer w;
//   w.begin_object();
//   w.kv("bench", "p9_obs");
//   w.key("rows"); w.begin_array();
//   for (...) { w.begin_object(/*compact=*/true); w.kv("name", r.name);
//               w.kv("ns", r.ns, 1); w.end_object(); }
//   w.end_array();
//   w.end_object();
//   if (!w.write_file(out_path)) { ... }
//
// Keys are emitted in call order; the writer tracks commas, indentation,
// and string escaping. Numbers: integral kv() overloads print exactly,
// doubles take an explicit decimal count (matching fprintf's "%.1f").
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gmdf::benchjson {

class Writer {
  public:
    void begin_object(bool compact = false) {
        open_value();
        out_ += '{';
        push_frame(compact);
    }

    void end_object() {
        pop_frame('}');
    }

    void begin_array(bool compact = false) {
        open_value();
        out_ += '[';
        push_frame(compact);
    }

    void end_array() {
        pop_frame(']');
    }

    /// Emit "key": — follow with begin_object/begin_array or a kv-style
    /// value call.
    void key(std::string_view k) {
        separate();
        append_string(k);
        out_ += ": ";
        pending_value_ = true;
    }

    void kv(std::string_view k, std::string_view v) {
        key(k);
        append_string(v);
        pending_value_ = false;
    }
    void kv(std::string_view k, const char* v) { kv(k, std::string_view(v)); }

    template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
    void kv(std::string_view k, T v) {
        char buf[24];
        if constexpr (std::is_signed_v<T>)
            std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
        else
            std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
        key(k);
        out_ += buf;
        pending_value_ = false;
    }

    void kv(std::string_view k, double v, int decimals) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
        key(k);
        out_ += buf;
        pending_value_ = false;
    }

    [[nodiscard]] const std::string& text() const { return out_; }

    /// Writes text() + trailing newline; false (with a stderr note) on
    /// failure, mirroring the benches' historical error handling.
    bool write_file(const char* path) const {
        std::FILE* f = std::fopen(path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", path);
            return false;
        }
        std::fputs(out_.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        return true;
    }

  private:
    struct Frame {
        bool compact;
        bool has_items = false;
    };

    void push_frame(bool compact) {
        // Nested inside a compact container everything stays on one line.
        const bool inherited = !frames_.empty() && frames_.back().compact;
        frames_.push_back({compact || inherited});
    }

    void pop_frame(char closer) {
        const Frame frame = frames_.back();
        frames_.pop_back();
        if (!frame.compact && frame.has_items) {
            out_ += '\n';
            indent();
        }
        out_ += closer;
    }

    /// Comma/newline bookkeeping before a key or a bare array element.
    void separate() {
        if (pending_value_) return; // value position after key(): no comma
        if (!frames_.empty()) {
            Frame& frame = frames_.back();
            if (frame.has_items) out_ += frame.compact ? ", " : ",";
            frame.has_items = true;
            if (!frame.compact) {
                out_ += '\n';
                indent();
            }
        }
    }

    void open_value() {
        if (pending_value_) {
            pending_value_ = false;
            return;
        }
        separate();
    }

    /// Two spaces per open frame: item depth; closers call this after
    /// their pop, landing one level shallower.
    void indent() {
        for (std::size_t i = 0; i < frames_.size(); ++i) out_ += "  ";
    }

    void append_string(std::string_view s) {
        out_ += '"';
        for (char c : s) {
            switch (c) {
                case '"': out_ += "\\\""; break;
                case '\\': out_ += "\\\\"; break;
                case '\n': out_ += "\\n"; break;
                case '\t': out_ += "\\t"; break;
                default: out_ += c;
            }
        }
        out_ += '"';
    }

    std::string out_;
    std::vector<Frame> frames_;
    bool pending_value_ = false;
};

} // namespace gmdf::benchjson
