// F5 — paper Fig. 5: model visualization and animation.
// Measures reaction application throughput on the scene and frame render
// time (ASCII and SVG) against scene size — the capacity limits of the
// "animated graphical model".
#include <benchmark/benchmark.h>

#include "comdes/build.hpp"
#include "core/abstraction.hpp"
#include "core/animator.hpp"
#include "core/gdm.hpp"
#include "core/engine.hpp"
#include "render/ascii.hpp"
#include "render/svg.hpp"

using namespace gmdf;

namespace {

struct Fixture {
    comdes::SystemBuilder sys;
    std::vector<meta::ObjectId> states;
    meta::ObjectId sm_id;
    core::AbstractionResult abs;

    explicit Fixture(int n_states)
        : sys("f5"), abs{meta::Model(core::gdm_metamodel().mm), {}, 0, 0, 0} {
        auto a = sys.add_actor("a", 10'000);
        auto sm = a.add_sm("m", {"go"}, {});
        for (int i = 0; i < n_states; ++i)
            states.push_back(sm.add_state("s" + std::to_string(i)));
        for (int i = 0; i < n_states; ++i)
            sm.add_transition(states[static_cast<std::size_t>(i)],
                              states[static_cast<std::size_t>((i + 1) % n_states)], "go");
        sm_id = sm.sm_id();
        abs = core::abstract_model(sys.model(), core::comdes_default_mapping());
    }
};

void BM_ReactionThroughput(benchmark::State& state) {
    Fixture f(static_cast<int>(state.range(0)));
    core::DebuggerEngine engine(f.sys.model());
    core::SceneAnimator animator(f.sys.model(), f.abs.scene);
    engine.add_observer(&animator);
    rt::SimTime t = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        link::Command cmd{link::Cmd::StateEnter, static_cast<std::uint32_t>(f.sm_id.raw),
                          static_cast<std::uint32_t>(f.states[i % f.states.size()].raw),
                          0.0f};
        engine.ingest(cmd, t += rt::kMs);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["scene_nodes"] = static_cast<double>(f.abs.scene.nodes().size());
}
BENCHMARK(BM_ReactionThroughput)->Arg(8)->Arg(64)->Arg(256);

void BM_RenderAscii(benchmark::State& state) {
    Fixture f(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        std::string frame = render::render_ascii(f.abs.scene);
        benchmark::DoNotOptimize(frame.data());
    }
    state.counters["scene_nodes"] = static_cast<double>(f.abs.scene.nodes().size());
}
BENCHMARK(BM_RenderAscii)->Arg(8)->Arg(64)->Arg(256);

void BM_RenderSvg(benchmark::State& state) {
    Fixture f(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        std::string svg = render::render_svg(f.abs.scene);
        benchmark::DoNotOptimize(svg.data());
    }
    state.counters["scene_nodes"] = static_cast<double>(f.abs.scene.nodes().size());
}
BENCHMARK(BM_RenderSvg)->Arg(8)->Arg(64)->Arg(256);

void BM_HighlightDecay(benchmark::State& state) {
    Fixture f(static_cast<int>(state.range(0)));
    for (auto& n : f.abs.scene.nodes()) {
        n.style.highlighted = true;
        n.style.intensity = 1.0;
    }
    for (auto _ : state) {
        f.abs.scene.decay_highlights(0.999); // keep alive across iterations
        benchmark::DoNotOptimize(f.abs.scene.nodes().data());
    }
}
BENCHMARK(BM_HighlightDecay)->Arg(256);

} // namespace

BENCHMARK_MAIN();
