// F3 — paper Fig. 3: the GDM and its generation.
// Measures automatic GDM construction (abstraction + layout + geometry
// back-annotation) against input model size, plus GDM serialization.
#include <benchmark/benchmark.h>

#include "comdes/build.hpp"
#include "core/abstraction.hpp"
#include "meta/serialize.hpp"

using namespace gmdf;

namespace {

// Ring machine with N states + M dataflow blocks.
comdes::SystemBuilder build_model(int n_states, int n_blocks) {
    comdes::SystemBuilder sys("f3");
    auto a = sys.add_actor("a", 10'000);
    auto sm = a.add_sm("m", {"go"}, {"y"});
    std::vector<meta::ObjectId> states;
    for (int i = 0; i < n_states; ++i)
        states.push_back(sm.add_state("s" + std::to_string(i)));
    for (int i = 0; i < n_states; ++i)
        sm.add_transition(states[static_cast<std::size_t>(i)],
                          states[static_cast<std::size_t>((i + 1) % n_states)], "go");
    meta::ObjectId prev;
    for (int i = 0; i < n_blocks; ++i) {
        auto g = a.add_basic("g" + std::to_string(i), "gain_", {1.0});
        if (!prev.is_null()) a.connect(prev, "out", g, "in");
        prev = g;
    }
    return sys;
}

void BM_Abstraction(benchmark::State& state) {
    auto n = static_cast<int>(state.range(0));
    auto sys = build_model(n, n);
    auto mapping = core::comdes_default_mapping();
    std::size_t nodes = 0, edges = 0;
    for (auto _ : state) {
        auto result = core::abstract_model(sys.model(), mapping);
        nodes = result.mapped_nodes;
        edges = result.mapped_edges;
        benchmark::DoNotOptimize(result.scene.nodes().data());
    }
    state.counters["gdm_nodes"] = static_cast<double>(nodes);
    state.counters["gdm_edges"] = static_cast<double>(edges);
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Abstraction)->RangeMultiplier(4)->Range(4, 256)->Complexity();

void BM_GdmSerialization(benchmark::State& state) {
    auto n = static_cast<int>(state.range(0));
    auto sys = build_model(n, n);
    auto result = core::abstract_model(sys.model(), core::comdes_default_mapping());
    for (auto _ : state) {
        std::string text = meta::write_model(result.gdm);
        benchmark::DoNotOptimize(text.data());
    }
}
BENCHMARK(BM_GdmSerialization)->Arg(16)->Arg(128);

void BM_GdmRead(benchmark::State& state) {
    auto n = static_cast<int>(state.range(0));
    auto sys = build_model(n, n);
    auto result = core::abstract_model(sys.model(), core::comdes_default_mapping());
    std::string text = meta::write_model(result.gdm);
    for (auto _ : state) {
        auto reread = meta::read_model(result.gdm.metamodel(), text);
        benchmark::DoNotOptimize(reread.size());
    }
}
BENCHMARK(BM_GdmRead)->Arg(16)->Arg(128);

} // namespace

BENCHMARK_MAIN();
