// P8 — the debug service under injected network faults: an in-process
// hub + net::Server behind a seeded net::ChaosProxy, driven by
// reconnect-enabled net::Channel clients at rising fault rates
// (0% / 1% / 10% of forwarded chunks). Reports sustained requests/sec
// and p50/p99 request latency per level — the p99 is where torn
// frames, stalls, and redials live — plus the mean
// reconnect-and-resume latency (dial + handshake + re-attach). Writes
// BENCH_p8_chaos.json (CI smoke step).
//
// Requests are read-mostly (query signal) so the levels measure the
// protocol and recovery path, not simulation cost. Every client rides
// the public Channel redial machinery; a request that comes back as a
// structured error (a corrupted byte diagnosed downstream) still
// counts as a completed round trip — that is the designed degraded
// mode, and its latency belongs in the distribution.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "hub/controller.hpp"
#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

using namespace gmdf;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kClients = 8;
constexpr double kSeconds = 2.0;

struct LevelResult {
    double fault_rate = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t lost_clients = 0;
    double seconds = 0.0;
    double rps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double mean_resume_us = 0.0;
    net::ChaosStats proxy;
};

double percentile(std::vector<double>& sorted_us, double p) {
    if (sorted_us.empty()) return 0.0;
    std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1));
    return sorted_us[idx];
}

LevelResult run_level(double fault_rate, std::uint32_t seed) {
    LevelResult result;
    result.fault_rate = fault_rate;

    hub::HubController hub;
    for (int i = 0; i < kClients; ++i)
        if (hub.open("blinker", "c" + std::to_string(i)) == nullptr) return result;

    // The idle timeout converts a wedged mid-frame connection (e.g. a
    // corrupted length prefix) into an EOF the clients recover from.
    net::ServerConfig server_cfg;
    server_cfg.idle_timeout_ms = 250;
    net::Server server(hub, server_cfg);
    if (!server.start()) return result;
    std::atomic<bool> stop_server{false};
    std::thread server_thread([&] { server.run(stop_server); });

    net::ChaosConfig chaos;
    chaos.upstream_port = server.port();
    chaos.seed = seed;
    chaos.fault_rate = fault_rate;
    chaos.stall_ms = 3;
    net::ChaosProxy proxy(chaos);
    if (!proxy.start()) {
        stop_server.store(true);
        server_thread.join();
        return result;
    }
    std::atomic<bool> stop_proxy{false};
    std::thread proxy_thread([&] { proxy.run(stop_proxy); });

    struct ClientTally {
        std::vector<double> latencies_us;
        std::uint64_t requests = 0;
        std::uint64_t errors = 0;
        std::uint64_t reconnects = 0;
        std::int64_t reconnect_time_us = 0;
        bool lost = false;
    };
    std::vector<ClientTally> tallies(kClients);

    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(static_cast<int>(kSeconds * 1000));
    std::vector<std::thread> workers;
    workers.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        workers.emplace_back([&, i] {
            ClientTally& tally = tallies[static_cast<std::size_t>(i)];
            std::string error;
            std::unique_ptr<net::Channel> channel;
            for (int attempt = 0; attempt < 8 && channel == nullptr; ++attempt)
                channel = net::Channel::connect("127.0.0.1", proxy.port(), &error);
            if (channel == nullptr) {
                tally.lost = true;
                return;
            }
            net::Channel::ReconnectConfig rc;
            rc.max_attempts = 8;
            rc.base_delay_ms = 2;
            rc.max_delay_ms = 100;
            rc.jitter_seed = seed * 2654435761u + static_cast<std::uint32_t>(i);
            channel->set_reconnect(rc);
            (void)channel->execute_line("attach c" + std::to_string(i));
            (void)channel->drain_event_lines();

            while (Clock::now() < deadline) {
                const Clock::time_point t0 = Clock::now();
                proto::Response resp = channel->execute_line("query signal led");
                (void)channel->drain_event_lines();
                const double us =
                    std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                         t0)
                        .count() /
                    1000.0;
                tally.latencies_us.push_back(us);
                ++tally.requests;
                // A disconnected channel after an error response is
                // normal here — a protocol-error reply closes the
                // socket and the next request redials. Lost is judged
                // once, at the end.
                if (!resp.ok()) ++tally.errors;
            }
            proto::Response probe = channel->execute_line("info");
            (void)channel->drain_event_lines();
            tally.lost = !probe.ok();
            tally.reconnects = channel->reconnects();
            tally.reconnect_time_us = channel->reconnect_time_us();
        });
    }
    const Clock::time_point start = Clock::now();
    for (std::thread& t : workers) t.join();
    result.seconds =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
            .count() /
        1e9;

    stop_proxy.store(true);
    proxy_thread.join();
    stop_server.store(true);
    server_thread.join();

    std::vector<double> all_us;
    std::int64_t resume_us = 0;
    for (const ClientTally& tally : tallies) {
        result.requests += tally.requests;
        result.errors += tally.errors;
        result.reconnects += tally.reconnects;
        resume_us += tally.reconnect_time_us;
        if (tally.lost) ++result.lost_clients;
        all_us.insert(all_us.end(), tally.latencies_us.begin(),
                      tally.latencies_us.end());
    }
    std::sort(all_us.begin(), all_us.end());
    result.rps = result.seconds > 0 ? static_cast<double>(result.requests) /
                                          result.seconds
                                    : 0.0;
    result.p50_us = percentile(all_us, 0.50);
    result.p99_us = percentile(all_us, 0.99);
    result.mean_resume_us =
        result.reconnects > 0
            ? static_cast<double>(resume_us) / static_cast<double>(result.reconnects)
            : 0.0;
    result.proxy = proxy.stats();
    return result;
}

} // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_p8_chaos.json";
    const double rates[] = {0.0, 0.01, 0.10};

    std::vector<LevelResult> levels;
    for (double rate : rates) {
        LevelResult level = run_level(rate, /*seed=*/42);
        std::printf("fault %4.1f%%: %8.0f req/s  p50 %8.1f us  p99 %9.1f us  "
                    "%llu reconnects (mean resume %.0f us)  %llu errors  %llu lost\n",
                    rate * 100.0, level.rps, level.p50_us, level.p99_us,
                    static_cast<unsigned long long>(level.reconnects),
                    level.mean_resume_us,
                    static_cast<unsigned long long>(level.errors),
                    static_cast<unsigned long long>(level.lost_clients));
        levels.push_back(level);
    }

    gmdf::benchjson::Writer w;
    w.begin_object();
    w.kv("bench", "p8_chaos");
    w.kv("clients", kClients);
    w.key("levels");
    w.begin_array();
    for (const LevelResult& level : levels) {
        w.begin_object(/*compact=*/true);
        w.kv("fault_rate", level.fault_rate, 2);
        w.kv("requests", level.requests);
        w.kv("errors", level.errors);
        w.kv("seconds", level.seconds, 2);
        w.kv("rps", level.rps, 0);
        w.kv("p50_us", level.p50_us, 1);
        w.kv("p99_us", level.p99_us, 1);
        w.kv("reconnects", level.reconnects);
        w.kv("mean_resume_us", level.mean_resume_us, 0);
        w.kv("lost_clients", level.lost_clients);
        w.key("proxy");
        w.begin_object();
        w.kv("chunks", level.proxy.chunks);
        w.kv("torn", level.proxy.torn);
        w.kv("stalls", level.proxy.stalls);
        w.kv("disconnects", level.proxy.disconnects);
        w.kv("corruptions", level.proxy.corruptions);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write_file(out_path)) return 1;
    std::printf("wrote %s\n", out_path);
    return 0;
}
