// P2 — hub overhead at 1, 8, and 64 concurrent sessions.
//
// The hub should scale linearly in hosted sessions: request routing is
// a name/id lookup plus the single-session dispatch cost, and one poll
// loop round costs one bounded time slice per live session. These
// benchmarks price both paths against fleets of live blinker scenarios:
// requests/sec through @<session> routing (with the reported per-item
// rate, per-session overhead is the spread between fleet sizes) and
// poll-loop latency for one scheduler round (`run` of one budget),
// reported per session via the items-processed rate.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "hub/controller.hpp"

using namespace gmdf;

namespace {

/// A hub hosting `sessions` live blinkers, warmed with 20 ms of
/// activity so queries and the scheduler see real state.
std::unique_ptr<hub::HubController> make_hub(int sessions) {
    auto h = std::make_unique<hub::HubController>();
    for (int i = 0; i < sessions; ++i)
        h->open("blinker", "s" + std::to_string(i));
    (void)h->execute_line("run 20");
    (void)h->drain_event_lines();
    return h;
}

void BM_HubRoutedDispatch(benchmark::State& state) {
    const int sessions = static_cast<int>(state.range(0));
    auto h = make_hub(sessions);
    int i = 0;
    for (auto _ : state) {
        auto resp =
            h->execute_line("@s" + std::to_string(i++ % sessions) + " query stats");
        benchmark::DoNotOptimize(resp);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["sessions"] = sessions;
}
BENCHMARK(BM_HubRoutedDispatch)->Arg(1)->Arg(8)->Arg(64);

void BM_HubPollLoopRound(benchmark::State& state) {
    const int sessions = static_cast<int>(state.range(0));
    auto h = make_hub(sessions);
    // `run 10` = exactly one scheduler round at the default 10 ms
    // budget: one slice (target advance + transport polls) per session.
    for (auto _ : state) {
        auto resp = h->execute_line("run 10");
        benchmark::DoNotOptimize(resp);
        h->drain_event_lines();
    }
    // items = session-slices, so the reported rate is per session.
    state.SetItemsProcessed(state.iterations() * sessions);
    state.counters["sessions"] = sessions;
}
BENCHMARK(BM_HubPollLoopRound)->Arg(1)->Arg(8)->Arg(64);

} // namespace

BENCHMARK_MAIN();
