// P5 — the network debug service under load: an in-process net::Server
// (the same poll loop gmdf_serve runs) against a non-blocking loopback
// load generator at rising connection counts. Reports sustained
// requests/sec and p50/p99 request latency per level; writes
// BENCH_p5_net.json (CI smoke step).
//
// The generator keeps every connection's next request in flight the
// moment the previous one completes, so the server-side poll loop is
// the bottleneck being measured: accept fairness, frame reassembly,
// per-connection routing contexts, and the write path. Levels scale
// from 100 to ~10k concurrent connections (bounded by RLIMIT_NOFILE —
// both ends of every loopback socket live in this one process).
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "hub/controller.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"

using namespace gmdf;
using Clock = std::chrono::steady_clock;

namespace {

// Read-mostly verbs: no events to fan out, no engine time advanced, so
// every level measures protocol + routing cost, not simulation cost.
const char* kRequestMix[] = {"info", "query signal led", "break list",
                             "session list"};

struct LoadClient {
    enum class St { Unstarted, Connecting, Hello, Idle, Waiting, Dead };

    int fd = -1;
    St st = St::Unstarted;
    net::FrameReader frames{1 << 20};
    std::string out;
    std::size_t out_pos = 0;
    Clock::time_point sent_at;
    std::uint64_t completed = 0;
    int mix = 0;
};

struct LevelResult {
    int connections = 0;
    int connected = 0;
    std::uint64_t requests = 0;
    double seconds = 0;
    double rps = 0;
    double p50_us = 0;
    double p99_us = 0;
};

bool set_nonblocking(int fd) {
    int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void queue_bytes(LoadClient& c, std::string_view bytes) {
    if (c.out_pos > 0) {
        c.out.erase(0, c.out_pos);
        c.out_pos = 0;
    }
    c.out.append(bytes);
}

void kill_client(LoadClient& c) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
    c.st = LoadClient::St::Dead;
}

bool start_connect(LoadClient& c, std::uint16_t port) {
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (c.fd < 0 || !set_nonblocking(c.fd)) {
        kill_client(c);
        return false;
    }
    int one = 1;
    (void)setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int rc = ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        kill_client(c);
        return false;
    }
    c.st = LoadClient::St::Connecting;
    queue_bytes(c, std::string(net::kMagic) +
                       net::encode_frame(net::FrameType::Hello, net::hello_payload()));
    return true;
}

void send_next_request(LoadClient& c) {
    const char* verb = kRequestMix[c.mix];
    c.mix = (c.mix + 1) % static_cast<int>(std::size(kRequestMix));
    queue_bytes(c, net::encode_frame(net::FrameType::Request, verb));
    c.sent_at = Clock::now();
    c.st = LoadClient::St::Waiting;
}

/// Drains decoded frames; advances the client state machine. Records a
/// latency sample per completed request while `record` is set.
void consume_frames(LoadClient& c, bool record, std::vector<double>& latencies) {
    net::Frame frame;
    while (true) {
        net::FrameReader::Status st = c.frames.next(frame);
        if (st == net::FrameReader::Status::NeedMore) return;
        if (st == net::FrameReader::Status::Error) {
            kill_client(c);
            return;
        }
        switch (frame.type) {
        case net::FrameType::Hello:
            if (c.st == LoadClient::St::Hello) c.st = LoadClient::St::Idle;
            break;
        case net::FrameType::Done:
            if (c.st == LoadClient::St::Waiting) {
                ++c.completed;
                if (record)
                    latencies.push_back(std::chrono::duration<double, std::micro>(
                                            Clock::now() - c.sent_at)
                                            .count());
                c.st = LoadClient::St::Idle;
            }
            break;
        case net::FrameType::Response:
        case net::FrameType::Event:
            break;
        default:
            kill_client(c); // protocol error from the server
            return;
        }
    }
}

LevelResult run_level(std::uint16_t port, int connections, double seconds) {
    std::vector<LoadClient> clients(static_cast<std::size_t>(connections));
    std::vector<double> latencies;
    latencies.reserve(1 << 16);

    // Stagger the dials so the listener's backlog (1024) never overflows.
    std::size_t dialed = 0;
    constexpr std::size_t kDialBatch = 512;

    bool measuring = false;
    Clock::time_point t0;
    Clock::time_point deadline;
    const auto connect_deadline = Clock::now() + std::chrono::seconds(30);

    std::vector<pollfd> fds;
    std::vector<std::size_t> index;
    char chunk[16384];

    while (true) {
        std::size_t connecting = 0;
        for (const auto& c : clients)
            if (c.st == LoadClient::St::Connecting || c.st == LoadClient::St::Hello)
                ++connecting;
        while (dialed < clients.size() && connecting < kDialBatch) {
            if (start_connect(clients[dialed], port)) ++connecting;
            ++dialed;
        }

        auto now = Clock::now();
        if (!measuring) {
            if (dialed == clients.size() && connecting == 0) {
                measuring = true;
                t0 = now;
                deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(seconds));
            } else if (now > connect_deadline) {
                break; // count what connected; never hang the bench
            }
        } else if (now >= deadline) {
            break; // in-flight tails are not part of the window
        }

        fds.clear();
        index.clear();
        for (std::size_t i = 0; i < clients.size(); ++i) {
            LoadClient& c = clients[i];
            if (c.fd < 0) continue;
            if (measuring && c.st == LoadClient::St::Idle) send_next_request(c);
            short events = 0;
            if (c.st == LoadClient::St::Connecting)
                events = POLLOUT;
            else {
                events = POLLIN;
                if (c.out_pos < c.out.size()) events |= POLLOUT;
            }
            fds.push_back({c.fd, events, 0});
            index.push_back(i);
        }
        if (fds.empty()) break;

        if (::poll(fds.data(), fds.size(), 50) <= 0) continue;

        for (std::size_t k = 0; k < fds.size(); ++k) {
            LoadClient& c = clients[index[k]];
            short re = fds[k].revents;
            if (re == 0 || c.fd < 0) continue;
            if ((re & (POLLERR | POLLNVAL | POLLHUP)) != 0 &&
                c.st == LoadClient::St::Connecting) {
                kill_client(c);
                continue;
            }
            if (c.st == LoadClient::St::Connecting && (re & POLLOUT) != 0) {
                int err = 0;
                socklen_t len = sizeof(err);
                if (getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
                    err != 0) {
                    kill_client(c);
                    continue;
                }
                c.st = LoadClient::St::Hello;
            }
            if ((re & POLLOUT) != 0 && c.out_pos < c.out.size()) {
                ssize_t n = ::send(c.fd, c.out.data() + c.out_pos,
                                   c.out.size() - c.out_pos, MSG_NOSIGNAL);
                if (n > 0)
                    c.out_pos += static_cast<std::size_t>(n);
                else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR) {
                    kill_client(c);
                    continue;
                }
            }
            if ((re & POLLIN) != 0) {
                while (true) {
                    ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
                    if (n > 0) {
                        c.frames.feed({chunk, static_cast<std::size_t>(n)});
                        continue;
                    }
                    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                    if (n < 0 && errno == EINTR) continue;
                    kill_client(c);
                    break;
                }
                if (c.fd >= 0) consume_frames(c, measuring, latencies);
            }
        }
    }

    LevelResult r;
    r.connections = connections;
    for (auto& c : clients) {
        if (c.st != LoadClient::St::Dead && c.fd >= 0) ++r.connected;
        kill_client(c);
    }
    r.requests = latencies.size();
    r.seconds = measuring
                    ? std::chrono::duration<double>(Clock::now() - t0).count()
                    : 0.0;
    r.rps = r.seconds > 0 ? static_cast<double>(r.requests) / r.seconds : 0.0;
    if (!latencies.empty()) {
        auto pct = [&](double q) {
            auto nth = latencies.begin() +
                       static_cast<std::ptrdiff_t>(
                           q * static_cast<double>(latencies.size() - 1));
            std::nth_element(latencies.begin(), nth, latencies.end());
            return *nth;
        };
        r.p50_us = pct(0.50);
        r.p99_us = pct(0.99);
    }
    return r;
}

/// Two fds per loopback connection (client + accepted end) plus head
/// room for the listener, stdio, and the test harness.
int max_level() {
    rlimit lim{};
    if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1000;
    if (lim.rlim_cur < lim.rlim_max) {
        rlimit want = lim;
        want.rlim_cur = std::min<rlim_t>(lim.rlim_max, 25000);
        if (setrlimit(RLIMIT_NOFILE, &want) == 0) lim = want;
    }
    auto budget = static_cast<long>(lim.rlim_cur) - 256;
    return static_cast<int>(std::clamp<long>(budget / 2, 100, 10000));
}

} // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_p5_net.json";
    const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;

    hub::HubController hub;
    if (hub.open("blinker", "blinker") == nullptr) {
        std::fprintf(stderr, "no blinker scenario\n");
        return 1;
    }
    net::ServerConfig config;
    config.max_connections = 10000;
    net::Server server(hub, config);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "server: %s\n", error.c_str());
        return 1;
    }
    std::atomic<bool> stop{false};
    std::thread loop([&] { server.run(stop, /*timeout_ms=*/1); });

    std::vector<int> levels = {100, 1000};
    int top = max_level();
    if (top > levels.back()) levels.push_back(top);

    std::vector<LevelResult> results;
    std::printf("%12s %10s %12s %10s %12s %12s\n", "connections", "connected",
                "requests", "rps", "p50 us", "p99 us");
    for (int level : levels) {
        results.push_back(run_level(server.port(), level, seconds));
        const auto& r = results.back();
        std::printf("%12d %10d %12llu %10.0f %12.1f %12.1f\n", r.connections,
                    r.connected, static_cast<unsigned long long>(r.requests),
                    r.rps, r.p50_us, r.p99_us);
        // Let the server sweep the closed fds before the next wave dials.
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }

    stop.store(true);
    loop.join();
    const auto& stats = server.stats();
    std::printf("\nserver: accepted %llu, protocol errors %llu, events dropped "
                "%llu\n",
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.protocol_errors),
                static_cast<unsigned long long>(stats.events_dropped));
    server.stop();

    gmdf::benchjson::Writer w;
    w.begin_object();
    w.kv("bench", "p5_net");
    w.key("levels");
    w.begin_array();
    for (const auto& r : results) {
        w.begin_object(/*compact=*/true);
        w.kv("connections", r.connections);
        w.kv("connected", r.connected);
        w.kv("requests", r.requests);
        w.kv("seconds", r.seconds, 2);
        w.kv("rps", r.rps, 0);
        w.kv("p50_us", r.p50_us, 1);
        w.kv("p99_us", r.p99_us, 1);
        w.end_object();
    }
    w.end_array();
    w.key("server");
    w.begin_object(/*compact=*/true);
    w.kv("accepted", stats.accepted);
    w.kv("protocol_errors", stats.protocol_errors);
    w.kv("events_dropped", stats.events_dropped);
    w.end_object();
    w.end_object();
    if (!w.write_file(out_path)) return 1;
    std::printf("wrote %s\n", out_path);
    return 0;
}
