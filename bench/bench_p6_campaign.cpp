// P6 — campaign throughput: what a seeded scenario corpus costs to
// manufacture (models generated per second, by spec size), and what a
// full fault-hunt campaign costs end-to-end (pairs per second, with the
// localization split) at the CI scale of ~200 pairs. Writes
// BENCH_p6_campaign.json (CI smoke step).
//
// The campaign rate is the headline: every pair is two full sessions
// (clean + faulted twin) run as a fleet wave, plus a bisect or a
// twin-trace diff per localized pair — so pairs/s bounds how big a
// nightly corpus sweep can get.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/generator.hpp"
#include "campaign/runner.hpp"
#include "comdes/build.hpp"

using namespace gmdf;
using Clock = std::chrono::steady_clock;

namespace {

double us_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct GenRate {
    std::string name;
    int actors = 0;
    int max_states = 0;
    double gen_us = 0;       ///< one generate_system() into a fresh builder
    double models_per_s = 0;
};

GenRate bench_generate(const char* name, int actors, int max_states) {
    campaign::GenSpec spec;
    spec.actors = actors;
    spec.max_states = max_states;
    constexpr int kIters = 200;

    auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
        comdes::SystemBuilder sys("gen_system");
        campaign::generate_system(sys, spec, static_cast<std::uint32_t>(i + 1));
    }
    double gen_us = us_since(t0) / kIters;
    return {name, actors, max_states, gen_us, 1e6 / gen_us};
}

struct CampaignRate {
    std::string name;
    int pairs = 0;
    int wave = 0;
    double total_ms = 0;
    double pair_ms = 0;
    double pairs_per_s = 0;
    int localized = 0;
    int bisect = 0;
    int differential = 0;
    int clean = 0;
    int skipped = 0;
};

CampaignRate bench_campaign(const char* name, int pairs, int wave) {
    campaign::CampaignConfig cfg;
    cfg.pairs = pairs;
    cfg.seed = 1;
    cfg.wave = wave;

    auto t0 = Clock::now();
    auto report = campaign::run_campaign(cfg);
    double total_ms = us_since(t0) / 1000.0;

    int bisect = 0;
    int differential = 0;
    for (const auto& [kind, tally] : report.by_kind) {
        bisect += tally.bisect;
        differential += tally.differential;
    }
    return {name,
            pairs,
            wave,
            total_ms,
            total_ms / pairs,
            pairs / (total_ms / 1000.0),
            report.localized,
            bisect,
            differential,
            report.clean,
            report.skipped};
}

} // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_p6_campaign.json";

    std::vector<GenRate> gens;
    gens.push_back(bench_generate("gen_2a_4s", 2, 4));
    gens.push_back(bench_generate("gen_4a_6s", 4, 6));
    gens.push_back(bench_generate("gen_8a_8s", 8, 8));

    std::vector<CampaignRate> campaigns;
    campaigns.push_back(bench_campaign("campaign_50_wave8", 50, 8));
    campaigns.push_back(bench_campaign("campaign_200_wave8", 200, 8));

    std::printf("%-24s %8s %10s %12s %12s\n", "generate", "actors", "max states",
                "gen us", "models/s");
    for (const auto& g : gens)
        std::printf("%-24s %8d %10d %12.1f %12.0f\n", g.name.c_str(), g.actors,
                    g.max_states, g.gen_us, g.models_per_s);
    std::printf("\n%-24s %8s %10s %10s %10s %28s\n", "campaign", "pairs",
                "total ms", "pair ms", "pairs/s", "loc(bis/diff)/clean/skip");
    for (const auto& c : campaigns)
        std::printf("%-24s %8d %10.1f %10.2f %10.1f %15d(%d/%d)/%d/%d\n",
                    c.name.c_str(), c.pairs, c.total_ms, c.pair_ms, c.pairs_per_s,
                    c.localized, c.bisect, c.differential, c.clean, c.skipped);

    FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"p6_campaign\",\n  \"generate\": [\n");
    for (std::size_t i = 0; i < gens.size(); ++i)
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"actors\": %d, \"max_states\": %d, "
                     "\"gen_us\": %.1f, \"models_per_s\": %.0f}%s\n",
                     gens[i].name.c_str(), gens[i].actors, gens[i].max_states,
                     gens[i].gen_us, gens[i].models_per_s,
                     i + 1 < gens.size() ? "," : "");
    std::fprintf(f, "  ],\n  \"campaigns\": [\n");
    for (std::size_t i = 0; i < campaigns.size(); ++i)
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"pairs\": %d, \"wave\": %d, "
                     "\"total_ms\": %.1f, \"pair_ms\": %.2f, \"pairs_per_s\": %.1f, "
                     "\"localized\": %d, \"bisect\": %d, \"differential\": %d, "
                     "\"clean\": %d, \"skipped\": %d}%s\n",
                     campaigns[i].name.c_str(), campaigns[i].pairs, campaigns[i].wave,
                     campaigns[i].total_ms, campaigns[i].pair_ms,
                     campaigns[i].pairs_per_s, campaigns[i].localized,
                     campaigns[i].bisect, campaigns[i].differential,
                     campaigns[i].clean, campaigns[i].skipped,
                     i + 1 < campaigns.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
