// P6 — campaign throughput: what a seeded scenario corpus costs to
// manufacture (models generated per second, by spec size), and what a
// full fault-hunt campaign costs end-to-end (pairs per second, with the
// localization split) at the CI scale of ~200 pairs. Writes
// BENCH_p6_campaign.json (CI smoke step).
//
// The campaign rate is the headline: every pair is two full sessions
// (clean + faulted twin) run as a fleet wave, plus a bisect or a
// twin-trace diff per localized pair — so pairs/s bounds how big a
// nightly corpus sweep can get.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "campaign/generator.hpp"
#include "campaign/runner.hpp"
#include "comdes/build.hpp"

using namespace gmdf;
using Clock = std::chrono::steady_clock;

namespace {

double us_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct GenRate {
    std::string name;
    int actors = 0;
    int max_states = 0;
    double gen_us = 0;       ///< one generate_system() into a fresh builder
    double models_per_s = 0;
};

GenRate bench_generate(const char* name, int actors, int max_states) {
    campaign::GenSpec spec;
    spec.actors = actors;
    spec.max_states = max_states;
    constexpr int kIters = 200;

    auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
        comdes::SystemBuilder sys("gen_system");
        campaign::generate_system(sys, spec, static_cast<std::uint32_t>(i + 1));
    }
    double gen_us = us_since(t0) / kIters;
    return {name, actors, max_states, gen_us, 1e6 / gen_us};
}

struct CampaignRate {
    std::string name;
    int pairs = 0;
    int wave = 0;
    double total_ms = 0;
    double pair_ms = 0;
    double pairs_per_s = 0;
    int localized = 0;
    int bisect = 0;
    int differential = 0;
    int clean = 0;
    int skipped = 0;
};

CampaignRate bench_campaign(const char* name, int pairs, int wave) {
    campaign::CampaignConfig cfg;
    cfg.pairs = pairs;
    cfg.seed = 1;
    cfg.wave = wave;

    auto t0 = Clock::now();
    auto report = campaign::run_campaign(cfg);
    double total_ms = us_since(t0) / 1000.0;

    int bisect = 0;
    int differential = 0;
    for (const auto& [kind, tally] : report.by_kind) {
        bisect += tally.bisect;
        differential += tally.differential;
    }
    return {name,
            pairs,
            wave,
            total_ms,
            total_ms / pairs,
            pairs / (total_ms / 1000.0),
            report.localized,
            bisect,
            differential,
            report.clean,
            report.skipped};
}

} // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_p6_campaign.json";

    std::vector<GenRate> gens;
    gens.push_back(bench_generate("gen_2a_4s", 2, 4));
    gens.push_back(bench_generate("gen_4a_6s", 4, 6));
    gens.push_back(bench_generate("gen_8a_8s", 8, 8));

    std::vector<CampaignRate> campaigns;
    campaigns.push_back(bench_campaign("campaign_50_wave8", 50, 8));
    campaigns.push_back(bench_campaign("campaign_200_wave8", 200, 8));

    std::printf("%-24s %8s %10s %12s %12s\n", "generate", "actors", "max states",
                "gen us", "models/s");
    for (const auto& g : gens)
        std::printf("%-24s %8d %10d %12.1f %12.0f\n", g.name.c_str(), g.actors,
                    g.max_states, g.gen_us, g.models_per_s);
    std::printf("\n%-24s %8s %10s %10s %10s %28s\n", "campaign", "pairs",
                "total ms", "pair ms", "pairs/s", "loc(bis/diff)/clean/skip");
    for (const auto& c : campaigns)
        std::printf("%-24s %8d %10.1f %10.2f %10.1f %15d(%d/%d)/%d/%d\n",
                    c.name.c_str(), c.pairs, c.total_ms, c.pair_ms, c.pairs_per_s,
                    c.localized, c.bisect, c.differential, c.clean, c.skipped);

    gmdf::benchjson::Writer w;
    w.begin_object();
    w.kv("bench", "p6_campaign");
    w.key("generate");
    w.begin_array();
    for (const auto& g : gens) {
        w.begin_object(/*compact=*/true);
        w.kv("name", g.name);
        w.kv("actors", g.actors);
        w.kv("max_states", g.max_states);
        w.kv("gen_us", g.gen_us, 1);
        w.kv("models_per_s", g.models_per_s, 0);
        w.end_object();
    }
    w.end_array();
    w.key("campaigns");
    w.begin_array();
    for (const auto& c : campaigns) {
        w.begin_object(/*compact=*/true);
        w.kv("name", c.name);
        w.kv("pairs", c.pairs);
        w.kv("wave", c.wave);
        w.kv("total_ms", c.total_ms, 1);
        w.kv("pair_ms", c.pair_ms, 2);
        w.kv("pairs_per_s", c.pairs_per_s, 1);
        w.kv("localized", c.localized);
        w.kv("bisect", c.bisect);
        w.kv("differential", c.differential);
        w.kv("clean", c.clean);
        w.kv("skipped", c.skipped);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write_file(out_path)) return 1;
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
