// C1 — paper §II claim: "With leading hardware access/communication
// techniques [JTAG], the overhead of using additional codes to send
// commands to GDM can be eliminated."
// Table: target-side instrumentation cost (cycles, CPU share) for the
// active RS-232 command interface vs. the passive JTAG watch vs. a bare
// release build, swept over the model-event rate.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"

using namespace gmdf;

namespace {

struct Result {
    std::uint64_t instr_cycles = 0;
    double cpu_share = 0.0;        // instrumentation share of the CPU
    std::uint64_t commands = 0;    // events observed at the debugger
};

// The SM toggles every `toggle_every` scans of a 1 kHz task: event rate =
// 2000 / toggle_every state changes per second.
Result run(const char* mode, int toggle_every, rt::SimTime duration) {
    comdes::SystemBuilder sys("c1");
    auto out = sys.add_signal("out");
    auto a = sys.add_actor("task", 1'000); // 1 kHz
    auto sm = a.add_sm("m", {"go"}, {"y"});
    auto s0 = sm.add_state("s0", {{"y", "0"}});
    auto s1 = sm.add_state("s1", {{"y", "1"}});
    sm.add_transition(s0, s1, "go");
    sm.add_transition(s1, s0, "go");
    // go pulses every `toggle_every` scans: an integrator counts scans
    // (+1 per 1 ms scan) and an expression tests the count modulo N.
    auto one = a.add_basic("one", "const_", {1.0});
    auto scans = a.add_basic("scans", "integrator_", {1000.0, 0.0});
    auto trig = a.add_basic("trig", "expression_", {},
                            "c - floor(c / " + std::to_string(toggle_every) + ") * " +
                                std::to_string(toggle_every) + " == 0");
    a.connect(one, "out", scans, "in");
    a.connect(scans, "out", trig, "c");
    a.connect(trig, "out", sm.sm_id(), "go");
    a.bind_output(sm.sm_id(), "y", out);

    rt::Target target;
    codegen::InstrumentOptions opts;
    if (std::string(mode) == "active") opts = codegen::InstrumentOptions::active();
    else if (std::string(mode) == "passive") opts = codegen::InstrumentOptions::passive();
    else opts = codegen::InstrumentOptions::none();

    auto loaded = codegen::load_system(target, sys.model(), opts);
    (void)loaded;
    core::DebugSession session(sys.model());
    if (std::string(mode) == "active")
        session.attach(core::make_active_uart_transport(target));
    if (std::string(mode) == "passive")
        session.attach(core::make_passive_jtag_transport(target, loaded, sys.model(),
                                                         /*poll_period=*/rt::kMs));
    target.start();
    target.run_for(duration);

    Result r;
    r.instr_cycles = target.total_instr_cycles();
    double total_s = static_cast<double>(duration) / 1e9;
    r.cpu_share = static_cast<double>(r.instr_cycles) / (48e6 * total_s);
    r.commands = session.engine().stats().commands;
    return r;
}

} // namespace

int main() {
    const rt::SimTime duration = 5 * rt::kSec;
    std::cout << "C1: target-side overhead, active(RS-232) vs passive(JTAG) vs none\n";
    std::cout << "1 kHz control task on a 48 MHz target, 5 simulated seconds\n\n";
    std::cout << std::left << std::setw(14) << "events/s" << std::setw(10) << "mode"
              << std::setw(16) << "instr cycles" << std::setw(14) << "CPU share"
              << std::setw(12) << "commands" << "\n";

    for (int toggle_every : {100, 20, 4, 1}) {
        double events_per_s = 1000.0 / toggle_every; // one transition per toggle scan
        for (const char* mode : {"none", "active", "passive"}) {
            Result r = run(mode, toggle_every, duration);
            std::cout << std::setw(14) << events_per_s << std::setw(10) << mode
                      << std::setw(16) << r.instr_cycles << std::setw(14) << std::fixed
                      << std::setprecision(5) << r.cpu_share << std::setw(12) << r.commands
                      << "\n";
            std::cout.unsetf(std::ios::fixed);
        }
    }
    std::cout << "\nExpected shape (paper claim): active cost grows ~linearly with the\n"
                 "event rate; passive stays at exactly 0 target cycles at every rate.\n";
    return 0;
}
