// P9 — cost of the observability layer (src/obs/).
//
// The contract the instrumentation rides on: with metrics enabled the
// dispatch path stays within 5% of the metrics-off baseline, and with
// everything off the residual cost is one relaxed atomic load per probe.
// This bench prices each piece:
//
//   dispatch        full Controller::execute("info") with (a) metrics off,
//                   (b) metrics on (counter + latency histogram per verb),
//                   (c) metrics + tracer on (span per dispatch), plus the
//                   derived overhead percentages CI gates on
//   primitives      Counter::add and Histogram::record ns/op, enabled and
//                   disabled, and a disabled Span construct/destruct
//
// Output: human-readable summary on stdout and a machine-readable JSON
// report (default BENCH_p9_obs.json, or argv[1]) for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/scenarios.hpp"

using namespace gmdf;

namespace {

using Clock = std::chrono::steady_clock;

volatile std::uint64_t g_sink = 0; ///< defeats dead-code elimination

/// Best-of-rounds ns-per-call for `fn(i)` driven `iters` times.
template <typename Fn>
double time_ns(int iters, int rounds, Fn&& fn) {
    double best = 1e300;
    for (int r = 0; r < rounds; ++r) {
        auto t0 = Clock::now();
        for (int i = 0; i < iters; ++i) fn(i);
        auto dt = std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
        best = std::min(best, dt / iters);
    }
    return best;
}

struct DispatchResult {
    double off_ns = 0.0;     ///< metrics disabled
    double metrics_ns = 0.0; ///< metrics enabled (per-verb counter + histogram)
    double traced_ns = 0.0;  ///< metrics + tracer enabled (span per dispatch)
    [[nodiscard]] double metrics_pct() const {
        return (metrics_ns - off_ns) / off_ns * 100.0;
    }
    [[nodiscard]] double traced_pct() const {
        return (traced_ns - off_ns) / off_ns * 100.0;
    }
};

DispatchResult bench_dispatch() {
    auto scenario = proto::make_scenario("blinker");
    auto& ctl = scenario->controller();
    // One second of activity so the handler sees real state.
    (void)ctl.execute_line("run 1000");
    (void)ctl.drain_events();

    proto::Request req{"info", {}};
    auto drive = [&](int) {
        auto resp = ctl.execute(req);
        g_sink = g_sink + resp.body.size();
    };
    constexpr int kIters = 50'000;
    constexpr int kRounds = 5;

    DispatchResult r;
    obs::set_metrics_enabled(false);
    r.off_ns = time_ns(kIters, kRounds, drive);
    obs::set_metrics_enabled(true);
    r.metrics_ns = time_ns(kIters, kRounds, drive);
    obs::tracer().set_capacity(1 << 16);
    obs::tracer().start();
    r.traced_ns = time_ns(kIters, kRounds, drive);
    obs::tracer().stop();
    return r;
}

struct PrimResult {
    std::string name;
    double ns = 0.0;
};

std::vector<PrimResult> bench_primitives() {
    constexpr int kIters = 2'000'000;
    constexpr int kRounds = 5;
    obs::Counter counter;
    obs::Histogram hist;
    std::vector<PrimResult> out;

    obs::set_metrics_enabled(true);
    out.push_back({"counter_add", time_ns(kIters, kRounds, [&](int) { counter.add(); })});
    out.push_back({"histogram_record", time_ns(kIters, kRounds, [&](int i) {
                       hist.record(static_cast<std::uint64_t>(i) * 37 % 100'000);
                   })});
    obs::set_metrics_enabled(false);
    out.push_back(
        {"counter_add_disabled", time_ns(kIters, kRounds, [&](int) { counter.add(); })});
    out.push_back({"histogram_record_disabled", time_ns(kIters, kRounds, [&](int i) {
                       hist.record(static_cast<std::uint64_t>(i));
                   })});
    // Tracer is off: the span must collapse to a branch on the enabled flag.
    out.push_back({"span_disabled", time_ns(kIters, kRounds, [&](int) {
                       obs::Span span("bench", "noop");
                   })});
    obs::set_metrics_enabled(true);
    g_sink = g_sink + counter.value() + hist.snapshot().count;
    return out;
}

} // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_p9_obs.json";

    DispatchResult dispatch = bench_dispatch();
    std::vector<PrimResult> prims = bench_primitives();

    std::printf("%-28s %10s\n", "dispatch (info)", "ns/req");
    std::printf("%-28s %10.1f\n", "metrics off", dispatch.off_ns);
    std::printf("%-28s %10.1f  (+%.2f%%)\n", "metrics on", dispatch.metrics_ns,
                dispatch.metrics_pct());
    std::printf("%-28s %10.1f  (+%.2f%%)\n", "metrics + tracer", dispatch.traced_ns,
                dispatch.traced_pct());
    std::printf("\n%-28s %10s\n", "primitive", "ns/op");
    for (const auto& p : prims) std::printf("%-28s %10.2f\n", p.name.c_str(), p.ns);

    gmdf::benchjson::Writer w;
    w.begin_object();
    w.kv("bench", "p9_obs");
    w.key("dispatch");
    w.begin_object(/*compact=*/true);
    w.kv("off_ns", dispatch.off_ns, 1);
    w.kv("metrics_ns", dispatch.metrics_ns, 1);
    w.kv("traced_ns", dispatch.traced_ns, 1);
    w.kv("metrics_overhead_pct", dispatch.metrics_pct(), 2);
    w.kv("traced_overhead_pct", dispatch.traced_pct(), 2);
    w.end_object();
    w.key("primitives");
    w.begin_array();
    for (const auto& p : prims) {
        w.begin_object(/*compact=*/true);
        w.kv("name", p.name);
        w.kv("ns", p.ns, 2);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write_file(out_path)) return 1;
    std::printf("\nwrote %s\n", out_path);

    // CI gate: full metrics instrumentation must stay under 5% on dispatch.
    if (dispatch.metrics_pct() >= 5.0) {
        std::fprintf(stderr, "FAIL: metrics overhead %.2f%% >= 5%%\n",
                     dispatch.metrics_pct());
        return 1;
    }
    return 0;
}
