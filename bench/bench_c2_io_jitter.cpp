// C2 — paper §III claim: COMDES applies Distributed Timed Multitasking,
// "resulting in the elimination of I/O jitter at both actor task and
// transaction levels."
// Table: measured output jitter (max - min output-latch offset from the
// release instant) for deadline-latched vs. immediate outputs, swept over
// interfering CPU load.
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"

using namespace gmdf;

namespace {

struct JitterResult {
    double jitter_us = 0.0;
    double mean_offset_us = 0.0;
    std::uint64_t misses = 0;
};

// A fast interfering task (priority 0) steals variable CPU time from the
// measured control task (priority 5).
class NoiseBody final : public rt::TaskBody {
public:
    explicit NoiseBody(std::uint64_t max_cycles) : max_cycles_(max_cycles) {}

    std::uint64_t execute(rt::TaskContext&) override {
        // Deterministic varying load: triangle pattern.
        phase_ = (phase_ + 1) % 16;
        return max_cycles_ * static_cast<std::uint64_t>(phase_ < 8 ? phase_ : 16 - phase_) /
               8;
    }

private:
    std::uint64_t max_cycles_;
    int phase_ = 0;
};

JitterResult run(rt::OutputMode mode, std::uint64_t noise_cycles) {
    comdes::SystemBuilder sys("c2");
    auto in_sig = sys.add_signal("u", "real_", 1.0);
    auto out_sig = sys.add_signal("y");
    auto a = sys.add_actor("ctl", 10'000, /*deadline_us=*/8'000);
    auto pid = a.add_basic("pid", "pid_", {1.0, 0.5, 0.0, -10.0, 10.0});
    auto lp = a.add_basic("lp", "lowpass_", {0.05});
    a.bind_input(in_sig, pid, "sp");
    a.bind_input(out_sig, pid, "pv");
    a.connect(pid, "out", lp, "in");
    a.bind_output(lp, "out", out_sig);

    rt::Target target(mode);
    (void)codegen::load_system(target, sys.model(), codegen::InstrumentOptions::none());
    // Priority attribute defaults to 0 == highest; push measured task low.
    rt::TaskConfig noise_cfg;
    noise_cfg.name = "noise";
    noise_cfg.period = 3'700 * rt::kUs; // co-prime with 10 ms: phases drift
    noise_cfg.priority = -1;
    target.node(0).add_task(std::move(noise_cfg), std::make_unique<NoiseBody>(noise_cycles));

    target.start();
    target.run_for(5 * rt::kSec);

    const auto& stats = target.node(0).task_stats("ctl");
    JitterResult r;
    if (!stats.output_offsets.empty()) {
        auto lo = *std::min_element(stats.output_offsets.begin(), stats.output_offsets.end());
        auto hi = *std::max_element(stats.output_offsets.begin(), stats.output_offsets.end());
        double sum = 0;
        for (auto o : stats.output_offsets) sum += static_cast<double>(o);
        r.jitter_us = static_cast<double>(hi - lo) / 1000.0;
        r.mean_offset_us = sum / static_cast<double>(stats.output_offsets.size()) / 1000.0;
    }
    r.misses = stats.deadline_misses;
    return r;
}

} // namespace

int main() {
    std::cout << "C2: output jitter, deadline-latched (timed multitasking) vs immediate\n";
    std::cout << "control task: 10 ms period / 8 ms deadline; interfering load task\n\n";
    std::cout << std::left << std::setw(18) << "noise (cycles)" << std::setw(12) << "mode"
              << std::setw(16) << "jitter (us)" << std::setw(18) << "mean offset (us)"
              << std::setw(10) << "misses" << "\n";
    for (std::uint64_t noise : {0ull, 48'000ull, 144'000ull, 288'000ull}) {
        for (auto mode : {rt::OutputMode::LatchAtDeadline, rt::OutputMode::Immediate}) {
            auto r = run(mode, noise);
            std::cout << std::setw(18) << noise << std::setw(12)
                      << (mode == rt::OutputMode::LatchAtDeadline ? "latched" : "immediate")
                      << std::setw(16) << std::fixed << std::setprecision(1) << r.jitter_us
                      << std::setw(18) << r.mean_offset_us << std::setw(10) << r.misses
                      << "\n";
            std::cout.unsetf(std::ios::fixed);
        }
    }
    std::cout << "\nExpected shape (paper claim): latched jitter is exactly 0 at every\n"
                 "load (outputs appear precisely at the deadline); immediate-output\n"
                 "jitter grows with load variation.\n";
    return 0;
}
