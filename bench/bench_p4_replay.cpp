// P4 — time-travel costs: what a checkpoint costs to take and restore
// (vs model size), and what a rewind costs end-to-end (restore nearest
// checkpoint + deterministic catch-up + scene rebuild) as a function of
// the checkpoint cadence. Writes BENCH_p4_replay.json (CI smoke step).
//
// The cadence trade is the headline: a denser grid spends more capture
// time and ring bytes while the run animates, and buys shorter catch-up
// spans — so rewind latency scales with the cadence, not with how far
// back the target time lies.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "proto/scenarios.hpp"
#include "replay/snapshot.hpp"
#include "replay/timeline.hpp"

using namespace gmdf;
using Clock = std::chrono::steady_clock;

namespace {

double us_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct SnapshotCost {
    std::string name;
    double capture_us = 0;
    double restore_us = 0;
    std::size_t bytes = 0;
};

SnapshotCost bench_snapshot(const char* scenario_name) {
    auto s = proto::make_scenario(scenario_name);
    s->target.run_for(500 * rt::kMs);
    constexpr int kIters = 400;

    auto t0 = Clock::now();
    replay::Snapshot snap;
    for (int i = 0; i < kIters; ++i)
        snap = replay::capture_snapshot(s->target, *s->session);
    double capture_us = us_since(t0) / kIters;

    t0 = Clock::now();
    for (int i = 0; i < kIters; ++i)
        replay::restore_snapshot(snap, s->target, *s->session);
    double restore_us = us_since(t0) / kIters;

    return {scenario_name, capture_us, restore_us, snap.size_bytes()};
}

struct RewindCost {
    std::string name;
    double cadence_ms = 0;
    double rewind_ms = 0;       ///< one rewind(1.0 s) from t = 2.0 s
    std::size_t checkpoints = 0;
    std::size_t ring_bytes = 0;
};

RewindCost bench_rewind(rt::SimTime cadence) {
    auto s = proto::make_scenario("blinker");
    s->timeline->set_auto_period(cadence);
    s->timeline->advance(2000 * rt::kMs);
    constexpr int kIters = 10;

    double total_us = 0;
    for (int i = 0; i < kIters; ++i) {
        auto t0 = Clock::now();
        // 1005 ms sits just past a cadence point, so the catch-up span
        // is representative (about half the grid on average).
        auto err = s->timeline->rewind_to(1005 * rt::kMs);
        total_us += us_since(t0);
        if (err.has_value()) {
            std::fprintf(stderr, "rewind refused: %s\n", err->detail.c_str());
            break;
        }
        // Deterministic re-run back to 2.0 s re-creates the same future.
        s->timeline->advance(995 * rt::kMs);
    }
    auto stats = s->timeline->store().stats();
    return {"rewind_cadence_" + std::to_string(cadence / rt::kMs) + "ms",
            static_cast<double>(cadence / rt::kMs), total_us / kIters / 1000.0,
            stats.count, stats.bytes};
}

} // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_p4_replay.json";

    std::vector<SnapshotCost> snaps;
    snaps.push_back(bench_snapshot("blinker"));
    snaps.push_back(bench_snapshot("turntable"));

    std::vector<RewindCost> rewinds;
    rewinds.push_back(bench_rewind(200 * rt::kMs));
    rewinds.push_back(bench_rewind(50 * rt::kMs));
    rewinds.push_back(bench_rewind(10 * rt::kMs));

    std::printf("%-24s %12s %12s %10s\n", "snapshot", "capture us", "restore us",
                "bytes");
    for (const auto& r : snaps)
        std::printf("%-24s %12.1f %12.1f %10zu\n", r.name.c_str(), r.capture_us,
                    r.restore_us, r.bytes);
    std::printf("\n%-24s %12s %12s %12s\n", "rewind", "cadence ms", "rewind ms",
                "ring bytes");
    for (const auto& r : rewinds)
        std::printf("%-24s %12.0f %12.2f %12zu\n", r.name.c_str(), r.cadence_ms,
                    r.rewind_ms, r.ring_bytes);

    gmdf::benchjson::Writer w;
    w.begin_object();
    w.kv("bench", "p4_replay");
    w.key("snapshots");
    w.begin_array();
    for (const auto& r : snaps) {
        w.begin_object(/*compact=*/true);
        w.kv("name", r.name);
        w.kv("capture_us", r.capture_us, 1);
        w.kv("restore_us", r.restore_us, 1);
        w.kv("bytes", r.bytes);
        w.end_object();
    }
    w.end_array();
    w.key("rewinds");
    w.begin_array();
    for (const auto& r : rewinds) {
        w.begin_object(/*compact=*/true);
        w.kv("name", r.name);
        w.kv("cadence_ms", r.cadence_ms, 0);
        w.kv("rewind_ms", r.rewind_ms, 2);
        w.kv("checkpoints", r.checkpoints);
        w.kv("ring_bytes", r.ring_bytes);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write_file(out_path)) return 1;
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
