// P7 — sharded fleet throughput: what partitioning the PollScheduler's
// fleet across worker threads buys. Pumps scripted fleets of 512..4096
// sessions for a fixed simulated span at 1/2/4/8 threads and reports
// sessions per wall-second, a mid-pump fairness snapshot (min/max
// simulated time any session has consumed when the first one crosses
// the halfway mark — a starving fleet shows a wide spread), and steal
// counts; then the end-to-end campaign rate at 1 and 4 threads against
// BENCH_p6's serial baseline. Writes BENCH_p7_shard.json (CI smoke
// step).
//
// Thread scaling is hardware-bound: the JSON carries a "cpus" field so
// a single-core container's flat curve is not mistaken for a scheduler
// defect. CI's multi-core runners regenerate the scaling numbers.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "campaign/runner.hpp"
#include "comdes/build.hpp"
#include "core/builder.hpp"
#include "core/session.hpp"
#include "hub/registry.hpp"
#include "hub/sharded.hpp"
#include "proto/scenarios.hpp"

using namespace gmdf;
using Clock = std::chrono::steady_clock;

namespace {

double us_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// A minimal scripted session: one actor, a couple of transport events.
/// Cheap enough that the fleet bench measures scheduler bookkeeping and
/// shard handoff, not model execution.
std::unique_ptr<proto::Scenario> scripted_scenario(int index) {
    auto scenario = std::make_unique<proto::Scenario>("s" + std::to_string(index));
    auto& sys = scenario->sys;
    auto sig = sys.add_signal("x", "real_");
    auto actor = sys.add_actor("act", 10'000);
    auto sm = actor.add_sm("machine", {"go"}, {"out"});
    sm.add_state("idle", {{"out", "0"}});
    auto transport = std::make_unique<link::ScriptedTransport>();
    for (int i = 1; i <= 2; ++i)
        transport->push({link::Cmd::SignalUpdate, static_cast<std::uint32_t>(sig.raw),
                         0, static_cast<float>(i)},
                        i * 30 * rt::kMs);
    scenario->session = std::make_unique<core::DebugSession>(sys.model());
    scenario->session->attach(std::move(transport));
    return scenario;
}

struct FleetRate {
    std::string name;
    int sessions = 0;
    int threads = 0;
    double total_ms = 0;
    double sessions_per_s = 0; ///< fleet size / wall time for the fixed span
    double slices_per_s = 0;
    std::uint64_t steals = 0;
    double fairness_min_ms = 0; ///< least-served session at the half-way sample
    double fairness_max_ms = 0; ///< most-served session at the same instant
};

FleetRate bench_fleet(int sessions, int threads) {
    constexpr rt::SimTime kSpan = 100 * rt::kMs;

    hub::SessionRegistry registry;
    for (int i = 0; i < sessions; ++i)
        registry.adopt(scripted_scenario(i), "s" + std::to_string(i));

    hub::ShardedScheduler scheduler;
    scheduler.set_threads(threads);

    // Mid-pump fairness sample: the slice hook accumulates each
    // session's consumed span (every slice is one full budget here —
    // the budget divides kSpan); the first session to cross kSpan/2
    // freezes a snapshot of the whole fleet's progress.
    std::vector<std::atomic<long long>> advanced(
        static_cast<std::size_t>(sessions) + 1); // ids are 1-based
    std::atomic<bool> sampled{false};
    long long sample_min = 0;
    long long sample_max = 0;
    const rt::SimTime budget = scheduler.budget();
    auto hook = [&](hub::SessionRegistry::Entry& entry) {
        auto& mine = advanced[static_cast<std::size_t>(entry.id)];
        const long long now =
            mine.fetch_add(budget, std::memory_order_relaxed) + budget;
        if (now * 2 >= kSpan && !sampled.exchange(true, std::memory_order_acq_rel)) {
            long long min_v = kSpan;
            long long max_v = 0;
            for (int id = 1; id <= sessions; ++id) {
                const long long v =
                    advanced[static_cast<std::size_t>(id)].load(std::memory_order_relaxed);
                min_v = std::min(min_v, v);
                max_v = std::max(max_v, v);
            }
            sample_min = min_v;
            sample_max = max_v;
        }
    };

    auto t0 = Clock::now();
    scheduler.pump(registry, kSpan, hook);
    const double total_ms = us_since(t0) / 1000.0;

    FleetRate r;
    r.name = "fleet_" + std::to_string(sessions) + "_t" + std::to_string(threads);
    r.sessions = sessions;
    r.threads = threads;
    r.total_ms = total_ms;
    r.sessions_per_s = sessions / (total_ms / 1000.0);
    r.slices_per_s = static_cast<double>(scheduler.total_slices()) / (total_ms / 1000.0);
    r.steals = scheduler.total_steals();
    r.fairness_min_ms = static_cast<double>(sample_min) / rt::kMs;
    r.fairness_max_ms = static_cast<double>(sample_max) / rt::kMs;
    return r;
}

struct CampaignRate {
    std::string name;
    int pairs = 0;
    int threads = 0;
    double total_ms = 0;
    double pair_ms = 0;
    double pairs_per_s = 0;
};

CampaignRate bench_campaign(int pairs, int threads) {
    campaign::CampaignConfig cfg;
    cfg.pairs = pairs;
    cfg.seed = 1;
    cfg.threads = threads;

    auto t0 = Clock::now();
    auto report = campaign::run_campaign(cfg);
    const double total_ms = us_since(t0) / 1000.0;
    (void)report;

    CampaignRate r;
    r.name = "campaign_" + std::to_string(pairs) + "_wave8_t" + std::to_string(threads);
    r.pairs = pairs;
    r.threads = threads;
    r.total_ms = total_ms;
    r.pair_ms = total_ms / pairs;
    r.pairs_per_s = pairs / (total_ms / 1000.0);
    return r;
}

} // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_p7_shard.json";
    const unsigned cpus = std::thread::hardware_concurrency();

    std::vector<FleetRate> fleets;
    for (int sessions : {512, 1024, 2048, 4096})
        for (int threads : {1, 2, 4, 8})
            fleets.push_back(bench_fleet(sessions, threads));

    std::vector<CampaignRate> campaigns;
    campaigns.push_back(bench_campaign(200, 1));
    campaigns.push_back(bench_campaign(200, 4));

    std::printf("cpus %u\n\n", cpus);
    std::printf("%-16s %8s %8s %10s %12s %12s %8s %16s\n", "fleet", "sessions",
                "threads", "total ms", "sessions/s", "slices/s", "steals",
                "fair min/max ms");
    for (const auto& f : fleets)
        std::printf("%-16s %8d %8d %10.1f %12.0f %12.0f %8llu %8.0f/%.0f\n",
                    f.name.c_str(), f.sessions, f.threads, f.total_ms,
                    f.sessions_per_s, f.slices_per_s,
                    static_cast<unsigned long long>(f.steals), f.fairness_min_ms,
                    f.fairness_max_ms);
    std::printf("\n%-24s %8s %8s %10s %10s %10s\n", "campaign", "pairs", "threads",
                "total ms", "pair ms", "pairs/s");
    for (const auto& c : campaigns)
        std::printf("%-24s %8d %8d %10.1f %10.2f %10.1f\n", c.name.c_str(), c.pairs,
                    c.threads, c.total_ms, c.pair_ms, c.pairs_per_s);

    gmdf::benchjson::Writer w;
    w.begin_object();
    w.kv("bench", "p7_shard");
    w.kv("cpus", cpus);
    w.key("fleet");
    w.begin_array();
    for (const auto& r : fleets) {
        w.begin_object(/*compact=*/true);
        w.kv("name", r.name);
        w.kv("sessions", r.sessions);
        w.kv("threads", r.threads);
        w.kv("total_ms", r.total_ms, 1);
        w.kv("sessions_per_s", r.sessions_per_s, 0);
        w.kv("slices_per_s", r.slices_per_s, 0);
        w.kv("steals", r.steals);
        w.kv("fairness_min_ms", r.fairness_min_ms, 0);
        w.kv("fairness_max_ms", r.fairness_max_ms, 0);
        w.end_object();
    }
    w.end_array();
    w.key("campaigns");
    w.begin_array();
    for (const auto& c : campaigns) {
        w.begin_object(/*compact=*/true);
        w.kv("name", c.name);
        w.kv("pairs", c.pairs);
        w.kv("threads", c.threads);
        w.kv("total_ms", c.total_ms, 1);
        w.kv("pair_ms", c.pair_ms, 2);
        w.kv("pairs_per_s", c.pairs_per_s, 1);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write_file(out_path)) return 1;
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
