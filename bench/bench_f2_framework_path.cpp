// F2 — paper Fig. 2: GMDF structural view.
// Measures the command path through every framework layer: encode ->
// frame -> (wire) -> decode -> engine ingest -> reaction on the GDM, both
// as a host-side microbenchmark and end-to-end through the simulated
// target (UART wire latency included).
#include <benchmark/benchmark.h>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "core/session.hpp"
#include "core/animator.hpp"
#include "core/transports.hpp"
#include "link/framing.hpp"

using namespace gmdf;

namespace {

struct Demo {
    comdes::SystemBuilder sys{"f2"};
    meta::ObjectId sig, sm_id, s0, s1;

    Demo() {
        sig = sys.add_signal("x");
        auto a = sys.add_actor("a", 10'000);
        auto sm = a.add_sm("m", {"go"}, {"y"});
        s0 = sm.add_state("s0");
        s1 = sm.add_state("s1");
        sm.add_transition(s0, s1, "go");
        sm.add_transition(s1, s0, "", "!go");
        sm_id = sm.sm_id();
        auto c = a.add_basic("c", "const_", {1.0});
        a.connect(c, "out", sm_id, "go");
        a.bind_output(sm_id, "y", sig);
    }
};

void BM_EncodeFrame(benchmark::State& state) {
    link::Command cmd{link::Cmd::StateEnter, 42, 99, 1.5f};
    for (auto _ : state) {
        auto wire = link::frame_payload(link::encode_command(cmd));
        benchmark::DoNotOptimize(wire.data());
    }
}
BENCHMARK(BM_EncodeFrame);

void BM_DecodeFrame(benchmark::State& state) {
    link::Command cmd{link::Cmd::StateEnter, 42, 99, 1.5f};
    auto wire = link::frame_payload(link::encode_command(cmd));
    link::FrameDecoder decoder;
    for (auto _ : state) {
        decoder.feed(wire);
        auto payloads = decoder.take_payloads();
        benchmark::DoNotOptimize(payloads.size());
    }
}
BENCHMARK(BM_DecodeFrame);

/// Host-side path: decode + ingest + reaction (no simulated wire).
void BM_HostPath_IngestReaction(benchmark::State& state) {
    Demo d;
    auto abs = core::abstract_model(d.sys.model(), core::comdes_default_mapping());
    core::DebuggerEngine engine(d.sys.model());
    core::SceneAnimator animator(d.sys.model(), abs.scene);
    engine.add_observer(&animator);
    link::Command enter0{link::Cmd::StateEnter, static_cast<std::uint32_t>(d.sm_id.raw),
                         static_cast<std::uint32_t>(d.s0.raw), 0.0f};
    link::Command enter1{link::Cmd::StateEnter, static_cast<std::uint32_t>(d.sm_id.raw),
                         static_cast<std::uint32_t>(d.s1.raw), 0.0f};
    rt::SimTime t = 0;
    for (auto _ : state) {
        engine.ingest(enter0, t += rt::kUs);
        engine.ingest(enter1, t += rt::kUs);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_HostPath_IngestReaction);

/// End-to-end: simulated seconds per wall second at different event rates
/// (task periods), wire latency included.
void BM_EndToEnd_SimulatedSecond(benchmark::State& state) {
    auto period_us = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        comdes::SystemBuilder sys("f2rate");
        auto sig = sys.add_signal("x");
        auto a = sys.add_actor("a", period_us);
        auto sm = a.add_sm("m", {"go"}, {"y"});
        auto s0 = sm.add_state("s0");
        auto s1 = sm.add_state("s1");
        sm.add_transition(s0, s1, "go");
        sm.add_transition(s1, s0, "", "!go");
        auto c = a.add_basic("c", "const_", {1.0});
        a.connect(c, "out", sm.sm_id(), "go");
        a.bind_output(sm.sm_id(), "y", sig);
        rt::Target target;
        (void)codegen::load_system(target, sys.model(),
                                   codegen::InstrumentOptions::active());
        core::DebugSession session(sys.model());
        session.attach(core::make_active_uart_transport(target));
        target.start();
        state.ResumeTiming();
        target.run_for(rt::kSec);
        state.PauseTiming();
        state.counters["cmds_per_sim_s"] =
            static_cast<double>(session.engine().stats().commands);
        state.ResumeTiming();
    }
    state.SetLabel("task period " + std::to_string(period_us) + "us");
}
BENCHMARK(BM_EndToEnd_SimulatedSecond)->Arg(50'000)->Arg(10'000)->Arg(2'000);

} // namespace

BENCHMARK_MAIN();
