// P3 — tree-walk interpreter vs. compiled bytecode VM on the three hot
// expression workloads the debugger runs per scan:
//
//   expression_fb_scan    an expression_ FB kernel step (pin-name lookup
//                         + meta::Value boxing vs. slot-indexed doubles)
//   sm_guard_scan         a state machine's guard sweep per scan step
//   breakpoint_predicate  a SignalPredicate check per SIGNAL_UPDATE
//                         (name->id->value map chain vs. dense slots)
//
// Each workload times the legacy evaluation shape faithfully (the exact
// lookup closures the kernels used before compilation) against
// CompiledExpr::run over the same inputs, checks both produce identical
// results, and reports ns/eval plus the speedup factor.
//
// Output: human-readable summary on stdout and a machine-readable JSON
// report (default BENCH_p3_expr.json, or argv[1]) for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "expr/compile.hpp"
#include "expr/eval.hpp"
#include "expr/parser.hpp"

using namespace gmdf;

namespace {

using Clock = std::chrono::steady_clock;

volatile double g_sink = 0.0; ///< defeats dead-code elimination

struct Result {
    std::string name;
    double tree_ns = 0.0;
    double compiled_ns = 0.0;
    [[nodiscard]] double speedup() const { return tree_ns / compiled_ns; }
};

/// Best-of-rounds ns-per-call for `fn(i)` driven `iters` times.
template <typename Fn>
double time_ns(int iters, int rounds, Fn&& fn) {
    double best = 1e300;
    for (int r = 0; r < rounds; ++r) {
        auto t0 = Clock::now();
        double acc = 0.0;
        for (int i = 0; i < iters; ++i) acc += fn(i);
        g_sink = acc;
        auto dt = std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
        best = std::min(best, dt / iters);
    }
    return best;
}

/// The pre-compilation ExprKernel shape: tree-walk with a linear
/// pin-name scan per VarRef visit.
double tree_walk_over_pins(const expr::Expr& ast, const std::vector<std::string>& pins,
                           const double* in) {
    auto lookup = [&](std::string_view name) -> meta::Value {
        for (std::size_t i = 0; i < pins.size(); ++i)
            if (pins[i] == name) return meta::Value(in[i]);
        return {};
    };
    return expr::eval(ast, lookup).as_number();
}

Result bench_expression_fb() {
    // A realistic expression_ FB: PI-style control law over five pins.
    const std::string src = "clamp(kp * (sp - pv) + ki * acc, lo, hi)";
    auto ast = expr::parse(src);
    auto pins = expr::free_variables(*ast); // sorted: acc, hi, ki, kp, lo, pv, sp
    auto compiled = expr::compile(*ast, pins);

    std::vector<double> in(pins.size());
    auto fill = [&](int i) {
        for (std::size_t p = 0; p < in.size(); ++p)
            in[p] = static_cast<double>((i + static_cast<int>(p) * 7) % 23) * 0.35 - 3.0;
    };

    // Sanity: identical results on a sweep before timing.
    for (int i = 0; i < 64; ++i) {
        fill(i);
        double want = tree_walk_over_pins(*ast, pins, in.data());
        double got = 0.0;
        if (compiled.run(in, got) != expr::VmStatus::Ok || got != want) {
            std::fprintf(stderr, "expression_fb mismatch at %d\n", i);
            std::exit(1);
        }
    }

    Result r{"expression_fb_scan"};
    r.tree_ns = time_ns(200'000, 5, [&](int i) {
        fill(i);
        return tree_walk_over_pins(*ast, pins, in.data());
    });
    r.compiled_ns = time_ns(200'000, 5, [&](int i) {
        fill(i);
        double y = 0.0;
        (void)compiled.run(in, y);
        return y;
    });
    return r;
}

Result bench_sm_guards() {
    // A four-transition machine's guard sweep over its input pins.
    const std::vector<std::string> pins{"fault", "level", "rate", "run"};
    const std::vector<std::string> guards{
        "run && level > 80 && !fault",
        "level < 20 || fault",
        "rate > 0.5 && level >= 40",
        "!run || abs(rate) < 0.01",
    };
    std::vector<expr::ExprPtr> asts;
    std::vector<expr::CompiledExpr> compiled;
    for (const auto& g : guards) {
        asts.push_back(expr::parse(g));
        compiled.push_back(expr::compile(*asts.back(), pins));
    }

    double in[4] = {0, 0, 0, 0};
    auto fill = [&](int i) {
        in[0] = (i % 11) == 0 ? 1.0 : 0.0;
        in[1] = static_cast<double>(i % 100);
        in[2] = static_cast<double>(i % 7) * 0.2 - 0.6;
        in[3] = (i % 3) != 0 ? 1.0 : 0.0;
    };
    auto lookup_env = [&](std::string_view name) -> meta::Value {
        for (std::size_t p = 0; p < pins.size(); ++p)
            if (pins[p] == name) return meta::Value(in[p]);
        return {};
    };

    for (int i = 0; i < 64; ++i) {
        fill(i);
        for (std::size_t g = 0; g < guards.size(); ++g) {
            bool want = expr::eval_bool(*asts[g], lookup_env);
            double got = 0.0;
            if (compiled[g].run(std::span<const double>(in), got) != expr::VmStatus::Ok ||
                (got != 0.0) != want) {
                std::fprintf(stderr, "sm_guard mismatch at %d/%zu\n", i, g);
                std::exit(1);
            }
        }
    }

    Result r{"sm_guard_scan"};
    r.tree_ns = time_ns(100'000, 5, [&](int i) {
        fill(i);
        double hits = 0.0;
        for (const auto& ast : asts) hits += expr::eval_bool(*ast, lookup_env) ? 1.0 : 0.0;
        return hits;
    });
    r.compiled_ns = time_ns(100'000, 5, [&](int i) {
        fill(i);
        double hits = 0.0;
        for (const auto& ce : compiled) {
            double y = 0.0;
            (void)ce.run(std::span<const double>(in), y);
            hits += y != 0.0 ? 1.0 : 0.0;
        }
        return hits;
    });
    return r;
}

Result bench_breakpoint_predicate() {
    // The engine's pre-compilation shape: predicate over named signals,
    // each VarRef costing a name->id map walk plus an id->value map walk,
    // wrapped in a try/catch. 64 signals live in the model.
    const std::string src = "speed > 80 && brake == 0 && gear >= 3";
    auto ast = expr::parse(src);

    std::map<std::string, std::uint64_t> by_name;
    std::map<std::uint64_t, double> values;
    std::vector<double> slots(64, 0.0);
    std::vector<std::string> names;
    for (int i = 0; i < 64; ++i) {
        std::string name = i == 20 ? "speed" : i == 40 ? "brake" : i == 60 ? "gear"
                                             : "sig" + std::to_string(i);
        names.push_back(name);
        by_name[name] = 1000 + static_cast<std::uint64_t>(i);
        values[1000 + static_cast<std::uint64_t>(i)] = 0.0;
    }
    auto compiled = expr::compile(*ast, [&](std::string_view name) -> int {
        for (std::size_t i = 0; i < names.size(); ++i)
            if (names[i] == name) return static_cast<int>(i);
        return -1;
    });

    // Map references are stable: cache the cells so the per-iteration
    // signal update costs the same plain stores on both paths (the
    // update is engine ingest work, not predicate evaluation).
    double* v_speed = &values[1020];
    double* v_brake = &values[1040];
    double* v_gear = &values[1060];
    auto fill = [&](int i) {
        double speed = static_cast<double>(i % 160);
        double brake = (i % 5) == 0 ? 1.0 : 0.0;
        double gear = static_cast<double>(i % 6);
        *v_speed = speed; slots[20] = speed;
        *v_brake = brake; slots[40] = brake;
        *v_gear = gear;   slots[60] = gear;
    };
    auto legacy_eval = [&]() -> bool {
        try {
            return expr::eval_bool(*ast, [&](std::string_view name) -> meta::Value {
                auto sit = by_name.find(std::string(name));
                if (sit == by_name.end()) return {};
                auto vit = values.find(sit->second);
                return vit == values.end() ? meta::Value(0.0) : meta::Value(vit->second);
            });
        } catch (const std::exception&) {
            return false;
        }
    };

    for (int i = 0; i < 64; ++i) {
        fill(i);
        double got = 0.0;
        bool ok = compiled.run(slots, got) == expr::VmStatus::Ok;
        if (!ok || (got != 0.0) != legacy_eval()) {
            std::fprintf(stderr, "breakpoint mismatch at %d\n", i);
            std::exit(1);
        }
    }

    Result r{"breakpoint_predicate_sweep"};
    r.tree_ns = time_ns(100'000, 5, [&](int i) {
        fill(i);
        return legacy_eval() ? 1.0 : 0.0;
    });
    r.compiled_ns = time_ns(100'000, 5, [&](int i) {
        fill(i);
        double y = 0.0;
        return compiled.run(slots, y) == expr::VmStatus::Ok && y != 0.0 ? 1.0 : 0.0;
    });
    return r;
}

} // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_p3_expr.json";

    std::vector<Result> results;
    results.push_back(bench_expression_fb());
    results.push_back(bench_sm_guards());
    results.push_back(bench_breakpoint_predicate());

    std::printf("%-28s %14s %14s %10s\n", "workload", "tree ns/eval", "vm ns/eval",
                "speedup");
    for (const auto& r : results)
        std::printf("%-28s %14.1f %14.1f %9.1fx\n", r.name.c_str(), r.tree_ns,
                    r.compiled_ns, r.speedup());

    gmdf::benchjson::Writer w;
    w.begin_object();
    w.kv("bench", "p3_expr");
    w.kv("unit", "ns_per_eval");
    w.key("workloads");
    w.begin_array();
    for (const Result& r : results) {
        w.begin_object(/*compact=*/true);
        w.kv("name", r.name);
        w.kv("tree_walk", r.tree_ns, 1);
        w.kv("compiled", r.compiled_ns, 1);
        w.kv("speedup", r.speedup(), 2);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write_file(out_path)) return 1;
    std::printf("wrote %s\n", out_path);
    return 0;
}
