// C3 — paper §III claim: "model-level animation might occur in
// milliseconds. Therefore, GDM animation will trace model-level behavior
// and always make a record of the execution trace. The user can then
// monitor the application's behavior via a replay function associated
// with a timing diagram."
// Measures: trace recording overhead, replay throughput (events/s, i.e.
// how much faster than real time a trace can be re-animated), and timing
// diagram / VCD generation time.
#include <benchmark/benchmark.h>

#include "comdes/build.hpp"
#include "core/abstraction.hpp"
#include "core/animator.hpp"
#include "core/engine.hpp"
#include "core/trace.hpp"
#include "replay/animate.hpp"

using namespace gmdf;

namespace {

struct Fixture {
    comdes::SystemBuilder sys{"c3"};
    meta::ObjectId sm_id, s0, s1, t01, t10, sig;

    Fixture() {
        sig = sys.add_signal("speed");
        auto a = sys.add_actor("a", 10'000);
        auto sm = a.add_sm("m", {"go"}, {"y"});
        s0 = sm.add_state("s0");
        s1 = sm.add_state("s1");
        t01 = sm.add_transition(s0, s1, "go");
        t10 = sm.add_transition(s1, s0, "", "!go");
        sm_id = sm.sm_id();
        a.bind_output(sm.sm_id(), "y", sig);
    }

    // A realistic trace: alternating transitions + signal updates, 1 ms apart.
    core::TraceRecorder make_trace(std::size_t n_events) const {
        core::TraceRecorder trace;
        rt::SimTime t = 0;
        for (std::size_t i = 0; i < n_events; i += 3) {
            bool to_one = (i / 3) % 2 == 0;
            trace.record({link::Cmd::Transition, static_cast<std::uint32_t>(sm_id.raw),
                          static_cast<std::uint32_t>((to_one ? t01 : t10).raw), 0.0f},
                         t += rt::kMs);
            trace.record({link::Cmd::StateEnter, static_cast<std::uint32_t>(sm_id.raw),
                          static_cast<std::uint32_t>((to_one ? s1 : s0).raw), 0.0f},
                         t);
            trace.record({link::Cmd::SignalUpdate, static_cast<std::uint32_t>(sig.raw), 0,
                          static_cast<float>(i)},
                         t);
        }
        return trace;
    }
};

void BM_TraceRecord(benchmark::State& state) {
    core::TraceRecorder trace;
    link::Command cmd{link::Cmd::StateEnter, 1, 2, 0.0f};
    rt::SimTime t = 0;
    for (auto _ : state) {
        trace.record(cmd, t += rt::kMs);
        if (trace.size() > 1'000'000) {
            state.PauseTiming();
            trace.clear();
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecord);

void BM_ReplayThroughput(benchmark::State& state) {
    Fixture f;
    auto trace = f.make_trace(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        // The same shared re-animation path the `replay` verb and the
        // time-travel scene rebuild use.
        auto abs = core::abstract_model(f.sys.model(), core::comdes_default_mapping());
        core::SceneAnimator animator(f.sys.model(), abs.scene);
        replay::animate_trace(f.sys.model(), core::CommandBindingTable::defaults(),
                              trace.events(), animator);
        benchmark::DoNotOptimize(animator.frames());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    // Each event is 1/3 ms of original execution: speedup vs real time =
    // (events/s) / 3000.
    state.counters["trace_events"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ReplayThroughput)->Arg(300)->Arg(3'000)->Arg(30'000);

void BM_TimingDiagram(benchmark::State& state) {
    Fixture f;
    auto trace = f.make_trace(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto diagram = trace.timing_diagram(f.sys.model());
        std::string art = diagram.render_ascii(80);
        benchmark::DoNotOptimize(art.data());
    }
}
BENCHMARK(BM_TimingDiagram)->Arg(3'000);

void BM_VcdExport(benchmark::State& state) {
    Fixture f;
    auto trace = f.make_trace(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::string vcd = trace.to_vcd(f.sys.model());
        benchmark::DoNotOptimize(vcd.data());
    }
}
BENCHMARK(BM_VcdExport)->Arg(3'000);

} // namespace

BENCHMARK_MAIN();
