// P1 — protocol dispatch overhead per request.
//
// The control plane should be negligible next to the data plane: one
// request is a parse + registry lookup + handler. These benchmarks
// price the pieces separately (codec only, dispatch only, full line)
// against a live blinker scenario with a warmed-up trace, so `query`
// handlers resolve real elements.
#include <benchmark/benchmark.h>

#include "proto/scenarios.hpp"

using namespace gmdf;

namespace {

proto::Scenario& scenario() {
    static std::unique_ptr<proto::Scenario> s = [] {
        auto built = proto::make_scenario("blinker");
        // One second of activity so queries and renders see real state.
        (void)built->controller().execute_line("run 1000");
        (void)built->controller().drain_events();
        return built;
    }();
    return *s;
}

void BM_ParseRequest(benchmark::State& state) {
    for (auto _ : state) {
        auto r = proto::parse_request("break add signal \"speed > 40\" once");
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ParseRequest);

void BM_FormatResponse(benchmark::State& state) {
    auto resp = proto::Response::make_ok(
        {"commands 11", "reactions 9", "breakpoints-hit 1", "divergences 0"});
    for (auto _ : state) {
        auto s = proto::format_response(resp);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_FormatResponse);

void BM_DispatchInfo(benchmark::State& state) {
    auto& ctl = scenario().controller();
    proto::Request req{"info", {}};
    for (auto _ : state) {
        auto resp = ctl.execute(req);
        benchmark::DoNotOptimize(resp);
    }
}
BENCHMARK(BM_DispatchInfo);

void BM_DispatchQuerySignal(benchmark::State& state) {
    auto& ctl = scenario().controller();
    proto::Request req{"query", {"signal", "led"}};
    for (auto _ : state) {
        auto resp = ctl.execute(req);
        benchmark::DoNotOptimize(resp);
    }
}
BENCHMARK(BM_DispatchQuerySignal);

void BM_ExecuteLineQueryStats(benchmark::State& state) {
    auto& ctl = scenario().controller();
    for (auto _ : state) {
        auto resp = ctl.execute_line("query stats");
        benchmark::DoNotOptimize(resp);
    }
}
BENCHMARK(BM_ExecuteLineQueryStats);

} // namespace

BENCHMARK_MAIN();
