// F6 — paper Fig. 6: the prototype execution flow, all six steps.
// Regenerates the workflow end-to-end and reports per-step timings:
//   1. input prerequisites (model serialized + reread, as file input)
//   2. input file selection (parse + conformance validation)
//   3. abstraction guide (mapping + GDM generation)
//   4. command/reaction setting (binding table)
//   5. GDM created + communication channel established
//   6. runtime interaction (run 1 simulated second, animate, trace)
// Output: one table, plus the final animation frame and timing diagram.
#include <chrono>
#include <iomanip>
#include <iostream>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"
#include "meta/serialize.hpp"

using namespace gmdf;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start)
        .count();
}

} // namespace

int main() {
    using clock = std::chrono::steady_clock;
    std::cout << "F6: GMDF prototype execution flow (paper Fig. 6)\n\n";
    std::vector<std::pair<std::string, double>> steps;

    // Step 1: input prerequisites — a COMDES model "file".
    auto t0 = clock::now();
    comdes::SystemBuilder builder("conveyor");
    auto item = builder.add_signal("item", "bool_");
    auto belt = builder.add_signal("belt", "real_");
    auto actor = builder.add_actor("belt_ctl", 10'000);
    auto sm = actor.add_sm("belt_fsm", {"item"}, {"speed"});
    auto stop = sm.add_state("stopped", {{"speed", "0"}});
    auto run = sm.add_state("running", {{"speed", "0.6"}});
    sm.add_transition(stop, run, "item");
    sm.add_transition(run, stop, "", "!item");
    auto ramp = actor.add_basic("ramp", "ratelimit_", {1.0});
    actor.bind_input(item, sm.sm_id(), "item");
    actor.connect(sm.sm_id(), "speed", ramp, "in");
    actor.bind_output(ramp, "out", belt);
    std::string model_file = meta::write_model(builder.model());
    steps.emplace_back("1. input prerequisites (model authored + saved)", ms_since(t0));

    // Step 2: select input files — parse + validate.
    t0 = clock::now();
    meta::Model model = meta::read_model(comdes::comdes_metamodel().mm, model_file);
    auto diagnostics = comdes::validate_comdes(model);
    if (!meta::is_clean(diagnostics)) {
        std::cerr << "model invalid\n";
        return 1;
    }
    steps.emplace_back("2. input files loaded + validated", ms_since(t0));

    // Step 3: abstraction guide — mapping + automatic GDM generation.
    t0 = clock::now();
    auto mapping = core::comdes_default_mapping();
    core::DebugSession session(model, mapping);
    std::string gdm_file = session.gdm_text();
    steps.emplace_back("3. abstraction finished (GDM generated, " +
                           std::to_string(session.abstraction().mapped_nodes) + " nodes)",
                       ms_since(t0));

    // Step 4: command/reaction settings.
    t0 = clock::now();
    auto bindings = core::CommandBindingTable::defaults();
    session.engine().set_bindings(bindings);
    steps.emplace_back("4. command reactions configured (" +
                           std::to_string(bindings.size()) + " bindings)",
                       ms_since(t0));

    // Step 5: GDM created + communication channel established.
    t0 = clock::now();
    rt::Target target;
    auto loaded = codegen::load_system(target, model, codegen::InstrumentOptions::active());
    session.attach(core::make_active_uart_transport(target));
    steps.emplace_back("5. communication channel to target established", ms_since(t0));

    // Step 6: runtime interaction — 1 simulated second with environment.
    t0 = clock::now();
    target.start();
    // Find the signal element in the re-read model by name.
    const auto& c = comdes::comdes_metamodel();
    const meta::MObject* item_sig = model.find_named(*c.signal, "item");
    target.sim().every(200 * rt::kMs, 400 * rt::kMs, [&] {
        int idx = loaded.signal_index.at(item_sig->id().raw);
        target.node(0).publish_signal(idx, 1.0 - target.node(0).signal(idx));
    });
    target.run_for(rt::kSec);
    steps.emplace_back("6. one simulated second of model-level debugging", ms_since(t0));

    std::cout << std::left << std::setw(58) << "workflow step" << "host ms\n";
    for (const auto& [name, ms] : steps)
        std::cout << std::setw(58) << name << std::fixed << std::setprecision(3) << ms
                  << "\n";

    std::cout << "\ncommands: " << session.engine().stats().commands
              << ", reactions: " << session.engine().stats().reactions
              << ", divergences: " << session.divergences().size() << "\n\n";
    std::cout << "=== final animation frame ===\n" << session.render_ascii() << "\n";
    std::cout << "=== timing diagram ===\n" << session.timing_diagram().render_ascii(64);
    std::cout << "\nGDM file size: " << gdm_file.size() << " bytes, model file size: "
              << model_file.size() << " bytes\n";
    return 0;
}
