// F4 — paper Fig. 4: the abstraction guide (pairing list UI).
// Measures the operations behind the UI: pairing add/remove, pattern
// lookup through the metaclass hierarchy, and applying a user mapping to
// a whole model (the "ABSTRACTION FINISHED" action).
#include <benchmark/benchmark.h>

#include "comdes/build.hpp"
#include "comdes/metamodel.hpp"
#include "core/abstraction.hpp"

using namespace gmdf;

namespace {

void BM_PairUnpair(benchmark::State& state) {
    for (auto _ : state) {
        core::MappingTable t;
        core::GdmPattern p;
        t.pair("State", p);
        t.pair("Transition", p);
        t.pair("BasicFB", p);
        t.unpair("Transition");
        benchmark::DoNotOptimize(t.size());
    }
}
BENCHMARK(BM_PairUnpair);

void BM_Lookup(benchmark::State& state) {
    auto mapping = core::comdes_default_mapping();
    const auto& c = comdes::comdes_metamodel();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapping.lookup(*c.state));
        benchmark::DoNotOptimize(mapping.lookup(*c.transition));
        benchmark::DoNotOptimize(mapping.lookup(*c.connection));
        benchmark::DoNotOptimize(mapping.lookup(*c.network)); // unmapped
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_Lookup);

void BM_LookupInheritanceWalk(benchmark::State& state) {
    // Pattern pinned at the hierarchy root: lookup must walk supers.
    core::MappingTable t;
    t.pair("NamedElement", core::GdmPattern{});
    const auto& c = comdes::comdes_metamodel();
    for (auto _ : state) benchmark::DoNotOptimize(t.lookup(*c.state));
}
BENCHMARK(BM_LookupInheritanceWalk);

void BM_ApplyMappingToModel(benchmark::State& state) {
    auto n = static_cast<int>(state.range(0));
    comdes::SystemBuilder sys("f4");
    auto a = sys.add_actor("a", 10'000);
    auto sm = a.add_sm("m", {"go"}, {});
    std::vector<meta::ObjectId> states;
    for (int i = 0; i < n; ++i) states.push_back(sm.add_state("s" + std::to_string(i)));
    for (int i = 0; i + 1 < n; ++i)
        sm.add_transition(states[static_cast<std::size_t>(i)],
                          states[static_cast<std::size_t>(i + 1)], "go");
    auto mapping = core::comdes_default_mapping();
    for (auto _ : state) {
        auto result = core::abstract_model(sys.model(), mapping);
        benchmark::DoNotOptimize(result.mapped_nodes);
    }
    state.counters["model_elements"] = static_cast<double>(sys.model().size());
}
BENCHMARK(BM_ApplyMappingToModel)->Arg(8)->Arg(64)->Arg(512);

} // namespace

BENCHMARK_MAIN();
