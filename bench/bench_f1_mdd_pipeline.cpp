// F1 — paper Fig. 1: the model debugger's place in the MDD flow.
// Regenerates the pipeline stage by stage and measures each: modeling
// (build), validation, model transformation (flatten/codegen), execution
// on the target, and the debugger attachment cost on top.
#include <benchmark/benchmark.h>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"

using namespace gmdf;

namespace {

// A mid-size control system: N state machines with a small dataflow each.
comdes::SystemBuilder build_system(int n_actors) {
    comdes::SystemBuilder sys("pipeline_bench");
    for (int i = 0; i < n_actors; ++i) {
        auto trig = sys.add_signal("trig" + std::to_string(i), "bool_");
        auto out = sys.add_signal("out" + std::to_string(i), "real_");
        auto a = sys.add_actor("actor" + std::to_string(i), 10'000);
        auto sm = a.add_sm("fsm" + std::to_string(i), {"go"}, {"y"});
        auto s0 = sm.add_state("s0", {{"y", "0"}});
        auto s1 = sm.add_state("s1", {{"y", "1"}});
        sm.add_transition(s0, s1, "go");
        sm.add_transition(s1, s0, "", "!go");
        auto lp = a.add_basic("lp", "lowpass_", {0.05});
        a.bind_input(trig, sm.sm_id(), "go");
        a.connect(sm.sm_id(), "y", lp, "in");
        a.bind_output(lp, "out", out);
    }
    return sys;
}

void BM_Stage_ModelConstruction(benchmark::State& state) {
    for (auto _ : state) {
        auto sys = build_system(static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(sys.model().size());
    }
    state.counters["actors"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Stage_ModelConstruction)->Arg(4)->Arg(16);

void BM_Stage_Validation(benchmark::State& state) {
    auto sys = build_system(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto ds = comdes::validate_comdes(sys.model());
        benchmark::DoNotOptimize(ds.size());
    }
}
BENCHMARK(BM_Stage_Validation)->Arg(4)->Arg(16);

void BM_Stage_Transformation(benchmark::State& state) {
    auto sys = build_system(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        rt::Target target;
        auto loaded =
            codegen::load_system(target, sys.model(), codegen::InstrumentOptions::active());
        benchmark::DoNotOptimize(loaded.actors.size());
    }
}
BENCHMARK(BM_Stage_Transformation)->Arg(4)->Arg(16);

/// One simulated second of execution, with and without the debugger.
void BM_Stage_Execution(benchmark::State& state) {
    bool debug = state.range(1) != 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto sys = build_system(static_cast<int>(state.range(0)));
        rt::Target target;
        auto opts = debug ? codegen::InstrumentOptions::active()
                          : codegen::InstrumentOptions::none();
        auto loaded = codegen::load_system(target, sys.model(), opts);
        std::unique_ptr<core::DebugSession> session;
        if (debug) {
            session = std::make_unique<core::DebugSession>(sys.model());
            session->attach(core::make_active_uart_transport(target));
        }
        target.start();
        state.ResumeTiming();
        target.run_for(rt::kSec);
        benchmark::DoNotOptimize(target.sim().now());
        state.PauseTiming();
        if (session) state.counters["commands"] = static_cast<double>(
            session->engine().stats().commands);
        benchmark::DoNotOptimize(loaded.actors.size());
        state.ResumeTiming();
    }
    state.SetLabel(debug ? "with-debugger" : "bare");
}
BENCHMARK(BM_Stage_Execution)->Args({4, 0})->Args({4, 1})->Args({16, 0})->Args({16, 1});

} // namespace

BENCHMARK_MAIN();
