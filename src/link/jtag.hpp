// IEEE 1149.1 (JTAG) test access port — the paper's passive debug channel.
//
// The paper proposes JTAG so the debugger can fetch real-time data from
// the target's RAM "passively", i.e. without instrumentation code and
// without consuming target CPU cycles. We model:
//   - the full 16-state TAP controller driven by TMS on each TCK edge,
//   - a 4-bit instruction register with IDCODE / ADDR / DATA / BYPASS,
//   - a memory-access data register: ADDR latches a byte address on
//     Update-DR; DATA captures RAM[addr] on Capture-DR (read) and writes
//     RAM[addr] on Update-DR (write),
//   - a host-side probe that sequences TMS/TDI vectors and accounts TCK
//     cycles, from which polling cost/latency derives (bench C4).
#pragma once

#include <cstdint>
#include <string>

#include "rt/memory.hpp"

namespace gmdf::link {

/// The 16 TAP controller states of IEEE 1149.1.
enum class TapState : std::uint8_t {
    TestLogicReset, RunTestIdle,
    SelectDrScan, CaptureDr, ShiftDr, Exit1Dr, PauseDr, Exit2Dr, UpdateDr,
    SelectIrScan, CaptureIr, ShiftIr, Exit1Ir, PauseIr, Exit2Ir, UpdateIr,
};

[[nodiscard]] const char* to_string(TapState s);

/// Next TAP state for one TCK rising edge with the given TMS level.
[[nodiscard]] TapState tap_next(TapState s, bool tms);

/// Instruction opcodes (4-bit IR).
enum class JtagInstr : std::uint8_t {
    Idcode = 0x2,
    Addr = 0x8,   ///< DR = 32-bit memory address register
    /// DR = 33-bit memory data register: bits 0..31 data, bit 32 is the
    /// write-enable. Capture-DR loads RAM[addr] (passive read); Update-DR
    /// stores to RAM[addr] only when the write-enable bit was shifted in,
    /// so plain reads never disturb target memory.
    Data = 0x9,
    Bypass = 0xF,
};

/// Device-side TAP: owns the controller state and shift registers and
/// fronts one node's MemoryMap. All memory accesses made through the TAP
/// are passive: they never touch the simulated CPU.
class JtagTap {
public:
    /// `mem` must outlive the TAP.
    explicit JtagTap(rt::MemoryMap& mem, std::uint32_t idcode = 0x0B73'D02F)
        : mem_(&mem), idcode_(idcode) {}

    /// One TCK rising edge: advances the controller, shifts TDI through
    /// the selected register; returns TDO (valid while shifting).
    bool clock(bool tms, bool tdi);

    [[nodiscard]] TapState state() const { return state_; }
    [[nodiscard]] std::uint8_t ir() const { return ir_; }
    [[nodiscard]] std::uint32_t address_reg() const { return addr_; }

    /// Total TCK edges applied (the probe's time accounting reads this).
    [[nodiscard]] std::uint64_t tck_count() const { return tck_; }

private:
    [[nodiscard]] std::size_t dr_length() const;
    void capture_dr();
    void update_dr();

    rt::MemoryMap* mem_;
    std::uint32_t idcode_;
    TapState state_ = TapState::TestLogicReset;
    std::uint8_t ir_ = static_cast<std::uint8_t>(JtagInstr::Idcode);
    std::uint8_t ir_shift_ = 0;
    std::uint64_t dr_shift_ = 0;
    std::uint32_t addr_ = 0;
    std::uint64_t tck_ = 0;
};

/// Host-side probe: sequences TMS/TDI vectors against a TAP and converts
/// TCK counts into wall time at the configured TCK frequency.
class JtagProbe {
public:
    /// `tap` must outlive the probe.
    JtagProbe(JtagTap& tap, double tck_hz = 1e6) : tap_(&tap), tck_hz_(tck_hz) {}

    /// Five TMS=1 clocks: guaranteed Test-Logic-Reset from any state.
    void reset();

    /// Loads a 4-bit instruction (ends in Run-Test/Idle).
    void load_ir(JtagInstr instr);

    /// Shifts `nbits` through the DR (LSB first), returning captured bits.
    std::uint64_t shift_dr(std::uint64_t tdi_bits, std::size_t nbits);

    /// Reads the device IDCODE.
    std::uint32_t read_idcode();

    /// Passive 32-bit memory read/write at a byte address.
    std::uint32_t read_word(std::uint32_t addr);
    void write_word(std::uint32_t addr, std::uint32_t value);

    /// Wall-clock cost of everything done so far, at tck_hz.
    [[nodiscard]] double elapsed_seconds() const {
        return static_cast<double>(tap_->tck_count()) / tck_hz_;
    }

    /// TCK cycles consumed by one read_word (measured, constant).
    [[nodiscard]] std::uint64_t cycles_per_read();

private:
    void set_address(std::uint32_t addr);

    JtagTap* tap_;
    double tck_hz_;
};

} // namespace gmdf::link
