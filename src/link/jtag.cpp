#include "link/jtag.hpp"

#include <stdexcept>

namespace gmdf::link {

const char* to_string(TapState s) {
    switch (s) {
    case TapState::TestLogicReset: return "Test-Logic-Reset";
    case TapState::RunTestIdle: return "Run-Test/Idle";
    case TapState::SelectDrScan: return "Select-DR-Scan";
    case TapState::CaptureDr: return "Capture-DR";
    case TapState::ShiftDr: return "Shift-DR";
    case TapState::Exit1Dr: return "Exit1-DR";
    case TapState::PauseDr: return "Pause-DR";
    case TapState::Exit2Dr: return "Exit2-DR";
    case TapState::UpdateDr: return "Update-DR";
    case TapState::SelectIrScan: return "Select-IR-Scan";
    case TapState::CaptureIr: return "Capture-IR";
    case TapState::ShiftIr: return "Shift-IR";
    case TapState::Exit1Ir: return "Exit1-IR";
    case TapState::PauseIr: return "Pause-IR";
    case TapState::Exit2Ir: return "Exit2-IR";
    case TapState::UpdateIr: return "Update-IR";
    }
    return "?";
}

TapState tap_next(TapState s, bool tms) {
    using T = TapState;
    switch (s) {
    case T::TestLogicReset: return tms ? T::TestLogicReset : T::RunTestIdle;
    case T::RunTestIdle: return tms ? T::SelectDrScan : T::RunTestIdle;
    case T::SelectDrScan: return tms ? T::SelectIrScan : T::CaptureDr;
    case T::CaptureDr: return tms ? T::Exit1Dr : T::ShiftDr;
    case T::ShiftDr: return tms ? T::Exit1Dr : T::ShiftDr;
    case T::Exit1Dr: return tms ? T::UpdateDr : T::PauseDr;
    case T::PauseDr: return tms ? T::Exit2Dr : T::PauseDr;
    case T::Exit2Dr: return tms ? T::UpdateDr : T::ShiftDr;
    case T::UpdateDr: return tms ? T::SelectDrScan : T::RunTestIdle;
    case T::SelectIrScan: return tms ? T::TestLogicReset : T::CaptureIr;
    case T::CaptureIr: return tms ? T::Exit1Ir : T::ShiftIr;
    case T::ShiftIr: return tms ? T::Exit1Ir : T::ShiftIr;
    case T::Exit1Ir: return tms ? T::UpdateIr : T::PauseIr;
    case T::PauseIr: return tms ? T::Exit2Ir : T::PauseIr;
    case T::Exit2Ir: return tms ? T::UpdateIr : T::ShiftIr;
    case T::UpdateIr: return tms ? T::SelectDrScan : T::RunTestIdle;
    }
    return T::TestLogicReset;
}

std::size_t JtagTap::dr_length() const {
    switch (static_cast<JtagInstr>(ir_)) {
    case JtagInstr::Idcode: return 32;
    case JtagInstr::Addr: return 32;
    case JtagInstr::Data: return 33; // 32 data bits + write-enable
    case JtagInstr::Bypass: return 1;
    }
    return 1; // unknown instruction behaves as BYPASS per the standard
}

void JtagTap::capture_dr() {
    switch (static_cast<JtagInstr>(ir_)) {
    case JtagInstr::Idcode: dr_shift_ = idcode_; break;
    case JtagInstr::Addr: dr_shift_ = addr_; break;
    case JtagInstr::Data: {
        // Passive RAM read; unmapped addresses capture as zero (a real
        // memory AP would return a bus fault flag).
        std::uint32_t word = 0;
        try {
            word = mem_->read_u32(addr_);
        } catch (const std::out_of_range&) {
            word = 0;
        }
        dr_shift_ = word;
        break;
    }
    case JtagInstr::Bypass: dr_shift_ = 0; break;
    default: dr_shift_ = 0;
    }
}

void JtagTap::update_dr() {
    switch (static_cast<JtagInstr>(ir_)) {
    case JtagInstr::Addr: addr_ = static_cast<std::uint32_t>(dr_shift_); break;
    case JtagInstr::Data: {
        if (((dr_shift_ >> 32) & 1) == 0) break; // read access: no write-back
        try {
            mem_->write_u32(addr_, static_cast<std::uint32_t>(dr_shift_));
        } catch (const std::out_of_range&) {
            // Writes to unmapped memory are ignored (bus fault on HW).
        }
        break;
    }
    default: break;
    }
}

bool JtagTap::clock(bool tms, bool tdi) {
    ++tck_;
    bool tdo = false;
    // TDO reflects the LSB of the selected shift register while shifting.
    if (state_ == TapState::ShiftDr) tdo = (dr_shift_ & 1) != 0;
    if (state_ == TapState::ShiftIr) tdo = (ir_shift_ & 1) != 0;

    // Shift on the same edge the state machine evaluates (TDI sampled on
    // rising TCK per the standard).
    if (state_ == TapState::ShiftDr) {
        std::size_t len = dr_length();
        dr_shift_ >>= 1;
        if (tdi) dr_shift_ |= (1ull << (len - 1));
    } else if (state_ == TapState::ShiftIr) {
        ir_shift_ = static_cast<std::uint8_t>(ir_shift_ >> 1);
        if (tdi) ir_shift_ |= 0x8;
    }

    TapState next = tap_next(state_, tms);

    if (next == TapState::TestLogicReset) ir_ = static_cast<std::uint8_t>(JtagInstr::Idcode);
    if (next == TapState::CaptureDr) capture_dr();
    if (next == TapState::CaptureIr) ir_shift_ = 0x5; // standard 01 pattern in LSBs
    if (next == TapState::UpdateDr) update_dr();
    if (next == TapState::UpdateIr) ir_ = static_cast<std::uint8_t>(ir_shift_ & 0xF);

    state_ = next;
    return tdo;
}

void JtagProbe::reset() {
    for (int i = 0; i < 5; ++i) tap_->clock(true, false);
    tap_->clock(false, false); // settle in Run-Test/Idle
}

void JtagProbe::load_ir(JtagInstr instr) {
    // From Run-Test/Idle: TMS 1,1,0,0 reaches Shift-IR.
    tap_->clock(true, false);
    tap_->clock(true, false);
    tap_->clock(false, false);
    tap_->clock(false, false);
    auto bits = static_cast<std::uint8_t>(instr);
    for (int i = 0; i < 4; ++i) {
        bool last = i == 3;
        tap_->clock(last, (bits >> i) & 1); // TMS=1 on the last bit exits Shift-IR
    }
    tap_->clock(true, false);  // Exit1-IR -> Update-IR
    tap_->clock(false, false); // -> Run-Test/Idle
}

std::uint64_t JtagProbe::shift_dr(std::uint64_t tdi_bits, std::size_t nbits) {
    if (nbits == 0 || nbits > 64) throw std::invalid_argument("shift_dr: 1..64 bits");
    // From Run-Test/Idle: TMS 1,0,0 reaches Shift-DR.
    tap_->clock(true, false);
    tap_->clock(false, false);
    tap_->clock(false, false);
    std::uint64_t captured = 0;
    for (std::size_t i = 0; i < nbits; ++i) {
        bool last = i + 1 == nbits;
        bool tdo = tap_->clock(last, (tdi_bits >> i) & 1);
        if (tdo) captured |= (1ull << i);
    }
    tap_->clock(true, false);  // Exit1-DR -> Update-DR
    tap_->clock(false, false); // -> Run-Test/Idle
    return captured;
}

std::uint32_t JtagProbe::read_idcode() {
    load_ir(JtagInstr::Idcode);
    return static_cast<std::uint32_t>(shift_dr(0, 32));
}

void JtagProbe::set_address(std::uint32_t addr) {
    load_ir(JtagInstr::Addr);
    shift_dr(addr, 32);
}

std::uint32_t JtagProbe::read_word(std::uint32_t addr) {
    set_address(addr);
    load_ir(JtagInstr::Data);
    return static_cast<std::uint32_t>(shift_dr(0, 33)); // write-enable stays 0
}

void JtagProbe::write_word(std::uint32_t addr, std::uint32_t value) {
    set_address(addr);
    load_ir(JtagInstr::Data);
    shift_dr((1ull << 32) | value, 33);
}

std::uint64_t JtagProbe::cycles_per_read() {
    std::uint64_t before = tap_->tck_count();
    (void)read_word(rt::MemoryMap::kBase);
    return tap_->tck_count() - before;
}

} // namespace gmdf::link
