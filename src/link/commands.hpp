// The debug command set exchanged between target and debugger host.
//
// In the paper's active solution, generated code emits commands through
// the command interface while executing; the GDM reacts to them. The host
// can also send control commands back (pause/resume/step), and the
// passive (JTAG) path synthesizes the same event commands host-side from
// observed memory changes, so the engine is transport-agnostic.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gmdf::link {

/// Command kinds. Target -> host kinds carry model-element ids; host ->
/// target kinds drive execution control.
enum class Cmd : std::uint8_t {
    // target -> host (events)
    Hello = 1,        ///< a: node id
    TaskStart = 2,    ///< a: actor element id
    TaskEnd = 3,      ///< a: actor element id
    StateEnter = 4,   ///< a: state machine element id, b: state element id
    Transition = 5,   ///< a: state machine element id, b: transition element id
    SignalUpdate = 6, ///< a: signal element id, value: new value
    ModeChange = 7,   ///< a: modal FB element id, b: mode element id
    // host -> target (control)
    Pause = 16,
    Resume = 17,
    Step = 18,
};

[[nodiscard]] const char* to_string(Cmd kind);

/// The target -> host event kinds, in enum-declaration order.
inline constexpr Cmd kEventCommandKinds[] = {
    Cmd::Hello,      Cmd::TaskStart,    Cmd::TaskEnd,    Cmd::StateEnter,
    Cmd::Transition, Cmd::SignalUpdate, Cmd::ModeChange,
};

/// Names of the event command kinds (to_string over kEventCommandKinds);
/// drives the GDM metamodel's command enum and the protocol help, so the
/// wire names exist in exactly one place.
[[nodiscard]] std::vector<std::string> event_command_names();

/// One debug command. `a` / `b` carry model object ids (meta::ObjectId
/// raw values, which fit 32 bits in practice and are range-checked on
/// encode); `value` carries a signal value as IEEE single.
struct Command {
    Cmd kind = Cmd::Hello;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    float value = 0.0f;

    friend bool operator==(const Command&, const Command&) = default;

    [[nodiscard]] std::string to_string() const;
};

/// Fixed 13-byte payload: kind(1) a(4,LE) b(4,LE) value(4,IEEE754 LE).
inline constexpr std::size_t kCommandPayloadSize = 13;

/// Encodes to the fixed payload layout (not yet framed for the wire).
[[nodiscard]] std::vector<std::uint8_t> encode_command(const Command& cmd);

/// Decodes a payload; nullopt when the size or kind is invalid.
[[nodiscard]] std::optional<Command> decode_command(std::span<const std::uint8_t> payload);

} // namespace gmdf::link
