// Byte-stream framing for the serial (RS-232) command interface.
//
// Wire format per frame:
//   FLAG (0x7E) | escaped( payload | crc16-ccitt(payload), big-endian )
//
// Escaping: 0x7E -> 0x7D 0x5E, 0x7D -> 0x7D 0x5D (HDLC-style). The decoder
// is a resynchronizing state machine: garbage between frames and corrupted
// frames are skipped and counted, valid frames are delivered in order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gmdf::link {

inline constexpr std::uint8_t kFlag = 0x7E;
inline constexpr std::uint8_t kEscape = 0x7D;
inline constexpr std::uint8_t kEscapeXor = 0x20;

/// CRC-16-CCITT (poly 0x1021, init 0xFFFF, no reflection).
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

/// Wraps a payload into one wire frame.
[[nodiscard]] std::vector<std::uint8_t> frame_payload(std::span<const std::uint8_t> payload);

/// Streaming decoder: feed arbitrary byte chunks, collect whole payloads.
class FrameDecoder {
public:
    /// Feeds bytes; every completed, CRC-valid payload is appended to the
    /// internal queue (drain with take_payloads).
    void feed(std::span<const std::uint8_t> bytes);

    /// Returns and clears the decoded payloads.
    [[nodiscard]] std::vector<std::vector<std::uint8_t>> take_payloads();

    /// Frames dropped due to CRC mismatch or malformed escaping.
    [[nodiscard]] std::uint64_t corrupt_frames() const { return corrupt_; }

    /// Bytes discarded while hunting for a frame flag.
    [[nodiscard]] std::uint64_t junk_bytes() const { return junk_; }

    /// Restores the decoder to a clean between-frames state with the
    /// given counter values (checkpoint restore).
    void reset_stream(std::uint64_t corrupt, std::uint64_t junk) {
        state_ = State::Hunting;
        current_.clear();
        ready_.clear();
        corrupt_ = corrupt;
        junk_ = junk;
    }

private:
    void end_frame();

    enum class State { Hunting, InFrame, InEscape };
    State state_ = State::Hunting;
    std::vector<std::uint8_t> current_;
    std::vector<std::vector<std::uint8_t>> ready_;
    std::uint64_t corrupt_ = 0;
    std::uint64_t junk_ = 0;
};

} // namespace gmdf::link
