#include "link/transport.hpp"

#include <bit>

#include "rt/target.hpp"

namespace gmdf::link {

namespace {

// The pause/resume/step triple over an rt::Target, shared by every
// transport fronting the simulated platform.
TargetControl make_target_control(rt::Target& target) {
    rt::Target* t = &target;
    return {[t] { t->pause(); },
            [t] { t->resume(); },
            [t](const StepFilter& f) { t->request_single_step(f.actor); }};
}

} // namespace

// ---- ActiveUartTransport ----------------------------------------------------

// The byte-sink callback captures `this`; unhook it before dying.
ActiveUartTransport::~ActiveUartTransport() { close(); }

void ActiveUartTransport::open(CommandSink& sink) {
    sink_ = &sink;
    target_->set_debug_sink([this](int, std::span<const std::uint8_t> bytes,
                                   rt::SimTime at) {
        decoder_.feed(bytes);
        if (sink_ == nullptr) return; // closed with bytes still on the wire
        for (const auto& payload : decoder_.take_payloads()) {
            auto cmd = decode_command(payload);
            if (cmd.has_value()) {
                ++commands_;
                sink_->deliver(*cmd, at);
            }
        }
    });
}

void ActiveUartTransport::poll(CommandSink& sink, rt::SimTime now) {
    // Delivery is push-style (byte callback above); drain anything a
    // caller fed the decoder out of band.
    for (const auto& payload : decoder_.take_payloads()) {
        auto cmd = decode_command(payload);
        if (cmd.has_value()) {
            ++commands_;
            sink.deliver(*cmd, now);
        }
    }
}

void ActiveUartTransport::close() {
    sink_ = nullptr;
    target_->set_debug_sink({});
}

TransportStats ActiveUartTransport::stats() const {
    TransportStats s;
    s.commands = commands_;
    s.corrupt_frames = decoder_.corrupt_frames();
    s.junk_bytes = decoder_.junk_bytes();
    return s;
}

TargetControl ActiveUartTransport::control() { return make_target_control(*target_); }

void ActiveUartTransport::restore_stats(const TransportStats& s) {
    commands_ = s.commands;
    decoder_.reset_stream(s.corrupt_frames, s.junk_bytes);
}

// ---- PassiveJtagTransport ---------------------------------------------------

PassiveJtagTransport::PassiveJtagTransport(rt::Target& target,
                                           std::vector<WatchSpec> specs,
                                           std::vector<Command> initial,
                                           rt::SimTime poll_period, double tck_hz)
    : target_(&target), specs_(std::move(specs)), initial_(std::move(initial)),
      period_(poll_period), tck_hz_(tck_hz) {}

PassiveJtagTransport::~PassiveJtagTransport() { close(); }

void PassiveJtagTransport::open(CommandSink& sink) {
    sink_ = &sink;
    if (!links_.empty()) { // reopen after close(): restart the pollers
        for (auto& ln : links_)
            if (ln->poller) ln->poller->start();
        return;
    }
    for (std::size_t n = 0; n < target_->node_count(); ++n) {
        rt::Node& node = target_->node(static_cast<int>(n));
        auto ln = std::make_unique<NodeLink>();
        for (const WatchSpec& spec : specs_) {
            if (spec.node != static_cast<int>(n)) continue;
            ln->by_addr[spec.addr] = &spec;
        }
        if (ln->by_addr.empty()) continue; // nothing observable on this node
        ln->tap = std::make_unique<JtagTap>(node.memory());
        ln->probe = std::make_unique<JtagProbe>(*ln->tap, tck_hz_);
        ln->poller = std::make_unique<WatchPoller>(target_->sim(), *ln->probe, period_);
        for (const auto& [addr, spec] : ln->by_addr) {
            (void)spec;
            ln->poller->watch(addr);
        }
        NodeLink* raw = ln.get();
        ln->poller->set_callback([this, raw](const WatchEvent& ev) {
            auto it = raw->by_addr.find(ev.addr);
            if (it == raw->by_addr.end()) return;
            synthesize(ev, *it->second);
        });
        ln->poller->start();
        links_.push_back(std::move(ln));
    }
    // Initial states are invisible to a change-based watch (the mirror
    // word is primed with the initial index), so they are synthesized
    // from the design model — "the model debugger goes immediately to its
    // initial state" (paper Fig. 6). A transformation fault in the
    // initial state is therefore only detectable actively.
    rt::SimTime now = target_->sim().now();
    for (const Command& cmd : initial_) {
        ++commands_;
        sink_->deliver(cmd, now);
    }
}

void PassiveJtagTransport::synthesize(const WatchEvent& ev, const WatchSpec& spec) {
    if (sink_ == nullptr) return;
    Command cmd;
    cmd.kind = spec.cmd;
    cmd.a = spec.element;
    if (spec.kind == WatchSpec::Kind::Indexed) {
        if (ev.new_value >= spec.indexed.size()) return; // corrupt index
        cmd.b = spec.indexed[ev.new_value];
    } else {
        cmd.value = std::bit_cast<float>(ev.new_value);
    }
    ++commands_;
    sink_->deliver(cmd, ev.at);
}

void PassiveJtagTransport::poll(CommandSink& sink, rt::SimTime now) {
    // Pollers are simulator-scheduled; nothing to pump host-side.
    (void)sink;
    (void)now;
}

void PassiveJtagTransport::close() {
    sink_ = nullptr;
    for (auto& ln : links_)
        if (ln->poller) ln->poller->stop();
}

TransportStats PassiveJtagTransport::stats() const {
    TransportStats s;
    s.commands = commands_;
    for (const auto& ln : links_) {
        if (!ln->poller) continue;
        s.polls += ln->poller->polls();
        s.watch_events += ln->poller->events();
    }
    return s;
}

TargetControl PassiveJtagTransport::control() { return make_target_control(*target_); }

// ---- ScriptedTransport ------------------------------------------------------

void ScriptedTransport::poll(CommandSink& sink, rt::SimTime now) {
    while (next_ < script_.size() && script_[next_].at <= now) {
        ++commands_;
        sink.deliver(script_[next_].cmd, script_[next_].at);
        ++next_;
    }
}

TransportStats ScriptedTransport::stats() const {
    TransportStats s;
    s.commands = commands_;
    return s;
}

TargetControl ScriptedTransport::control() {
    return {[this] { ++pauses_; },
            [this] { ++resumes_; },
            [this](const StepFilter& f) { steps_.push_back(f); }};
}

} // namespace gmdf::link
