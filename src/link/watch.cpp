#include "link/watch.hpp"

#include <cmath>

namespace gmdf::link {

WatchPoller::WatchPoller(rt::Simulator& sim, JtagProbe& probe, rt::SimTime poll_period)
    : sim_(&sim), probe_(&probe), period_(poll_period) {}

void WatchPoller::watch(std::uint32_t addr) { entries_.push_back({addr, 0, false}); }

void WatchPoller::start() {
    running_ = true;
    probe_->reset(); // known TAP state regardless of power-on history
    sim_->after(period_, [this] { poll_round(); });
}

void WatchPoller::poll_round() {
    if (!running_) return;
    ++polls_;
    double t0 = probe_->elapsed_seconds();
    for (auto& e : entries_) {
        std::uint32_t value = probe_->read_word(e.addr);
        // The read finishes after its wire time; stamp events accordingly.
        double t1 = probe_->elapsed_seconds();
        auto offset = static_cast<rt::SimTime>((t1 - t0) * static_cast<double>(rt::kSec));
        if (e.primed && value != e.last) {
            ++events_;
            if (callback_) callback_({e.addr, e.last, value, sim_->now() + offset});
        }
        e.last = value;
        e.primed = true;
    }
    last_round_cost_ = static_cast<rt::SimTime>((probe_->elapsed_seconds() - t0) *
                                                static_cast<double>(rt::kSec));
    sim_->after(period_, [this] { poll_round(); });
}

} // namespace gmdf::link
