// Host-side watchpoint poller for the passive (JTAG) debug path.
//
// The paper: "the user selects one or more monitored variables ... GDM
// will be notified and execute appropriate reactions when the selected
// monitored variable changes its value at runtime." The poller samples
// watched RAM words through the JTAG probe at a fixed period; every
// detected change is reported with the time it was observed. Polling
// consumes zero target CPU cycles but has finite detection latency and
// can alias (miss) changes faster than the poll period — bench C4
// quantifies both.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "link/jtag.hpp"
#include "rt/des.hpp"

namespace gmdf::link {

/// One observed change of a watched word.
struct WatchEvent {
    std::uint32_t addr = 0;
    std::uint32_t old_value = 0;
    std::uint32_t new_value = 0;
    rt::SimTime at = 0; ///< completion time of the read that saw the change
};

/// Periodically reads watched addresses via a JtagProbe and reports
/// changes. Reads are sequenced on the wire: each costs
/// cycles_per_read / tck_hz, so a long watch list stretches the sample
/// point of later entries within one poll round.
class WatchPoller {
public:
    using Callback = std::function<void(const WatchEvent&)>;

    /// All references must outlive the poller.
    WatchPoller(rt::Simulator& sim, JtagProbe& probe, rt::SimTime poll_period);

    /// Adds an address to the watch list (before or after start()). The
    /// first poll establishes the baseline; no event fires for it.
    void watch(std::uint32_t addr);

    void set_callback(Callback cb) { callback_ = std::move(cb); }

    /// Begins polling at now() + poll period.
    void start();

    /// Stops after the current round.
    void stop() { running_ = false; }

    [[nodiscard]] std::uint64_t polls() const { return polls_; }
    [[nodiscard]] std::uint64_t events() const { return events_; }

    /// Wire time the last completed poll round took (0 before any poll).
    [[nodiscard]] rt::SimTime round_cost() const { return last_round_cost_; }

private:
    void poll_round();

    struct Entry {
        std::uint32_t addr;
        std::uint32_t last = 0;
        bool primed = false;
    };

    rt::Simulator* sim_;
    JtagProbe* probe_;
    rt::SimTime period_;
    std::vector<Entry> entries_;
    Callback callback_;
    bool running_ = false;
    std::uint64_t polls_ = 0;
    std::uint64_t events_ = 0;
    rt::SimTime last_round_cost_ = 0;
};

} // namespace gmdf::link
