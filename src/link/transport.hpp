// Pluggable debug transports: the seam between the target link and the
// debugger engine.
//
// The paper's framework (Fig. 2) is a pipeline — target link -> debugger
// engine -> GDM animation/trace — but the link half comes in flavours:
// the active RS-232 command interface (framed UART traffic) and the
// passive JTAG watch (host-side synthesis from observed RAM changes).
// A Transport hides that difference behind one interface: it delivers
// decoded link::Commands into a CommandSink and exposes the execution
// control path (pause/resume/step) of whatever target it fronts. New
// probes (CAN, SWD, a replayed trace file, a network socket) plug in by
// implementing this interface; the engine never changes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "link/commands.hpp"
#include "link/framing.hpp"
#include "link/jtag.hpp"
#include "link/watch.hpp"
#include "rt/des.hpp"

namespace gmdf::rt {
class Target;
} // namespace gmdf::rt

namespace gmdf::link {

/// Receives the decoded command stream a transport produces. The
/// debugger engine implements this; tests can implement it directly.
class CommandSink {
public:
    virtual ~CommandSink() = default;
    virtual void deliver(const Command& cmd, rt::SimTime at) = 0;
};

/// Model-level step restriction: which actor's task consumes the next
/// single-step (empty: any task's next release).
struct StepFilter {
    std::string actor;

    [[nodiscard]] bool any() const { return actor.empty(); }
    [[nodiscard]] bool matches(std::string_view task_name) const {
        return actor.empty() || actor == task_name;
    }
};

/// Callbacks into the target platform (pause/resume/single-step). A
/// transport hands these to the engine so model-level breakpoints can
/// halt the execution they observe.
struct TargetControl {
    std::function<void()> pause;
    std::function<void()> resume;
    std::function<void(const StepFilter&)> step;
};

/// Link-level health counters, uniform across transport kinds. Counters
/// that do not apply to a given transport stay zero.
struct TransportStats {
    std::uint64_t commands = 0;       ///< commands delivered to the sink
    std::uint64_t corrupt_frames = 0; ///< framed links: CRC/escape drops
    std::uint64_t junk_bytes = 0;     ///< framed links: inter-frame garbage
    std::uint64_t polls = 0;          ///< polled links: completed rounds
    std::uint64_t watch_events = 0;   ///< polled links: observed changes
};

/// A debug link to one running target.
///
/// Lifecycle: constructed cold -> open(sink) wires it to the consumer and
/// starts delivery -> poll(sink, now) pumps any host-side work that is not
/// event-driven -> close() stops delivery (stats stay readable). open()
/// must be called before the target starts executing so no events are
/// missed; a transport is bound to at most one sink at a time.
class Transport {
public:
    Transport() = default;
    Transport(const Transport&) = delete;
    Transport& operator=(const Transport&) = delete;
    virtual ~Transport() = default;

    [[nodiscard]] virtual const char* name() const = 0;

    /// Binds the transport to `sink` and starts delivering commands.
    virtual void open(CommandSink& sink) = 0;

    /// Explicit host-side pump at time `now`: transports whose delivery
    /// is event-driven (UART byte callbacks, simulator-scheduled pollers)
    /// treat this as a cheap no-op; file/socket transports drain here.
    virtual void poll(CommandSink& sink, rt::SimTime now) = 0;

    /// Stops delivery. Safe to call more than once.
    virtual void close() = 0;

    [[nodiscard]] virtual TransportStats stats() const = 0;

    /// The execution-control path of the target this transport fronts.
    [[nodiscard]] virtual TargetControl control() = 0;

    /// Deterministic-replay capability (gmdf::replay). A transport that
    /// opts in guarantees that (a) its delivery is a pure function of
    /// target state — no internal buffering carried across deliveries —
    /// so checkpoint restore + re-execution reproduces its command
    /// stream, and (b) restore_stats() rewinds its counters. The default
    /// is false: rewind is refused with a typed error on sessions whose
    /// transports cannot make that promise (passive JTAG pollers hold
    /// host-side chain state; scripted feeds hold a cursor).
    [[nodiscard]] virtual bool replay_safe() const { return false; }

    /// Rewinds the transport's counters to snapshot values (replay-safe
    /// transports only; the default ignores the request).
    virtual void restore_stats(const TransportStats& s) { (void)s; }
};

/// Active command interface (paper's RS-232 solution): the target's debug
/// UART traffic is HDLC-style frames carrying encoded commands; this
/// transport owns the FrameDecoder and delivers every CRC-valid command.
class ActiveUartTransport final : public Transport {
public:
    /// `target` must outlive the transport.
    explicit ActiveUartTransport(rt::Target& target) : target_(&target) {}
    ~ActiveUartTransport() override;

    [[nodiscard]] const char* name() const override { return "active-uart"; }
    void open(CommandSink& sink) override;
    void poll(CommandSink& sink, rt::SimTime now) override;
    void close() override;
    [[nodiscard]] TransportStats stats() const override;
    [[nodiscard]] TargetControl control() override;

    /// UART batches arrive whole-frame-aligned (generated code emits
    /// complete frames per scan), so the decoder holds no state between
    /// deliveries and restore + re-execution replays the byte stream
    /// bit-for-bit.
    [[nodiscard]] bool replay_safe() const override { return true; }
    void restore_stats(const TransportStats& s) override;

    [[nodiscard]] const FrameDecoder& decoder() const { return decoder_; }

private:
    rt::Target* target_;
    FrameDecoder decoder_;
    CommandSink* sink_ = nullptr;
    std::uint64_t commands_ = 0;
};

/// One watched RAM word and the rule synthesizing a command from its
/// changes. Keeps PassiveJtagTransport independent of the code generator:
/// whoever loaded the target (codegen, a linker map, a hand-written
/// table) compiles its knowledge down to these specs.
struct WatchSpec {
    enum class Kind {
        Indexed, ///< word is an index into `indexed` (SM state / modal mode)
        Value,   ///< word is an IEEE-754 single (signal mirror)
    };
    int node = 0;
    std::uint32_t addr = 0;
    Kind kind = Kind::Indexed;
    /// Command kind to synthesize (StateEnter/ModeChange for Indexed,
    /// SignalUpdate for Value).
    Cmd cmd = Cmd::StateEnter;
    std::uint32_t element = 0;          ///< command `a`: the observed element id
    std::vector<std::uint32_t> indexed; ///< Indexed: word value -> command `b`
};

/// Passive JTAG watch (paper's zero-overhead solution): a JtagTap +
/// JtagProbe + WatchPoller per target node; observed memory changes are
/// synthesized into the same command stream the active interface carries.
/// `initial` commands are delivered once at open() — a change-based watch
/// cannot see initial states (the mirror word is primed), so the caller
/// synthesizes them from the design model.
class PassiveJtagTransport final : public Transport {
public:
    /// `target` must outlive the transport. `poll_period` bounds
    /// detection latency (bench C4).
    PassiveJtagTransport(rt::Target& target, std::vector<WatchSpec> specs,
                         std::vector<Command> initial, rt::SimTime poll_period,
                         double tck_hz = 1e6);
    ~PassiveJtagTransport() override;

    [[nodiscard]] const char* name() const override { return "passive-jtag"; }
    void open(CommandSink& sink) override;
    void poll(CommandSink& sink, rt::SimTime now) override;
    void close() override;
    [[nodiscard]] TransportStats stats() const override;
    [[nodiscard]] TargetControl control() override;

private:
    struct NodeLink {
        std::unique_ptr<JtagTap> tap;
        std::unique_ptr<JtagProbe> probe;
        std::unique_ptr<WatchPoller> poller;
        std::map<std::uint32_t, const WatchSpec*> by_addr;
    };

    void synthesize(const WatchEvent& ev, const WatchSpec& spec);

    rt::Target* target_;
    std::vector<WatchSpec> specs_;
    std::vector<Command> initial_;
    rt::SimTime period_;
    double tck_hz_;
    std::vector<std::unique_ptr<NodeLink>> links_;
    CommandSink* sink_ = nullptr;
    std::uint64_t commands_ = 0;
};

/// Scripted in-memory transport: delivers a fixed command sequence at
/// open()/poll(). Backs tests and makes trace-replay a first-class
/// transport (no target needed).
class ScriptedTransport final : public Transport {
public:
    struct Entry {
        Command cmd;
        rt::SimTime at = 0;
    };

    ScriptedTransport() = default;
    explicit ScriptedTransport(std::vector<Entry> script) : script_(std::move(script)) {}

    /// Appends one command to the script (before or between polls).
    void push(const Command& cmd, rt::SimTime at) { script_.push_back({cmd, at}); }

    [[nodiscard]] const char* name() const override { return "scripted"; }
    void open(CommandSink& sink) override { sink_ = &sink; }

    /// Delivers every scripted command with timestamp <= now, in order.
    void poll(CommandSink& sink, rt::SimTime now) override;

    void close() override { sink_ = nullptr; }
    [[nodiscard]] TransportStats stats() const override;

    /// No live target behind a script: control callbacks count invocations.
    [[nodiscard]] TargetControl control() override;

    [[nodiscard]] std::uint64_t pauses() const { return pauses_; }
    [[nodiscard]] std::uint64_t resumes() const { return resumes_; }
    [[nodiscard]] const std::vector<StepFilter>& steps() const { return steps_; }

private:
    std::vector<Entry> script_;
    std::size_t next_ = 0;
    CommandSink* sink_ = nullptr;
    std::uint64_t commands_ = 0;
    std::uint64_t pauses_ = 0;
    std::uint64_t resumes_ = 0;
    std::vector<StepFilter> steps_;
};

} // namespace gmdf::link
