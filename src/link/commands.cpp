#include "link/commands.hpp"

#include <bit>
#include <sstream>

namespace gmdf::link {

const char* to_string(Cmd kind) {
    switch (kind) {
    case Cmd::Hello: return "HELLO";
    case Cmd::TaskStart: return "TASK_START";
    case Cmd::TaskEnd: return "TASK_END";
    case Cmd::StateEnter: return "STATE_ENTER";
    case Cmd::Transition: return "TRANSITION";
    case Cmd::SignalUpdate: return "SIGNAL_UPDATE";
    case Cmd::ModeChange: return "MODE_CHANGE";
    case Cmd::Pause: return "PAUSE";
    case Cmd::Resume: return "RESUME";
    case Cmd::Step: return "STEP";
    }
    return "UNKNOWN";
}

std::vector<std::string> event_command_names() {
    std::vector<std::string> names;
    for (Cmd kind : kEventCommandKinds) names.emplace_back(to_string(kind));
    return names;
}

std::string Command::to_string() const {
    std::ostringstream os;
    os << link::to_string(kind) << "(a=" << a << ", b=" << b << ", v=" << value << ")";
    return os.str();
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
    return static_cast<std::uint32_t>(in[at]) |
           (static_cast<std::uint32_t>(in[at + 1]) << 8) |
           (static_cast<std::uint32_t>(in[at + 2]) << 16) |
           (static_cast<std::uint32_t>(in[at + 3]) << 24);
}

bool valid_kind(std::uint8_t k) {
    return (k >= 1 && k <= 7) || (k >= 16 && k <= 18);
}

} // namespace

std::vector<std::uint8_t> encode_command(const Command& cmd) {
    std::vector<std::uint8_t> out;
    out.reserve(kCommandPayloadSize);
    out.push_back(static_cast<std::uint8_t>(cmd.kind));
    put_u32(out, cmd.a);
    put_u32(out, cmd.b);
    put_u32(out, std::bit_cast<std::uint32_t>(cmd.value));
    return out;
}

std::optional<Command> decode_command(std::span<const std::uint8_t> payload) {
    if (payload.size() != kCommandPayloadSize) return std::nullopt;
    if (!valid_kind(payload[0])) return std::nullopt;
    Command cmd;
    cmd.kind = static_cast<Cmd>(payload[0]);
    cmd.a = get_u32(payload, 1);
    cmd.b = get_u32(payload, 5);
    cmd.value = std::bit_cast<float>(get_u32(payload, 9));
    return cmd;
}

} // namespace gmdf::link
