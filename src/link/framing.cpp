#include "link/framing.hpp"

#include <utility>

namespace gmdf::link {

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
    std::uint16_t crc = 0xFFFF;
    for (std::uint8_t byte : data) {
        crc ^= static_cast<std::uint16_t>(byte) << 8;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc & 0x8000) != 0 ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                                      : static_cast<std::uint16_t>(crc << 1);
    }
    return crc;
}

namespace {

void push_escaped(std::vector<std::uint8_t>& out, std::uint8_t byte) {
    if (byte == kFlag || byte == kEscape) {
        out.push_back(kEscape);
        out.push_back(byte ^ kEscapeXor);
    } else {
        out.push_back(byte);
    }
}

} // namespace

std::vector<std::uint8_t> frame_payload(std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> out;
    out.reserve(payload.size() + 5);
    out.push_back(kFlag);
    for (std::uint8_t b : payload) push_escaped(out, b);
    std::uint16_t crc = crc16_ccitt(payload);
    push_escaped(out, static_cast<std::uint8_t>(crc >> 8));
    push_escaped(out, static_cast<std::uint8_t>(crc & 0xFF));
    out.push_back(kFlag);
    return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
    for (std::uint8_t b : bytes) {
        switch (state_) {
        case State::Hunting:
            if (b == kFlag) {
                state_ = State::InFrame;
                current_.clear();
            } else {
                ++junk_;
            }
            break;
        case State::InFrame:
            if (b == kFlag) {
                // Either a frame terminator or (after back-to-back frames)
                // an opening flag; empty frames are silently skipped.
                end_frame();
                state_ = State::InFrame;
                current_.clear();
            } else if (b == kEscape) {
                state_ = State::InEscape;
            } else {
                current_.push_back(b);
            }
            break;
        case State::InEscape: {
            std::uint8_t unescaped = b ^ kEscapeXor;
            if (unescaped != kFlag && unescaped != kEscape) {
                // Invalid escape sequence: drop the frame, resync.
                ++corrupt_;
                state_ = State::Hunting;
            } else {
                current_.push_back(unescaped);
                state_ = State::InFrame;
            }
            break;
        }
        }
    }
}

void FrameDecoder::end_frame() {
    if (current_.empty()) return; // idle flags between frames
    if (current_.size() < 3) {
        ++corrupt_; // cannot even hold a CRC
        return;
    }
    std::size_t n = current_.size() - 2;
    std::uint16_t expected = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(current_[n]) << 8) | current_[n + 1]);
    std::span<const std::uint8_t> payload(current_.data(), n);
    if (crc16_ccitt(payload) != expected) {
        ++corrupt_;
        return;
    }
    ready_.emplace_back(payload.begin(), payload.end());
}

std::vector<std::vector<std::uint8_t>> FrameDecoder::take_payloads() {
    return std::exchange(ready_, {});
}

} // namespace gmdf::link
