// Seeded random model generator over the COMDES metamodel.
//
// The paper exercises the debugger on five hand-written models; campaigns
// need models by the hundred. generate_system() manufactures them:
// valid-by-construction FB networks, state machines, and signal mappings
// drawn deterministically from a seed, so every generated model loads,
// flattens, and runs clean — and the same seed always reproduces the
// same model byte-for-byte (meta::write_model equality).
//
// Construction recipe (all counts drawn from the GenSpec ranges):
//   - `actors` actors, actor i on node i % nodes, period from a small set;
//   - per actor one StateMachineFB: a ring of states (every state
//     reachable from the initial one), event-triggered ring transitions,
//     optionally guarded, plus a chord transition on larger machines —
//     so WrongTransitionTarget / WrongInitialState / NegateGuard always
//     have a surface to bite;
//   - per actor a chain of BasicFBs rooted at a nonzero const_ (the
//     FlipParamSign surface) feeding the SM's data pin through real
//     connections (the DropConnection surface);
//   - bool stimulus signals bound to the SM event pins, real monitor
//     signals latching the SM command output and the chain tail — value
//     faults stay visible as SIGNAL_UPDATE streams even when no state
//     sequence changes;
//   - scheduled environment stimuli toggling the event signals inside
//     the stimulus window.
#pragma once

#include <cstdint>
#include <vector>

#include "comdes/build.hpp"
#include "rt/des.hpp"

namespace gmdf::campaign {

/// Generation parameters. Counts are inclusive upper bounds where a
/// range is documented; the seed picks within the range.
struct GenSpec {
    int actors = 2;        ///< exact actor count (>= 1)
    int nodes = 1;         ///< target nodes; actor i runs on node i % nodes
    int max_states = 4;    ///< SM states drawn from [2, max_states]
    int max_basics = 3;    ///< basic-FB chain length drawn from [1, max_basics]
    bool guards = true;    ///< guard some transitions (NegateGuard surface)
    int stimuli = 6;       ///< scheduled environment stimuli
    std::int64_t stimulus_window_ms = 400; ///< stimuli land in (0, window]
};

/// One scheduled environment stimulus (model-level; the scenario layer
/// maps it onto the target's rewind-safe publish path).
struct GenStimulus {
    meta::ObjectId signal;
    double value = 0.0;
    rt::SimTime at = 0;
    int node = 0;
};

/// What generation produced beyond the model itself.
struct GeneratedSystem {
    std::vector<GenStimulus> stimuli;
    int nodes = 1; ///< distinct target nodes actually used
};

/// Populates `sys` (which must be freshly constructed) with a seeded
/// random system per `spec`. Deterministic: the same (spec, seed) yields
/// a byte-identical model and stimulus schedule.
GeneratedSystem generate_system(comdes::SystemBuilder& sys, const GenSpec& spec,
                                std::uint32_t seed);

} // namespace gmdf::campaign
