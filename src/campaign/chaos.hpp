// Chaos campaign: the fault-hunt idea turned on the debug service
// itself.
//
// Where campaign::run_campaign hunts faults injected into generated
// *models*, the chaos campaign injects faults into the *wire*: it
// stands up a real hub + net::Server, puts a seeded net::ChaosProxy in
// front, and drives N concurrent reconnect-enabled net::Channel clients
// through .gds workloads while the proxy tears frames, stalls bytes,
// corrupts them, and cuts connections mid-request.
//
// The campaign contract mirrors the model campaign's: every client ends
// in exactly one bucket and the hub survives —
//
//   clean     the workload completed with no errors and no redials
//             (it never met a fault);
//   resumed   the workload completed with no errors after at least one
//             automatic reconnect-and-reattach (the designed recovery);
//   degraded  some requests surfaced errors (a corrupted byte becomes a
//             structured protocol error by design — classified residue,
//             not a malfunction) but the client's final probe succeeded;
//   lost      the client could not re-establish a working channel
//             within its redial policy.
//
// Zero unclassified clients and a live hub (an in-process probe after
// the run answers coherently) is the pass condition gmdf_campaign
// --chaos enforces in CI. The fault schedule is seeded; wall-clock
// interleaving varies, bucket *membership* is what the contract pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/chaos.hpp"
#include "net/server.hpp"

namespace gmdf::campaign {

struct ChaosCampaignConfig {
    int clients = 8;          ///< concurrent channels (gmdf_campaign --pairs)
    int rounds = 6;           ///< run/query rounds per client workload
    std::uint32_t seed = 1;   ///< proxy fault schedule + client jitter seeds
    double fault_rate = 0.10; ///< per-chunk fault probability at the proxy
    int stall_ms = 3;
    /// Redial policy handed to every client channel.
    int reconnect_attempts = 8;
    int reconnect_base_delay_ms = 2;
};

enum class ChaosOutcome { Clean, Resumed, Degraded, Lost };

[[nodiscard]] const char* to_string(ChaosOutcome outcome);

struct ChaosClientResult {
    int index = 0;
    ChaosOutcome outcome = ChaosOutcome::Lost;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;     ///< error responses the workload observed
    std::uint64_t reconnects = 0;       ///< successful redial+reattach cycles
    std::int64_t reconnect_time_us = 0; ///< wall clock those cycles took
    std::string detail;                 ///< first error / failure account
};

struct ChaosReport {
    ChaosCampaignConfig config;
    std::vector<ChaosClientResult> clients;
    int clean = 0;
    int resumed = 0;
    int degraded = 0;
    int lost = 0;
    /// The hub answered an in-process `session stats` probe after the
    /// run — the "zero hub crashes" half of the contract.
    bool hub_alive = false;
    std::uint64_t total_reconnects = 0;
    std::int64_t reconnect_time_us = 0; ///< summed dial+handshake+reattach
    net::NetStats server_stats;
    net::ChaosStats proxy_stats;

    /// Clients that ended in no bucket. The contract is 0.
    [[nodiscard]] int unclassified() const {
        return static_cast<int>(clients.size()) - clean - resumed - degraded - lost;
    }
    [[nodiscard]] bool passed() const { return hub_alive && unclassified() == 0; }

    /// Stable human-readable summary (bucket counts, fault tallies, the
    /// hub verdict).
    [[nodiscard]] std::vector<std::string> summary_lines() const;
};

/// Runs a full chaos campaign in-process: hub + server + proxy + N
/// client threads, torn down before returning.
[[nodiscard]] ChaosReport run_chaos_campaign(const ChaosCampaignConfig& cfg);

} // namespace gmdf::campaign
