#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>

#include "hub/registry.hpp"
#include "hub/sharded.hpp"
#include "replay/compare.hpp"

namespace gmdf::campaign {

const char* to_string(Outcome outcome) {
    switch (outcome) {
    case Outcome::Skipped: return "skipped";
    case Outcome::Clean: return "clean";
    case Outcome::Localized: return "localized";
    }
    return "?";
}

const char* to_string(Method method) {
    switch (method) {
    case Method::None: return "none";
    case Method::Bisect: return "bisect";
    case Method::Differential: return "differential";
    }
    return "?";
}

MakeResult make_generated_scenario(const GenSpec& spec, std::uint32_t model_seed,
                                   std::optional<codegen::FaultKind> fault) {
    MakeResult out;
    std::string name = "gen_" + std::to_string(model_seed);
    if (fault.has_value()) name += std::string("_") + codegen::to_string(*fault);
    auto scenario = std::make_unique<proto::Scenario>(std::move(name));

    GeneratedSystem gen = generate_system(scenario->sys, spec, model_seed);
    if (gen.nodes > 1) scenario->target.set_network_latency(500 * rt::kUs);
    for (const GenStimulus& st : gen.stimuli)
        scenario->stimuli.push_back({st.signal, st.value, st.at, st.node});

    if (fault.has_value()) {
        scenario->mutated =
            std::make_unique<meta::Model>(scenario->sys.model().clone());
        auto report = codegen::inject_fault(*scenario->mutated, *fault, model_seed);
        if (!report.has_value()) return out; // no applicable element: skipped
        out.fault_description = report->description;
    }
    if (!proto::finalize_scenario(*scenario)) return MakeResult{};
    out.scenario = std::move(scenario);
    return out;
}

namespace {

/// One pair resident on the wave's fleet, awaiting classification.
struct LivePair {
    int index = 0;
    std::uint32_t model_seed = 0;
    codegen::FaultKind kind = codegen::FaultKind::WrongTransitionTarget;
    int clean_id = 0;
    int fault_id = 0;
    std::string fault_description;
};

PairResult classify(hub::SessionRegistry& registry, const LivePair& live) {
    PairResult r;
    r.index = live.index;
    r.model_seed = live.model_seed;
    r.kind = live.kind;

    auto* clean_entry = registry.find(live.clean_id);
    auto* fault_entry = registry.find(live.fault_id);
    const auto& clean_trace = clean_entry->session().trace().events();
    const auto& fault_trace = fault_entry->session().trace().events();

    // Structural faults trip the engine's design-model consistency
    // checker; hand those to replay::bisect for step-level localization.
    if (!fault_entry->session().divergences().empty()) {
        replay::BisectResult br = fault_entry->scenario->timeline->bisect();
        if (br.found) {
            r.outcome = Outcome::Localized;
            r.method = Method::Bisect;
            r.step = br.step;
            r.t = br.t;
            r.probes = br.probes;
            r.detail = br.reason;
            return r;
        }
        // Bisect's window can miss a divergence at the baseline instant
        // (e.g. a wrong initial state firing at t=0); the differential
        // twin comparison still pins it.
        if (auto diff = replay::first_trace_difference(clean_trace, fault_trace)) {
            r.outcome = Outcome::Localized;
            r.method = Method::Differential;
            r.step = diff->step;
            r.t = diff->t;
            r.detail = diff->reason;
            return r;
        }
        const core::Divergence& d = fault_entry->session().divergences().front();
        r.outcome = Outcome::Localized;
        r.method = Method::Differential;
        r.t = d.t;
        r.detail = d.message;
        return r;
    }

    // Value faults never alarm the checker — only the clean twin knows.
    if (auto diff = replay::first_trace_difference(clean_trace, fault_trace)) {
        r.outcome = Outcome::Localized;
        r.method = Method::Differential;
        r.step = diff->step;
        r.t = diff->t;
        r.detail = diff->reason;
        return r;
    }

    r.outcome = Outcome::Clean;
    return r;
}

/// fn(i) for i in [0, n), fanned out across up to `threads` workers
/// pulling indices from a shared counter. Serial (no threads spawned)
/// when threads <= 1 or there is only one index. Joins before
/// returning, so results written at distinct indices are ordered for
/// the caller. fn must only touch index-local state.
void parallel_for(int n, int threads, const std::function<void(int)>& fn) {
    const int workers = std::min(threads, n);
    if (workers <= 1) {
        for (int i = 0; i < n; ++i) fn(i);
        return;
    }
    std::atomic<int> next{0};
    auto drain = [&] {
        for (;;) {
            const int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers) - 1);
    for (int w = 1; w < workers; ++w) pool.emplace_back(drain);
    drain();
    for (std::thread& t : pool) t.join();
}

void tally(CampaignReport& report, const PairResult& r) {
    KindTally& k = report.by_kind[r.kind];
    ++k.pairs;
    switch (r.outcome) {
    case Outcome::Localized:
        ++k.localized;
        ++report.localized;
        if (r.method == Method::Bisect)
            ++k.bisect;
        else
            ++k.differential;
        break;
    case Outcome::Clean:
        ++k.clean;
        ++report.clean;
        break;
    case Outcome::Skipped:
        ++k.skipped;
        ++report.skipped;
        break;
    }
}

} // namespace

CampaignReport run_campaign(const CampaignConfig& cfg) {
    CampaignReport report;
    report.config = cfg;
    const std::vector<codegen::FaultKind> kinds = codegen::all_fault_kinds();
    const int pairs = cfg.pairs < 0 ? 0 : cfg.pairs;
    const int wave_size = cfg.wave < 1 ? 1 : cfg.wave;
    const int threads = cfg.threads < 1 ? 1 : cfg.threads;

    /// A wave pair between construction and adoption (pair-local, so
    /// construction fans out across threads).
    struct Prep {
        std::unique_ptr<proto::Scenario> clean;
        std::unique_ptr<proto::Scenario> faulted;
        std::string fault_description;
    };

    for (int wave_start = 0; wave_start < pairs; wave_start += wave_size) {
        const int wave_end = std::min(pairs, wave_start + wave_size);
        const int wave_n = wave_end - wave_start;
        hub::SessionRegistry registry;
        hub::ShardedScheduler scheduler;
        scheduler.set_threads(threads);
        // Wave sessions never interact, so slice granularity only costs
        // overhead here: one slice per checkpoint cadence gives the
        // faulted twins the same capture instants (and therefore the
        // same bisect windows) as the default 10 ms slicing, at a tenth
        // of the round-robin bookkeeping.
        if (cfg.checkpoint_every > 0) scheduler.set_budget(cfg.checkpoint_every);

        // Build every pair's twin scenarios in parallel: each pair is
        // derived from its own seed alone.
        std::vector<Prep> preps(static_cast<std::size_t>(wave_n));
        parallel_for(wave_n, threads, [&](int j) {
            const int i = wave_start + j;
            const std::uint32_t model_seed =
                cfg.seed * 100003u + static_cast<std::uint32_t>(i);
            const codegen::FaultKind kind =
                kinds[static_cast<std::size_t>(i) % kinds.size()];
            Prep& prep = preps[static_cast<std::size_t>(j)];
            MakeResult faulted = make_generated_scenario(cfg.gen, model_seed, kind);
            if (faulted.scenario == nullptr) return; // skipped
            MakeResult clean = make_generated_scenario(cfg.gen, model_seed, std::nullopt);

            // Baseline checkpoint at t=0 so bisect's search window covers
            // the whole trace, then cadence captures during the pump.
            faulted.scenario->timeline->set_auto_period(cfg.checkpoint_every);
            faulted.scenario->timeline->capture_now();
            prep.faulted = std::move(faulted.scenario);
            prep.clean = std::move(clean.scenario);
            prep.fault_description = std::move(faulted.fault_description);
        });

        // Adopt in pair order (stable session ids), then pump the whole
        // wave across the scheduler's shards.
        std::vector<LivePair> live;
        std::vector<PairResult> skipped;
        for (int j = 0; j < wave_n; ++j) {
            const int i = wave_start + j;
            const std::uint32_t model_seed =
                cfg.seed * 100003u + static_cast<std::uint32_t>(i);
            const codegen::FaultKind kind =
                kinds[static_cast<std::size_t>(i) % kinds.size()];
            Prep& prep = preps[static_cast<std::size_t>(j)];
            if (prep.faulted == nullptr) {
                PairResult r;
                r.index = i;
                r.model_seed = model_seed;
                r.kind = kind;
                r.outcome = Outcome::Skipped;
                r.detail = "no applicable element";
                skipped.push_back(r);
                continue;
            }
            const std::string tag = "p" + std::to_string(i);
            auto* clean_entry = registry.adopt(std::move(prep.clean), tag + "_clean");
            auto* fault_entry = registry.adopt(std::move(prep.faulted), tag + "_fault");
            live.push_back({i, model_seed, kind, clean_entry->id, fault_entry->id,
                            std::move(prep.fault_description)});
        }

        scheduler.pump(registry, cfg.run_for, [](hub::SessionRegistry::Entry& entry) {
            entry.scenario->timeline->maybe_capture();
        });

        // Classify in parallel (bisect re-executes only its own pair's
        // sessions), then assemble the report in pair order.
        std::vector<PairResult> results(live.size());
        parallel_for(static_cast<int>(live.size()), threads, [&](int j) {
            const LivePair& pair = live[static_cast<std::size_t>(j)];
            PairResult r = classify(registry, pair);
            if (r.detail.empty()) r.detail = pair.fault_description;
            results[static_cast<std::size_t>(j)] = std::move(r);
        });

        std::size_t next_skipped = 0;
        std::size_t next_live = 0;
        for (int j = 0; j < wave_n; ++j) {
            const int i = wave_start + j;
            PairResult r;
            if (next_skipped < skipped.size() && skipped[next_skipped].index == i)
                r = std::move(skipped[next_skipped++]);
            else
                r = std::move(results[next_live++]);
            report.pairs.push_back(std::move(r));
            tally(report, report.pairs.back());
        }
    }
    return report;
}

std::vector<std::string> CampaignReport::summary_lines() const {
    std::vector<std::string> lines;
    lines.push_back("pairs " + std::to_string(pairs.size()) + " seed " +
                    std::to_string(config.seed));
    for (codegen::FaultKind kind : codegen::all_fault_kinds()) {
        auto it = by_kind.find(kind);
        const KindTally k = it == by_kind.end() ? KindTally{} : it->second;
        lines.push_back(std::string(codegen::to_string(kind)) + ": localized " +
                        std::to_string(k.localized) + " (bisect " +
                        std::to_string(k.bisect) + ", diff " +
                        std::to_string(k.differential) + "), clean " +
                        std::to_string(k.clean) + ", skipped " +
                        std::to_string(k.skipped));
    }
    lines.push_back("total: localized " + std::to_string(localized) + ", clean " +
                    std::to_string(clean) + ", skipped " + std::to_string(skipped) +
                    ", unclassified " + std::to_string(unclassified()));
    return lines;
}

} // namespace gmdf::campaign
