#include "campaign/runner.hpp"

#include <algorithm>

#include "hub/registry.hpp"
#include "hub/scheduler.hpp"
#include "replay/compare.hpp"

namespace gmdf::campaign {

const char* to_string(Outcome outcome) {
    switch (outcome) {
    case Outcome::Skipped: return "skipped";
    case Outcome::Clean: return "clean";
    case Outcome::Localized: return "localized";
    }
    return "?";
}

const char* to_string(Method method) {
    switch (method) {
    case Method::None: return "none";
    case Method::Bisect: return "bisect";
    case Method::Differential: return "differential";
    }
    return "?";
}

MakeResult make_generated_scenario(const GenSpec& spec, std::uint32_t model_seed,
                                   std::optional<codegen::FaultKind> fault) {
    MakeResult out;
    std::string name = "gen_" + std::to_string(model_seed);
    if (fault.has_value()) name += std::string("_") + codegen::to_string(*fault);
    auto scenario = std::make_unique<proto::Scenario>(std::move(name));

    GeneratedSystem gen = generate_system(scenario->sys, spec, model_seed);
    if (gen.nodes > 1) scenario->target.set_network_latency(500 * rt::kUs);
    for (const GenStimulus& st : gen.stimuli)
        scenario->stimuli.push_back({st.signal, st.value, st.at, st.node});

    if (fault.has_value()) {
        scenario->mutated =
            std::make_unique<meta::Model>(scenario->sys.model().clone());
        auto report = codegen::inject_fault(*scenario->mutated, *fault, model_seed);
        if (!report.has_value()) return out; // no applicable element: skipped
        out.fault_description = report->description;
    }
    if (!proto::finalize_scenario(*scenario)) return MakeResult{};
    out.scenario = std::move(scenario);
    return out;
}

namespace {

/// One pair resident on the wave's fleet, awaiting classification.
struct LivePair {
    int index = 0;
    std::uint32_t model_seed = 0;
    codegen::FaultKind kind = codegen::FaultKind::WrongTransitionTarget;
    int clean_id = 0;
    int fault_id = 0;
    std::string fault_description;
};

PairResult classify(hub::SessionRegistry& registry, const LivePair& live) {
    PairResult r;
    r.index = live.index;
    r.model_seed = live.model_seed;
    r.kind = live.kind;

    auto* clean_entry = registry.find(live.clean_id);
    auto* fault_entry = registry.find(live.fault_id);
    const auto& clean_trace = clean_entry->session().trace().events();
    const auto& fault_trace = fault_entry->session().trace().events();

    // Structural faults trip the engine's design-model consistency
    // checker; hand those to replay::bisect for step-level localization.
    if (!fault_entry->session().divergences().empty()) {
        replay::BisectResult br = fault_entry->scenario->timeline->bisect();
        if (br.found) {
            r.outcome = Outcome::Localized;
            r.method = Method::Bisect;
            r.step = br.step;
            r.t = br.t;
            r.probes = br.probes;
            r.detail = br.reason;
            return r;
        }
        // Bisect's window can miss a divergence at the baseline instant
        // (e.g. a wrong initial state firing at t=0); the differential
        // twin comparison still pins it.
        if (auto diff = replay::first_trace_difference(clean_trace, fault_trace)) {
            r.outcome = Outcome::Localized;
            r.method = Method::Differential;
            r.step = diff->step;
            r.t = diff->t;
            r.detail = diff->reason;
            return r;
        }
        const core::Divergence& d = fault_entry->session().divergences().front();
        r.outcome = Outcome::Localized;
        r.method = Method::Differential;
        r.t = d.t;
        r.detail = d.message;
        return r;
    }

    // Value faults never alarm the checker — only the clean twin knows.
    if (auto diff = replay::first_trace_difference(clean_trace, fault_trace)) {
        r.outcome = Outcome::Localized;
        r.method = Method::Differential;
        r.step = diff->step;
        r.t = diff->t;
        r.detail = diff->reason;
        return r;
    }

    r.outcome = Outcome::Clean;
    return r;
}

void tally(CampaignReport& report, const PairResult& r) {
    KindTally& k = report.by_kind[r.kind];
    ++k.pairs;
    switch (r.outcome) {
    case Outcome::Localized:
        ++k.localized;
        ++report.localized;
        if (r.method == Method::Bisect)
            ++k.bisect;
        else
            ++k.differential;
        break;
    case Outcome::Clean:
        ++k.clean;
        ++report.clean;
        break;
    case Outcome::Skipped:
        ++k.skipped;
        ++report.skipped;
        break;
    }
}

} // namespace

CampaignReport run_campaign(const CampaignConfig& cfg) {
    CampaignReport report;
    report.config = cfg;
    const std::vector<codegen::FaultKind> kinds = codegen::all_fault_kinds();
    const int pairs = cfg.pairs < 0 ? 0 : cfg.pairs;
    const int wave_size = cfg.wave < 1 ? 1 : cfg.wave;

    for (int wave_start = 0; wave_start < pairs; wave_start += wave_size) {
        const int wave_end = std::min(pairs, wave_start + wave_size);
        hub::SessionRegistry registry;
        hub::PollScheduler scheduler;
        std::vector<LivePair> live;

        for (int i = wave_start; i < wave_end; ++i) {
            const std::uint32_t model_seed = cfg.seed * 100003u + static_cast<std::uint32_t>(i);
            const codegen::FaultKind kind =
                kinds[static_cast<std::size_t>(i) % kinds.size()];

            MakeResult faulted = make_generated_scenario(cfg.gen, model_seed, kind);
            if (faulted.scenario == nullptr) {
                PairResult r;
                r.index = i;
                r.model_seed = model_seed;
                r.kind = kind;
                r.outcome = Outcome::Skipped;
                r.detail = "no applicable element";
                report.pairs.push_back(r);
                tally(report, r);
                continue;
            }
            MakeResult clean = make_generated_scenario(cfg.gen, model_seed, std::nullopt);

            // Baseline checkpoint at t=0 so bisect's search window covers
            // the whole trace, then cadence captures during the pump.
            faulted.scenario->timeline->set_auto_period(cfg.checkpoint_every);
            faulted.scenario->timeline->capture_now();

            const std::string tag = "p" + std::to_string(i);
            auto* clean_entry = registry.adopt(std::move(clean.scenario), tag + "_clean");
            auto* fault_entry =
                registry.adopt(std::move(faulted.scenario), tag + "_fault");
            live.push_back({i, model_seed, kind, clean_entry->id, fault_entry->id,
                            std::move(faulted.fault_description)});
        }

        scheduler.pump(registry, cfg.run_for, [](hub::SessionRegistry::Entry& entry) {
            entry.scenario->timeline->maybe_capture();
        });

        for (const LivePair& pair : live) {
            PairResult r = classify(registry, pair);
            if (r.detail.empty()) r.detail = pair.fault_description;
            report.pairs.push_back(r);
            tally(report, r);
        }
    }
    return report;
}

std::vector<std::string> CampaignReport::summary_lines() const {
    std::vector<std::string> lines;
    lines.push_back("pairs " + std::to_string(pairs.size()) + " seed " +
                    std::to_string(config.seed));
    for (codegen::FaultKind kind : codegen::all_fault_kinds()) {
        auto it = by_kind.find(kind);
        const KindTally k = it == by_kind.end() ? KindTally{} : it->second;
        lines.push_back(std::string(codegen::to_string(kind)) + ": localized " +
                        std::to_string(k.localized) + " (bisect " +
                        std::to_string(k.bisect) + ", diff " +
                        std::to_string(k.differential) + "), clean " +
                        std::to_string(k.clean) + ", skipped " +
                        std::to_string(k.skipped));
    }
    lines.push_back("total: localized " + std::to_string(localized) + ", clean " +
                    std::to_string(clean) + ", skipped " + std::to_string(skipped) +
                    ", unclassified " + std::to_string(unclassified()));
    return lines;
}

} // namespace gmdf::campaign
