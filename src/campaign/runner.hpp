// Campaign runner: mass-produced fault-hunt sweeps.
//
// A campaign manufactures (model, injected-fault) pairs from the seeded
// generator, runs each pair as *twin* sessions on the hub fleet — one
// with the design's generated code, one generated from the mutated
// clone — and classifies every pair into exactly one bucket:
//
//   localized  a disagreement was found AND pinned to a step: by
//              replay::bisect when the engine's consistency checker
//              raised divergences (structural faults), else by the
//              differential twin-trace comparison (value faults that
//              never trip the checker, e.g. a flipped parameter sign);
//   clean      the fault was injected but produced no observable
//              difference in this run (masked fault);
//   skipped    inject_fault had no applicable element (e.g. negate-guard
//              on a model whose transitions drew no guards).
//
// Zero crashes and zero unclassified pairs is the campaign contract;
// gmdf_campaign's exit code enforces it in CI. Pairs run in waves on one
// SessionRegistry + ShardedScheduler per wave, so campaigns exercise the
// same fleet machinery the hub serves interactively; `threads` fans the
// wave's construction, pump, and classification across workers without
// changing the report.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/generator.hpp"
#include "codegen/faults.hpp"
#include "proto/scenarios.hpp"

namespace gmdf::campaign {

/// Campaign parameters. Everything is derived deterministically from
/// `seed`: pair i uses model seed `seed * 100003 + i` and cycles the
/// fault kinds, so a report is reproducible from (config, seed) alone.
struct CampaignConfig {
    GenSpec gen;
    int pairs = 200;
    std::uint32_t seed = 1;
    rt::SimTime run_for = 600 * rt::kMs;          ///< per-pair execution span
    rt::SimTime checkpoint_every = 100 * rt::kMs; ///< faulted twin's cadence
    int wave = 8; ///< pairs resident on the fleet at once
    /// Worker threads per wave: scenario construction fans out across
    /// pairs, the fleet pump shards across hub::ShardedScheduler, and
    /// classification (bisect / twin diff) fans out again. 1 (default)
    /// is fully serial. The report is identical at any thread count:
    /// every pair is seeded, built, executed, and classified in
    /// isolation, and results are assembled in pair order.
    int threads = 1;
};

/// Scenario construction outcome for one (model, fault) pair.
struct MakeResult {
    std::unique_ptr<proto::Scenario> scenario; ///< null when not applicable
    std::string fault_description;             ///< inject_fault's report
};

/// Builds a generated-model scenario, optionally with `fault` injected
/// into the codegen clone (victim picked from `model_seed`). A null
/// scenario with an empty description means the fault had no applicable
/// element — the campaign's `skipped` bucket.
[[nodiscard]] MakeResult make_generated_scenario(const GenSpec& spec,
                                                 std::uint32_t model_seed,
                                                 std::optional<codegen::FaultKind> fault);

/// How one campaigned pair ended. Exactly one of these, always.
enum class Outcome { Skipped, Clean, Localized };

/// What pinned a localized pair to its step.
enum class Method { None, Bisect, Differential };

[[nodiscard]] const char* to_string(Outcome outcome);
[[nodiscard]] const char* to_string(Method method);

struct PairResult {
    int index = 0;
    std::uint32_t model_seed = 0;
    codegen::FaultKind kind = codegen::FaultKind::WrongTransitionTarget;
    Outcome outcome = Outcome::Skipped;
    Method method = Method::None;
    std::size_t step = 0;       ///< localized trace step
    rt::SimTime t = 0;          ///< its simulated time
    std::size_t probes = 0;     ///< bisect re-executions (Bisect only)
    std::string detail;         ///< injected-fault / disagreement account
};

/// Per-fault-kind totals.
struct KindTally {
    int pairs = 0;
    int localized = 0;
    int bisect = 0;       ///< of localized: pinned by replay::bisect
    int differential = 0; ///< of localized: pinned by twin-trace diff
    int clean = 0;
    int skipped = 0;
};

struct CampaignReport {
    CampaignConfig config;
    std::vector<PairResult> pairs;
    std::map<codegen::FaultKind, KindTally> by_kind;
    int localized = 0;
    int clean = 0;
    int skipped = 0;

    /// Pairs that ended in no bucket. The campaign contract is 0.
    [[nodiscard]] int unclassified() const {
        return static_cast<int>(pairs.size()) - localized - clean - skipped;
    }

    /// Stable human-readable summary: one line per fault kind plus a
    /// total line (the hub's `campaign report` body and the golden
    /// campaign transcript).
    [[nodiscard]] std::vector<std::string> summary_lines() const;
};

/// Runs a full campaign. Deterministic for a given config.
[[nodiscard]] CampaignReport run_campaign(const CampaignConfig& cfg);

} // namespace gmdf::campaign
