#include "campaign/generator.hpp"

#include <random>
#include <string>

namespace gmdf::campaign {

namespace {

/// Uniform pick in [lo, hi] via modulo — unlike
/// std::uniform_int_distribution this is bit-stable across standard
/// libraries, which the same-seed-same-bytes guarantee depends on.
int pick(std::mt19937& rng, int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint32_t>(hi - lo + 1));
}

/// One unary basic-FB stage for the chain (name suffix, kind, params).
struct ChainStage {
    const char* kind;
    std::initializer_list<double> params;
};

} // namespace

GeneratedSystem generate_system(comdes::SystemBuilder& sys, const GenSpec& spec,
                                std::uint32_t seed) {
    std::mt19937 rng(seed ^ 0xC0FFEEu);
    GeneratedSystem out;

    const int actors = spec.actors < 1 ? 1 : spec.actors;
    const int nodes = spec.nodes < 1 ? 1 : spec.nodes;
    const int max_states = spec.max_states < 2 ? 2 : spec.max_states;
    const int max_basics = spec.max_basics < 1 ? 1 : spec.max_basics;

    static constexpr std::int64_t kPeriodsUs[] = {5'000, 10'000, 20'000};
    static constexpr const char* kGuards[] = {"!e1", "x < 1.5", "e0 > 0.5"};

    // Event-pin signals across all actors, for stimulus targeting.
    struct EventSignal {
        meta::ObjectId signal;
        int node = 0;
        bool high = false; ///< toggle state so stimuli actually change values
    };
    std::vector<EventSignal> event_signals;

    for (int a = 0; a < actors; ++a) {
        const std::string prefix = "a" + std::to_string(a);
        const int node = a % nodes;
        if (node + 1 > out.nodes) out.nodes = node + 1;

        auto go = sys.add_signal(prefix + "_go", "bool_");
        auto alt = sys.add_signal(prefix + "_alt", "bool_");
        auto cmd = sys.add_signal(prefix + "_cmd");
        auto mon = sys.add_signal(prefix + "_mon");
        event_signals.push_back({go, node, false});
        event_signals.push_back({alt, node, false});

        auto actor = sys.add_actor(prefix, kPeriodsUs[pick(rng, 0, 2)], 0, node);
        auto sm = actor.add_sm(prefix + "_sm", {"e0", "e1", "x"}, {"cmd"});

        // State ring: s0 -> s1 -> ... -> s0, every state reachable.
        const int states = pick(rng, 2, max_states);
        std::vector<meta::ObjectId> sids;
        for (int s = 0; s < states; ++s)
            sids.push_back(
                sm.add_state("s" + std::to_string(s), {{"cmd", std::to_string(s)}}));
        for (int s = 0; s < states; ++s) {
            std::string event = pick(rng, 0, 1) == 0 ? "e0" : "e1";
            std::string guard;
            if (spec.guards && pick(rng, 0, 2) == 0) guard = kGuards[pick(rng, 0, 2)];
            sm.add_transition(sids[s], sids[(s + 1) % states], event, guard);
        }
        // A chord on larger machines: a second way through the ring.
        if (states >= 3) {
            int from = pick(rng, 0, states - 1);
            int to = pick(rng, 0, states - 1);
            if (to == from) to = (to + 1) % states;
            sm.add_transition(sids[from], sids[to], "e1",
                              spec.guards ? "e0 > 0.5" : "", {}, 1);
        }

        // Basic chain: nonzero const_ root, unary stages, tail wired into
        // the SM's data pin. Real connections throughout.
        static constexpr ChainStage kStages[] = {
            {"gain_", {2.0}},      {"offset_", {0.25}}, {"limit_", {-4.0, 4.0}},
            {"abs_", {}},          {"lowpass_", {0.05}}, {"ratelimit_", {8.0}},
            {"deadband_", {0.125}},
        };
        static constexpr double kConsts[] = {0.5, 1.0, 2.0};
        const int basics = pick(rng, 1, max_basics);
        meta::ObjectId prev =
            actor.add_basic(prefix + "_b0", "const_", {kConsts[pick(rng, 0, 2)]});
        meta::ObjectId tail = prev;
        for (int b = 1; b < basics; ++b) {
            const ChainStage& stage = kStages[pick(rng, 0, 6)];
            meta::ObjectId fb = actor.add_basic(prefix + "_b" + std::to_string(b),
                                                stage.kind, stage.params);
            actor.connect(prev, "out", fb, "in");
            prev = fb;
            tail = fb;
        }
        actor.connect(tail, "out", sm.sm_id(), "x");

        actor.bind_input(go, sm.sm_id(), "e0");
        actor.bind_input(alt, sm.sm_id(), "e1");
        actor.bind_output(sm.sm_id(), "cmd", cmd);
        actor.bind_output(tail, "out", mon);
    }

    // Environment stimuli: toggle event signals inside the window.
    const std::int64_t window_ms =
        spec.stimulus_window_ms < 10 ? 10 : spec.stimulus_window_ms;
    for (int i = 0; i < spec.stimuli; ++i) {
        EventSignal& target =
            event_signals[pick(rng, 0, static_cast<int>(event_signals.size()) - 1)];
        target.high = !target.high;
        out.stimuli.push_back({target.signal, target.high ? 1.0 : 0.0,
                               pick(rng, 10, static_cast<int>(window_ms)) * rt::kMs,
                               target.node});
    }
    return out;
}

} // namespace gmdf::campaign
