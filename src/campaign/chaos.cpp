#include "campaign/chaos.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "hub/controller.hpp"
#include "net/client.hpp"
#include "proto/script.hpp"

namespace gmdf::campaign {

const char* to_string(ChaosOutcome outcome) {
    switch (outcome) {
    case ChaosOutcome::Clean: return "clean";
    case ChaosOutcome::Resumed: return "resumed";
    case ChaosOutcome::Degraded: return "degraded";
    case ChaosOutcome::Lost: return "lost";
    }
    return "?";
}

namespace {

/// The per-client .gds workload. Sessions are pre-opened on the hub (so
/// a proxy cut cannot destroy them — the server only releases sessions
/// a connection itself opened), and the attach is what the channel's
/// redial path re-plays after every reconnect.
std::string workload_script(int index, int rounds) {
    std::ostringstream s;
    s << "let me c" << index << "\n"
      << "attach $me\n"
      << "repeat " << rounds << "\n"
      << "run 20\n"
      << "query signal led\n"
      << "end\n"
      << "query stats\n";
    return s.str();
}

void drive_client(net::Channel* channel, const ChaosCampaignConfig& cfg, int index,
                  ChaosClientResult& result) {
    std::istringstream in(workload_script(index, cfg.rounds));
    std::ostringstream transcript; // per-client; inspected only on failure
    proto::ScriptResult script = proto::run_script(*channel, in, transcript);
    result.requests = script.requests;
    result.errors = script.errors;
    if (!script.diagnostics.empty()) {
        const proto::ScriptDiagnostic& d = script.diagnostics.front();
        result.detail = "line " + std::to_string(d.line) + ": " + d.message;
    }

    // The verdict probe: one more round trip on the same channel. A
    // channel that can still answer (redialing first if its socket died
    // mid-workload) is recovered; one that cannot is lost.
    proto::Response probe = channel->execute_line("session list");
    (void)channel->drain_event_lines();

    result.reconnects = channel->reconnects();
    result.reconnect_time_us = channel->reconnect_time_us();
    if (!probe.ok()) {
        result.outcome = ChaosOutcome::Lost;
        if (result.detail.empty()) result.detail = "final probe: " + probe.message;
    } else if (result.errors > 0) {
        result.outcome = ChaosOutcome::Degraded;
    } else if (result.reconnects > 0) {
        result.outcome = ChaosOutcome::Resumed;
    } else {
        result.outcome = ChaosOutcome::Clean;
    }
}

} // namespace

ChaosReport run_chaos_campaign(const ChaosCampaignConfig& cfg) {
    ChaosReport report;
    report.config = cfg;
    report.clients.resize(static_cast<std::size_t>(cfg.clients));

    hub::HubController hub;
    for (int i = 0; i < cfg.clients; ++i) {
        if (hub.open("blinker", "c" + std::to_string(i)) == nullptr) return report;
    }

    // The idle timeout is load-bearing, not decorative: a corrupted
    // length prefix can leave a connection wedged mid-frame — both ends
    // alive, both waiting for bytes that will never come. The server's
    // idle close turns that wedge into an EOF the client's redial
    // machinery classifies and recovers from.
    net::ServerConfig server_cfg;
    server_cfg.idle_timeout_ms = 250;
    net::Server server(hub, server_cfg);
    std::string error;
    if (!server.start(&error)) return report;
    std::atomic<bool> stop_server{false};
    std::thread server_thread([&] { server.run(stop_server); });

    net::ChaosConfig proxy_cfg;
    proxy_cfg.upstream_port = server.port();
    proxy_cfg.seed = cfg.seed;
    proxy_cfg.fault_rate = cfg.fault_rate;
    proxy_cfg.stall_ms = cfg.stall_ms;
    net::ChaosProxy proxy(proxy_cfg);
    std::atomic<bool> stop_proxy{false};
    std::thread proxy_thread;
    if (proxy.start(&error)) {
        proxy_thread = std::thread([&] { proxy.run(stop_proxy); });

        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(cfg.clients));
        for (int i = 0; i < cfg.clients; ++i) {
            workers.emplace_back([&, i] {
                ChaosClientResult& result = report.clients[static_cast<std::size_t>(i)];
                result.index = i;

                // The initial dial runs through the proxy too, so it can
                // be faulted like anything else: retry it the same
                // number of times the channel itself would redial.
                std::unique_ptr<net::Channel> channel;
                std::string dial_error;
                for (int attempt = 0; attempt < cfg.reconnect_attempts; ++attempt) {
                    channel = net::Channel::connect("127.0.0.1", proxy.port(),
                                                    &dial_error);
                    if (channel != nullptr) break;
                    std::this_thread::sleep_for(std::chrono::milliseconds(
                        cfg.reconnect_base_delay_ms * (attempt + 1)));
                }
                if (channel == nullptr) {
                    result.outcome = ChaosOutcome::Lost;
                    result.detail = "dial: " + dial_error;
                    return;
                }
                net::Channel::ReconnectConfig rc;
                rc.max_attempts = cfg.reconnect_attempts;
                rc.base_delay_ms = cfg.reconnect_base_delay_ms;
                rc.max_delay_ms = 250;
                // Decorrelate the clients' backoff without decoupling
                // the run from its seed.
                rc.jitter_seed = cfg.seed * 2654435761u + static_cast<std::uint32_t>(i);
                channel->set_reconnect(rc);

                drive_client(channel.get(), cfg, i, result);
            });
        }
        for (std::thread& t : workers) t.join();

        stop_proxy.store(true);
        proxy_thread.join();
        proxy.stop();
    }

    stop_server.store(true);
    server_thread.join();
    report.server_stats = server.stats();
    server.stop(); // uninstalls the hub hooks before the direct probe

    // "Zero hub crashes", affirmatively: the hub must still answer a
    // coherent in-process request after everything the wire did to it.
    report.hub_alive = hub.execute_line("session stats").ok();

    for (const ChaosClientResult& c : report.clients) {
        switch (c.outcome) {
        case ChaosOutcome::Clean: ++report.clean; break;
        case ChaosOutcome::Resumed: ++report.resumed; break;
        case ChaosOutcome::Degraded: ++report.degraded; break;
        case ChaosOutcome::Lost: ++report.lost; break;
        }
        report.total_reconnects += c.reconnects;
        report.reconnect_time_us += c.reconnect_time_us;
    }
    report.proxy_stats = proxy.stats();
    return report;
}

std::vector<std::string> ChaosReport::summary_lines() const {
    std::vector<std::string> lines;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "chaos campaign: %d clients seed %u fault rate %.1f%%",
                  config.clients, config.seed, config.fault_rate * 100.0);
    lines.emplace_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "  clients: clean %d resumed %d degraded %d lost %d unclassified %d",
                  clean, resumed, degraded, lost, unclassified());
    lines.emplace_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "  proxy: %llu chunks, %llu torn %llu stalled %llu cut %llu corrupted",
                  static_cast<unsigned long long>(proxy_stats.chunks),
                  static_cast<unsigned long long>(proxy_stats.torn),
                  static_cast<unsigned long long>(proxy_stats.stalls),
                  static_cast<unsigned long long>(proxy_stats.disconnects),
                  static_cast<unsigned long long>(proxy_stats.corruptions));
    lines.emplace_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "  server: %llu requests, %llu connections accepted, "
                  "%llu protocol errors, 0 crashes",
                  static_cast<unsigned long long>(server_stats.requests),
                  static_cast<unsigned long long>(server_stats.accepted),
                  static_cast<unsigned long long>(server_stats.protocol_errors));
    lines.emplace_back(buf);
    if (total_reconnects > 0) {
        std::snprintf(buf, sizeof(buf), "  reconnects: %llu (mean resume %lld us)",
                      static_cast<unsigned long long>(total_reconnects),
                      static_cast<long long>(reconnect_time_us /
                                             static_cast<std::int64_t>(total_reconnects)));
        lines.emplace_back(buf);
    }
    lines.emplace_back(std::string("  hub: ") +
                       (hub_alive ? "alive and coherent" : "UNRESPONSIVE"));
    lines.emplace_back(std::string("chaos contract ") + (passed() ? "PASS" : "FAIL"));
    return lines;
}

} // namespace gmdf::campaign
