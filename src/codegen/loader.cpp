#include "codegen/loader.hpp"

#include <algorithm>
#include <stdexcept>

#include "comdes/metamodel.hpp"
#include "link/framing.hpp"

namespace gmdf::codegen {

using meta::MObject;
using meta::Model;
using meta::ObjectId;

ProgramBody::ProgramBody(SubProgram program, ObjectId actor_id, InstrumentOptions opts)
    : program_(std::move(program)), actor_(actor_id), opts_(opts) {}

void ProgramBody::add_element_memory(ElementMemory em) {
    elements_.push_back(std::move(em));
}

void ProgramBody::set_output_elements(std::vector<ObjectId> ids) { out_ids_ = std::move(ids); }

void ProgramBody::reset() {
    program_.reset();
    last_out_.clear();
    first_scan_ = true;
}

void ProgramBody::save_state(std::vector<double>& out) const {
    program_.save_state(out);
    out.push_back(static_cast<double>(last_out_.size()));
    out.insert(out.end(), last_out_.begin(), last_out_.end());
    out.push_back(first_scan_ ? 1.0 : 0.0);
}

std::size_t ProgramBody::load_state(std::span<const double> in) {
    std::size_t used = program_.load_state(in);
    if (in.size() < used + 1) throw std::runtime_error("body state truncated");
    auto n_out = static_cast<std::size_t>(in[used]);
    ++used;
    if (in.size() < used + n_out + 1)
        throw std::runtime_error("body state truncated");
    last_out_.assign(in.begin() + static_cast<std::ptrdiff_t>(used),
                     in.begin() + static_cast<std::ptrdiff_t>(used + n_out));
    used += n_out;
    first_scan_ = in[used] != 0.0;
    return used + 1;
}

void ProgramBody::emit(const link::Command& cmd) {
    if (ctx_ == nullptr) return;
    auto frame = link::frame_payload(link::encode_command(cmd));
    ctx_->send_debug(frame);
}

void ProgramBody::mirror(ObjectId element, ObjectId value_id) {
    if (!opts_.memory_mirror || ctx_ == nullptr) return;
    for (const ElementMemory& em : elements_) {
        if (!(em.element == element)) continue;
        auto it = std::find(em.indexed.begin(), em.indexed.end(), value_id);
        if (it != em.indexed.end())
            ctx_->poke_u32(em.addr,
                           static_cast<std::uint32_t>(it - em.indexed.begin()));
        return;
    }
}

std::uint64_t ProgramBody::execute(rt::TaskContext& ctx) {
    ctx_ = &ctx;
    if (opts_.task_events)
        emit({link::Cmd::TaskStart, static_cast<std::uint32_t>(actor_.raw), 0, 0.0f});

    std::uint64_t cycles = program_.run(ctx.inputs(), ctx.outputs(), ctx.dt());

    if (opts_.signal_events && !out_ids_.empty()) {
        auto out = ctx.outputs();
        if (last_out_.size() != out.size()) last_out_.assign(out.size(), 0.0);
        for (std::size_t i = 0; i < out.size() && i < out_ids_.size(); ++i) {
            if (first_scan_ || out[i] != last_out_[i])
                emit({link::Cmd::SignalUpdate, static_cast<std::uint32_t>(out_ids_[i].raw), 0,
                      static_cast<float>(out[i])});
            last_out_[i] = out[i];
        }
    }
    first_scan_ = false;

    if (opts_.task_events)
        emit({link::Cmd::TaskEnd, static_cast<std::uint32_t>(actor_.raw), 0, 0.0f});
    ctx_ = nullptr;
    return cycles;
}

void ProgramBody::on_state_enter(ObjectId sm, ObjectId state) {
    if (opts_.sm_events)
        emit({link::Cmd::StateEnter, static_cast<std::uint32_t>(sm.raw),
              static_cast<std::uint32_t>(state.raw), 0.0f});
    mirror(sm, state);
}

void ProgramBody::on_transition(ObjectId sm, ObjectId transition) {
    if (opts_.sm_events)
        emit({link::Cmd::Transition, static_cast<std::uint32_t>(sm.raw),
              static_cast<std::uint32_t>(transition.raw), 0.0f});
}

void ProgramBody::on_mode_change(ObjectId modal_fb, ObjectId mode) {
    if (opts_.sm_events)
        emit({link::Cmd::ModeChange, static_cast<std::uint32_t>(modal_fb.raw),
              static_cast<std::uint32_t>(mode.raw), 0.0f});
    mirror(modal_fb, mode);
}

namespace {

/// Collects every SM and modal FB reachable inside a network (any depth)
/// and produces their RAM placement descriptors.
void collect_observables(const Model& model, const MObject& network,
                         const std::string& prefix, rt::MemoryMap& mem,
                         std::vector<ElementMemory>& out) {
    const auto& c = comdes::comdes_metamodel();
    for (ObjectId b_id : network.refs("blocks")) {
        const MObject& b = model.at(b_id);
        std::string name = prefix + b.name();
        if (b.meta_class().is_subtype_of(*c.sm_fb)) {
            ElementMemory em;
            em.element = b_id;
            em.addr = mem.alloc(name + "_state");
            for (ObjectId s_id : b.refs("states")) em.indexed.push_back(s_id);
            out.push_back(std::move(em));
        } else if (b.meta_class().is_subtype_of(*c.modal_fb)) {
            ElementMemory em;
            em.element = b_id;
            em.addr = mem.alloc(name + "_mode");
            for (ObjectId m_id : b.refs("modes")) {
                em.indexed.push_back(m_id);
                collect_observables(model, model.at(model.at(m_id).ref("network")),
                                    name + ".", mem, out);
            }
            out.push_back(std::move(em));
        } else if (b.meta_class().is_subtype_of(*c.composite_fb)) {
            collect_observables(model, model.at(b.ref("network")), name + ".", mem, out);
        }
    }
}

} // namespace

LoadedSystem load_system(rt::Target& target, const Model& model,
                         const InstrumentOptions& opts) {
    const auto& c = comdes::comdes_metamodel();
    auto systems = model.all_of(*c.system);
    if (systems.size() != 1)
        throw std::invalid_argument("load_system expects exactly one System object");
    const MObject& system = *systems[0];

    LoadedSystem loaded;

    // Signals.
    for (ObjectId s_id : system.refs("signals")) {
        const MObject& s = model.at(s_id);
        int idx = target.signals().add(s.name(), s.attr("init").as_number());
        loaded.signal_ids.push_back(s_id);
        loaded.signal_index[s_id.raw] = idx;
    }

    // Nodes: one per distinct `node` attribute value (0..max).
    std::int64_t max_node = 0;
    for (ObjectId a_id : system.refs("actors"))
        max_node = std::max(max_node, model.at(a_id).attr("node").as_int());
    while (target.node_count() <= static_cast<std::size_t>(max_node)) target.add_node();

    // Mirror every signal on every node (each node has a local replica).
    if (opts.memory_mirror) {
        for (std::size_t n = 0; n < target.node_count(); ++n) {
            rt::Node& node = target.node(static_cast<int>(n));
            for (std::size_t i = 0; i < loaded.signal_ids.size(); ++i) {
                const std::string& name =
                    target.signals().name(static_cast<int>(i));
                auto addr = node.memory().alloc(LoadedSystem::signal_symbol(name));
                node.map_signal_memory(static_cast<int>(i), addr);
            }
        }
    }

    // Actors.
    for (ObjectId a_id : system.refs("actors")) {
        const MObject& actor = model.at(a_id);
        auto node_id = static_cast<int>(actor.attr("node").as_int());
        rt::Node& node = target.node(node_id);

        // The observer is the body itself; flatten with its address, then
        // install the program (two-phase because flatten needs the pointer).
        auto body = std::make_unique<ProgramBody>(SubProgram{}, a_id, opts);
        body->set_program(flatten_actor(model, actor, body.get()));

        LoadedActor la;
        la.actor = a_id;
        la.name = actor.name();
        la.node = node_id;
        collect_observables(model, model.at(actor.ref("network")), actor.name() + ".",
                            node.memory(), la.elements);
        for (const ElementMemory& em : la.elements) body->add_element_memory(em);

        rt::TaskConfig cfg;
        cfg.name = actor.name();
        cfg.period = actor.attr("period_us").as_int() * rt::kUs;
        cfg.deadline = actor.attr("deadline_us").as_int() * rt::kUs;
        cfg.priority = static_cast<int>(actor.attr("priority").as_int());
        std::vector<ObjectId> out_ids;
        for (ObjectId b_id : actor.refs("inputs")) {
            ObjectId sig = model.at(b_id).ref("signal");
            cfg.input_signals.push_back(loaded.signal_index.at(sig.raw));
        }
        for (ObjectId b_id : actor.refs("outputs")) {
            ObjectId sig = model.at(b_id).ref("signal");
            cfg.output_signals.push_back(loaded.signal_index.at(sig.raw));
            out_ids.push_back(sig);
        }
        body->set_output_elements(std::move(out_ids));

        node.add_task(std::move(cfg), std::move(body));
        loaded.actors.push_back(std::move(la));
    }

    return loaded;
}

} // namespace gmdf::codegen
