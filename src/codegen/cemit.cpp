#include "codegen/cemit.hpp"

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "comdes/fblib.hpp"
#include "comdes/metamodel.hpp"
#include "expr/parser.hpp"

namespace gmdf::codegen {

namespace {

using meta::MObject;
using meta::Model;
using meta::ObjectId;

std::string sanitize(const std::string& name) {
    std::string out;
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out = "x" + out;
    return out;
}

std::string fmt(double v) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    std::string s = os.str();
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    return s;
}

/// Emits an expression AST as a double-valued C expression with variable
/// substitution. Comparisons/logicals produce 1.0/0.0 like the evaluator.
std::string expr_to_c(const expr::Expr& e, const std::map<std::string, std::string>& vars) {
    using namespace expr;
    return std::visit(
        [&](const auto& n) -> std::string {
            using T = std::decay_t<decltype(n)>;
            if constexpr (std::is_same_v<T, IntLit>) {
                return fmt(static_cast<double>(n.value));
            } else if constexpr (std::is_same_v<T, RealLit>) {
                return fmt(n.value);
            } else if constexpr (std::is_same_v<T, BoolLit>) {
                return n.value ? "1.0" : "0.0";
            } else if constexpr (std::is_same_v<T, VarRef>) {
                auto it = vars.find(n.name);
                if (it == vars.end())
                    throw std::invalid_argument("expression references unknown pin '" +
                                                n.name + "'");
                return it->second;
            } else if constexpr (std::is_same_v<T, Unary>) {
                std::string a = expr_to_c(*n.operand, vars);
                if (n.op == UnOp::Neg) return "(-" + a + ")";
                return "((" + a + ") == 0.0 ? 1.0 : 0.0)";
            } else if constexpr (std::is_same_v<T, Binary>) {
                std::string a = expr_to_c(*n.lhs, vars);
                std::string b = expr_to_c(*n.rhs, vars);
                switch (n.op) {
                case BinOp::Add: return "(" + a + " + " + b + ")";
                case BinOp::Sub: return "(" + a + " - " + b + ")";
                case BinOp::Mul: return "(" + a + " * " + b + ")";
                case BinOp::Div: return "(" + a + " / " + b + ")";
                case BinOp::Mod: return "fmod(" + a + ", " + b + ")";
                case BinOp::Lt: return "((" + a + " < " + b + ") ? 1.0 : 0.0)";
                case BinOp::Le: return "((" + a + " <= " + b + ") ? 1.0 : 0.0)";
                case BinOp::Gt: return "((" + a + " > " + b + ") ? 1.0 : 0.0)";
                case BinOp::Ge: return "((" + a + " >= " + b + ") ? 1.0 : 0.0)";
                case BinOp::Eq: return "((" + a + " == " + b + ") ? 1.0 : 0.0)";
                case BinOp::Ne: return "((" + a + " != " + b + ") ? 1.0 : 0.0)";
                case BinOp::And:
                    return "(((" + a + ") != 0.0 && (" + b + ") != 0.0) ? 1.0 : 0.0)";
                case BinOp::Or:
                    return "(((" + a + ") != 0.0 || (" + b + ") != 0.0) ? 1.0 : 0.0)";
                }
                return "0.0";
            } else if constexpr (std::is_same_v<T, Conditional>) {
                return "(((" + expr_to_c(*n.cond, vars) + ") != 0.0) ? (" +
                       expr_to_c(*n.then_e, vars) + ") : (" + expr_to_c(*n.else_e, vars) +
                       "))";
            } else if constexpr (std::is_same_v<T, Call>) {
                std::string args;
                for (std::size_t i = 0; i < n.args.size(); ++i) {
                    if (i != 0) args += ", ";
                    args += expr_to_c(*n.args[i], vars);
                }
                return "gmdf_" + n.fn + "(" + args + ")";
            }
        },
        e.node);
}

/// Accumulates the three sections of the translation unit.
struct EmitContext {
    const Model* model = nullptr;
    std::ostringstream fields;  // struct members
    std::ostringstream init;    // init statements (state struct is zeroed first)
    std::ostringstream step;    // step statements
    std::ostringstream mirrors; // volatile mirror variable definitions
    int indent = 1;

    std::string pad() const { return std::string(static_cast<std::size_t>(indent) * 4, ' '); }
    void line(const std::string& s) { step << pad() << s << "\n"; }
    void field(const std::string& s) { fields << "    " << s << "\n"; }
    void init_line(const std::string& s) { init << "    " << s << "\n"; }
};

/// Per-(fb,pin) C expressions for input pins.
using PinExprs = std::map<std::pair<std::string, std::string>, std::string>;

std::vector<double> params_of(const MObject& fb) {
    std::vector<double> out;
    const meta::Value& v = fb.attr("params");
    if (v.is_list())
        for (const auto& e : v.as_list()) out.push_back(e.as_number());
    return out;
}

std::vector<std::string> string_list(const meta::Value& v) {
    std::vector<std::string> out;
    if (v.is_list())
        for (const auto& e : v.as_list()) out.push_back(e.as_string());
    return out;
}

void emit_network(EmitContext& ctx, const MObject& network, const std::string& prefix,
                  const PinExprs& ext_inputs,
                  std::map<std::pair<std::string, std::string>, std::string>& out_nets);

/// Emits one basic FB; `x(i)` is the C expression of input pin i.
void emit_basic(EmitContext& ctx, const MObject& fb, const std::string& id,
                const std::vector<std::string>& in, const std::string& net) {
    const std::string& kind = fb.attr("kind").as_string();
    auto p = params_of(fb);
    auto st = [&](const char* suffix) { return "st->" + id + suffix; };

    if (kind == "const_") ctx.line(net + " = " + fmt(p[0]) + ";");
    else if (kind == "gain_") ctx.line(net + " = " + fmt(p[0]) + " * " + in[0] + ";");
    else if (kind == "offset_") ctx.line(net + " = " + fmt(p[0]) + " + " + in[0] + ";");
    else if (kind == "add_") ctx.line(net + " = " + in[0] + " + " + in[1] + ";");
    else if (kind == "sub_") ctx.line(net + " = " + in[0] + " - " + in[1] + ";");
    else if (kind == "mul_") ctx.line(net + " = " + in[0] + " * " + in[1] + ";");
    else if (kind == "div_")
        ctx.line(net + " = (" + in[1] + " == 0.0) ? 0.0 : " + in[0] + " / " + in[1] + ";");
    else if (kind == "min_") ctx.line(net + " = gmdf_min(" + in[0] + ", " + in[1] + ");");
    else if (kind == "max_") ctx.line(net + " = gmdf_max(" + in[0] + ", " + in[1] + ");");
    else if (kind == "abs_") ctx.line(net + " = fabs(" + in[0] + ");");
    else if (kind == "not_") ctx.line(net + " = (" + in[0] + " > 0.5) ? 0.0 : 1.0;");
    else if (kind == "and_")
        ctx.line(net + " = (" + in[0] + " > 0.5 && " + in[1] + " > 0.5) ? 1.0 : 0.0;");
    else if (kind == "or_")
        ctx.line(net + " = (" + in[0] + " > 0.5 || " + in[1] + " > 0.5) ? 1.0 : 0.0;");
    else if (kind == "xor_")
        ctx.line(net + " = ((" + in[0] + " > 0.5) != (" + in[1] + " > 0.5)) ? 1.0 : 0.0;");
    else if (kind == "gt_") ctx.line(net + " = (" + in[0] + " > " + fmt(p[0]) + ") ? 1.0 : 0.0;");
    else if (kind == "ge_") ctx.line(net + " = (" + in[0] + " >= " + fmt(p[0]) + ") ? 1.0 : 0.0;");
    else if (kind == "lt_") ctx.line(net + " = (" + in[0] + " < " + fmt(p[0]) + ") ? 1.0 : 0.0;");
    else if (kind == "le_") ctx.line(net + " = (" + in[0] + " <= " + fmt(p[0]) + ") ? 1.0 : 0.0;");
    else if (kind == "hysteresis_") {
        ctx.field("double " + id + "y;");
        ctx.line("if (" + in[0] + " >= " + fmt(p[1]) + ") " + st("y") + " = 1.0;");
        ctx.line("else if (" + in[0] + " <= " + fmt(p[0]) + ") " + st("y") + " = 0.0;");
        ctx.line(net + " = " + st("y") + ";");
    } else if (kind == "limit_")
        ctx.line(net + " = gmdf_clamp(" + in[0] + ", " + fmt(p[0]) + ", " + fmt(p[1]) + ");");
    else if (kind == "deadband_")
        ctx.line(net + " = (fabs(" + in[0] + ") <= " + fmt(p[0]) + ") ? 0.0 : " + in[0] + ";");
    else if (kind == "integrator_") {
        ctx.field("double " + id + "y;");
        ctx.init_line("st->" + id + "y = " + fmt(p[1]) + ";");
        ctx.line(st("y") + " += " + fmt(p[0]) + " * " + in[0] + " * dt;");
        ctx.line(net + " = " + st("y") + ";");
    } else if (kind == "derivative_") {
        ctx.field("double " + id + "prev; int " + id + "init;");
        ctx.line(net + " = (" + st("init") + " && dt > 0.0) ? " + fmt(p[0]) + " * (" + in[0] +
                 " - " + st("prev") + ") / dt : 0.0;");
        ctx.line(st("prev") + " = " + in[0] + "; " + st("init") + " = 1;");
    } else if (kind == "lowpass_") {
        ctx.field("double " + id + "y; int " + id + "init;");
        ctx.line("if (!" + st("init") + ") { " + st("y") + " = " + in[0] + "; " + st("init") +
                 " = 1; }");
        ctx.line(st("y") + " += (" + in[0] + " - " + st("y") + ") * (dt / (" + fmt(p[0]) +
                 " + dt));");
        ctx.line(net + " = " + st("y") + ";");
    } else if (kind == "ratelimit_") {
        ctx.field("double " + id + "y; int " + id + "init;");
        ctx.line("if (!" + st("init") + ") { " + st("y") + " = " + in[0] + "; " + st("init") +
                 " = 1; }");
        ctx.line(st("y") + " += gmdf_clamp(" + in[0] + " - " + st("y") + ", -(" + fmt(p[0]) +
                 " * dt), " + fmt(p[0]) + " * dt);");
        ctx.line(net + " = " + st("y") + ";");
    } else if (kind == "delay_") {
        // Handled two-phase by emit_network (publish/capture around the scan).
        throw std::logic_error("delay_ must not reach emit_basic");
    } else if (kind == "counter_") {
        ctx.field("double " + id + "y; double " + id + "prev;");
        ctx.line("if (" + in[1] + " > 0.5) " + st("y") + " = 0.0;");
        ctx.line("else if (" + in[0] + " > 0.5 && " + st("prev") + " <= 0.5) " + st("y") +
                 " = gmdf_min(" + st("y") + " + 1.0, " + fmt(p[0]) + ");");
        ctx.line(st("prev") + " = " + in[0] + ";");
        ctx.line(net + " = " + st("y") + ";");
    } else if (kind == "sample_hold_") {
        ctx.field("double " + id + "y;");
        ctx.line("if (" + in[1] + " > 0.5) " + st("y") + " = " + in[0] + ";");
        ctx.line(net + " = " + st("y") + ";");
    } else if (kind == "pid_") {
        ctx.field("double " + id + "integ; double " + id + "prev; int " + id + "init;");
        ctx.line("{");
        ++ctx.indent;
        ctx.line("double e = " + in[0] + " - " + in[1] + ";");
        ctx.line("double d = (" + st("init") + " && dt > 0.0) ? (e - " + st("prev") +
                 ") / dt : 0.0;");
        ctx.line(st("prev") + " = e; " + st("init") + " = 1;");
        ctx.line("double cand = " + fmt(p[0]) + " * e + " + fmt(p[1]) + " * (" + st("integ") +
                 " + e * dt) + " + fmt(p[2]) + " * d;");
        ctx.line("if (cand > " + fmt(p[3]) + " && cand < " + fmt(p[4]) + ") " + st("integ") +
                 " += e * dt;");
        ctx.line(net + " = gmdf_clamp(" + fmt(p[0]) + " * e + " + fmt(p[1]) + " * " +
                 st("integ") + " + " + fmt(p[2]) + " * d, " + fmt(p[3]) + ", " + fmt(p[4]) +
                 ");");
        --ctx.indent;
        ctx.line("}");
    } else if (kind == "expression_") {
        auto ast = expr::parse(fb.attr("expr").as_string());
        auto vars = expr::free_variables(*ast);
        std::map<std::string, std::string> sub;
        for (std::size_t i = 0; i < vars.size(); ++i) sub[vars[i]] = in[i];
        ctx.line(net + " = " + expr_to_c(*ast, sub) + ";");
    } else {
        throw std::invalid_argument("cemit: unknown BasicFB kind '" + kind + "'");
    }
}

void emit_sm(EmitContext& ctx, const Model& model, const MObject& fb, const std::string& id,
             const comdes::FBPins& pins, const std::vector<std::string>& in,
             const std::vector<std::string>& nets) {
    // Held output fields + state + entered flag.
    auto outs = string_list(fb.attr("outputs"));
    std::map<std::string, std::string> action_targets;
    for (const auto& o : outs) {
        ctx.field("double " + id + "o_" + sanitize(o) + ";");
        action_targets[o] = "st->" + id + "o_" + sanitize(o);
    }
    ctx.field("int " + id + "state; int " + id + "entered;");
    ctx.mirrors << "volatile unsigned " << id << "state_mirror;\n";

    // Input substitution map for guards/actions.
    std::map<std::string, std::string> sub;
    for (std::size_t i = 0; i < pins.inputs.size(); ++i) sub[pins.inputs[i]] = in[i];

    // State indexing follows the model's states order (same as the kernel).
    std::vector<ObjectId> states;
    std::map<std::uint64_t, std::size_t> index_of;
    for (ObjectId s_id : fb.refs("states")) {
        index_of[s_id.raw] = states.size();
        states.push_back(s_id);
    }
    std::size_t initial = index_of.at(fb.ref("initial").raw);
    ctx.init_line("st->" + id + "state = " + std::to_string(initial) + ";");

    auto emit_actions = [&](const MObject& owner, const char* ref) {
        for (ObjectId a_id : owner.refs(ref)) {
            const MObject& a = model.at(a_id);
            auto ast = expr::parse(a.attr("expr").as_string());
            ctx.line(action_targets.at(a.attr("target").as_string()) + " = " +
                     expr_to_c(*ast, sub) + ";");
        }
    };
    auto emit_enter = [&](std::size_t idx) {
        const MObject& s = model.at(states[idx]);
        emit_actions(s, "entry_actions");
        ctx.line("st->" + id + "state = " + std::to_string(idx) + ";");
        ctx.line("st->" + id + "state_mirror_sync = 1;");
        ctx.line("GMDF_EMIT(4 /*STATE_ENTER*/, " + std::to_string(fb.id().raw) + "u, " +
                 std::to_string(states[idx].raw) + "u, 0.0f);");
    };
    ctx.field("int " + id + "state_mirror_sync;");

    ctx.line("if (!st->" + id + "entered) {");
    ++ctx.indent;
    ctx.line("st->" + id + "entered = 1;");
    emit_enter(initial);
    --ctx.indent;
    ctx.line("}");

    // Transitions grouped by source state, ordered by priority then model
    // order (matching SmKernel's stable sort).
    struct T {
        const MObject* t;
        std::int64_t priority;
        std::size_t order;
    };
    std::map<std::size_t, std::vector<T>> by_from;
    std::size_t order = 0;
    for (ObjectId t_id : fb.refs("transitions")) {
        const MObject& t = model.at(t_id);
        by_from[index_of.at(t.ref("from").raw)].push_back(
            {&t, t.attr("priority").as_int(), order++});
    }
    for (auto& [from, ts] : by_from)
        std::stable_sort(ts.begin(), ts.end(),
                         [](const T& a, const T& b) { return a.priority < b.priority; });

    ctx.line("switch (st->" + id + "state) {");
    for (std::size_t si = 0; si < states.size(); ++si) {
        ctx.line("case " + std::to_string(si) + ": {");
        ++ctx.indent;
        auto it = by_from.find(si);
        if (it != by_from.end()) {
            for (const T& entry : it->second) {
                const MObject& t = *entry.t;
                std::string cond;
                const meta::Value& ev = t.attr("event");
                if (ev.is_string() && !ev.as_string().empty())
                    cond = "(" + sub.at(ev.as_string()) + " > 0.5)";
                const meta::Value& g = t.attr("guard");
                if (g.is_string() && !g.as_string().empty()) {
                    auto ast = expr::parse(g.as_string());
                    std::string gc = "((" + expr_to_c(*ast, sub) + ") != 0.0)";
                    cond = cond.empty() ? gc : cond + " && " + gc;
                }
                if (cond.empty()) cond = "1";
                ctx.line("if (" + cond + ") {");
                ++ctx.indent;
                emit_actions(t, "actions");
                ctx.line("GMDF_EMIT(5 /*TRANSITION*/, " + std::to_string(fb.id().raw) +
                         "u, " + std::to_string(t.id().raw) + "u, 0.0f);");
                emit_enter(index_of.at(t.ref("to").raw));
                ctx.line("break;");
                --ctx.indent;
                ctx.line("}");
            }
        }
        ctx.line("break;");
        --ctx.indent;
        ctx.line("}");
    }
    ctx.line("}");
    ctx.line("if (st->" + id + "state_mirror_sync) { " + id + "state_mirror = (unsigned)st->" +
             id + "state; st->" + id + "state_mirror_sync = 0; }");

    // Copy held outputs (and the implicit state pin) onto the nets.
    for (std::size_t i = 0; i < outs.size(); ++i)
        ctx.line(nets[i] + " = st->" + id + "o_" + sanitize(outs[i]) + ";");
    ctx.line(nets[outs.size()] + " = (double)st->" + id + "state;");
}

void emit_network(EmitContext& ctx, const MObject& network, const std::string& prefix,
                  const PinExprs& ext_inputs,
                  std::map<std::pair<std::string, std::string>, std::string>& out_nets) {
    const auto& c = comdes::comdes_metamodel();
    const Model& model = *ctx.model;

    struct B {
        const MObject* obj;
        comdes::FBPins pins;
        bool is_delay;
    };
    std::vector<B> blocks;
    std::map<std::string, std::size_t> by_name;
    for (ObjectId b_id : network.refs("blocks")) {
        const MObject& b = model.at(b_id);
        bool is_delay = b.meta_class().is_subtype_of(*c.basic_fb) &&
                        b.attr("kind").as_string() == "delay_";
        by_name[b.name()] = blocks.size();
        blocks.push_back({&b, comdes::pins_of(model, b), is_delay});
    }

    // Net fields for every output pin of every block.
    auto net_name = [&](std::size_t bi, int pin) {
        return "st->n_" + prefix + sanitize(blocks[bi].obj->name()) + "_" +
               sanitize(blocks[bi].pins.outputs[static_cast<std::size_t>(pin)]);
    };
    for (std::size_t bi = 0; bi < blocks.size(); ++bi)
        for (std::size_t pi = 0; pi < blocks[bi].pins.outputs.size(); ++pi)
            ctx.field("double n_" + prefix + sanitize(blocks[bi].obj->name()) + "_" +
                      sanitize(blocks[bi].pins.outputs[pi]) + ";");

    // Input pin expressions: connections first, then external bindings.
    std::map<std::pair<std::size_t, std::string>, std::string> in_expr;
    std::map<std::size_t, std::set<std::size_t>> edges;
    for (ObjectId conn_id : network.refs("connections")) {
        const MObject& conn = model.at(conn_id);
        std::size_t fi = by_name.at(model.at(conn.ref("from")).name());
        std::size_t ti = by_name.at(model.at(conn.ref("to")).name());
        int fp = blocks[fi].pins.output_index(conn.attr("from_pin").as_string());
        in_expr[{ti, conn.attr("to_pin").as_string()}] = net_name(fi, fp);
        if (!blocks[fi].is_delay) edges[fi].insert(ti);
    }
    for (const auto& [key, expr_str] : ext_inputs) {
        auto it = by_name.find(key.first);
        if (it == by_name.end())
            throw std::invalid_argument("cemit: unknown block '" + key.first + "'");
        in_expr[{it->second, key.second}] = expr_str;
    }

    // Topological order (Kahn), matching the flattener.
    std::vector<int> indeg(blocks.size(), 0);
    for (const auto& [f, tos] : edges)
        for (auto t : tos) ++indeg[t];
    std::vector<std::size_t> frontier, order;
    for (std::size_t i = 0; i < blocks.size(); ++i)
        if (indeg[i] == 0) frontier.push_back(i);
    while (!frontier.empty()) {
        std::size_t cur = frontier.front();
        frontier.erase(frontier.begin());
        order.push_back(cur);
        for (auto nx : edges[cur])
            if (--indeg[nx] == 0) frontier.push_back(nx);
    }
    if (order.size() != blocks.size())
        throw std::invalid_argument("cemit: combinational cycle");

    // Phase A: delay blocks publish last scan's sample before anything
    // else reads their nets (unit-delay semantics; see SubProgram::run).
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        if (!blocks[bi].is_delay) continue;
        const MObject& b = *blocks[bi].obj;
        std::string id = prefix + sanitize(b.name()) + "_";
        int n = std::max(1, static_cast<int>(params_of(b)[0]));
        ctx.field("double " + id + "buf[" + std::to_string(n) + "]; int " + id + "h;");
        ctx.line("/* delay_ " + b.name() + ": publish */");
        ctx.line(net_name(bi, 0) + " = st->" + id + "buf[st->" + id + "h];");
    }

    for (std::size_t bi : order) {
        if (blocks[bi].is_delay) continue;
        const B& blk = blocks[bi];
        const MObject& b = *blk.obj;
        std::string id = prefix + sanitize(b.name()) + "_";
        std::vector<std::string> in;
        for (const auto& pin : blk.pins.inputs) {
            auto it = in_expr.find({bi, pin});
            in.push_back(it == in_expr.end() ? "0.0" : it->second);
        }
        std::vector<std::string> nets;
        for (std::size_t pi = 0; pi < blk.pins.outputs.size(); ++pi)
            nets.push_back(net_name(bi, static_cast<int>(pi)));

        ctx.line("/* " + b.meta_class().name() + " " + b.name() + " */");
        if (b.meta_class().is_subtype_of(*c.basic_fb)) {
            emit_basic(ctx, b, id, in, nets[0]);
        } else if (b.meta_class().is_subtype_of(*c.sm_fb)) {
            emit_sm(ctx, model, b, id, blk.pins, in, nets);
        } else if (b.meta_class().is_subtype_of(*c.composite_fb)) {
            PinExprs inner_in;
            for (ObjectId pm_id : b.refs("port_maps")) {
                const MObject& pm = model.at(pm_id);
                if (pm.attr("direction").as_string() != "in") continue;
                int op = blk.pins.input_index(pm.attr("outer_pin").as_string());
                inner_in[{pm.attr("inner_fb").as_string(), pm.attr("inner_pin").as_string()}] =
                    in[static_cast<std::size_t>(op)];
            }
            std::map<std::pair<std::string, std::string>, std::string> inner_out;
            emit_network(ctx, model.at(b.ref("network")), id, inner_in, inner_out);
            for (ObjectId pm_id : b.refs("port_maps")) {
                const MObject& pm = model.at(pm_id);
                if (pm.attr("direction").as_string() != "out") continue;
                int op = blk.pins.output_index(pm.attr("outer_pin").as_string());
                ctx.line(nets[static_cast<std::size_t>(op)] + " = " +
                         inner_out.at({pm.attr("inner_fb").as_string(),
                                       pm.attr("inner_pin").as_string()}) +
                         ";");
            }
        } else if (b.meta_class().is_subtype_of(*c.modal_fb)) {
            ctx.field("int " + id + "mode;");
            ctx.init_line("st->" + id + "mode = -1;");
            ctx.mirrors << "volatile unsigned " << id << "mode_mirror;\n";
            ctx.line("switch ((int)llround(" + in[0] + ")) {");
            std::size_t mode_index = 0;
            for (ObjectId m_id : b.refs("modes")) {
                const MObject& mode = model.at(m_id);
                ctx.line("case " + std::to_string(mode.attr("value").as_int()) + ": {");
                ++ctx.indent;
                ctx.line("if (st->" + id + "mode != " + std::to_string(mode_index) + ") {");
                ++ctx.indent;
                ctx.line("st->" + id + "mode = " + std::to_string(mode_index) + ";");
                ctx.line(id + "mode_mirror = " + std::to_string(mode_index) + "u;");
                ctx.line("GMDF_EMIT(7 /*MODE_CHANGE*/, " + std::to_string(b.id().raw) +
                         "u, " + std::to_string(m_id.raw) + "u, 0.0f);");
                --ctx.indent;
                ctx.line("}");
                PinExprs inner_in;
                for (ObjectId pm_id : mode.refs("port_maps")) {
                    const MObject& pm = model.at(pm_id);
                    if (pm.attr("direction").as_string() != "in") continue;
                    int op = blk.pins.input_index(pm.attr("outer_pin").as_string());
                    inner_in[{pm.attr("inner_fb").as_string(),
                              pm.attr("inner_pin").as_string()}] =
                        in[static_cast<std::size_t>(op)];
                }
                std::map<std::pair<std::string, std::string>, std::string> inner_out;
                emit_network(ctx, model.at(mode.ref("network")),
                             id + "m" + std::to_string(mode_index) + "_", inner_in, inner_out);
                for (ObjectId pm_id : mode.refs("port_maps")) {
                    const MObject& pm = model.at(pm_id);
                    if (pm.attr("direction").as_string() != "out") continue;
                    int op = blk.pins.output_index(pm.attr("outer_pin").as_string());
                    ctx.line(nets[static_cast<std::size_t>(op)] + " = " +
                             inner_out.at({pm.attr("inner_fb").as_string(),
                                           pm.attr("inner_pin").as_string()}) +
                             ";");
                }
                ctx.line("break;");
                --ctx.indent;
                ctx.line("}");
                ++mode_index;
            }
            ctx.line("default: break; /* unknown mode: outputs hold */");
            ctx.line("}");
        } else {
            throw std::invalid_argument("cemit: unsupported block class " +
                                        b.meta_class().name());
        }
    }

    // Phase B: delay blocks capture this scan's inputs.
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        if (!blocks[bi].is_delay) continue;
        const MObject& b = *blocks[bi].obj;
        std::string id = prefix + sanitize(b.name()) + "_";
        int n = std::max(1, static_cast<int>(params_of(b)[0]));
        auto it = in_expr.find({bi, "in"});
        std::string x = it == in_expr.end() ? "0.0" : it->second;
        ctx.line("/* delay_ " + b.name() + ": capture */");
        ctx.line("st->" + id + "buf[st->" + id + "h] = " + x + ";");
        ctx.line("st->" + id + "h = (st->" + id + "h + 1) % " + std::to_string(n) + ";");
    }

    for (std::size_t bi = 0; bi < blocks.size(); ++bi)
        for (std::size_t pi = 0; pi < blocks[bi].pins.outputs.size(); ++pi)
            out_nets[{blocks[bi].obj->name(), blocks[bi].pins.outputs[pi]}] =
                net_name(bi, static_cast<int>(pi));
}

} // namespace

std::string emit_actor_c(const Model& model, const MObject& actor,
                         const CEmitOptions& options) {
    std::string actor_name = sanitize(actor.name());
    EmitContext ctx;
    ctx.model = &model;

    // External pin expressions from the actor bindings.
    PinExprs ext_in;
    std::size_t n_in = 0;
    for (ObjectId b_id : actor.refs("inputs")) {
        const MObject& b = model.at(b_id);
        ext_in[{b.attr("fb").as_string(), b.attr("pin").as_string()}] =
            "in[" + std::to_string(n_in++) + "]";
    }

    std::map<std::pair<std::string, std::string>, std::string> out_nets;
    emit_network(ctx, model.at(actor.ref("network")), "", ext_in, out_nets);

    std::ostringstream out_copy;
    std::size_t n_out = 0;
    for (ObjectId b_id : actor.refs("outputs")) {
        const MObject& b = model.at(b_id);
        out_copy << "    out[" << n_out++ << "] = "
                 << out_nets.at({b.attr("fb").as_string(), b.attr("pin").as_string()})
                 << ";\n";
    }

    std::ostringstream os;
    os << "/* Generated by gmdf-codegen from COMDES actor '" << actor.name() << "'.\n"
       << " * Inputs: " << n_in << ", outputs: " << n_out << ". Do not edit. */\n"
       << "#include <math.h>\n\n"
       << "#ifdef GMDF_INSTRUMENT\n"
       << "extern void gmdf_emit(unsigned kind, unsigned a, unsigned b, float v);\n"
       << "#define GMDF_EMIT(k, a, b, v) gmdf_emit((k), (a), (b), (v))\n"
       << "#else\n"
       << "#define GMDF_EMIT(k, a, b, v) ((void)0)\n"
       << "#endif\n\n"
       << "static double gmdf_min(double a, double b) { return a < b ? a : b; }\n"
       << "static double gmdf_max(double a, double b) { return a > b ? a : b; }\n"
       << "static double gmdf_abs(double a) { return fabs(a); }\n"
       << "static double gmdf_clamp(double x, double lo, double hi)\n"
       << "{ return x < lo ? lo : (x > hi ? hi : x); }\n"
       << "static double gmdf_floor(double a) { return floor(a); }\n"
       << "static double gmdf_ceil(double a) { return ceil(a); }\n"
       << "static double gmdf_sqrt(double a) { return sqrt(a); }\n"
       << "static double gmdf_sin(double a) { return sin(a); }\n"
       << "static double gmdf_cos(double a) { return cos(a); }\n"
       << "static double gmdf_exp(double a) { return exp(a); }\n"
       << "static double gmdf_log(double a) { return log(a); }\n"
       << "static double gmdf_pow(double a, double b) { return pow(a, b); }\n"
       << "static double gmdf_sign(double a) { return a > 0 ? 1.0 : (a < 0 ? -1.0 : 0.0); }\n\n"
       << "/* Passive debug mirrors (JTAG watch targets). */\n"
       << ctx.mirrors.str() << "\n"
       << "typedef struct {\n"
       << ctx.fields.str() << "} " << actor_name << "_state_t;\n\n"
       << "void " << actor_name << "_init(" << actor_name << "_state_t* st) {\n"
       << "    /* zero everything, then apply non-zero initial values */\n"
       << "    char* p = (char*)st;\n"
       << "    for (unsigned i = 0; i < sizeof *st; ++i) p[i] = 0;\n"
       << ctx.init.str() << "}\n\n"
       << "void " << actor_name << "_step(" << actor_name
       << "_state_t* st, const double* in, double* out, double dt) {\n"
       << "    (void)in; (void)dt;\n"
       << ctx.step.str() << out_copy.str() << "}\n";

    if (options.test_main) {
        os << "\n#include <stdio.h>\n"
           << "int main(void) {\n"
           << "    static " << actor_name << "_state_t st;\n"
           << "    " << actor_name << "_init(&st);\n"
           << "    double in[" << std::max<std::size_t>(n_in, 1) << "], out["
           << std::max<std::size_t>(n_out, 1) << "];\n"
           << "    while (1) {\n"
           << "        for (unsigned i = 0; i < " << n_in << "; ++i)\n"
           << "            if (scanf(\"%lf\", &in[i]) != 1) return 0;\n"
           << "        " << actor_name << "_step(&st, in, out, " << fmt(options.dt) << ");\n"
           << "        for (unsigned i = 0; i < " << n_out << "; ++i)\n"
           << "            printf(\"%.12g \", out[i]);\n"
           << "        printf(\"\\n\");\n"
           << "    }\n"
           << "}\n";
    }
    return os.str();
}

} // namespace gmdf::codegen
