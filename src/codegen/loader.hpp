// Loads a COMDES system model onto the simulated target.
//
// This is the "executable code" half of the paper's user input: actors
// become rt:: tasks running flattened programs; instrumentation options
// select the active command interface (paper Fig. 2: code emits commands
// through extra functional code) and/or the passive memory mirror (state
// variables placed in RAM for JTAG watch).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "link/commands.hpp"
#include "rt/target.hpp"

namespace gmdf::codegen {

/// What the generated code reports at runtime.
struct InstrumentOptions {
    bool task_events = false;   ///< TASK_START / TASK_END commands
    bool sm_events = false;     ///< STATE_ENTER / TRANSITION / MODE_CHANGE
    bool signal_events = false; ///< SIGNAL_UPDATE on changed actor outputs
    bool memory_mirror = true;  ///< SM states & signals mirrored into RAM

    /// Everything on: the paper's active RS-232 solution.
    [[nodiscard]] static InstrumentOptions active() { return {true, true, true, true}; }
    /// Nothing emitted; RAM mirror only: the passive JTAG solution.
    [[nodiscard]] static InstrumentOptions passive() { return {false, false, false, true}; }
    /// Release build: no debug support at all.
    [[nodiscard]] static InstrumentOptions none() { return {false, false, false, false}; }
};

/// Memory placement of one observable element (SM state / modal mode).
struct ElementMemory {
    meta::ObjectId element;               ///< SM or modal FB
    std::uint32_t addr = 0;               ///< word holding the current index
    std::vector<meta::ObjectId> indexed;  ///< state/mode id by index value
};

/// Task body running a flattened actor program; implements the command
/// interface (active) and the memory mirror (passive).
class ProgramBody final : public rt::TaskBody, public ProgramObserver {
public:
    ProgramBody(SubProgram program, meta::ObjectId actor_id, InstrumentOptions opts);

    /// Installs the program after construction. Needed because kernels
    /// capture the observer (this body) while the program is flattened.
    void set_program(SubProgram program) { program_ = std::move(program); }

    /// Registers the RAM placement for an SM / modal FB of this actor.
    void add_element_memory(ElementMemory em);

    /// Model element ids of the actor's output signals (binding order);
    /// enables SIGNAL_UPDATE emission.
    void set_output_elements(std::vector<meta::ObjectId> ids);

    void reset() override;
    std::uint64_t execute(rt::TaskContext& ctx) override;
    void save_state(std::vector<double>& out) const override;
    std::size_t load_state(std::span<const double> in) override;

    // ProgramObserver (called from kernels during execute()):
    void on_state_enter(meta::ObjectId sm, meta::ObjectId state) override;
    void on_transition(meta::ObjectId sm, meta::ObjectId transition) override;
    void on_mode_change(meta::ObjectId modal_fb, meta::ObjectId mode) override;

private:
    void emit(const link::Command& cmd);
    void mirror(meta::ObjectId element, meta::ObjectId value_id);

    SubProgram program_;
    meta::ObjectId actor_;
    InstrumentOptions opts_;
    rt::TaskContext* ctx_ = nullptr;
    std::vector<ElementMemory> elements_;
    std::vector<meta::ObjectId> out_ids_;
    std::vector<double> last_out_;
    bool first_scan_ = true;
};

/// One loaded actor: where it runs and what can be observed.
struct LoadedActor {
    meta::ObjectId actor;
    std::string name;
    int node = 0;
    std::vector<ElementMemory> elements; ///< SM/modal RAM placements
};

/// Result of loading a system: the element <-> runtime correspondence the
/// debugger needs.
struct LoadedSystem {
    std::vector<LoadedActor> actors;
    std::vector<meta::ObjectId> signal_ids;        ///< by rt signal index
    std::map<std::uint64_t, int> signal_index;     ///< signal element id -> rt index

    /// RAM symbol carrying a signal's latched value (same name on every node).
    [[nodiscard]] static std::string signal_symbol(const std::string& signal_name) {
        return "sig_" + signal_name;
    }
};

/// Generates and loads the whole system: creates signals, nodes (one per
/// distinct actor `node` attribute), tasks, and memory symbols.
/// The model must validate cleanly (validate_comdes) first; loading a
/// broken model throws std::invalid_argument.
/// Call before Target::start().
[[nodiscard]] LoadedSystem load_system(rt::Target& target, const meta::Model& model,
                                       const InstrumentOptions& opts);

} // namespace gmdf::codegen
