#include "codegen/faults.hpp"

#include <random>

#include "comdes/metamodel.hpp"

namespace gmdf::codegen {

using meta::MObject;
using meta::Model;
using meta::ObjectId;

const char* to_string(FaultKind kind) {
    switch (kind) {
    case FaultKind::WrongTransitionTarget: return "wrong-transition-target";
    case FaultKind::WrongInitialState: return "wrong-initial-state";
    case FaultKind::DropConnection: return "drop-connection";
    case FaultKind::NegateGuard: return "negate-guard";
    case FaultKind::FlipParamSign: return "flip-param-sign";
    }
    return "?";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view text) {
    for (FaultKind kind : all_fault_kinds())
        if (text == to_string(kind)) return kind;
    return std::nullopt;
}

std::vector<FaultKind> all_fault_kinds() {
    return {FaultKind::WrongTransitionTarget, FaultKind::WrongInitialState,
            FaultKind::DropConnection, FaultKind::NegateGuard, FaultKind::FlipParamSign};
}

namespace {

template <typename T>
const T* pick(const std::vector<T>& candidates, unsigned seed) {
    if (candidates.empty()) return nullptr;
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> dist(0, candidates.size() - 1);
    return &candidates[dist(rng)];
}

/// The SM FB containing a given transition/state (by containment).
const MObject* owner_sm(const Model& model, ObjectId id) {
    const MObject* c = model.container_of(id);
    return c;
}

} // namespace

std::optional<FaultReport> inject_fault(Model& model, FaultKind kind, unsigned seed) {
    const auto& c = comdes::comdes_metamodel();
    std::mt19937 rng(seed ^ 0x9E3779B9u);

    switch (kind) {
    case FaultKind::WrongTransitionTarget: {
        std::vector<MObject*> transitions = model.all_of(*c.transition);
        // Keep only transitions whose SM has an alternative target state.
        std::vector<MObject*> usable;
        for (MObject* t : transitions) {
            const MObject* sm = owner_sm(model, t->id());
            if (sm != nullptr && sm->refs("states").size() >= 2) usable.push_back(t);
        }
        const auto* victim = pick(usable, seed);
        if (victim == nullptr) return std::nullopt;
        MObject* t = *victim;
        const MObject* sm = owner_sm(model, t->id());
        auto states = sm->refs("states");
        ObjectId old_to = t->ref("to");
        std::vector<ObjectId> others;
        for (ObjectId s : states)
            if (!(s == old_to)) others.push_back(s);
        ObjectId new_to = others[rng() % others.size()];
        t->set_ref("to", new_to);
        return FaultReport{kind, t->id(),
                           "transition retargeted from state '" + model.at(old_to).name() +
                               "' to '" + model.at(new_to).name() + "'"};
    }
    case FaultKind::WrongInitialState: {
        std::vector<MObject*> sms = model.all_of(*c.sm_fb);
        std::vector<MObject*> usable;
        for (MObject* sm : sms)
            if (sm->refs("states").size() >= 2) usable.push_back(sm);
        const auto* victim = pick(usable, seed);
        if (victim == nullptr) return std::nullopt;
        MObject* sm = *victim;
        ObjectId old_init = sm->ref("initial");
        std::vector<ObjectId> others;
        for (ObjectId s : sm->refs("states"))
            if (!(s == old_init)) others.push_back(s);
        ObjectId new_init = others[rng() % others.size()];
        sm->set_ref("initial", new_init);
        return FaultReport{kind, sm->id(),
                           "SM '" + sm->name() + "' starts in '" + model.at(new_init).name() +
                               "' instead of '" + model.at(old_init).name() + "'"};
    }
    case FaultKind::DropConnection: {
        std::vector<MObject*> nets = model.all_of(*c.network);
        std::vector<std::pair<MObject*, ObjectId>> conns;
        for (MObject* net : nets)
            for (ObjectId conn : net->refs("connections")) conns.emplace_back(net, conn);
        const auto* victim = pick(conns, seed);
        if (victim == nullptr) return std::nullopt;
        auto [net, conn_id] = *victim;
        const MObject& conn = model.at(conn_id);
        std::string desc = "dropped connection " + model.at(conn.ref("from")).name() + "." +
                           conn.attr("from_pin").as_string() + " -> " +
                           model.at(conn.ref("to")).name() + "." +
                           conn.attr("to_pin").as_string();
        net->remove_ref("connections", conn_id);
        model.destroy(conn_id);
        return FaultReport{kind, conn_id, desc};
    }
    case FaultKind::NegateGuard: {
        std::vector<MObject*> transitions = model.all_of(*c.transition);
        std::vector<MObject*> usable;
        for (MObject* t : transitions) {
            const meta::Value& g = t->attr("guard");
            if (g.is_string() && !g.as_string().empty()) usable.push_back(t);
        }
        const auto* victim = pick(usable, seed);
        if (victim == nullptr) return std::nullopt;
        MObject* t = *victim;
        std::string old_guard = t->attr("guard").as_string();
        t->set_attr("guard", meta::Value("!(" + old_guard + ")"));
        return FaultReport{kind, t->id(), "guard '" + old_guard + "' negated"};
    }
    case FaultKind::FlipParamSign: {
        std::vector<MObject*> basics = model.all_of(*c.basic_fb);
        std::vector<MObject*> usable;
        for (MObject* b : basics) {
            const meta::Value& p = b->attr("params");
            if (p.is_list() && !p.as_list().empty() &&
                p.as_list()[0].as_number() != 0.0)
                usable.push_back(b);
        }
        const auto* victim = pick(usable, seed);
        if (victim == nullptr) return std::nullopt;
        MObject* b = *victim;
        auto list = b->attr("params").as_list();
        double old_v = list[0].as_number();
        list[0] = meta::Value(-old_v);
        b->set_attr("params", meta::Value(std::move(list)));
        return FaultReport{kind, b->id(),
                           "param[0] of '" + b->name() + "' flipped from " +
                               std::to_string(old_v) + " to " + std::to_string(-old_v)};
    }
    }
    return std::nullopt;
}

} // namespace gmdf::codegen
