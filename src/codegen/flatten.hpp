// Model flattening: COMDES networks -> executable SubPrograms.
#pragma once

#include <span>
#include <string>

#include "codegen/program.hpp"
#include "meta/model.hpp"

namespace gmdf::codegen {

/// Binds an external index to a block pin inside a network.
struct ExtBinding {
    std::string fb;   ///< block name within the network
    std::string pin;  ///< pin name on that block
    int ext_index;    ///< index into the external input/output span
};

/// Flattens `network` into a SubProgram.
///  - `inputs` drive block input pins from external values;
///  - `outputs` sample block output pins into external values;
///  - composite/modal blocks become kernels owning nested SubPrograms;
///  - step order is a topological order of the dataflow (edges leaving
///    delay_ blocks are relaxed, matching the validation rule);
///  - `observer` (may be null) receives SM and mode-change events from
///    any nesting depth.
/// Throws std::invalid_argument on unresolvable names/pins or a
/// combinational cycle (validate_comdes reports these up front).
[[nodiscard]] SubProgram flatten_network(const meta::Model& model,
                                         const meta::MObject& network,
                                         std::span<const ExtBinding> inputs,
                                         std::span<const ExtBinding> outputs,
                                         ProgramObserver* observer);

/// Flattens a whole actor using its ActorInput/ActorOutput bindings.
/// External input order = the actor's `inputs` list order; likewise for
/// outputs (the loader aligns rt::TaskConfig signal lists with these).
[[nodiscard]] SubProgram flatten_actor(const meta::Model& model, const meta::MObject& actor,
                                       ProgramObserver* observer);

/// Static WCET-style cycle estimate for one scan of `p`.
[[nodiscard]] std::uint64_t static_cost(const SubProgram& p);

} // namespace gmdf::codegen
