#include "codegen/flatten.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "comdes/metamodel.hpp"

namespace gmdf::codegen {

namespace {

using comdes::FBKernel;
using comdes::FBPins;
using meta::MObject;
using meta::Model;
using meta::ObjectId;

std::uint64_t sub_static_cost(const SubProgram& p) {
    std::uint64_t c = 2 * (p.ext_in.size() + p.ext_out.size());
    for (const Step& s : p.steps) c += s.cost;
    return c;
}

/// Kernel wrapping a composite FB's inner network.
class CompositeKernel final : public FBKernel {
public:
    explicit CompositeKernel(SubProgram inner) : inner_(std::move(inner)) {
        cost_ = static_cast<std::uint32_t>(sub_static_cost(inner_)) + 8;
    }

    void reset() override { inner_.reset(); }

    void step(std::span<const double> in, std::span<double> out, double dt) override {
        inner_.run(in, out, dt);
    }

    [[nodiscard]] std::uint32_t cost_cycles() const override { return cost_; }

private:
    SubProgram inner_;
    std::uint32_t cost_;
};

/// Kernel wrapping a modal FB: runs the network of the mode selected by
/// the selector pin (input 0); outputs of inactive modes hold.
class ModalKernel final : public FBKernel {
public:
    struct ModeEntry {
        std::int64_t value = 0;
        ObjectId id;
        SubProgram program;
    };

    ModalKernel(ObjectId modal_id, std::vector<ModeEntry> modes, std::size_t n_outputs,
                ProgramObserver* observer)
        : modal_id_(modal_id), modes_(std::move(modes)), n_outputs_(n_outputs),
          observer_(observer) {
        cost_ = 12;
        std::uint32_t worst = 0;
        for (const auto& m : modes_)
            worst = std::max(worst,
                             static_cast<std::uint32_t>(sub_static_cost(m.program)));
        cost_ += worst;
    }

    void reset() override {
        for (auto& m : modes_) m.program.reset();
        held_.assign(n_outputs_, 0.0);
        active_ = -1;
    }

    void step(std::span<const double> in, std::span<double> out, double dt) override {
        if (held_.size() != n_outputs_) held_.assign(n_outputs_, 0.0);
        auto selector = static_cast<std::int64_t>(std::llround(in[0]));
        int which = -1;
        for (std::size_t i = 0; i < modes_.size(); ++i)
            if (modes_[i].value == selector) which = static_cast<int>(i);
        if (which >= 0) {
            if (which != active_) {
                active_ = which;
                if (observer_)
                    observer_->on_mode_change(modal_id_,
                                              modes_[static_cast<std::size_t>(which)].id);
            }
            // The mode program's ext indices address the modal FB's own
            // pin space, so pass the full spans; unmapped outputs hold.
            modes_[static_cast<std::size_t>(which)].program.run(in, held_, dt);
        }
        std::copy(held_.begin(), held_.end(), out.begin());
    }

    [[nodiscard]] std::uint32_t cost_cycles() const override { return cost_; }

private:
    ObjectId modal_id_;
    std::vector<ModeEntry> modes_;
    std::size_t n_outputs_;
    ProgramObserver* observer_;
    std::uint32_t cost_ = 0;
    std::vector<double> held_;
    int active_ = -1;
};

struct BlockInfo {
    const MObject* obj = nullptr;
    FBPins pins;
    std::vector<int> out_slots; ///< slot per output pin
    std::vector<int> in_slots;  ///< slot per input pin (-1 until wired)
    bool is_delay = false;
};

[[noreturn]] void fail(const std::string& msg) { throw std::invalid_argument(msg); }

} // namespace

SubProgram flatten_network(const Model& model, const MObject& network,
                           std::span<const ExtBinding> inputs,
                           std::span<const ExtBinding> outputs, ProgramObserver* observer) {
    const auto& c = comdes::comdes_metamodel();
    SubProgram prog;

    // 1. Collect blocks, assign output-net slots.
    std::vector<BlockInfo> blocks;
    std::map<std::string, std::size_t> by_name;
    int next_slot = 0;
    for (ObjectId b_id : network.refs("blocks")) {
        const MObject& b = model.at(b_id);
        BlockInfo info;
        info.obj = &b;
        info.pins = comdes::pins_of(model, b);
        info.in_slots.assign(info.pins.inputs.size(), -1);
        for (std::size_t i = 0; i < info.pins.outputs.size(); ++i)
            info.out_slots.push_back(next_slot++);
        info.is_delay = b.meta_class().is_subtype_of(*c.basic_fb) &&
                        b.attr("kind").as_string() == "delay_";
        if (by_name.contains(b.name()))
            fail("duplicate block name '" + b.name() + "' in network");
        by_name[b.name()] = blocks.size();
        blocks.push_back(std::move(info));
    }

    auto block_index = [&](const std::string& name, const char* what) -> std::size_t {
        auto it = by_name.find(name);
        if (it == by_name.end())
            fail(std::string(what) + ": unknown block '" + name + "'");
        return it->second;
    };

    // 2. Wire connections: input pin -> driving output net.
    std::map<std::size_t, std::set<std::size_t>> edges; // producer -> consumers
    for (ObjectId conn_id : network.refs("connections")) {
        const MObject& conn = model.at(conn_id);
        const MObject& from = model.at(conn.ref("from"));
        const MObject& to = model.at(conn.ref("to"));
        std::size_t fi = block_index(from.name(), "connection");
        std::size_t ti = block_index(to.name(), "connection");
        int fp = blocks[fi].pins.output_index(conn.attr("from_pin").as_string());
        int tp = blocks[ti].pins.input_index(conn.attr("to_pin").as_string());
        if (fp < 0) fail("connection: no output pin '" + conn.attr("from_pin").as_string() +
                         "' on '" + from.name() + "'");
        if (tp < 0) fail("connection: no input pin '" + conn.attr("to_pin").as_string() +
                         "' on '" + to.name() + "'");
        if (blocks[ti].in_slots[static_cast<std::size_t>(tp)] != -1)
            fail("input '" + to.name() + "." + conn.attr("to_pin").as_string() +
                 "' driven twice");
        blocks[ti].in_slots[static_cast<std::size_t>(tp)] =
            blocks[fi].out_slots[static_cast<std::size_t>(fp)];
        if (!blocks[fi].is_delay) edges[fi].insert(ti);
    }

    // 3. External inputs get fresh slots copied in before the scan.
    for (const ExtBinding& b : inputs) {
        std::size_t bi = block_index(b.fb, "external input");
        int pin = blocks[bi].pins.input_index(b.pin);
        if (pin < 0) fail("external input: no input pin '" + b.pin + "' on '" + b.fb + "'");
        if (blocks[bi].in_slots[static_cast<std::size_t>(pin)] != -1)
            fail("input '" + b.fb + "." + b.pin + "' both bound and connected");
        int slot = next_slot++;
        blocks[bi].in_slots[static_cast<std::size_t>(pin)] = slot;
        prog.ext_in.emplace_back(b.ext_index, slot);
    }

    // 4. Kernels (recursing into composite/modal blocks).
    std::vector<std::size_t> kernel_of(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const MObject& b = *blocks[i].obj;
        std::unique_ptr<FBKernel> kernel;
        if (b.meta_class().is_subtype_of(*c.basic_fb)) {
            kernel = comdes::make_basic_kernel(b);
        } else if (b.meta_class().is_subtype_of(*c.sm_fb)) {
            kernel = comdes::make_sm_kernel(model, b, observer);
        } else if (b.meta_class().is_subtype_of(*c.composite_fb)) {
            // Port maps address the composite's pin space.
            std::vector<ExtBinding> inner_in, inner_out;
            for (ObjectId pm_id : b.refs("port_maps")) {
                const MObject& pm = model.at(pm_id);
                ExtBinding eb{pm.attr("inner_fb").as_string(), pm.attr("inner_pin").as_string(),
                              0};
                const std::string& outer = pm.attr("outer_pin").as_string();
                if (pm.attr("direction").as_string() == "in") {
                    eb.ext_index = blocks[i].pins.input_index(outer);
                    inner_in.push_back(std::move(eb));
                } else {
                    eb.ext_index = blocks[i].pins.output_index(outer);
                    inner_out.push_back(std::move(eb));
                }
            }
            kernel = std::make_unique<CompositeKernel>(flatten_network(
                model, model.at(b.ref("network")), inner_in, inner_out, observer));
        } else if (b.meta_class().is_subtype_of(*c.modal_fb)) {
            std::vector<ModalKernel::ModeEntry> modes;
            for (ObjectId m_id : b.refs("modes")) {
                const MObject& mode = model.at(m_id);
                std::vector<ExtBinding> inner_in, inner_out;
                for (ObjectId pm_id : mode.refs("port_maps")) {
                    const MObject& pm = model.at(pm_id);
                    ExtBinding eb{pm.attr("inner_fb").as_string(),
                                  pm.attr("inner_pin").as_string(), 0};
                    const std::string& outer = pm.attr("outer_pin").as_string();
                    if (pm.attr("direction").as_string() == "in") {
                        eb.ext_index = blocks[i].pins.input_index(outer);
                        inner_in.push_back(std::move(eb));
                    } else {
                        eb.ext_index = blocks[i].pins.output_index(outer);
                        inner_out.push_back(std::move(eb));
                    }
                }
                modes.push_back({mode.attr("value").as_int(), m_id,
                                 flatten_network(model, model.at(mode.ref("network")),
                                                 inner_in, inner_out, observer)});
            }
            kernel = std::make_unique<ModalKernel>(b.id(), std::move(modes),
                                                   blocks[i].pins.outputs.size(), observer);
        } else {
            fail("unsupported block class " + b.meta_class().name());
        }
        kernel_of[i] = prog.kernels.size();
        prog.kernels.push_back(std::move(kernel));
    }

    // 5. Topological step order (Kahn, stable by declaration order).
    std::vector<int> indegree(blocks.size(), 0);
    for (const auto& [from, tos] : edges)
        for (std::size_t to : tos) ++indegree[to];
    std::vector<std::size_t> order;
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < blocks.size(); ++i)
        if (indegree[i] == 0) frontier.push_back(i);
    while (!frontier.empty()) {
        std::size_t cur = frontier.front();
        frontier.erase(frontier.begin());
        order.push_back(cur);
        for (std::size_t next : edges[cur])
            if (--indegree[next] == 0) frontier.push_back(next);
    }
    if (order.size() != blocks.size()) fail("combinational cycle in dataflow network");

    for (std::size_t i : order) {
        Step s;
        s.kernel_index = kernel_of[i];
        s.in_slots = blocks[i].in_slots;
        s.out_slots = blocks[i].out_slots;
        s.source = blocks[i].obj->id();
        s.cost = prog.kernels[s.kernel_index]->cost_cycles();
        prog.steps.push_back(std::move(s));
    }

    // 6. External outputs.
    for (const ExtBinding& b : outputs) {
        std::size_t bi = block_index(b.fb, "external output");
        int pin = blocks[bi].pins.output_index(b.pin);
        if (pin < 0) fail("external output: no output pin '" + b.pin + "' on '" + b.fb + "'");
        prog.ext_out.emplace_back(blocks[bi].out_slots[static_cast<std::size_t>(pin)],
                                  b.ext_index);
    }

    prog.n_slots = next_slot;
    return prog;
}

SubProgram flatten_actor(const Model& model, const MObject& actor, ProgramObserver* observer) {
    std::vector<ExtBinding> inputs, outputs;
    int idx = 0;
    for (ObjectId b_id : actor.refs("inputs")) {
        const MObject& b = model.at(b_id);
        inputs.push_back({b.attr("fb").as_string(), b.attr("pin").as_string(), idx++});
    }
    idx = 0;
    for (ObjectId b_id : actor.refs("outputs")) {
        const MObject& b = model.at(b_id);
        outputs.push_back({b.attr("fb").as_string(), b.attr("pin").as_string(), idx++});
    }
    return flatten_network(model, model.at(actor.ref("network")), inputs, outputs, observer);
}

std::uint64_t static_cost(const SubProgram& p) { return sub_static_cost(p); }

} // namespace gmdf::codegen
