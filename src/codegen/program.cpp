#include "codegen/program.hpp"

#include <algorithm>
#include <stdexcept>

namespace gmdf::codegen {

void SubProgram::reset() {
    for (auto& k : kernels) k->reset();
    std::fill(slots_.begin(), slots_.end(), 0.0);
}

void SubProgram::ensure_ready() {
    if (static_cast<int>(slots_.size()) != n_slots) slots_.assign(static_cast<std::size_t>(n_slots), 0.0);
    std::size_t max_in = 1, max_out = 1;
    for (const Step& s : steps) {
        max_in = std::max(max_in, s.in_slots.size());
        max_out = std::max(max_out, s.out_slots.size());
    }
    gather_.resize(max_in);
    scatter_.resize(max_out);
}

void SubProgram::save_state(std::vector<double>& out) const {
    // A program that never ran still has an empty slot array; record the
    // allocated count so restore can tell the two apart.
    out.push_back(static_cast<double>(slots_.size()));
    out.insert(out.end(), slots_.begin(), slots_.end());
    for (const auto& k : kernels) k->save_state(out);
}

std::size_t SubProgram::load_state(std::span<const double> in) {
    if (in.empty()) throw std::runtime_error("program state truncated");
    auto n_slots_saved = static_cast<std::size_t>(in[0]);
    if (in.size() < 1 + n_slots_saved)
        throw std::runtime_error("program state truncated");
    slots_.assign(in.begin() + 1,
                  in.begin() + 1 + static_cast<std::ptrdiff_t>(n_slots_saved));
    std::size_t used = 1 + n_slots_saved;
    for (const auto& k : kernels) used += k->load_state(in.subspan(used));
    return used;
}

std::uint64_t SubProgram::run(std::span<const double> in, std::span<double> out, double dt) {
    ensure_ready();
    std::uint64_t cycles = 0;

    for (auto [ext, slot] : ext_in) {
        slots_[static_cast<std::size_t>(slot)] = in[static_cast<std::size_t>(ext)];
        cycles += 2; // one load + one store, as the generated copy loop would
    }

    // Phase A: two-phase kernels (delays) publish last scan's value so
    // every consumer, regardless of order, sees out(k) = in(k-1).
    for (const Step& s : steps) {
        comdes::FBKernel& k = *kernels[s.kernel_index];
        if (!k.is_two_phase()) continue;
        k.publish({scatter_.data(), s.out_slots.size()});
        for (std::size_t i = 0; i < s.out_slots.size(); ++i)
            slots_[static_cast<std::size_t>(s.out_slots[i])] = scatter_[i];
    }

    for (const Step& s : steps) {
        comdes::FBKernel& k = *kernels[s.kernel_index];
        if (k.is_two_phase()) {
            cycles += s.cost; // charged here; executes in the pre/post passes
            continue;
        }
        for (std::size_t i = 0; i < s.in_slots.size(); ++i)
            gather_[i] = s.in_slots[i] < 0 ? 0.0 : slots_[static_cast<std::size_t>(s.in_slots[i])];
        k.step({gather_.data(), s.in_slots.size()},
               {scatter_.data(), s.out_slots.size()}, dt);
        for (std::size_t i = 0; i < s.out_slots.size(); ++i)
            slots_[static_cast<std::size_t>(s.out_slots[i])] = scatter_[i];
        cycles += s.cost;
    }

    // Phase B: delays capture this scan's inputs.
    for (const Step& s : steps) {
        comdes::FBKernel& k = *kernels[s.kernel_index];
        if (!k.is_two_phase()) continue;
        for (std::size_t i = 0; i < s.in_slots.size(); ++i)
            gather_[i] = s.in_slots[i] < 0 ? 0.0 : slots_[static_cast<std::size_t>(s.in_slots[i])];
        k.capture({gather_.data(), s.in_slots.size()});
    }

    for (auto [slot, ext] : ext_out) {
        out[static_cast<std::size_t>(ext)] = slots_[static_cast<std::size_t>(slot)];
        cycles += 2;
    }
    return cycles;
}

} // namespace gmdf::codegen
