// C source emitter: the human-visible half of model transformation.
//
// Generates a self-contained C translation unit for one actor:
//   - a state struct (net values, FB internal state, SM states),
//   - <actor>_init() and <actor>_step(state, in[], out[], dt),
//   - the active command interface as GMDF_EMIT(...) call sites that
//     compile to nothing unless GMDF_INSTRUMENT is defined (the paper's
//     "extra functional code" added by the generator),
//   - volatile mirror variables for the passive JTAG path.
//
// The emitted semantics match the SubProgram interpreter, with one
// documented deviation: expression arithmetic is carried in double
// throughout (pin values are doubles), so integer-literal division like
// 3/2 evaluates to 1.5 rather than C's 1.
#pragma once

#include <string>

#include "meta/model.hpp"

namespace gmdf::codegen {

struct CEmitOptions {
    /// Emits a main() that reads "in0 in1 ..." lines from stdin and
    /// prints outputs, for golden testing against the interpreter.
    bool test_main = false;
    /// Number of scans per run used by the test main (dt argument).
    double dt = 0.001;
};

/// Emits the C translation unit for `actor`. Throws std::invalid_argument
/// for model constructs that do not validate.
[[nodiscard]] std::string emit_actor_c(const meta::Model& model, const meta::MObject& actor,
                                       const CEmitOptions& options = {});

} // namespace gmdf::codegen
