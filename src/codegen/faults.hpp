// Fault injection: emulated model-transformation bugs.
//
// The paper distinguishes *design errors* (model wrong w.r.t. the
// requirements) from *implementation errors* (code wrong w.r.t. the
// model, introduced by transformation/hybrid coding). To reproduce the
// latter without a buggy generator, we mutate a clone of the model before
// code generation; the debugger keeps the original, so runtime events
// diverge from the design exactly like a transformation bug would.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "meta/model.hpp"

namespace gmdf::codegen {

enum class FaultKind {
    WrongTransitionTarget, ///< retarget one transition to another state
    WrongInitialState,     ///< start an SM in a non-initial state
    DropConnection,        ///< lose one dataflow connection
    NegateGuard,           ///< invert one transition guard
    FlipParamSign,         ///< negate a BasicFB parameter
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// Inverse of to_string(FaultKind); nullopt for unknown spellings.
/// Lets fault kinds travel through scenario names ("lift_fault:<kind>",
/// "gen:<seed>:<kind>") and campaign scripts.
[[nodiscard]] std::optional<FaultKind> fault_kind_from_string(std::string_view text);

/// All kinds, for sweeps.
[[nodiscard]] std::vector<FaultKind> all_fault_kinds();

struct FaultReport {
    FaultKind kind;
    meta::ObjectId element; ///< mutated object
    std::string description;
};

/// Applies one fault of `kind` to `model` (mutating it), choosing the
/// victim element deterministically from `seed`. Returns nullopt when the
/// model has no applicable element (e.g. no guards to negate).
std::optional<FaultReport> inject_fault(meta::Model& model, FaultKind kind, unsigned seed);

} // namespace gmdf::codegen
