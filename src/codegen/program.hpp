// Executable program IR produced by model transformation.
//
// The code generator flattens a COMDES actor network into a SubProgram: a
// net-list of function-block kernels over a persistent slot array, plus
// external input/output maps. The rt:: layer executes it inside a
// TimedTask exactly where generated C would run on the real target.
//
// Nested structure (composite / modal FBs) is preserved as kernels that
// own nested SubPrograms, so observers see events from any depth.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comdes/fblib.hpp"
#include "meta/value.hpp"

namespace gmdf::codegen {

/// Extends the state-machine observer with modal-FB mode changes; the
/// debugger instrumentation implements this interface.
class ProgramObserver : public comdes::SmObserver {
public:
    virtual void on_mode_change(meta::ObjectId modal_fb, meta::ObjectId mode) = 0;
};

/// One kernel invocation in dataflow order.
struct Step {
    std::size_t kernel_index = 0;
    /// Slot per kernel input pin; -1 reads constant zero.
    std::vector<int> in_slots;
    /// Slot per kernel output pin.
    std::vector<int> out_slots;
    /// Model element this step was generated from (debugger correlation).
    meta::ObjectId source;
    /// WCET-style static cycle estimate, precomputed at flatten time.
    std::uint32_t cost = 0;
};

/// A flattened network: kernels + steps over a persistent slot array.
/// Slots persist across runs, which gives delay_ blocks their semantics
/// (a consumer ordered before the producer reads last scan's value).
class SubProgram {
public:
    int n_slots = 0;
    std::vector<std::unique_ptr<comdes::FBKernel>> kernels;
    std::vector<Step> steps;
    /// (external input index, slot): copied in before the steps run.
    std::vector<std::pair<int, int>> ext_in;
    /// (slot, external output index): copied out after the steps run.
    std::vector<std::pair<int, int>> ext_out;

    /// Resets kernels and clears all slots to zero.
    void reset();

    /// One synchronous scan; returns consumed cycles (steps + copy cost).
    std::uint64_t run(std::span<const double> in, std::span<double> out, double dt);

    /// Checkpoint support: slot array + every kernel's internal state,
    /// appended as doubles (see comdes::FBKernel::save_state).
    void save_state(std::vector<double>& out) const;

    /// Restores what save_state wrote; returns the values consumed.
    std::size_t load_state(std::span<const double> in);

private:
    void ensure_ready();

    std::vector<double> slots_;
    std::vector<double> gather_;
    std::vector<double> scatter_;
};

} // namespace gmdf::codegen
