// Simulated embedded target: nodes, CPUs, tasks, and state-message signals.
//
// Implements the COMDES execution platform the paper's debugger attaches
// to: Distributed Timed Multitasking. Actors run as periodic tasks on
// per-node CPUs (non-preemptive fixed-priority); task inputs are latched
// at release and outputs are latched at the deadline instant, which
// eliminates I/O jitter. An alternative immediate-output mode exists to
// quantify that claim (bench C2).
//
// The debugger connects in two ways, matching the paper:
//  - active: generated code calls TaskContext::send_debug() — costs target
//    CPU cycles and UART bandwidth (both accounted);
//  - passive: the host reads the node MemoryMap via JTAG with no CPU cost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rt/des.hpp"
#include "rt/memory.hpp"

namespace gmdf::rt {

/// Named signal definitions shared by the whole distributed system
/// (COMDES labeled messages). Each node keeps a local replica of the
/// values; the definitions live here. Name lookup is a binary search
/// over a sorted flat vector (signals are added at build time, looked
/// up on hot paths).
class SignalStore {
public:
    /// Adds a signal; returns its index. Throws on duplicate names.
    int add(const std::string& name, double init = 0.0);

    [[nodiscard]] int index_of(std::string_view name) const; ///< -1 when absent
    [[nodiscard]] std::size_t size() const { return names_.size(); }
    [[nodiscard]] const std::string& name(int i) const { return names_[static_cast<std::size_t>(i)]; }
    [[nodiscard]] double init(int i) const { return init_[static_cast<std::size_t>(i)]; }

private:
    std::vector<std::string> names_;
    std::vector<double> init_;
    std::vector<std::pair<std::string, int>> by_name_; ///< sorted by name
};

class Node;
class Target;

/// Execution context handed to a task body for one scan.
class TaskContext {
public:
    /// Input pin values latched at release (order = TaskConfig::input_signals).
    [[nodiscard]] std::span<const double> inputs() const { return in_; }

    /// Output values; latched to signals at the deadline (or immediately,
    /// depending on the target's output mode).
    [[nodiscard]] std::span<double> outputs() { return out_; }

    /// Task period in seconds (the dt of clocked synchronous execution).
    [[nodiscard]] double dt() const { return dt_; }

    [[nodiscard]] SimTime release_time() const { return release_; }

    /// Active command interface: queues one debug frame on the node's
    /// debug UART. Charges instrumentation cycles (frame + per byte).
    void send_debug(std::span<const std::uint8_t> bytes);

    /// Buffers a word write into the node memory map, applied when the
    /// job completes (models the generated code updating its variables).
    void poke_u32(std::uint32_t addr, std::uint32_t value);
    void poke_f32(std::uint32_t addr, float value);

    /// Instrumentation cycles accumulated so far in this scan.
    [[nodiscard]] std::uint64_t instr_cycles() const { return instr_cycles_; }

private:
    friend class Node;
    std::span<const double> in_;
    std::span<double> out_;
    double dt_ = 0.0;
    SimTime release_ = 0;
    std::uint64_t instr_cycles_ = 0;
    std::vector<std::uint8_t> debug_bytes_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pokes_;
    std::uint32_t uart_cycles_per_byte_ = 0;
    std::uint32_t uart_cycles_per_frame_ = 0;
};

/// One periodic activity (a COMDES actor after code generation).
class TaskBody {
public:
    virtual ~TaskBody() = default;

    /// Re-establishes initial state (integrators, SM states).
    virtual void reset() {}

    /// One scan: read ctx.inputs(), write ctx.outputs(); returns the
    /// application cycles consumed (instrumentation cycles are charged
    /// separately through the context).
    virtual std::uint64_t execute(TaskContext& ctx) = 0;

    /// Checkpoint support: appends the body's mutable state as doubles
    /// (bit-exact; integers and booleans widen losslessly). Stateless
    /// bodies keep the no-op default.
    virtual void save_state(std::vector<double>& out) const { (void)out; }

    /// Restores what save_state wrote; returns the number of values
    /// consumed from the front of `in`.
    virtual std::size_t load_state(std::span<const double> in) {
        (void)in;
        return 0;
    }
};

struct TaskConfig {
    std::string name;
    SimTime period = kMs;
    SimTime deadline = 0; ///< 0 means "equals period"
    SimTime offset = 0;
    int priority = 0; ///< lower value = more urgent
    std::vector<int> input_signals;
    std::vector<int> output_signals;
};

/// Per-task execution statistics.
struct TaskStats {
    std::uint64_t releases = 0;
    std::uint64_t completions = 0;
    std::uint64_t overruns = 0;         ///< releases skipped: previous job still running
    std::uint64_t deadline_misses = 0;
    std::uint64_t suppressed = 0;       ///< releases skipped while target paused
    SimTime worst_response = 0;
    /// Output-latch instants relative to release, one per completion
    /// (the jitter study reads these).
    std::vector<SimTime> output_offsets;
};

/// Debug UART cost/wire model for the active command interface.
struct UartModel {
    double baud = 115'200;
    std::uint32_t cycles_per_byte = 100; ///< CPU cost to enqueue one byte
    std::uint32_t cycles_per_frame = 60; ///< CPU cost per send_debug call
};

enum class OutputMode { LatchAtDeadline, Immediate };

/// Host-side delivery of active-mode debug bytes (after wire delay).
using ByteSink = std::function<void(int node_id, std::span<const std::uint8_t>, SimTime)>;

/// One processing node: CPU + RAM + local signal replica + debug UART.
class Node {
public:
    Node(Target& target, int id, double clock_hz);

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] double clock_hz() const { return clock_hz_; }

    [[nodiscard]] MemoryMap& memory() { return memory_; }
    [[nodiscard]] const MemoryMap& memory() const { return memory_; }

    /// Registers a periodic task; call before Target::start().
    void add_task(TaskConfig cfg, std::unique_ptr<TaskBody> body);

    /// Local replica of a signal value.
    [[nodiscard]] double signal(int index) const {
        return local_signals_[static_cast<std::size_t>(index)];
    }

    /// Writes a local signal and propagates it to all other nodes
    /// (used by the environment/test harness; tasks publish via outputs).
    void publish_signal(int index, double value);

    /// Mirrors a signal into the memory map at every publish (passive
    /// debugging reads it from there).
    void map_signal_memory(int sig_index, std::uint32_t addr);

    [[nodiscard]] const TaskStats& task_stats(std::string_view task_name) const;
    [[nodiscard]] std::uint64_t app_cycles() const { return app_cycles_; }
    [[nodiscard]] std::uint64_t instr_cycles() const { return instr_cycles_; }

    /// Fraction of wall time the CPU was busy over [0, elapsed].
    [[nodiscard]] double cpu_utilization(SimTime elapsed) const;

private:
    friend class Target;
    friend class TaskContext;

    struct Task {
        TaskConfig cfg;
        std::unique_ptr<TaskBody> body;
        std::vector<double> in_latch;
        TaskStats stats;
        bool job_pending = false;
        std::size_t index = 0; ///< position in tasks_ (op serialization)
    };

    void start_tasks();
    void on_release(Task& task);
    void start_next_job();
    void complete_job(std::size_t task_index, SimTime release, std::vector<double> out,
                      std::vector<std::pair<std::uint32_t, std::uint32_t>> pokes,
                      std::vector<std::uint8_t> bytes);
    void finish_job(Task& task, SimTime release, std::vector<double> out);
    void latch_outputs(Task& task, SimTime release, const std::vector<double>& out);
    void set_local_signal(int index, double value);
    void save_state(StateWriter& w) const;
    void load_state(StateReader& r);

    Target* target_;
    int id_;
    double clock_hz_;
    MemoryMap memory_;
    std::vector<std::unique_ptr<Task>> tasks_;
    std::vector<double> local_signals_;
    std::map<int, std::uint32_t> signal_memory_;

    struct ReadyJob {
        Task* task;
        SimTime release;
        std::uint64_t seq;
    };
    std::deque<ReadyJob> ready_;
    bool cpu_busy_ = false;
    std::uint64_t job_seq_ = 0;
    std::uint64_t app_cycles_ = 0;
    std::uint64_t instr_cycles_ = 0;
    std::uint64_t busy_ns_ = 0;
    SimTime uart_busy_until_ = 0;
};

/// The whole simulated platform: simulator + nodes + broadcast network.
///
/// Checkpoint/restore: every one-shot simulator event the platform
/// schedules (job completions, deferred output latches, network
/// deliveries, debug-UART deliveries, scheduled environment stimuli)
/// flows through a typed pending-operation registry, so a snapshot can
/// serialize the in-flight work as data and a restore can re-create it
/// with the original dispatch ordering. Environment/test harnesses that
/// want their stimuli to survive a rewind must use schedule_publish()
/// instead of scheduling raw closures on sim().
class Target {
public:
    explicit Target(OutputMode mode = OutputMode::LatchAtDeadline) : mode_(mode) {}

    [[nodiscard]] Simulator& sim() { return sim_; }
    [[nodiscard]] SignalStore& signals() { return signals_; }
    [[nodiscard]] const SignalStore& signals() const { return signals_; }

    /// Adds a node (default clock models a small ARM7-class MCU).
    Node& add_node(double clock_hz = 48e6);

    [[nodiscard]] Node& node(int id) { return *nodes_[static_cast<std::size_t>(id)]; }
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

    /// One-hop delivery latency for signal propagation between nodes.
    void set_network_latency(SimTime latency) { net_latency_ = latency; }
    [[nodiscard]] SimTime network_latency() const { return net_latency_; }

    void set_uart(UartModel uart) { uart_ = uart; }
    [[nodiscard]] const UartModel& uart() const { return uart_; }

    /// Receives all active-mode debug traffic (the debugger host).
    void set_debug_sink(ByteSink sink) { debug_sink_ = std::move(sink); }

    [[nodiscard]] OutputMode output_mode() const { return mode_; }

    /// Initializes node signal replicas and schedules periodic releases.
    /// Call exactly once, before running the simulator.
    void start();

    /// Runs the simulation forward by `duration`. With a fault armed
    /// (inject_fault_at) whose instant falls inside the span, runs up to
    /// that instant, disarms the hook, and throws std::runtime_error.
    void run_for(SimTime duration);

    /// Arms a one-shot deterministic fault: the first run_for whose span
    /// reaches `at` advances the clock to `at` and throws `message` as a
    /// std::runtime_error. Testing/chaos hook for the hub's session
    /// crash isolation; one-shot so a revived session runs clean, and
    /// deliberately NOT serialized into snapshots (a restored timeline
    /// replays the healthy execution).
    void inject_fault_at(SimTime at, std::string message) {
        fault_at_ = at;
        fault_message_ = std::move(message);
    }
    [[nodiscard]] bool fault_armed() const { return fault_at_ >= 0; }

    /// Target halt control (what a JTAG halt / model-level breakpoint
    /// does): while paused, task releases are suppressed.
    void pause() { paused_ = true; }
    void resume() { paused_ = false; single_step_ = false; }
    [[nodiscard]] bool paused() const { return paused_; }

    /// Lets exactly one task release execute, then re-pauses. When
    /// `task_filter` is non-empty only a release of that task consumes
    /// the step (model-level stepping of one actor).
    void request_single_step(std::string task_filter = {}) {
        single_step_ = true;
        step_filter_ = std::move(task_filter);
    }

    /// Total instrumentation cycles across all nodes.
    [[nodiscard]] std::uint64_t total_instr_cycles() const;

    /// Schedules a rewind-safe environment stimulus: at time `at`,
    /// node `node` publishes `value` on signal `sig_index`. Unlike a raw
    /// sim().at() closure, the stimulus lives in the pending-operation
    /// registry and survives checkpoint/restore.
    void schedule_publish(SimTime at, int node, int sig_index, double value);

    /// Serializes the whole platform: simulator, pause/step state, the
    /// pending-operation registry, and every node (RAM, signal replicas,
    /// scheduler state, task statistics, task-body state). Throws
    /// std::runtime_error when a one-shot simulator event exists outside
    /// the registry (a raw closure that could not be restored).
    void save_state(StateWriter& w) const;

    /// In-place restore of a snapshot taken from this same platform.
    void load_state(StateReader& r);

private:
    friend class Node;
    friend class TaskContext;

    /// One serialized in-flight operation (the data behind what used to
    /// be a one-shot closure).
    struct PendingOp {
        enum class Kind : std::uint8_t {
            JobComplete = 1,  ///< apply pokes, emit UART bytes, finish the job
            OutputLatch = 2,  ///< timed-multitasking deferred output latch
            NetDeliver = 3,   ///< one-hop signal delivery to another node
            DebugDeliver = 4, ///< debug bytes reach the host sink
            PublishSignal = 5 ///< scheduled environment stimulus
        };
        Kind kind = Kind::JobComplete;
        int node = 0;
        std::size_t task = 0;
        SimTime release = 0;
        int sig = 0;
        double value = 0.0;
        std::vector<double> out;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> pokes;
        std::vector<std::uint8_t> bytes;
    };
    struct PendingOpRec {
        PendingOp op;
        SimTime t = 0;
        std::uint64_t seq = 0;
    };

    void schedule_op(SimTime t, PendingOp op);
    void schedule_op_restored(SimTime t, std::uint64_t seq, std::uint64_t id,
                              PendingOp op);
    void run_op(std::uint64_t id);
    void dispatch_op(PendingOp op);

    void broadcast(int from_node, int sig_index, double value);
    void deliver_debug(int node_id, std::vector<std::uint8_t> bytes, SimTime at);

    Simulator sim_;
    SignalStore signals_;
    std::vector<std::unique_ptr<Node>> nodes_;
    OutputMode mode_;
    SimTime net_latency_ = 200 * kUs;
    UartModel uart_;
    ByteSink debug_sink_;
    bool started_ = false;
    SimTime fault_at_ = -1; ///< armed one-shot fault instant; -1: disarmed
    std::string fault_message_;
    bool paused_ = false;
    bool single_step_ = false;
    std::string step_filter_;
    std::map<std::uint64_t, PendingOpRec> ops_; ///< in-flight one-shot work
    std::uint64_t next_op_ = 1;
};

} // namespace gmdf::rt
