// Simulated target memory map.
//
// The passive (JTAG) debug path reads target RAM without involving the
// CPU. Generated code places its observable variables (current SM states,
// latched signal values) at known addresses; the debugger polls them via
// the JTAG memory-access port.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rt/state.hpp"

namespace gmdf::rt {

/// Word-addressed RAM image with a symbol table. Addresses are byte
/// addresses, 4-byte aligned; cells are 32-bit words.
class MemoryMap {
public:
    /// Base address of the first allocated word (mimics an MCU SRAM base).
    static constexpr std::uint32_t kBase = 0x2000'0000;

    /// Allocates one word for `name`; returns its byte address.
    /// Throws std::invalid_argument on duplicate names.
    std::uint32_t alloc(const std::string& name);

    /// Address of a symbol; throws std::out_of_range when unknown.
    [[nodiscard]] std::uint32_t address_of(std::string_view name) const;

    [[nodiscard]] bool has_symbol(std::string_view name) const;

    /// Word access; throws std::out_of_range for unmapped/unaligned addresses.
    [[nodiscard]] std::uint32_t read_u32(std::uint32_t addr) const;
    void write_u32(std::uint32_t addr, std::uint32_t value);

    /// Float access (IEEE-754 single, as the generated code would store).
    [[nodiscard]] float read_f32(std::uint32_t addr) const {
        return std::bit_cast<float>(read_u32(addr));
    }
    void write_f32(std::uint32_t addr, float value) {
        write_u32(addr, std::bit_cast<std::uint32_t>(value));
    }

    [[nodiscard]] std::size_t word_count() const { return words_.size(); }

    /// Symbol table in allocation order: (name, address).
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint32_t>>& symbols() const {
        return symbols_;
    }

    /// Serializes the RAM image (words only — the symbol table is fixed
    /// at load time and shared by every snapshot of the same system).
    void save_state(StateWriter& w) const;

    /// Restores the RAM image; throws std::runtime_error when the
    /// snapshot's word count differs from this map's layout.
    void load_state(StateReader& r);

private:
    [[nodiscard]] std::size_t index_of(std::uint32_t addr) const;

    std::vector<std::uint32_t> words_;
    std::vector<std::pair<std::string, std::uint32_t>> symbols_;
    std::vector<std::pair<std::string, std::uint32_t>> by_name_; ///< sorted by name
};

} // namespace gmdf::rt
