#include "rt/memory.hpp"

#include <stdexcept>

#include "rt/symtab.hpp"

namespace gmdf::rt {

std::uint32_t MemoryMap::alloc(const std::string& name) {
    auto it = name_lower_bound(by_name_, name);
    if (it != by_name_.end() && it->first == name)
        throw std::invalid_argument("memory symbol '" + name + "' already allocated");
    std::uint32_t addr = kBase + static_cast<std::uint32_t>(words_.size()) * 4u;
    words_.push_back(0);
    symbols_.emplace_back(name, addr);
    by_name_.emplace(it, name, addr);
    return addr;
}

std::uint32_t MemoryMap::address_of(std::string_view name) const {
    auto it = name_lower_bound(by_name_, name);
    if (it == by_name_.end() || it->first != name)
        throw std::out_of_range("no memory symbol '" + std::string(name) + "'");
    return it->second;
}

bool MemoryMap::has_symbol(std::string_view name) const {
    auto it = name_lower_bound(by_name_, name);
    return it != by_name_.end() && it->first == name;
}

std::size_t MemoryMap::index_of(std::uint32_t addr) const {
    if (addr < kBase || (addr - kBase) % 4 != 0)
        throw std::out_of_range("unaligned or out-of-range address");
    std::size_t idx = (addr - kBase) / 4;
    if (idx >= words_.size()) throw std::out_of_range("address beyond allocated memory");
    return idx;
}

std::uint32_t MemoryMap::read_u32(std::uint32_t addr) const { return words_[index_of(addr)]; }

void MemoryMap::write_u32(std::uint32_t addr, std::uint32_t value) {
    words_[index_of(addr)] = value;
}

void MemoryMap::save_state(StateWriter& w) const {
    w.size(words_.size());
    for (std::uint32_t word : words_) w.u32(word);
}

void MemoryMap::load_state(StateReader& r) {
    std::size_t n = r.size();
    if (n != words_.size())
        throw std::runtime_error("memory snapshot does not match this map's layout");
    for (std::uint32_t& word : words_) word = r.u32();
}

} // namespace gmdf::rt
