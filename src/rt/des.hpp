// Discrete-event simulation kernel.
//
// The simulated embedded target (nodes, CPUs, links, the debugger host)
// all advance on one event queue with nanosecond resolution. Events at the
// same timestamp execute in scheduling order (stable FIFO).
//
// Checkpoint/restore (gmdf::replay) support: every event carries a stable
// id assigned at scheduling time; periodic events keep their id across
// re-arms. A snapshot records (id, time, seq, period) per pending periodic
// event plus the time and counters; restoring re-times the still-live
// periodic closures in place and drops one-shot events (their owners —
// rt::Target's pending-operation registry — re-create them from data).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rt/state.hpp"

namespace gmdf::rt {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kUs = 1'000;            ///< one microsecond
constexpr SimTime kMs = 1'000'000;        ///< one millisecond
constexpr SimTime kSec = 1'000'000'000;   ///< one second

/// Minimal event-queue simulator.
class Simulator {
public:
    /// Identity of one scheduled event: the stable id (periodic events
    /// keep it across re-arms) and the FIFO tie-break sequence number.
    struct ScheduledEvent {
        std::uint64_t id = 0;
        std::uint64_t seq = 0;
    };

    /// Current simulation time (time of the last dispatched event, or the
    /// horizon reached by run_until).
    [[nodiscard]] SimTime now() const { return now_; }

    /// Schedules `fn` at absolute time `t`; `t` must be >= now().
    /// Throws std::invalid_argument on an attempt to schedule in the past.
    ScheduledEvent at(SimTime t, std::function<void()> fn);

    /// Schedules `fn` at now() + dt (dt >= 0).
    ScheduledEvent after(SimTime dt, std::function<void()> fn) {
        return at(now_ + dt, std::move(fn));
    }

    /// Schedules `fn` at `start` and then every `period` thereafter, until
    /// the simulation stops being run. `period` must be positive.
    ScheduledEvent every(SimTime start, SimTime period, std::function<void()> fn);

    /// Re-creates a one-shot event from a snapshot with its original
    /// sequence number, so same-time ordering ties break exactly as in
    /// the recorded run. Restore path only.
    void schedule_restored(SimTime t, std::uint64_t seq, std::function<void()> fn);

    /// Dispatches the next event; false when the queue is empty.
    bool step();

    /// Dispatches all events with time <= horizon, then sets now() to the
    /// horizon (even if the queue still has later events).
    void run_until(SimTime horizon);

    /// Dispatches events until the queue is empty.
    void run_all();

    [[nodiscard]] std::size_t pending() const { return queue_.size(); }

    /// Pending one-shot (period == 0) events; a snapshot owner uses this
    /// to verify every one-shot in flight is re-creatable from its own
    /// records.
    [[nodiscard]] std::size_t pending_one_shot() const;

    /// Serializes time, counters, and the pending periodic events.
    /// One-shot events are deliberately not serialized — closures cannot
    /// be; their owners snapshot the data to re-create them.
    void save_state(StateWriter& w) const;

    /// In-place restore onto the same simulator instance: rewinds time
    /// and counters, drops every one-shot event, and re-times the live
    /// periodic events by id. Throws std::runtime_error when the snapshot
    /// names a periodic event that no longer exists (its closure is gone,
    /// so the state cannot be reached).
    void load_state(StateReader& r);

private:
    struct Event {
        SimTime t;
        std::uint64_t seq;
        std::function<void()> fn;
        SimTime period = 0;     ///< > 0: re-armed after dispatch (every())
        std::uint64_t id = 0;   ///< stable across re-arms
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            return a.t != b.t ? a.t > b.t : a.seq > b.seq;
        }
    };

    void push(Event ev);
    Event pop();

    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t next_id_ = 1;
    /// Min-heap (std::push_heap/pop_heap with Later) — a plain vector so
    /// save/load can iterate and rebuild it.
    std::vector<Event> queue_;
};

} // namespace gmdf::rt
