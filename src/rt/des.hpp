// Discrete-event simulation kernel.
//
// The simulated embedded target (nodes, CPUs, links, the debugger host)
// all advance on one event queue with nanosecond resolution. Events at the
// same timestamp execute in scheduling order (stable FIFO).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gmdf::rt {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kUs = 1'000;            ///< one microsecond
constexpr SimTime kMs = 1'000'000;        ///< one millisecond
constexpr SimTime kSec = 1'000'000'000;   ///< one second

/// Minimal event-queue simulator.
class Simulator {
public:
    /// Current simulation time (time of the last dispatched event, or the
    /// horizon reached by run_until).
    [[nodiscard]] SimTime now() const { return now_; }

    /// Schedules `fn` at absolute time `t`; `t` must be >= now().
    /// Throws std::invalid_argument on an attempt to schedule in the past.
    void at(SimTime t, std::function<void()> fn);

    /// Schedules `fn` at now() + dt (dt >= 0).
    void after(SimTime dt, std::function<void()> fn) { at(now_ + dt, std::move(fn)); }

    /// Schedules `fn` at `start` and then every `period` thereafter, until
    /// the simulation stops being run. `period` must be positive.
    void every(SimTime start, SimTime period, std::function<void()> fn);

    /// Dispatches the next event; false when the queue is empty.
    bool step();

    /// Dispatches all events with time <= horizon, then sets now() to the
    /// horizon (even if the queue still has later events).
    void run_until(SimTime horizon);

    /// Dispatches events until the queue is empty.
    void run_all();

    [[nodiscard]] std::size_t pending() const { return queue_.size(); }

private:
    struct Event {
        SimTime t;
        std::uint64_t seq;
        std::function<void()> fn;
        SimTime period = 0; ///< > 0: re-armed after dispatch (every())
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            return a.t != b.t ? a.t > b.t : a.seq > b.seq;
        }
    };

    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace gmdf::rt
