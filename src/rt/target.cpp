#include "rt/target.hpp"

#include <cmath>
#include <stdexcept>

#include "rt/symtab.hpp"

namespace gmdf::rt {

int SignalStore::add(const std::string& name, double init) {
    auto it = name_lower_bound(by_name_, name);
    if (it != by_name_.end() && it->first == name)
        throw std::invalid_argument("duplicate signal '" + name + "'");
    int idx = static_cast<int>(names_.size());
    names_.push_back(name);
    init_.push_back(init);
    by_name_.emplace(it, name, idx);
    return idx;
}

int SignalStore::index_of(std::string_view name) const {
    auto it = name_lower_bound(by_name_, name);
    return it == by_name_.end() || it->first != name ? -1 : it->second;
}

void TaskContext::send_debug(std::span<const std::uint8_t> bytes) {
    instr_cycles_ += uart_cycles_per_frame_ +
                     uart_cycles_per_byte_ * static_cast<std::uint64_t>(bytes.size());
    debug_bytes_.insert(debug_bytes_.end(), bytes.begin(), bytes.end());
}

void TaskContext::poke_u32(std::uint32_t addr, std::uint32_t value) {
    pokes_.emplace_back(addr, value);
}

void TaskContext::poke_f32(std::uint32_t addr, float value) {
    poke_u32(addr, std::bit_cast<std::uint32_t>(value));
}

Node::Node(Target& target, int id, double clock_hz)
    : target_(&target), id_(id), clock_hz_(clock_hz) {}

void Node::add_task(TaskConfig cfg, std::unique_ptr<TaskBody> body) {
    if (cfg.period <= 0) throw std::invalid_argument("task period must be positive");
    if (cfg.deadline == 0) cfg.deadline = cfg.period;
    if (cfg.deadline < 0 || cfg.deadline > cfg.period)
        throw std::invalid_argument("task deadline must be in (0, period]");
    auto task = std::make_unique<Task>();
    task->cfg = std::move(cfg);
    task->body = std::move(body);
    task->in_latch.resize(task->cfg.input_signals.size());
    task->index = tasks_.size();
    tasks_.push_back(std::move(task));
}

void Node::publish_signal(int index, double value) {
    set_local_signal(index, value);
    target_->broadcast(id_, index, value);
}

void Node::map_signal_memory(int sig_index, std::uint32_t addr) {
    signal_memory_[sig_index] = addr;
}

const TaskStats& Node::task_stats(std::string_view task_name) const {
    for (const auto& t : tasks_)
        if (t->cfg.name == task_name) return t->stats;
    throw std::out_of_range("no task '" + std::string(task_name) + "' on node " +
                            std::to_string(id_));
}

double Node::cpu_utilization(SimTime elapsed) const {
    return elapsed <= 0 ? 0.0
                        : static_cast<double>(busy_ns_) / static_cast<double>(elapsed);
}

void Node::start_tasks() {
    local_signals_.resize(target_->signals_.size());
    for (std::size_t i = 0; i < local_signals_.size(); ++i)
        set_local_signal(static_cast<int>(i), target_->signals_.init(static_cast<int>(i)));
    for (auto& task : tasks_) {
        Task* t = task.get();
        target_->sim_.every(t->cfg.offset == 0 ? t->cfg.period : t->cfg.offset,
                            t->cfg.period, [this, t] { on_release(*t); });
    }
}

void Node::on_release(Task& task) {
    if (target_->paused_) {
        bool matches = target_->single_step_ &&
                       (target_->step_filter_.empty() ||
                        target_->step_filter_ == task.cfg.name);
        if (!matches) {
            ++task.stats.suppressed;
            return;
        }
        target_->single_step_ = false; // consume the single-step budget
    }
    if (task.job_pending) {
        ++task.stats.overruns;
        return;
    }
    ++task.stats.releases;
    task.job_pending = true;
    // Input latch: copy the signal replica at the release instant.
    for (std::size_t i = 0; i < task.cfg.input_signals.size(); ++i)
        task.in_latch[i] = local_signals_[static_cast<std::size_t>(task.cfg.input_signals[i])];
    ready_.push_back({&task, target_->sim_.now(), job_seq_++});
    if (!cpu_busy_) start_next_job();
}

void Node::start_next_job() {
    if (ready_.empty()) {
        cpu_busy_ = false;
        return;
    }
    // Non-preemptive fixed priority: pick the most urgent ready job
    // (lowest priority value), FIFO within a priority level.
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready_.size(); ++i) {
        if (ready_[i].task->cfg.priority < ready_[best].task->cfg.priority) best = i;
    }
    ReadyJob job = ready_[best];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(best));
    cpu_busy_ = true;

    Task& task = *job.task;
    // Each job owns its output buffer: a deferred deadline latch of job k
    // must not be clobbered by job k+1 executing before it fires.
    std::vector<double> job_out(task.cfg.output_signals.size(), 0.0);
    TaskContext ctx;
    ctx.in_ = task.in_latch;
    ctx.out_ = job_out;
    ctx.dt_ = static_cast<double>(task.cfg.period) / static_cast<double>(kSec);
    ctx.release_ = job.release;
    ctx.uart_cycles_per_byte_ = target_->uart_.cycles_per_byte;
    ctx.uart_cycles_per_frame_ = target_->uart_.cycles_per_frame;

    std::uint64_t app = task.body->execute(ctx);
    app_cycles_ += app;
    instr_cycles_ += ctx.instr_cycles_;

    std::uint64_t total_cycles = app + ctx.instr_cycles_;
    auto duration = static_cast<SimTime>(
        std::ceil(static_cast<double>(total_cycles) / clock_hz_ * static_cast<double>(kSec)));
    busy_ns_ += static_cast<std::uint64_t>(duration);

    SimTime completion = target_->sim_.now() + duration;
    // Completion applies memory pokes, emits debug bytes, and hands the
    // outputs to the latch policy. Scheduled as a typed pending op so a
    // checkpoint can serialize the in-flight job.
    Target::PendingOp op;
    op.kind = Target::PendingOp::Kind::JobComplete;
    op.node = id_;
    op.task = task.index;
    op.release = job.release;
    op.out = std::move(job_out);
    op.pokes = std::move(ctx.pokes_);
    op.bytes = std::move(ctx.debug_bytes_);
    target_->schedule_op(completion, std::move(op));
}

void Node::complete_job(std::size_t task_index, SimTime release,
                        std::vector<double> out,
                        std::vector<std::pair<std::uint32_t, std::uint32_t>> pokes,
                        std::vector<std::uint8_t> bytes) {
    for (auto [addr, value] : pokes) memory_.write_u32(addr, value);
    if (!bytes.empty()) {
        // Serialized UART wire: 10 bits per byte (8N1 framing).
        SimTime start = std::max(target_->sim_.now(), uart_busy_until_);
        auto wire_ns = static_cast<SimTime>(
            static_cast<double>(bytes.size()) * 10.0 / target_->uart_.baud *
            static_cast<double>(kSec));
        uart_busy_until_ = start + wire_ns;
        target_->deliver_debug(id_, std::move(bytes), uart_busy_until_);
    }
    finish_job(*tasks_[task_index], release, std::move(out));
    start_next_job();
}

void Node::finish_job(Task& task, SimTime release, std::vector<double> out) {
    SimTime now = target_->sim_.now();
    ++task.stats.completions;
    task.stats.worst_response = std::max(task.stats.worst_response, now - release);
    task.job_pending = false;

    SimTime deadline_at = release + task.cfg.deadline;
    if (target_->mode_ == OutputMode::Immediate) {
        latch_outputs(task, release, out);
        return;
    }
    if (now > deadline_at) {
        ++task.stats.deadline_misses;
        latch_outputs(task, release, out); // late latch, recorded as a miss
        return;
    }
    // Timed multitasking: defer the output latch to the deadline instant.
    Target::PendingOp op;
    op.kind = Target::PendingOp::Kind::OutputLatch;
    op.node = id_;
    op.task = task.index;
    op.release = release;
    op.out = std::move(out);
    target_->schedule_op(deadline_at, std::move(op));
}

void Node::latch_outputs(Task& task, SimTime release, const std::vector<double>& out) {
    SimTime now = target_->sim_.now();
    task.stats.output_offsets.push_back(now - release);
    for (std::size_t i = 0; i < task.cfg.output_signals.size(); ++i)
        publish_signal(task.cfg.output_signals[i], out[i]);
}

void Node::save_state(StateWriter& w) const {
    memory_.save_state(w);
    w.doubles(local_signals_);
    w.b(cpu_busy_);
    w.u64(job_seq_);
    w.u64(app_cycles_);
    w.u64(instr_cycles_);
    w.u64(busy_ns_);
    w.i64(uart_busy_until_);
    w.size(ready_.size());
    for (const ReadyJob& j : ready_) {
        w.size(j.task->index);
        w.i64(j.release);
        w.u64(j.seq);
    }
    w.size(tasks_.size());
    for (const auto& t : tasks_) {
        w.doubles(t->in_latch);
        w.b(t->job_pending);
        const TaskStats& s = t->stats;
        w.u64(s.releases);
        w.u64(s.completions);
        w.u64(s.overruns);
        w.u64(s.deadline_misses);
        w.u64(s.suppressed);
        w.i64(s.worst_response);
        w.size(s.output_offsets.size());
        for (SimTime o : s.output_offsets) w.i64(o);
        std::vector<double> body;
        t->body->save_state(body);
        w.doubles(body);
    }
}

void Node::load_state(StateReader& r) {
    memory_.load_state(r);
    local_signals_ = r.doubles();
    cpu_busy_ = r.b();
    job_seq_ = r.u64();
    app_cycles_ = r.u64();
    instr_cycles_ = r.u64();
    busy_ns_ = r.u64();
    uart_busy_until_ = r.i64();
    ready_.clear();
    std::size_t n_ready = r.size();
    for (std::size_t i = 0; i < n_ready; ++i) {
        std::size_t task_index = r.size();
        SimTime release = r.i64();
        std::uint64_t seq = r.u64();
        if (task_index >= tasks_.size())
            throw std::runtime_error("snapshot ready-queue names an unknown task");
        ready_.push_back({tasks_[task_index].get(), release, seq});
    }
    std::size_t n_tasks = r.size();
    if (n_tasks != tasks_.size())
        throw std::runtime_error("snapshot task count does not match this node");
    for (auto& t : tasks_) {
        t->in_latch = r.doubles();
        t->job_pending = r.b();
        TaskStats& s = t->stats;
        s.releases = r.u64();
        s.completions = r.u64();
        s.overruns = r.u64();
        s.deadline_misses = r.u64();
        s.suppressed = r.u64();
        s.worst_response = r.i64();
        std::size_t n_off = r.size();
        s.output_offsets.clear();
        s.output_offsets.reserve(n_off);
        for (std::size_t i = 0; i < n_off; ++i) s.output_offsets.push_back(r.i64());
        std::vector<double> body = r.doubles();
        std::size_t used = t->body->load_state(body);
        if (used != body.size())
            throw std::runtime_error("task body consumed a different state size");
    }
}

void Node::set_local_signal(int index, double value) {
    local_signals_[static_cast<std::size_t>(index)] = value;
    auto it = signal_memory_.find(index);
    if (it != signal_memory_.end())
        memory_.write_f32(it->second, static_cast<float>(value));
}

Node& Target::add_node(double clock_hz) {
    if (started_) throw std::logic_error("cannot add nodes after start()");
    nodes_.push_back(std::make_unique<Node>(*this, static_cast<int>(nodes_.size()), clock_hz));
    return *nodes_.back();
}

void Target::start() {
    if (started_) throw std::logic_error("Target::start() called twice");
    started_ = true;
    for (auto& n : nodes_) n->start_tasks();
}

void Target::run_for(SimTime duration) {
    SimTime horizon = sim_.now() + duration;
    if (fault_at_ >= 0 && fault_at_ <= horizon) {
        SimTime at = fault_at_;
        if (at > sim_.now()) sim_.run_until(at);
        fault_at_ = -1; // one-shot: a revived session runs clean
        std::string message = std::move(fault_message_);
        fault_message_.clear();
        throw std::runtime_error(message.empty() ? "injected fault" : message);
    }
    sim_.run_until(horizon);
}

std::uint64_t Target::total_instr_cycles() const {
    std::uint64_t total = 0;
    for (const auto& n : nodes_) total += n->instr_cycles();
    return total;
}

void Target::save_state(StateWriter& w) const {
    if (!started_)
        throw std::runtime_error("cannot snapshot a target before start()");
    if (sim_.pending_one_shot() != ops_.size())
        throw std::runtime_error(
            "one-shot simulator events pending outside the op registry "
            "(raw closures cannot be restored)");
    sim_.save_state(w);
    w.b(paused_);
    w.b(single_step_);
    w.str(step_filter_);
    w.u64(next_op_);
    w.size(ops_.size());
    for (const auto& [id, rec] : ops_) {
        w.u64(id);
        w.i64(rec.t);
        w.u64(rec.seq);
        const PendingOp& op = rec.op;
        w.u8(static_cast<std::uint8_t>(op.kind));
        w.i32(op.node);
        w.size(op.task);
        w.i64(op.release);
        w.i32(op.sig);
        w.f64(op.value);
        w.doubles(op.out);
        w.size(op.pokes.size());
        for (auto [addr, value] : op.pokes) {
            w.u32(addr);
            w.u32(value);
        }
        w.bytes(op.bytes);
    }
    w.size(nodes_.size());
    for (const auto& n : nodes_) n->save_state(w);
}

void Target::load_state(StateReader& r) {
    sim_.load_state(r);
    paused_ = r.b();
    single_step_ = r.b();
    step_filter_ = r.str();
    next_op_ = r.u64();
    ops_.clear();
    std::size_t n_ops = r.size();
    for (std::size_t i = 0; i < n_ops; ++i) {
        std::uint64_t id = r.u64();
        SimTime t = r.i64();
        std::uint64_t seq = r.u64();
        PendingOp op;
        op.kind = static_cast<PendingOp::Kind>(r.u8());
        op.node = r.i32();
        op.task = r.size();
        op.release = r.i64();
        op.sig = r.i32();
        op.value = r.f64();
        op.out = r.doubles();
        std::size_t n_pokes = r.size();
        op.pokes.clear();
        op.pokes.reserve(n_pokes);
        for (std::size_t p = 0; p < n_pokes; ++p) {
            std::uint32_t addr = r.u32();
            std::uint32_t value = r.u32();
            op.pokes.emplace_back(addr, value);
        }
        op.bytes = r.bytes();
        schedule_op_restored(t, seq, id, std::move(op));
    }
    std::size_t n_nodes = r.size();
    if (n_nodes != nodes_.size())
        throw std::runtime_error("snapshot node count does not match this target");
    for (auto& n : nodes_) n->load_state(r);
}

void Target::broadcast(int from_node, int sig_index, double value) {
    for (auto& n : nodes_) {
        if (n->id() == from_node) continue;
        PendingOp op;
        op.kind = PendingOp::Kind::NetDeliver;
        op.node = n->id();
        op.sig = sig_index;
        op.value = value;
        schedule_op(sim_.now() + net_latency_, std::move(op));
    }
}

void Target::deliver_debug(int node_id, std::vector<std::uint8_t> bytes, SimTime at) {
    if (!debug_sink_) return;
    PendingOp op;
    op.kind = PendingOp::Kind::DebugDeliver;
    op.node = node_id;
    op.bytes = std::move(bytes);
    schedule_op(at, std::move(op));
}

void Target::schedule_publish(SimTime at, int node, int sig_index, double value) {
    PendingOp op;
    op.kind = PendingOp::Kind::PublishSignal;
    op.node = node;
    op.sig = sig_index;
    op.value = value;
    schedule_op(at, std::move(op));
}

void Target::schedule_op(SimTime t, PendingOp op) {
    std::uint64_t id = next_op_++;
    Simulator::ScheduledEvent ev = sim_.at(t, [this, id] { run_op(id); });
    ops_.emplace(id, PendingOpRec{std::move(op), t, ev.seq});
}

void Target::schedule_op_restored(SimTime t, std::uint64_t seq, std::uint64_t id,
                                  PendingOp op) {
    sim_.schedule_restored(t, seq, [this, id] { run_op(id); });
    ops_.emplace(id, PendingOpRec{std::move(op), t, seq});
}

void Target::run_op(std::uint64_t id) {
    auto it = ops_.find(id);
    if (it == ops_.end()) return; // dropped by a restore between schedule and fire
    PendingOp op = std::move(it->second.op);
    ops_.erase(it);
    dispatch_op(std::move(op));
}

void Target::dispatch_op(PendingOp op) {
    switch (op.kind) {
    case PendingOp::Kind::JobComplete:
        nodes_[static_cast<std::size_t>(op.node)]->complete_job(
            op.task, op.release, std::move(op.out), std::move(op.pokes),
            std::move(op.bytes));
        break;
    case PendingOp::Kind::OutputLatch: {
        Node& n = *nodes_[static_cast<std::size_t>(op.node)];
        n.latch_outputs(*n.tasks_[op.task], op.release, op.out);
        break;
    }
    case PendingOp::Kind::NetDeliver:
        nodes_[static_cast<std::size_t>(op.node)]->set_local_signal(op.sig, op.value);
        break;
    case PendingOp::Kind::DebugDeliver:
        if (debug_sink_) debug_sink_(op.node, op.bytes, sim_.now());
        break;
    case PendingOp::Kind::PublishSignal:
        nodes_[static_cast<std::size_t>(op.node)]->publish_signal(op.sig, op.value);
        break;
    }
}

} // namespace gmdf::rt
