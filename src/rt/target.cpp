#include "rt/target.hpp"

#include <cmath>
#include <stdexcept>

#include "rt/symtab.hpp"

namespace gmdf::rt {

int SignalStore::add(const std::string& name, double init) {
    auto it = name_lower_bound(by_name_, name);
    if (it != by_name_.end() && it->first == name)
        throw std::invalid_argument("duplicate signal '" + name + "'");
    int idx = static_cast<int>(names_.size());
    names_.push_back(name);
    init_.push_back(init);
    by_name_.emplace(it, name, idx);
    return idx;
}

int SignalStore::index_of(std::string_view name) const {
    auto it = name_lower_bound(by_name_, name);
    return it == by_name_.end() || it->first != name ? -1 : it->second;
}

void TaskContext::send_debug(std::span<const std::uint8_t> bytes) {
    instr_cycles_ += uart_cycles_per_frame_ +
                     uart_cycles_per_byte_ * static_cast<std::uint64_t>(bytes.size());
    debug_bytes_.insert(debug_bytes_.end(), bytes.begin(), bytes.end());
}

void TaskContext::poke_u32(std::uint32_t addr, std::uint32_t value) {
    pokes_.emplace_back(addr, value);
}

void TaskContext::poke_f32(std::uint32_t addr, float value) {
    poke_u32(addr, std::bit_cast<std::uint32_t>(value));
}

Node::Node(Target& target, int id, double clock_hz)
    : target_(&target), id_(id), clock_hz_(clock_hz) {}

void Node::add_task(TaskConfig cfg, std::unique_ptr<TaskBody> body) {
    if (cfg.period <= 0) throw std::invalid_argument("task period must be positive");
    if (cfg.deadline == 0) cfg.deadline = cfg.period;
    if (cfg.deadline < 0 || cfg.deadline > cfg.period)
        throw std::invalid_argument("task deadline must be in (0, period]");
    auto task = std::make_unique<Task>();
    task->cfg = std::move(cfg);
    task->body = std::move(body);
    task->in_latch.resize(task->cfg.input_signals.size());
    tasks_.push_back(std::move(task));
}

void Node::publish_signal(int index, double value) {
    set_local_signal(index, value);
    target_->broadcast(id_, index, value);
}

void Node::map_signal_memory(int sig_index, std::uint32_t addr) {
    signal_memory_[sig_index] = addr;
}

const TaskStats& Node::task_stats(std::string_view task_name) const {
    for (const auto& t : tasks_)
        if (t->cfg.name == task_name) return t->stats;
    throw std::out_of_range("no task '" + std::string(task_name) + "' on node " +
                            std::to_string(id_));
}

double Node::cpu_utilization(SimTime elapsed) const {
    return elapsed <= 0 ? 0.0
                        : static_cast<double>(busy_ns_) / static_cast<double>(elapsed);
}

void Node::start_tasks() {
    local_signals_.resize(target_->signals_.size());
    for (std::size_t i = 0; i < local_signals_.size(); ++i)
        set_local_signal(static_cast<int>(i), target_->signals_.init(static_cast<int>(i)));
    for (auto& task : tasks_) {
        Task* t = task.get();
        target_->sim_.every(t->cfg.offset == 0 ? t->cfg.period : t->cfg.offset,
                            t->cfg.period, [this, t] { on_release(*t); });
    }
}

void Node::on_release(Task& task) {
    if (target_->paused_) {
        bool matches = target_->single_step_ &&
                       (target_->step_filter_.empty() ||
                        target_->step_filter_ == task.cfg.name);
        if (!matches) {
            ++task.stats.suppressed;
            return;
        }
        target_->single_step_ = false; // consume the single-step budget
    }
    if (task.job_pending) {
        ++task.stats.overruns;
        return;
    }
    ++task.stats.releases;
    task.job_pending = true;
    // Input latch: copy the signal replica at the release instant.
    for (std::size_t i = 0; i < task.cfg.input_signals.size(); ++i)
        task.in_latch[i] = local_signals_[static_cast<std::size_t>(task.cfg.input_signals[i])];
    ready_.push_back({&task, target_->sim_.now(), job_seq_++});
    if (!cpu_busy_) start_next_job();
}

void Node::start_next_job() {
    if (ready_.empty()) {
        cpu_busy_ = false;
        return;
    }
    // Non-preemptive fixed priority: pick the most urgent ready job
    // (lowest priority value), FIFO within a priority level.
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready_.size(); ++i) {
        if (ready_[i].task->cfg.priority < ready_[best].task->cfg.priority) best = i;
    }
    ReadyJob job = ready_[best];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(best));
    cpu_busy_ = true;

    Task& task = *job.task;
    // Each job owns its output buffer: a deferred deadline latch of job k
    // must not be clobbered by job k+1 executing before it fires.
    std::vector<double> job_out(task.cfg.output_signals.size(), 0.0);
    TaskContext ctx;
    ctx.in_ = task.in_latch;
    ctx.out_ = job_out;
    ctx.dt_ = static_cast<double>(task.cfg.period) / static_cast<double>(kSec);
    ctx.release_ = job.release;
    ctx.uart_cycles_per_byte_ = target_->uart_.cycles_per_byte;
    ctx.uart_cycles_per_frame_ = target_->uart_.cycles_per_frame;

    std::uint64_t app = task.body->execute(ctx);
    app_cycles_ += app;
    instr_cycles_ += ctx.instr_cycles_;

    std::uint64_t total_cycles = app + ctx.instr_cycles_;
    auto duration = static_cast<SimTime>(
        std::ceil(static_cast<double>(total_cycles) / clock_hz_ * static_cast<double>(kSec)));
    busy_ns_ += static_cast<std::uint64_t>(duration);

    SimTime completion = target_->sim_.now() + duration;
    // Completion applies memory pokes, emits debug bytes, and hands the
    // outputs to the latch policy.
    target_->sim_.at(completion, [this, &task, job, out = std::move(job_out),
                                  pokes = std::move(ctx.pokes_),
                                  bytes = std::move(ctx.debug_bytes_)]() mutable {
        for (auto [addr, value] : pokes) memory_.write_u32(addr, value);
        if (!bytes.empty()) {
            // Serialized UART wire: 10 bits per byte (8N1 framing).
            SimTime start = std::max(target_->sim_.now(), uart_busy_until_);
            auto wire_ns = static_cast<SimTime>(
                static_cast<double>(bytes.size()) * 10.0 / target_->uart_.baud *
                static_cast<double>(kSec));
            uart_busy_until_ = start + wire_ns;
            target_->deliver_debug(id_, std::move(bytes), uart_busy_until_);
        }
        finish_job(task, job.release, std::move(out));
        start_next_job();
    });
}

void Node::finish_job(Task& task, SimTime release, std::vector<double> out) {
    SimTime now = target_->sim_.now();
    ++task.stats.completions;
    task.stats.worst_response = std::max(task.stats.worst_response, now - release);
    task.job_pending = false;

    SimTime deadline_at = release + task.cfg.deadline;
    if (target_->mode_ == OutputMode::Immediate) {
        latch_outputs(task, release, out);
        return;
    }
    if (now > deadline_at) {
        ++task.stats.deadline_misses;
        latch_outputs(task, release, out); // late latch, recorded as a miss
        return;
    }
    // Timed multitasking: defer the output latch to the deadline instant.
    target_->sim_.at(deadline_at, [this, &task, release, held = std::move(out)] {
        latch_outputs(task, release, held);
    });
}

void Node::latch_outputs(Task& task, SimTime release, const std::vector<double>& out) {
    SimTime now = target_->sim_.now();
    task.stats.output_offsets.push_back(now - release);
    for (std::size_t i = 0; i < task.cfg.output_signals.size(); ++i)
        publish_signal(task.cfg.output_signals[i], out[i]);
}

void Node::set_local_signal(int index, double value) {
    local_signals_[static_cast<std::size_t>(index)] = value;
    auto it = signal_memory_.find(index);
    if (it != signal_memory_.end())
        memory_.write_f32(it->second, static_cast<float>(value));
}

Node& Target::add_node(double clock_hz) {
    if (started_) throw std::logic_error("cannot add nodes after start()");
    nodes_.push_back(std::make_unique<Node>(*this, static_cast<int>(nodes_.size()), clock_hz));
    return *nodes_.back();
}

void Target::start() {
    if (started_) throw std::logic_error("Target::start() called twice");
    started_ = true;
    for (auto& n : nodes_) n->start_tasks();
}

std::uint64_t Target::total_instr_cycles() const {
    std::uint64_t total = 0;
    for (const auto& n : nodes_) total += n->instr_cycles();
    return total;
}

void Target::broadcast(int from_node, int sig_index, double value) {
    for (auto& n : nodes_) {
        if (n->id() == from_node) continue;
        Node* dest = n.get();
        sim_.after(net_latency_, [dest, sig_index, value] {
            dest->set_local_signal(sig_index, value);
        });
    }
}

void Target::deliver_debug(int node_id, std::vector<std::uint8_t> bytes, SimTime at) {
    if (!debug_sink_) return;
    sim_.at(at, [this, node_id, bytes = std::move(bytes), at] {
        debug_sink_(node_id, bytes, at);
    });
}

} // namespace gmdf::rt
