// Compact binary state codec for checkpoint/restore.
//
// Every layer that participates in deterministic snapshots (the DES
// kernel, the memory map, the target platform, the debugger engine)
// serializes itself through a StateWriter and restores through a
// StateReader. The encoding is explicit little-endian with fixed-width
// integers and bit-exact IEEE doubles/singles, so a snapshot taken on
// one run restores bit-for-bit on another — which is what makes
// rewind + re-execution byte-identical to the original forward run.
//
// Readers validate bounds on every access and throw std::runtime_error
// on truncation; the replay layer wraps that into its typed errors
// before anything reaches the protocol surface.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace gmdf::rt {

/// Appends fixed-width little-endian fields to a byte buffer.
class StateWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { put_le(v); }
    void u32(std::uint32_t v) { put_le(v); }
    void u64(std::uint64_t v) { put_le(v); }
    void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

    void str(const std::string& s) {
        size(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }
    void bytes(std::span<const std::uint8_t> s) {
        size(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }
    void doubles(std::span<const double> s) {
        size(s.size());
        for (double v : s) f64(v);
    }

    [[nodiscard]] std::size_t size_bytes() const { return buf_.size(); }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
    [[nodiscard]] const std::vector<std::uint8_t>& buffer() const { return buf_; }

private:
    template <class T> void put_le(T v) {
        for (std::size_t i = 0; i < sizeof(T); ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf_;
};

/// Reads fields written by StateWriter, in the same order. Throws
/// std::runtime_error("snapshot truncated") past the end.
class StateReader {
public:
    explicit StateReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8() { return take(1)[0]; }
    std::uint16_t u16() { return get_le<std::uint16_t>(); }
    std::uint32_t u32() { return get_le<std::uint32_t>(); }
    std::uint64_t u64() { return get_le<std::uint64_t>(); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }
    float f32() { return std::bit_cast<float>(u32()); }
    double f64() { return std::bit_cast<double>(u64()); }
    std::size_t size() { return static_cast<std::size_t>(u64()); }

    std::string str() {
        std::size_t n = checked_count(size(), 1);
        auto s = take(n);
        return {reinterpret_cast<const char*>(s.data()), n};
    }
    std::vector<std::uint8_t> bytes() {
        std::size_t n = checked_count(size(), 1);
        auto s = take(n);
        return {s.begin(), s.end()};
    }
    std::vector<double> doubles() {
        std::size_t n = checked_count(size(), 8);
        std::vector<double> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) out.push_back(f64());
        return out;
    }

    [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

private:
    std::span<const std::uint8_t> take(std::size_t n) {
        if (n > data_.size() - pos_) throw std::runtime_error("snapshot truncated");
        auto s = data_.subspan(pos_, n);
        pos_ += n;
        return s;
    }
    /// Element counts are validated against the remaining payload before
    /// any allocation, so a corrupt length can't trigger a huge reserve.
    std::size_t checked_count(std::size_t n, std::size_t elem_size) {
        if (n > (data_.size() - pos_) / elem_size)
            throw std::runtime_error("snapshot truncated");
        return n;
    }
    template <class T> T get_le() {
        auto s = take(sizeof(T));
        T v = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i)
            v = static_cast<T>(v | (static_cast<T>(s[i]) << (8 * i)));
        return v;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

} // namespace gmdf::rt
