#include "rt/des.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>

namespace gmdf::rt {

void Simulator::push(Event ev) {
    queue_.push_back(std::move(ev));
    std::push_heap(queue_.begin(), queue_.end(), Later{});
}

Simulator::Event Simulator::pop() {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    return ev;
}

Simulator::ScheduledEvent Simulator::at(SimTime t, std::function<void()> fn) {
    if (t < now_) throw std::invalid_argument("cannot schedule event in the past");
    ScheduledEvent handle{next_id_++, seq_++};
    push({t, handle.seq, std::move(fn), 0, handle.id});
    return handle;
}

Simulator::ScheduledEvent Simulator::every(SimTime start, SimTime period,
                                           std::function<void()> fn) {
    if (period <= 0) throw std::invalid_argument("period must be positive");
    if (start < now_) throw std::invalid_argument("cannot schedule event in the past");
    // One closure for the task's whole lifetime: step() re-arms periodic
    // events by moving the same Event back into the queue, so a periodic
    // tick allocates nothing.
    ScheduledEvent handle{next_id_++, seq_++};
    push({start, handle.seq, std::move(fn), period, handle.id});
    return handle;
}

void Simulator::schedule_restored(SimTime t, std::uint64_t seq,
                                  std::function<void()> fn) {
    // One-shot ids are never matched (only periodic events restore by
    // id), and consuming next_id_ here would make a restored simulator
    // drift from the original id sequence — breaking bit-identical
    // re-capture. Restored one-shots use the reserved id 0.
    push({t, seq, std::move(fn), 0, 0});
}

bool Simulator::step() {
    if (queue_.empty()) return false;
    Event ev = pop();
    now_ = ev.t;
    ev.fn();
    if (ev.period > 0) {
        // Re-arm after the handler, matching one-shot ordering: events
        // the handler scheduled get earlier sequence numbers.
        ev.t += ev.period;
        ev.seq = seq_++;
        push(std::move(ev));
    }
    return true;
}

void Simulator::run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.front().t <= horizon) step();
    if (now_ < horizon) now_ = horizon;
}

void Simulator::run_all() {
    while (step()) {}
}

std::size_t Simulator::pending_one_shot() const {
    std::size_t n = 0;
    for (const Event& ev : queue_)
        if (ev.period == 0) ++n;
    return n;
}

void Simulator::save_state(StateWriter& w) const {
    w.i64(now_);
    w.u64(seq_);
    w.u64(next_id_);
    // Canonical order (by id), not heap-layout order: the heap's vector
    // layout is rebuilt on restore, and a snapshot of the restored
    // simulator must be bit-identical to the original.
    std::vector<const Event*> periodic;
    for (const Event& ev : queue_)
        if (ev.period > 0) periodic.push_back(&ev);
    std::sort(periodic.begin(), periodic.end(),
              [](const Event* a, const Event* b) { return a->id < b->id; });
    w.size(periodic.size());
    for (const Event* ev : periodic) {
        w.u64(ev->id);
        w.i64(ev->t);
        w.u64(ev->seq);
        w.i64(ev->period);
    }
}

void Simulator::load_state(StateReader& r) {
    now_ = r.i64();
    seq_ = r.u64();
    next_id_ = r.u64();
    std::map<std::uint64_t, std::tuple<SimTime, std::uint64_t, SimTime>> saved;
    std::size_t n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t id = r.u64();
        SimTime t = r.i64();
        std::uint64_t seq = r.u64();
        SimTime period = r.i64();
        saved.emplace(id, std::tuple{t, seq, period});
    }
    // One-shots are dropped (their owners re-create them); periodic
    // events registered after the snapshot didn't exist then and are
    // dropped too; surviving periodic events rewind to their recorded
    // fire time and sequence number.
    std::vector<Event> kept;
    kept.reserve(queue_.size());
    for (Event& ev : queue_) {
        if (ev.period == 0) continue;
        auto it = saved.find(ev.id);
        if (it == saved.end()) continue;
        auto [t, seq, period] = it->second;
        ev.t = t;
        ev.seq = seq;
        ev.period = period;
        kept.push_back(std::move(ev));
        saved.erase(it);
    }
    if (!saved.empty())
        throw std::runtime_error(
            "snapshot names a periodic event that no longer exists");
    queue_ = std::move(kept);
    std::make_heap(queue_.begin(), queue_.end(), Later{});
}

} // namespace gmdf::rt
