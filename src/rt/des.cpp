#include "rt/des.hpp"

#include <memory>
#include <stdexcept>

namespace gmdf::rt {

void Simulator::at(SimTime t, std::function<void()> fn) {
    if (t < now_) throw std::invalid_argument("cannot schedule event in the past");
    queue_.push({t, seq_++, std::move(fn)});
}

void Simulator::every(SimTime start, SimTime period, std::function<void()> fn) {
    if (period <= 0) throw std::invalid_argument("period must be positive");
    // The wrapper reschedules itself; shared_ptr lets it self-reference.
    auto wrapper = std::make_shared<std::function<void(SimTime)>>();
    *wrapper = [this, period, fn = std::move(fn), wrapper](SimTime due) {
        fn();
        at(due + period, [wrapper, due, period] { (*wrapper)(due + period); });
    };
    at(start, [wrapper, start] { (*wrapper)(start); });
}

bool Simulator::step() {
    if (queue_.empty()) return false;
    // Move the handler out before popping so it can schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ev.fn();
    return true;
}

void Simulator::run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.top().t <= horizon) step();
    if (now_ < horizon) now_ = horizon;
}

void Simulator::run_all() {
    while (step()) {}
}

} // namespace gmdf::rt
