#include "rt/des.hpp"

#include <memory>
#include <stdexcept>

namespace gmdf::rt {

void Simulator::at(SimTime t, std::function<void()> fn) {
    if (t < now_) throw std::invalid_argument("cannot schedule event in the past");
    queue_.push({t, seq_++, std::move(fn)});
}

void Simulator::every(SimTime start, SimTime period, std::function<void()> fn) {
    if (period <= 0) throw std::invalid_argument("period must be positive");
    if (start < now_) throw std::invalid_argument("cannot schedule event in the past");
    // One closure for the task's whole lifetime: step() re-arms periodic
    // events by moving the same Event back into the queue, so a periodic
    // tick allocates nothing (the old implementation re-wrapped a fresh
    // heap-allocated std::function every period).
    queue_.push({start, seq_++, std::move(fn), period});
}

bool Simulator::step() {
    if (queue_.empty()) return false;
    // Move the handler out before popping so it can schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ev.fn();
    if (ev.period > 0) {
        // Re-arm after the handler, matching the old wrapper's ordering:
        // events the handler scheduled get earlier sequence numbers.
        ev.t += ev.period;
        ev.seq = seq_++;
        queue_.push(std::move(ev));
    }
    return true;
}

void Simulator::run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.top().t <= horizon) step();
    if (now_ < horizon) now_ = horizon;
}

void Simulator::run_all() {
    while (step()) {}
}

} // namespace gmdf::rt
