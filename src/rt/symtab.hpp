// Shared helper for the rt module's sorted flat symbol tables
// (SignalStore, MemoryMap): heterogeneous binary search over
// vector<pair<string, V>> sorted by name, with no std::string
// materialization on lookup.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gmdf::rt {

/// First sorted entry not less than `name`.
template <typename V>
[[nodiscard]] auto name_lower_bound(const std::vector<std::pair<std::string, V>>& table,
                                    std::string_view name) {
    return std::lower_bound(table.begin(), table.end(), name,
                            [](const auto& entry, std::string_view key) {
                                return entry.first < key;
                            });
}

} // namespace gmdf::rt
