#include "hub/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"

namespace gmdf::hub {

/// One session's work for this pump. Exclusively owned by whichever
/// worker popped it (handoff happens under a shard mutex, which orders
/// the session state), so its fields need no atomics.
struct ShardedScheduler::Item {
    SessionRegistry::Entry* entry = nullptr;
    rt::SimTime remaining = 0;
    std::uint64_t slices = 0;
    rt::SimTime advanced = 0;
};

void ShardedScheduler::set_threads(int threads) {
    threads_ = std::clamp(threads, 1, 256);
    shards_.resize(static_cast<std::size_t>(threads_));
}

void ShardedScheduler::set_budget(rt::SimTime budget) {
    if (budget <= 0) throw std::invalid_argument("scheduler budget must be positive");
    budget_ = budget;
}

void ShardedScheduler::pump(SessionRegistry& registry, rt::SimTime duration,
                            const SliceHook& after_slice) {
    if (duration <= 0) return;
    // Faulted sessions are quarantined from the rotation; size the pool
    // for the sessions that will actually be pumped.
    int live = 0;
    for (const auto& e : registry.entries())
        if (!e->faulted()) ++live;
    const int workers = std::min(threads_, live);
    if (workers <= 1) {
        pump_serial(registry, duration, after_slice);
        return;
    }
    pump_parallel(registry, duration, after_slice, workers);
}

void ShardedScheduler::pump_serial(SessionRegistry& registry, rt::SimTime duration,
                                   const SliceHook& after_slice) {
    // The PollScheduler loop, verbatim: round-robin in registry order,
    // one budget slice per session per round. Single-session transcripts
    // under any thread count are byte-identical to PollScheduler's.
    std::map<int, rt::SimTime> remaining;
    for (const auto& e : registry.entries())
        if (!e->faulted()) remaining[e->id] = duration;

    const bool has_hook = static_cast<bool>(after_slice);
    ShardStats& shard = shards_.front();
    shard.sessions = static_cast<int>(remaining.size());
    WatchdogStats tally; // merged below so shard deltas are visible
    if (obs::tracer().enabled())
        obs::tracer().set_thread_name(obs::Tracer::kShardTidBase, "shard-0");

    bool any = true;
    while (any) {
        any = false;
        for (const auto& e : registry.entries()) {
            auto it = remaining.find(e->id);
            if (it == remaining.end() || it->second <= 0) continue;
            rt::SimTime slice = std::min(budget_, it->second);
            bool alive = pump_session_slice_guarded(*e, slice, watchdog_, tally,
                                                    obs::Tracer::kShardTidBase);
            it->second -= slice;
            any = true;
            SessionPumpStats& s = stats_[e->id];
            ++s.slices;
            s.advanced += slice;
            ++total_slices_;
            ++shard.slices;
            shard.advanced += slice;
            if (has_hook) after_slice(*e);
            if (!alive) {
                it->second = 0; // quarantined: out of this rotation too
                ++shard.faulted;
            }
        }
    }
    shard.overruns += tally.overruns;
    watchdog_stats_.overruns += tally.overruns;
    watchdog_stats_.runaways += tally.runaways;
}

void ShardedScheduler::pump_parallel(SessionRegistry& registry, rt::SimTime duration,
                                     const SliceHook& after_slice, int workers) {
    struct ShardQueue {
        std::mutex mu;
        std::deque<Item*> items;
    };
    /// Per-worker accumulators, merged into the scheduler's lifetime
    /// counters after the join (no shared writes during the pump).
    struct WorkerTally {
        std::uint64_t slices = 0;
        rt::SimTime advanced = 0;
        std::uint64_t steals = 0;
        std::uint64_t faulted = 0;
        WatchdogStats watchdog;
    };

    // Deal the live (non-faulted) fleet round-robin across the shards,
    // in registry order.
    std::vector<Item> items(registry.size());
    std::vector<ShardQueue> queues(static_cast<std::size_t>(workers));
    {
        std::size_t i = 0;
        for (const auto& e : registry.entries()) {
            if (e->faulted()) continue;
            items[i] = {e.get(), duration, 0, 0};
            queues[i % static_cast<std::size_t>(workers)].items.push_back(&items[i]);
            ++i;
        }
        items.resize(i);
    }
    for (int w = 0; w < workers; ++w)
        shards_[static_cast<std::size_t>(w)].sessions =
            static_cast<int>(queues[static_cast<std::size_t>(w)].items.size());
    for (std::size_t w = static_cast<std::size_t>(workers); w < shards_.size(); ++w)
        shards_[w].sessions = 0;

    // An item is (a) queued on exactly one shard, (b) exclusively held
    // by one worker, or (c) finished. in_flight counts (b); it is
    // incremented under the shard mutex that popped the item and
    // decremented only after any re-queue, so "every queue empty and
    // in_flight == 0" really means all work is done. A worker that sees
    // queues empty but items in flight yields and retries: the holder
    // either finishes them or re-queues them onto its own shard (which
    // it always drains before exiting), so no work is ever stranded.
    std::atomic<int> in_flight{0};
    const bool has_hook = static_cast<bool>(after_slice);
    std::vector<WorkerTally> tallies(static_cast<std::size_t>(workers));

    // Worker threads are respawned every pump, so spans use a stable
    // per-shard presentation tid instead of a per-thread one — Perfetto
    // shows one "shard-N" track per shard across the whole capture.
    if (obs::tracer().enabled())
        for (int w = 0; w < workers; ++w)
            obs::tracer().set_thread_name(obs::Tracer::kShardTidBase + w,
                                          "shard-" + std::to_string(w));

    auto work = [&](int w) {
        WorkerTally& tally = tallies[static_cast<std::size_t>(w)];
        ShardQueue& own = queues[static_cast<std::size_t>(w)];
        for (;;) {
            Item* item = nullptr;
            {
                std::lock_guard<std::mutex> lock(own.mu);
                if (!own.items.empty()) {
                    item = own.items.front();
                    own.items.pop_front();
                    in_flight.fetch_add(1, std::memory_order_acq_rel);
                }
            }
            if (item == nullptr) {
                // Steal from the back of the first non-empty shard —
                // the session least recently serviced there, so the
                // victim's own rotation is disturbed the least.
                for (int off = 1; off < workers && item == nullptr; ++off) {
                    ShardQueue& other =
                        queues[static_cast<std::size_t>((w + off) % workers)];
                    std::lock_guard<std::mutex> lock(other.mu);
                    if (!other.items.empty()) {
                        item = other.items.back();
                        other.items.pop_back();
                        in_flight.fetch_add(1, std::memory_order_acq_rel);
                        ++tally.steals;
                    }
                }
            }
            if (item == nullptr) {
                if (in_flight.load(std::memory_order_acquire) == 0) return;
                std::this_thread::yield();
                continue;
            }

            const rt::SimTime slice = std::min(budget_, item->remaining);
            const bool alive =
                pump_session_slice_guarded(*item->entry, slice, watchdog_, tally.watchdog,
                                           obs::Tracer::kShardTidBase + w);
            item->remaining -= slice;
            ++item->slices;
            item->advanced += slice;
            ++tally.slices;
            tally.advanced += slice;
            // The hook runs while the session is still exclusively ours:
            // re-queueing first would let another worker pump the next
            // slice concurrently with the hook's per-session work.
            if (has_hook) after_slice(*item->entry);
            if (!alive) {
                // Quarantined: never re-queued, so no other worker can
                // touch the faulted session for the rest of this pump.
                item->remaining = 0;
                ++tally.faulted;
            }
            if (item->remaining > 0) {
                std::lock_guard<std::mutex> lock(own.mu);
                own.items.push_back(item);
            }
            in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers) - 1);
    for (int w = 1; w < workers; ++w) pool.emplace_back(work, w);
    work(0); // the calling thread is shard 0's worker
    for (std::thread& t : pool) t.join();

    // All workers joined: merge the per-item and per-worker counters
    // into the lifetime stats single-threaded.
    for (const Item& item : items) {
        SessionPumpStats& s = stats_[item.entry->id];
        s.slices += item.slices;
        s.advanced += item.advanced;
        total_slices_ += item.slices;
    }
    for (int w = 0; w < workers; ++w) {
        ShardStats& shard = shards_[static_cast<std::size_t>(w)];
        const WorkerTally& tally = tallies[static_cast<std::size_t>(w)];
        shard.slices += tally.slices;
        shard.advanced += tally.advanced;
        shard.steals += tally.steals;
        shard.overruns += tally.watchdog.overruns;
        shard.faulted += tally.faulted;
        total_steals_ += tally.steals;
        watchdog_stats_.overruns += tally.watchdog.overruns;
        watchdog_stats_.runaways += tally.watchdog.runaways;
    }
}

} // namespace gmdf::hub
