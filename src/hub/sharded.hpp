// ShardedScheduler: the fleet pump across N worker threads.
//
// PollScheduler advances every live session round-robin on the calling
// thread; one core is its ceiling. Sessions are fully isolated from
// each other (separate targets, engines, observers, transports), so the
// sharded scheduler partitions the fleet across worker threads and
// pumps the shards concurrently in the same bounded simulated-time
// slices:
//
//   - sessions are dealt round-robin (by registry order) onto
//     min(threads, sessions) shards, each shard a deque the owning
//     worker cycles front-to-back — within a shard service stays
//     round-robin, exactly like PollScheduler's rounds;
//   - a worker whose shard runs dry steals a queued session from the
//     back of another shard and adopts it, so a few chatty sessions
//     cannot idle the other cores (steals are counted per shard);
//   - a session is held by exactly one worker at a time (it is off
//     every deque while being sliced, and its after-slice hook runs
//     before it is re-queued), so each session's slice sequence —
//     min(budget, remaining) repeated — is the same as under
//     PollScheduler, on one thread or eight.
//
// The per-session determinism contract follows: a given session's event
// stream, transcript bytes, and replay behaviour are identical under 1
// thread and N threads. What MAY differ across thread counts is the
// cross-session interleaving of slices — and therefore the order in
// which different sessions' events reach the hub queue; each event
// still carries its session tag, so consumers see a tag-correct merge.
//
// threads=1 (the default) never spawns a thread and runs the exact
// PollScheduler loop, which keeps existing single-threaded transcripts
// byte-identical and makes PollScheduler semantics the special case.
//
// pump() is synchronous fork-join: workers are joined before it
// returns, so all session state is quiescent (and happens-before
// ordered) for the caller afterwards. The slice hook is the one surface
// that runs on worker threads — it must tolerate concurrent calls for
// *distinct* sessions (the hub's hook serializes its shared queue with
// a mutex; per-session work like checkpoint cadence needs nothing).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hub/scheduler.hpp"

namespace gmdf::hub {

class ShardedScheduler {
public:
    using SliceHook = PollScheduler::SliceHook;
    using SessionPumpStats = PollScheduler::SessionPumpStats;

    /// Lifetime per-shard counters (`session stats shards`). `sessions`
    /// is the assignment of the most recent pump; the rest accumulate.
    struct ShardStats {
        int sessions = 0;          ///< sessions dealt to this shard, last pump
        std::uint64_t slices = 0;  ///< slices this shard's worker pumped
        rt::SimTime advanced = 0;  ///< simulated time it advanced
        std::uint64_t steals = 0;  ///< sessions it stole from other shards
        std::uint64_t overruns = 0; ///< watchdog deadline overruns it observed
        std::uint64_t faulted = 0;  ///< sessions its slices quarantined
    };

    /// Worker-thread count; 1 (default) pumps inline with PollScheduler
    /// semantics. Clamped to [1, 256].
    void set_threads(int threads);
    [[nodiscard]] int threads() const { return threads_; }

    /// Per-session simulated-time budget of one slice (shared by every
    /// shard). Must be positive; defaults to 10 ms.
    void set_budget(rt::SimTime budget);
    [[nodiscard]] rt::SimTime budget() const { return budget_; }

    /// Pump watchdog (per-slice wall-clock deadline), shared by every
    /// shard; disabled by default. Workers tally overruns privately and
    /// the tallies are merged after join, so the global stats are only
    /// read between pumps.
    void set_watchdog(WatchdogConfig config) { watchdog_ = config; }
    [[nodiscard]] const WatchdogConfig& watchdog() const { return watchdog_; }
    [[nodiscard]] const WatchdogStats& watchdog_stats() const { return watchdog_stats_; }

    /// Advances every live session in `registry` by `duration` across
    /// min(threads(), sessions) shards. Synchronous: returns once every
    /// session has consumed the full duration and all workers joined.
    /// The hook (when set) runs on worker threads, once per slice, while
    /// the sliced session is still exclusively held.
    void pump(SessionRegistry& registry, rt::SimTime duration,
              const SliceHook& after_slice = {});

    /// Per live session, kept across pumps (same shape as PollScheduler;
    /// only read/merged between pumps, never during one).
    [[nodiscard]] const std::map<int, SessionPumpStats>& stats() const { return stats_; }
    [[nodiscard]] std::uint64_t total_slices() const { return total_slices_; }
    [[nodiscard]] std::uint64_t total_steals() const { return total_steals_; }

    /// One entry per configured shard (indexed 0..threads()-1).
    [[nodiscard]] const std::vector<ShardStats>& shard_stats() const { return shards_; }

    /// Drops a closed session's counters (ids never return).
    void forget(int session_id) { stats_.erase(session_id); }

private:
    struct Item; ///< one session's remaining work, exclusively held or queued

    void pump_serial(SessionRegistry& registry, rt::SimTime duration,
                     const SliceHook& after_slice);
    void pump_parallel(SessionRegistry& registry, rt::SimTime duration,
                       const SliceHook& after_slice, int workers);

    int threads_ = 1;
    rt::SimTime budget_ = 10 * rt::kMs;
    WatchdogConfig watchdog_;
    WatchdogStats watchdog_stats_;
    std::map<int, SessionPumpStats> stats_;
    std::uint64_t total_slices_ = 0;
    std::uint64_t total_steals_ = 0;
    std::vector<ShardStats> shards_{1};
};

} // namespace gmdf::hub
