#include "hub/controller.hpp"

#include <iterator>
#include <string>

#include "core/session.hpp"
#include "proto/controller.hpp"
#include "proto/message.hpp"

namespace gmdf::hub {

namespace {

std::string_view first_token(std::string_view line) {
    std::size_t end = line.find_first_of(" \t");
    return end == std::string_view::npos ? line : line.substr(0, end);
}

std::string_view skip_blanks(std::string_view line) {
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
        line.remove_prefix(1);
    return line;
}

std::string entry_line(SessionRegistry::Entry& e, bool is_current) {
    return std::string(is_current ? "* " : "  ") + std::to_string(e.id) + " " + e.name +
           " scenario=" + e.scenario->name + " engine=" +
           core::to_string(e.session().engine().state());
}

} // namespace

HubController::HubController() {
    auto bind = [this](proto::Response (HubController::*fn)(const proto::Request&)) {
        return [this, fn](const proto::Request& req) { return (this->*fn)(req); };
    };
    hub_dispatcher_.add({"session", "session open <scenario> [name]",
                         "host a new session (becomes current)",
                         bind(&HubController::cmd_session)});
    hub_dispatcher_.add({"session", "session close [session]",
                         "close a session (default: current)", nullptr});
    hub_dispatcher_.add({"session", "session list", "list hosted sessions", nullptr});
    hub_dispatcher_.add({"session", "session use <session>",
                         "switch the current session", nullptr});
    hub_dispatcher_.add({"session", "session stats",
                         "hub totals: sessions, scheduler, aggregate engine counters",
                         nullptr});
}

SessionRegistry::Entry* HubController::open(std::string_view scenario, std::string name,
                                            SessionRegistry::OpenError* error) {
    SessionRegistry::Entry* entry = registry_.open(scenario, std::move(name), error);
    if (entry != nullptr) install(*entry);
    return entry;
}

SessionRegistry::Entry* HubController::adopt(std::unique_ptr<proto::Scenario> scenario,
                                             std::string name,
                                             SessionRegistry::OpenError* error) {
    SessionRegistry::Entry* entry =
        registry_.adopt(std::move(scenario), std::move(name), error);
    if (entry != nullptr) install(*entry);
    return entry;
}

void HubController::install(SessionRegistry::Entry& entry) {
    // `run` on any hosted session pumps the whole hub: every live
    // session advances concurrently through the scheduler instead of
    // only the addressed session's transports. Each slice also gives the
    // session's timeline a chance to take its cadence checkpoint, so
    // automatic checkpoints stay slice-granular under the hub.
    entry.controller().set_run_hook([this](rt::SimTime duration) {
        scheduler_.pump(registry_, duration, [this](SessionRegistry::Entry& pumped) {
            collect_events(pumped);
            if (pumped.scenario->timeline != nullptr)
                pumped.scenario->timeline->maybe_capture();
        });
    });
    current_ = entry.id;
    if (registry_.size() > 1) multi_ = true;
}

void HubController::collect_events(SessionRegistry::Entry& entry) {
    for (const proto::Event& ev : entry.controller().drain_events()) {
        std::string line = proto::format_event(ev);
        if (multi_) line = "[" + entry.name + "] " + line;
        if (event_capacity_ != 0 && event_lines_.size() >= event_capacity_) {
            event_lines_.pop_front();
            ++stats_.events_dropped;
        }
        event_lines_.push_back(std::move(line));
    }
}

std::vector<std::string> HubController::drain_event_lines() {
    std::vector<std::string> out(std::make_move_iterator(event_lines_.begin()),
                                 std::make_move_iterator(event_lines_.end()));
    event_lines_.clear();
    return out;
}

proto::Response HubController::hub_ok(std::vector<std::string> body) {
    ++stats_.requests;
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::hub_error(proto::ErrorCode code, std::string message) {
    ++stats_.requests;
    ++stats_.request_errors;
    return proto::Response::make_error(code, std::move(message));
}

proto::Response HubController::route(SessionRegistry::Entry& entry,
                                     std::string_view line) {
    proto::Response resp = entry.controller().execute_line(line);
    collect_events(entry);
    return resp;
}

proto::Response HubController::execute_line(std::string_view line) {
    // Tolerate untrimmed client lines the way parse_request does —
    // otherwise "  session list" would be mis-routed into a session.
    line = skip_blanks(line);
    SessionRegistry::Entry* entry = nullptr;
    bool addressed = false;
    if (!line.empty() && line.front() == '@') {
        std::size_t space = line.find_first_of(" \t");
        std::string_view tag =
            line.substr(1, space == std::string_view::npos ? std::string_view::npos
                                                           : space - 1);
        if (tag.empty() || space == std::string_view::npos)
            return hub_error(proto::ErrorCode::BadRequest,
                             "usage: @<session> <verb ...>");
        entry = registry_.resolve(tag);
        if (entry == nullptr)
            return hub_error(proto::ErrorCode::NotFound,
                             "no session '@" + std::string(tag) +
                                 "' (see 'session list')");
        addressed = true;
        line = skip_blanks(line.substr(space + 1));
        if (line.empty())
            return hub_error(proto::ErrorCode::BadRequest,
                             "usage: @<session> <verb ...>");
    }
    if (!addressed) entry = current();

    std::string_view verb = first_token(line);
    if (verb == "session") {
        // Silently dropping the prefix would make '@cell session close'
        // act on the *current* session — refuse instead.
        if (addressed)
            return hub_error(proto::ErrorCode::BadArgument,
                             "session verbs are hub-level; use 'session "
                             "close|use <session>' instead of '@<session> session ...'");
        auto parsed = proto::parse_request(line);
        if (!parsed.ok())
            return hub_error(proto::ErrorCode::BadRequest, parsed.error);
        ++stats_.requests;
        proto::Response resp = hub_dispatcher_.dispatch(*parsed.request);
        if (!resp.ok()) ++stats_.request_errors;
        return resp;
    }

    if (verb == "help") {
        auto parsed = proto::parse_request(line);
        if (parsed.ok()) {
            const auto& args = parsed.request->args;
            if (args.size() == 1 && args[0] == "session")
                return hub_ok(hub_dispatcher_.help_lines("session"));
            if (args.empty()) {
                if (entry == nullptr) return hub_ok(hub_dispatcher_.help_lines());
                // One combined listing: the session's verbs, then the
                // hub's session-management rows.
                proto::Response resp = route(*entry, line);
                if (resp.ok())
                    for (std::string& extra : hub_dispatcher_.help_lines())
                        resp.body.push_back(std::move(extra));
                return resp;
            }
        }
        // help <verb> / malformed help: route like any other request.
    }

    if (entry == nullptr) {
        if (verb == "quit" || verb == "exit") return hub_ok({"bye"});
        return hub_error(proto::ErrorCode::BadState,
                         "no open session (try 'session open <scenario>')");
    }
    return route(*entry, line);
}

// ---- session verb -----------------------------------------------------------

proto::Response HubController::cmd_session(const proto::Request& req) {
    if (req.args.empty())
        return proto::Response::make_error(
            proto::ErrorCode::BadArgument,
            "usage: session open|close|list|use|stats ...");
    const std::string& sub = req.args[0];
    if (sub == "open") return session_open(req);
    if (sub == "close") return session_close(req);
    if (sub == "list") {
        if (req.args.size() != 1)
            return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                               "usage: session list");
        return session_list();
    }
    if (sub == "use") return session_use(req);
    if (sub == "stats") {
        if (req.args.size() != 1)
            return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                               "usage: session stats");
        return session_stats();
    }
    return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                       "usage: session open|close|list|use|stats ...");
}

proto::Response HubController::session_open(const proto::Request& req) {
    if (req.args.size() < 2 || req.args.size() > 3)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: session open <scenario> [name]");
    const std::string& scenario = req.args[1];
    const std::string& name = req.args.size() == 3 ? req.args[2] : req.args[1];
    SessionRegistry::OpenError error = SessionRegistry::OpenError::None;
    SessionRegistry::Entry* entry = open(scenario, name, &error);
    if (entry == nullptr) {
        switch (error) {
        case SessionRegistry::OpenError::BadName:
            return proto::Response::make_error(
                proto::ErrorCode::BadArgument,
                "session name '" + name +
                    "' must be one token of [A-Za-z0-9_-] with a non-digit");
        case SessionRegistry::OpenError::DuplicateName:
            return proto::Response::make_error(proto::ErrorCode::BadState,
                                               "session '" + name + "' already open");
        default:
            return proto::Response::make_error(proto::ErrorCode::NotFound,
                                               "no scenario '" + scenario + "'");
        }
    }
    return proto::Response::make_ok(
        {"session " + std::to_string(entry->id) + " " + entry->name +
             " opened (scenario " + scenario + ")",
         "current " + entry->name});
}

proto::Response HubController::session_close(const proto::Request& req) {
    if (req.args.size() > 2)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: session close [session]");
    SessionRegistry::Entry* entry = nullptr;
    if (req.args.size() == 2) {
        entry = registry_.resolve(req.args[1]);
        if (entry == nullptr)
            return proto::Response::make_error(proto::ErrorCode::NotFound,
                                               "no session '" + req.args[1] + "'");
    } else {
        entry = current();
        if (entry == nullptr)
            return proto::Response::make_error(proto::ErrorCode::BadState,
                                               "no open session");
    }
    int id = entry->id;
    std::string name = entry->name;
    collect_events(*entry); // don't lose queued events with the session
    registry_.close(id);
    scheduler_.forget(id); // ids never return; keep the stats map bounded
    if (current_ == id)
        current_ = registry_.entries().empty() ? 0 : registry_.entries().front()->id;
    std::vector<std::string> body = {"session " + std::to_string(id) + " " + name +
                                     " closed"};
    SessionRegistry::Entry* now_current = current();
    body.push_back("current " + (now_current ? now_current->name : "(none)"));
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::session_list() {
    std::vector<std::string> body = {"sessions " +
                                     std::to_string(registry_.size())};
    for (const auto& e : registry_.entries())
        body.push_back(entry_line(*e, e->id == current_));
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::session_use(const proto::Request& req) {
    if (req.args.size() != 2)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: session use <session>");
    SessionRegistry::Entry* entry = registry_.resolve(req.args[1]);
    if (entry == nullptr)
        return proto::Response::make_error(proto::ErrorCode::NotFound,
                                           "no session '" + req.args[1] + "'");
    current_ = entry->id;
    return proto::Response::make_ok({"current " + entry->name});
}

proto::Response HubController::session_stats() {
    const core::EngineStats total = registry_.aggregate_stats();
    return proto::Response::make_ok({
        "sessions " + std::to_string(registry_.size()) + " live (opened " +
            std::to_string(registry_.opened()) + ", closed " +
            std::to_string(registry_.closed()) + ")",
        "hub-requests " + std::to_string(stats_.requests),
        "hub-request-errors " + std::to_string(stats_.request_errors),
        "hub-events-dropped " + std::to_string(stats_.events_dropped),
        "scheduler-slices " + std::to_string(scheduler_.total_slices()) + " (budget " +
            std::to_string(scheduler_.budget() / rt::kMs) + " ms)",
        "commands " + std::to_string(total.commands),
        "reactions " + std::to_string(total.reactions),
        "breakpoints-hit " + std::to_string(total.breakpoints_hit),
        "divergences " + std::to_string(total.divergences),
        "requests " + std::to_string(total.requests),
        "request-errors " + std::to_string(total.request_errors),
        "events-emitted " + std::to_string(total.events_emitted),
        "events-dropped " + std::to_string(total.events_dropped),
    });
}

} // namespace gmdf::hub
