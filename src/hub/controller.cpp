#include "hub/controller.hpp"

#include <algorithm>
#include <iterator>
#include <string>

#include "campaign/runner.hpp"
#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "proto/controller.hpp"
#include "proto/message.hpp"

namespace gmdf::hub {

namespace {

std::string_view first_token(std::string_view line) {
    std::size_t end = line.find_first_of(" \t");
    return end == std::string_view::npos ? line : line.substr(0, end);
}

std::string_view skip_blanks(std::string_view line) {
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
        line.remove_prefix(1);
    return line;
}

std::string entry_line(SessionRegistry::Entry& e, bool is_current) {
    std::string line = std::string(is_current ? "* " : "  ") + std::to_string(e.id) +
                       " " + e.name + " scenario=" + e.scenario->name + " engine=" +
                       core::to_string(e.session().engine().state());
    // Quarantine is the only state that may reshape a list row: healthy
    // fleets keep their existing transcripts byte-identical.
    if (e.faulted()) {
        line += e.runaway ? " FAULTED(runaway): " : " FAULTED: ";
        line += e.fault_reason;
    }
    return line;
}

} // namespace

HubController::HubController() {
    // Hub-level verbs are dispatched by execute_line itself (they need
    // the caller's RouteContext); these rows exist for the merged help
    // listing only, hence the null handlers.
    hub_dispatcher_.add({"session", "session open <scenario> [name]",
                         "host a new session (becomes current)", nullptr});
    hub_dispatcher_.add({"session", "session close [session]",
                         "close a session (default: current)", nullptr});
    hub_dispatcher_.add({"session", "session list", "list hosted sessions", nullptr});
    hub_dispatcher_.add({"session", "session use <session>",
                         "switch the current session", nullptr});
    hub_dispatcher_.add({"session", "session revive [session]",
                         "lift a faulted session's quarantine (restores its last"
                         " checkpoint when a timeline is attached)",
                         nullptr});
    hub_dispatcher_.add({"session", "session stats [net|shards]",
                         "hub totals: sessions, scheduler, aggregate engine counters"
                         " (net: network server; shards: per-shard pump split)",
                         nullptr});
    hub_dispatcher_.add({"attach", "attach <session>",
                         "switch this client's current session", nullptr});
    hub_dispatcher_.add({"acl", "acl allow <session> [...]",
                         "restrict this client to the listed sessions", nullptr});
    hub_dispatcher_.add({"acl", "acl clear|show",
                         "lift this client's restriction / show its allowlist",
                         nullptr});
    hub_dispatcher_.add({"campaign", "campaign run <pairs> [seed]",
                         "fault-hunt campaign over generated models", nullptr});
    hub_dispatcher_.add({"campaign", "campaign report",
                         "re-print the last campaign's summary", nullptr});
    hub_dispatcher_.add({"metrics", "metrics [prefix]",
                         "unified obs registry dump: counters, gauges, latency"
                         " histograms (optionally filtered by name prefix)",
                         nullptr});
    init_slice_hook();
    // Publish the hub's legacy stats structs (EngineStats aggregate,
    // HubStats, ShardStats, WatchdogStats) into the obs registry at scrape
    // time, and touch the pump histogram so the /metrics catalog is
    // complete before the first pump. Collectors run on the scraping
    // thread — for this hub that is the serving thread, between requests.
    (void)pump_metrics();
    obs::registry().add_collector(this, [this](obs::Registry&) { publish_metrics(); });
}

HubController::~HubController() { obs::registry().remove_collector(this); }

void HubController::publish_metrics() {
    obs::Registry& reg = obs::registry();
    const auto set = [&reg](std::string_view name, std::uint64_t v) {
        reg.gauge(name).set(static_cast<std::int64_t>(v));
    };
    set("hub.sessions.live", registry_.size());
    set("hub.sessions.opened", registry_.opened());
    set("hub.sessions.closed", registry_.closed());
    set("hub.sessions.faulted", registry_.faulted_count());
    set("hub.requests", stats_.requests);
    set("hub.request_errors", stats_.request_errors);
    set("hub.events_dropped", stats_.events_dropped);
    set("hub.pump.slices", scheduler_.total_slices());
    set("hub.pump.steals", scheduler_.total_steals());
    const WatchdogStats& wd = scheduler_.watchdog_stats();
    set("hub.watchdog.overruns", wd.overruns);
    set("hub.watchdog.runaways", wd.runaways);
    const core::EngineStats total = registry_.aggregate_stats();
    set("engine.commands", total.commands);
    set("engine.reactions", total.reactions);
    set("engine.breakpoints_hit", total.breakpoints_hit);
    set("engine.divergences", total.divergences);
    set("engine.requests", total.requests);
    set("engine.request_errors", total.request_errors);
    set("engine.events_emitted", total.events_emitted);
    set("engine.events_dropped", total.events_dropped);
    const auto& shards = scheduler_.shard_stats();
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardedScheduler::ShardStats& s = shards[i];
        const std::string shard = std::to_string(i);
        const auto sset = [&reg, &shard](std::string_view name, std::uint64_t v) {
            reg.gauge(name, "shard", shard).set(static_cast<std::int64_t>(v));
        };
        sset("hub.shard.sessions", static_cast<std::uint64_t>(s.sessions));
        sset("hub.shard.slices", s.slices);
        sset("hub.shard.advanced_ms", static_cast<std::uint64_t>(s.advanced / rt::kMs));
        sset("hub.shard.steals", s.steals);
        sset("hub.shard.overruns", s.overruns);
        sset("hub.shard.faulted", s.faulted);
    }
}

proto::Response HubController::cmd_metrics(const proto::Request& req) {
    if (req.args.size() > 1)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: metrics [prefix]");
    const std::string prefix = req.args.empty() ? std::string() : req.args[0];
    std::vector<std::string> body = obs::registry().text_dump(prefix);
    if (body.empty())
        body.push_back(prefix.empty() ? "(no metrics)"
                                      : "(no metrics match '" + prefix + "')");
    return proto::Response::make_ok(std::move(body));
}

void HubController::init_slice_hook() {
    // One std::function for the hub's lifetime: constructing it per
    // `run` request re-allocated the closure on every pump.
    slice_hook_ = [this](SessionRegistry::Entry& pumped) {
        collect_events(pumped);
        if (pumped.scenario->timeline != nullptr)
            pumped.scenario->timeline->maybe_capture();
    };
}

SessionRegistry::Entry* HubController::open(std::string_view scenario, std::string name,
                                            SessionRegistry::OpenError* error) {
    SessionRegistry::Entry* entry = registry_.open(scenario, std::move(name), error);
    if (entry != nullptr) install(*entry, root_);
    return entry;
}

SessionRegistry::Entry* HubController::adopt(std::unique_ptr<proto::Scenario> scenario,
                                             std::string name,
                                             SessionRegistry::OpenError* error) {
    SessionRegistry::Entry* entry =
        registry_.adopt(std::move(scenario), std::move(name), error);
    if (entry != nullptr) install(*entry, root_);
    return entry;
}

void HubController::install(SessionRegistry::Entry& entry, RouteContext& ctx) {
    // `run` on any hosted session pumps the whole hub: every live
    // session advances concurrently through the scheduler instead of
    // only the addressed session's transports. Each slice also gives the
    // session's timeline a chance to take its cadence checkpoint, so
    // automatic checkpoints stay slice-granular under the hub.
    entry.controller().set_run_hook([this](rt::SimTime duration) {
        scheduler_.pump(registry_, duration, slice_hook_);
    });
    ctx.current = entry.id;
    ctx.opened.push_back(entry.id);
    if (registry_.size() > 1) multi_ = true;
}

void HubController::collect_events(SessionRegistry::Entry& entry) {
    // Runs on scheduler worker threads under a sharded pump — never two
    // workers for the same session (the scheduler holds a session
    // exclusively across its slice + hook), so draining the session's
    // controller queue and formatting need no lock. Publishing into the
    // hub queue / event sink is the MPSC step the mutex serializes;
    // per-session event order is preserved because each session's lines
    // arrive from its single current holder, in drain order.
    auto events = entry.controller().drain_events();
    if (events.empty()) return;
    std::vector<std::string> lines;
    lines.reserve(events.size());
    for (const proto::Event& ev : events) {
        std::string line = proto::format_event(ev);
        if (multi_) line = "[" + entry.name + "] " + line;
        lines.push_back(std::move(line));
    }
    std::lock_guard<std::mutex> lock(event_mu_);
    for (std::string& line : lines) {
        if (event_sink_) {
            // Fan-out mode: the server owns per-connection queues and
            // backpressure; the hub's own queue stays empty. Serialized
            // here so a single-threaded server never sees two workers
            // inside its fan-out at once.
            event_sink_(entry.id, entry.name, line);
            continue;
        }
        if (event_capacity_ != 0 && event_lines_.size() >= event_capacity_) {
            event_lines_.pop_front();
            ++stats_.events_dropped;
        }
        event_lines_.push_back(std::move(line));
    }
}

std::vector<std::string> HubController::drain_event_lines() {
    std::lock_guard<std::mutex> lock(event_mu_);
    std::vector<std::string> out(std::make_move_iterator(event_lines_.begin()),
                                 std::make_move_iterator(event_lines_.end()));
    event_lines_.clear();
    return out;
}

proto::Response HubController::hub_ok(std::vector<std::string> body) {
    ++stats_.requests;
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::hub_error(proto::ErrorCode code, std::string message) {
    ++stats_.requests;
    ++stats_.request_errors;
    return proto::Response::make_error(code, std::move(message));
}

proto::Response HubController::acl_denied(const std::string& name) {
    return hub_error(proto::ErrorCode::BadState,
                     "session '" + name + "' is outside this client's acl");
}

proto::Response HubController::route(SessionRegistry::Entry& entry,
                                     std::string_view line) {
    // A quarantined session is refused, not routed: its target state is
    // whatever the crash left behind.
    if (entry.faulted())
        return hub_error(proto::ErrorCode::BadState,
                         "session '" + entry.name + "' is faulted: " +
                             entry.fault_reason +
                             " (see 'session revive' / 'session close')");
    proto::Response resp;
    try {
        resp = entry.controller().execute_line(line);
    } catch (const std::exception& e) {
        // Backstop for exceptions that escape the session dispatcher's
        // own guard: quarantine the session instead of unwinding the hub.
        entry.mark_faulted(e.what());
        resp = proto::Response::make_error(proto::ErrorCode::Internal,
                                           "session '" + entry.name +
                                               "' faulted: " + entry.fault_reason);
    } catch (...) {
        entry.mark_faulted("unknown exception during request");
        resp = proto::Response::make_error(proto::ErrorCode::Internal,
                                           "session '" + entry.name +
                                               "' faulted: " + entry.fault_reason);
    }
    collect_events(entry);
    // The addressed session may have faulted *during* its own request
    // (its target threw inside a scheduler pump, which quarantines it
    // without failing the pump). Surface that in the response instead of
    // letting the client discover it on the next request.
    if (resp.ok() && entry.faulted())
        resp.body.push_back("! session " + entry.name +
                            " faulted: " + entry.fault_reason);
    return resp;
}

proto::Response HubController::execute_line(std::string_view line) {
    return execute_line(line, root_);
}

proto::Response HubController::execute_line(std::string_view line, RouteContext& ctx) {
    // Tolerate untrimmed client lines the way parse_request does —
    // otherwise "  session list" would be mis-routed into a session.
    line = skip_blanks(line);
    SessionRegistry::Entry* entry = nullptr;
    bool addressed = false;
    if (!line.empty() && line.front() == '@') {
        std::size_t space = line.find_first_of(" \t");
        std::string_view tag =
            line.substr(1, space == std::string_view::npos ? std::string_view::npos
                                                           : space - 1);
        if (tag.empty() || space == std::string_view::npos)
            return hub_error(proto::ErrorCode::BadRequest,
                             "usage: @<session> <verb ...>");
        entry = registry_.resolve(tag);
        if (entry == nullptr)
            return hub_error(proto::ErrorCode::NotFound,
                             "no session '@" + std::string(tag) +
                                 "' (see 'session list')");
        if (!ctx.allows(entry->id, entry->name)) return acl_denied(entry->name);
        addressed = true;
        line = skip_blanks(line.substr(space + 1));
        if (line.empty())
            return hub_error(proto::ErrorCode::BadRequest,
                             "usage: @<session> <verb ...>");
    }
    if (!addressed) entry = registry_.find(ctx.current);

    std::string_view verb = first_token(line);
    if (verb == "session" || verb == "attach" || verb == "acl" ||
        verb == "campaign" || verb == "metrics") {
        // Silently dropping the prefix would make '@cell session close'
        // act on the *current* session — refuse instead.
        if (addressed)
            return hub_error(proto::ErrorCode::BadArgument,
                             "hub-level verbs cannot be session-addressed; drop "
                             "the '@<session>' prefix");
        auto parsed = proto::parse_request(line);
        if (!parsed.ok())
            return hub_error(proto::ErrorCode::BadRequest, parsed.error);
        ++stats_.requests;
        proto::Response resp;
        try {
            if (verb == "session") resp = cmd_session(*parsed.request, ctx);
            else if (verb == "attach") resp = cmd_attach(*parsed.request, ctx);
            else if (verb == "campaign") resp = cmd_campaign(*parsed.request);
            else if (verb == "metrics") resp = cmd_metrics(*parsed.request);
            else resp = cmd_acl(*parsed.request, ctx);
        } catch (const std::exception& e) {
            resp = proto::Response::make_error(proto::ErrorCode::Internal,
                                               std::string(verb) + " failed: " +
                                                   e.what());
        } catch (...) {
            resp = proto::Response::make_error(proto::ErrorCode::Internal,
                                               std::string(verb) + " failed");
        }
        if (!resp.ok()) ++stats_.request_errors;
        return resp;
    }

    if (verb == "help") {
        auto parsed = proto::parse_request(line);
        if (parsed.ok()) {
            const auto& args = parsed.request->args;
            if (args.size() == 1 &&
                (args[0] == "session" || args[0] == "attach" || args[0] == "acl" ||
                 args[0] == "campaign" || args[0] == "metrics"))
                return hub_ok(hub_dispatcher_.help_lines(args[0]));
            if (args.empty()) {
                if (entry == nullptr) return hub_ok(hub_dispatcher_.help_lines());
                // One combined listing: the session's verbs, then the
                // hub's session-management rows.
                proto::Response resp = route(*entry, line);
                if (resp.ok())
                    for (std::string& extra : hub_dispatcher_.help_lines())
                        resp.body.push_back(std::move(extra));
                return resp;
            }
        }
        // help <verb> / malformed help: route like any other request.
    }

    if (entry == nullptr) {
        if (verb == "quit" || verb == "exit") return hub_ok({"bye"});
        return hub_error(proto::ErrorCode::BadState,
                         "no open session (try 'session open <scenario>')");
    }
    return route(*entry, line);
}

void HubController::release_context(RouteContext& ctx) {
    // Close only what this client opened; sessions hosted by the
    // embedder or other clients are none of its business. close_entry
    // edits ctx.opened, so iterate over a copy.
    std::vector<int> opened = ctx.opened;
    for (int id : opened) {
        SessionRegistry::Entry* entry = registry_.find(id);
        if (entry != nullptr) close_entry(*entry, ctx);
    }
    ctx = RouteContext{};
}

// ---- hub-level verbs --------------------------------------------------------

proto::Response HubController::cmd_session(const proto::Request& req,
                                           RouteContext& ctx) {
    if (req.args.empty())
        return proto::Response::make_error(
            proto::ErrorCode::BadArgument,
            "usage: session open|close|list|use|revive|stats ...");
    const std::string& sub = req.args[0];
    if (sub == "open") return session_open(req, ctx);
    if (sub == "close") return session_close(req, ctx);
    if (sub == "revive") return session_revive(req, ctx);
    if (sub == "list") {
        if (req.args.size() != 1)
            return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                               "usage: session list");
        return session_list(ctx);
    }
    if (sub == "use") return session_use(req, ctx);
    if (sub == "stats") {
        if (req.args.size() == 2 && req.args[1] == "net") return session_stats_net();
        if (req.args.size() == 2 && req.args[1] == "shards")
            return session_stats_shards();
        if (req.args.size() != 1)
            return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                               "usage: session stats [net|shards]");
        return session_stats();
    }
    return proto::Response::make_error(
        proto::ErrorCode::BadArgument,
        "usage: session open|close|list|use|revive|stats ...");
}

proto::Response HubController::session_open(const proto::Request& req,
                                            RouteContext& ctx) {
    if (req.args.size() < 2 || req.args.size() > 3)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: session open <scenario> [name]");
    const std::string& scenario = req.args[1];
    const std::string& name = req.args.size() == 3 ? req.args[2] : req.args[1];
    SessionRegistry::OpenError error = SessionRegistry::OpenError::None;
    SessionRegistry::Entry* entry = registry_.open(scenario, name, &error);
    if (entry == nullptr) {
        switch (error) {
        case SessionRegistry::OpenError::BadName:
            return proto::Response::make_error(
                proto::ErrorCode::BadArgument,
                "session name '" + name +
                    "' must be one token of [A-Za-z0-9_-] with a non-digit");
        case SessionRegistry::OpenError::DuplicateName:
            return proto::Response::make_error(proto::ErrorCode::BadState,
                                               "session '" + name + "' already open");
        default:
            return proto::Response::make_error(proto::ErrorCode::NotFound,
                                               "no scenario '" + scenario + "'");
        }
    }
    install(*entry, ctx);
    return proto::Response::make_ok(
        {"session " + std::to_string(entry->id) + " " + entry->name +
             " opened (scenario " + scenario + ")",
         "current " + entry->name});
}

void HubController::close_entry(SessionRegistry::Entry& entry, RouteContext& ctx) {
    int id = entry.id;
    collect_events(entry); // don't lose queued events with the session
    registry_.close(id);
    scheduler_.forget(id); // ids never return; keep the stats map bounded
    std::erase(ctx.opened, id);
    if (ctx.current == id)
        ctx.current = registry_.entries().empty() ? 0 : registry_.entries().front()->id;
    // The root REPL must not keep routing into a dead session either.
    if (&ctx != &root_ && root_.current == id)
        root_.current =
            registry_.entries().empty() ? 0 : registry_.entries().front()->id;
}

proto::Response HubController::session_close(const proto::Request& req,
                                             RouteContext& ctx) {
    if (req.args.size() > 2)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: session close [session]");
    SessionRegistry::Entry* entry = nullptr;
    if (req.args.size() == 2) {
        entry = registry_.resolve(req.args[1]);
        if (entry == nullptr)
            return proto::Response::make_error(proto::ErrorCode::NotFound,
                                               "no session '" + req.args[1] + "'");
        if (!ctx.allows(entry->id, entry->name))
            return proto::Response::make_error(
                proto::ErrorCode::BadState,
                "session '" + entry->name + "' is outside this client's acl");
    } else {
        entry = registry_.find(ctx.current);
        if (entry == nullptr)
            return proto::Response::make_error(proto::ErrorCode::BadState,
                                               "no open session");
    }
    int id = entry->id;
    std::string name = entry->name;
    close_entry(*entry, ctx);
    std::vector<std::string> body = {"session " + std::to_string(id) + " " + name +
                                     " closed"};
    SessionRegistry::Entry* now_current = registry_.find(ctx.current);
    body.push_back("current " + (now_current ? now_current->name : "(none)"));
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::session_list(const RouteContext& ctx) {
    std::vector<std::string> body = {"sessions " +
                                     std::to_string(registry_.size())};
    for (const auto& e : registry_.entries())
        body.push_back(entry_line(*e, e->id == ctx.current));
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::session_use(const proto::Request& req,
                                           RouteContext& ctx) {
    if (req.args.size() != 2)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: session use <session>");
    SessionRegistry::Entry* entry = registry_.resolve(req.args[1]);
    if (entry == nullptr)
        return proto::Response::make_error(proto::ErrorCode::NotFound,
                                           "no session '" + req.args[1] + "'");
    if (!ctx.allows(entry->id, entry->name))
        return proto::Response::make_error(
            proto::ErrorCode::BadState,
            "session '" + entry->name + "' is outside this client's acl");
    ctx.current = entry->id;
    return proto::Response::make_ok({"current " + entry->name});
}

proto::Response HubController::session_revive(const proto::Request& req,
                                              RouteContext& ctx) {
    if (req.args.size() > 2)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: session revive [session]");
    SessionRegistry::Entry* entry = nullptr;
    if (req.args.size() == 2) {
        entry = registry_.resolve(req.args[1]);
        if (entry == nullptr)
            return proto::Response::make_error(proto::ErrorCode::NotFound,
                                               "no session '" + req.args[1] + "'");
        if (!ctx.allows(entry->id, entry->name))
            return proto::Response::make_error(
                proto::ErrorCode::BadState,
                "session '" + entry->name + "' is outside this client's acl");
    } else {
        entry = registry_.find(ctx.current);
        if (entry == nullptr)
            return proto::Response::make_error(proto::ErrorCode::BadState,
                                               "no open session");
    }
    if (!entry->faulted())
        return proto::Response::make_error(
            proto::ErrorCode::BadState,
            "session '" + entry->name + "' is not faulted");

    std::vector<std::string> body = {"session " + std::to_string(entry->id) + " " +
                                     entry->name + " revived (was: " +
                                     entry->fault_reason + ")"};
    replay::Timeline* timeline = entry->scenario->timeline.get();
    std::optional<rt::SimTime> latest;
    if (timeline != nullptr) latest = timeline->store().latest_time();
    if (latest.has_value()) {
        // A timeline gives us a known-good state to restore; without one
        // the session is revived in place — whatever the crash left
        // behind is the operator's problem, and the response says so.
        auto err = timeline->rewind_to(*latest);
        if (err.has_value())
            body.push_back("checkpoint restore refused (" + err->detail +
                           "); revived in place");
        else
            body.push_back("restored checkpoint at " +
                           std::to_string(*latest / rt::kMs) + " ms");
    } else {
        body.push_back("revived in place (no checkpoint to restore)");
    }
    entry->clear_fault();
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::session_stats() {
    const core::EngineStats total = registry_.aggregate_stats();
    std::vector<std::string> body = {
        "sessions " + std::to_string(registry_.size()) + " live (opened " +
            std::to_string(registry_.opened()) + ", closed " +
            std::to_string(registry_.closed()) + ")",
        "hub-requests " + std::to_string(stats_.requests),
        "hub-request-errors " + std::to_string(stats_.request_errors),
        "hub-events-dropped " + std::to_string(stats_.events_dropped),
        "scheduler-slices " + std::to_string(scheduler_.total_slices()) + " (budget " +
            std::to_string(scheduler_.budget() / rt::kMs) + " ms)",
        "commands " + std::to_string(total.commands),
        "reactions " + std::to_string(total.reactions),
        "breakpoints-hit " + std::to_string(total.breakpoints_hit),
        "divergences " + std::to_string(total.divergences),
        "requests " + std::to_string(total.requests),
        "request-errors " + std::to_string(total.request_errors),
        "events-emitted " + std::to_string(total.events_emitted),
        "events-dropped " + std::to_string(total.events_dropped),
    };
    // Quarantine lines appear only once something has actually faulted,
    // so healthy hubs keep the fixed 13-line body golden tests pin.
    const std::size_t faulted = registry_.faulted_count();
    if (faulted > 0)
        body.insert(body.begin() + 1, "sessions-faulted " + std::to_string(faulted));
    const WatchdogStats& wd = scheduler_.watchdog_stats();
    if (wd.overruns > 0 || wd.runaways > 0)
        body.push_back("watchdog-overruns " + std::to_string(wd.overruns) +
                       " runaways " + std::to_string(wd.runaways));
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::session_stats_net() {
    if (!net_stats_provider_)
        return proto::Response::make_error(proto::ErrorCode::BadState,
                                           "no network server attached");
    return proto::Response::make_ok(net_stats_provider_());
}

proto::Response HubController::session_stats_shards() {
    // Typed bad-state on a single-threaded hub: plain hubs never grow
    // these lines, so existing golden transcripts stay byte-identical.
    if (scheduler_.threads() <= 1)
        return proto::Response::make_error(
            proto::ErrorCode::BadState,
            "scheduler is single-threaded (start with --threads to shard the fleet)");
    const auto& shards = scheduler_.shard_stats();
    std::vector<std::string> body = {
        "shards " + std::to_string(shards.size()) + " (budget " +
        std::to_string(scheduler_.budget() / rt::kMs) + " ms)"};
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const auto& s = shards[i];
        std::string row = "shard " + std::to_string(i) + ": sessions " +
                          std::to_string(s.sessions) + " slices " +
                          std::to_string(s.slices) + " advanced " +
                          std::to_string(s.advanced / rt::kMs) + " ms steals " +
                          std::to_string(s.steals);
        // Fault/watchdog columns only once a shard has seen one, so the
        // fixed 4-line shape shard tests pin survives on healthy hubs.
        if (s.overruns > 0 || s.faulted > 0)
            row += " overruns " + std::to_string(s.overruns) + " faulted " +
                   std::to_string(s.faulted);
        body.push_back(std::move(row));
    }
    body.push_back("steals-total " + std::to_string(scheduler_.total_steals()));
    const WatchdogConfig& wd = scheduler_.watchdog();
    if (wd.enabled()) {
        const WatchdogStats& stats = scheduler_.watchdog_stats();
        body.push_back("watchdog limit " + std::to_string(wd.slice_limit_us) +
                       " us strikes " + std::to_string(wd.max_strikes) +
                       " overruns " + std::to_string(stats.overruns) +
                       " runaways " + std::to_string(stats.runaways));
    }
    return proto::Response::make_ok(std::move(body));
}

proto::Response HubController::cmd_attach(const proto::Request& req,
                                          RouteContext& ctx) {
    if (req.args.size() != 1)
        return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                           "usage: attach <session>");
    SessionRegistry::Entry* entry = registry_.resolve(req.args[0]);
    if (entry == nullptr)
        return proto::Response::make_error(proto::ErrorCode::NotFound,
                                           "no session '" + req.args[0] + "'");
    if (!ctx.allows(entry->id, entry->name))
        return proto::Response::make_error(
            proto::ErrorCode::BadState,
            "session '" + entry->name + "' is outside this client's acl");
    ctx.current = entry->id;
    return proto::Response::make_ok(
        {"attached " + entry->name + " (session " + std::to_string(entry->id) + ")"});
}

proto::Response HubController::cmd_acl(const proto::Request& req, RouteContext& ctx) {
    auto show = [&ctx]() {
        if (!ctx.restricted)
            return proto::Response::make_ok({"acl unrestricted"});
        std::string line = "acl";
        for (const std::string& name : ctx.acl) line += " " + name;
        if (ctx.acl.empty()) line += " (opened sessions only)";
        return proto::Response::make_ok({line});
    };
    if (req.args.empty() || req.args[0] == "show") {
        if (req.args.size() > 1)
            return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                               "usage: acl show");
        return show();
    }
    if (req.args[0] == "clear") {
        if (req.args.size() != 1)
            return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                               "usage: acl clear");
        ctx.restricted = false;
        ctx.acl.clear();
        return show();
    }
    if (req.args[0] == "allow") {
        if (req.args.size() < 2)
            return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                               "usage: acl allow <session> [...]");
        // Names are taken as given (a session may be opened later under
        // an allowed name); ids are rejected because they are only
        // meaningful for live sessions.
        for (std::size_t i = 1; i < req.args.size(); ++i) {
            if (!SessionRegistry::valid_name(req.args[i]))
                return proto::Response::make_error(
                    proto::ErrorCode::BadArgument,
                    "'" + req.args[i] + "' is not a valid session name");
            if (std::find(ctx.acl.begin(), ctx.acl.end(), req.args[i]) ==
                ctx.acl.end())
                ctx.acl.push_back(req.args[i]);
        }
        ctx.restricted = true;
        return show();
    }
    return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                       "usage: acl allow|clear|show ...");
}

proto::Response HubController::cmd_campaign(const proto::Request& req) {
    if (req.args.size() == 1 && req.args[0] == "report") {
        if (last_campaign_ == nullptr)
            return proto::Response::make_error(
                proto::ErrorCode::BadState,
                "no campaign has run yet (try 'campaign run <pairs>')");
        return proto::Response::make_ok(last_campaign_->summary_lines());
    }
    if (!req.args.empty() && req.args[0] == "run") {
        if (req.args.size() < 2 || req.args.size() > 3)
            return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                               "usage: campaign run <pairs> [seed]");
        auto parse_u32 = [](const std::string& text) -> std::optional<std::uint32_t> {
            if (text.empty() || text.size() > 9) return std::nullopt;
            std::uint32_t v = 0;
            for (char c : text) {
                if (c < '0' || c > '9') return std::nullopt;
                v = v * 10 + static_cast<std::uint32_t>(c - '0');
            }
            return v;
        };
        auto pairs = parse_u32(req.args[1]);
        if (!pairs.has_value() || *pairs < 1 || *pairs > 5000)
            return proto::Response::make_error(
                proto::ErrorCode::BadArgument,
                "pairs '" + req.args[1] + "' must be a count in [1, 5000]");
        campaign::CampaignConfig cfg;
        cfg.pairs = static_cast<int>(*pairs);
        if (req.args.size() == 3) {
            auto seed = parse_u32(req.args[2]);
            if (!seed.has_value())
                return proto::Response::make_error(
                    proto::ErrorCode::BadArgument,
                    "seed '" + req.args[2] + "' must be a non-negative integer");
            cfg.seed = *seed;
        }
        last_campaign_ =
            std::make_unique<campaign::CampaignReport>(campaign::run_campaign(cfg));
        return proto::Response::make_ok(last_campaign_->summary_lines());
    }
    return proto::Response::make_error(proto::ErrorCode::BadArgument,
                                       "usage: campaign run <pairs> [seed] | "
                                       "campaign report");
}

} // namespace gmdf::hub
