// SessionRegistry: ownership of many concurrent debug sessions.
//
// The paper's GDM serves exactly one executing target per debugger
// instance; the hub breaks that 1:1 shape. A registry owns N named
// sessions — each a full proto::Scenario bundle (design model, simulated
// target, DebugSession, SessionController) — hands out stable integer
// ids, and aggregates per-session EngineStats into hub-level totals.
// The protocol face (session open/close/list/use, @<id> routing) lives
// in hub::HubController; the poll loop in hub::PollScheduler.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "proto/scenarios.hpp"

namespace gmdf::hub {

class SessionRegistry {
public:
    /// Session lifecycle under fault containment. A Faulted session is
    /// quarantined: the schedulers skip it and the hub refuses to route
    /// requests into it, but it stays listed (with the captured error)
    /// until closed or revived — the rest of the fleet is unaffected.
    enum class Health { Live, Faulted };

    /// One hosted session. The id is stable for the life of the hub and
    /// never reused; the name is unique among live sessions (a closed
    /// session's name may be reopened, yielding a fresh id).
    struct Entry {
        int id = 0;
        std::string name;
        std::unique_ptr<proto::Scenario> scenario;
        /// Fault containment state. Written only by whichever thread
        /// exclusively holds the session (a pump worker mid-slice, or
        /// the hub's request path); read between pumps.
        Health health = Health::Live;
        std::string fault_reason;
        bool runaway = false;        ///< quarantined by the pump watchdog
        int overrun_strikes = 0;     ///< consecutive slice-deadline overruns

        [[nodiscard]] core::DebugSession& session() { return *scenario->session; }
        [[nodiscard]] proto::SessionController& controller() {
            return scenario->controller();
        }
        [[nodiscard]] bool faulted() const { return health == Health::Faulted; }
        void mark_faulted(std::string reason) {
            health = Health::Faulted;
            fault_reason = std::move(reason);
        }
        /// Clears the quarantine (session revive). The caller is
        /// responsible for restoring sane session state first.
        void clear_fault() {
            health = Health::Live;
            fault_reason.clear();
            runaway = false;
            overrun_strikes = 0;
        }
    };

    /// Why open()/adopt() refused to register a session.
    enum class OpenError {
        None,
        BadName,       ///< not a valid session name
        DuplicateName, ///< the name is already live
        NoScenario,    ///< unknown scenario name / null scenario given
    };

    /// Session names are one token of [A-Za-z0-9_-] with at least one
    /// non-digit, so they survive the line protocol and the @<session>
    /// prefix unquoted and can never shadow a session id.
    [[nodiscard]] static bool valid_name(std::string_view name);

    /// Builds a session from a built-in scenario (proto::make_scenario)
    /// and registers it. Null on failure, with the reason in `error`
    /// when provided.
    Entry* open(std::string_view scenario_name, std::string name,
                OpenError* error = nullptr);

    /// Registers an externally built scenario (tests, embedders). Same
    /// failure rules as open(), minus the scenario lookup.
    Entry* adopt(std::unique_ptr<proto::Scenario> scenario, std::string name,
                 OpenError* error = nullptr);

    /// Destroys a live session; false for unknown ids.
    bool close(int id);

    [[nodiscard]] Entry* find(int id);
    [[nodiscard]] Entry* find_named(std::string_view name);

    /// Resolves a session tag: all digits -> id lookup, else name lookup.
    [[nodiscard]] Entry* resolve(std::string_view tag);

    /// Live sessions, in id (= opening) order.
    [[nodiscard]] const std::vector<std::unique_ptr<Entry>>& entries() const {
        return entries_;
    }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    /// Hosted sessions currently quarantined as Faulted.
    [[nodiscard]] std::size_t faulted_count() const {
        std::size_t n = 0;
        for (const auto& e : entries_)
            if (e->faulted()) ++n;
        return n;
    }

    [[nodiscard]] std::uint64_t opened() const { return opened_; }
    [[nodiscard]] std::uint64_t closed() const { return closed_; }

    /// Hub-level totals: the sum of every live session's EngineStats
    /// plus everything closed sessions had accumulated when they were
    /// retired — so the counters are monotonic across closes and usable
    /// for delta monitoring.
    ///
    /// Concurrency: open/adopt/close and aggregate_stats serialize on an
    /// internal mutex, so the registry's shape and the retired totals
    /// are safe against a reader and a mutator on different threads.
    /// The per-session engine counters themselves are written by
    /// whichever thread is pumping that session; ShardedScheduler::pump
    /// joins its workers before returning, so reading them between
    /// pumps (the only protocol path) is race-free.
    [[nodiscard]] core::EngineStats aggregate_stats() const;

private:
    bool check_name(const std::string& name, OpenError* error);
    Entry* insert(std::unique_ptr<proto::Scenario> scenario, std::string name);
    static void accumulate(core::EngineStats& into, const core::EngineStats& from);

    /// Guards entries_'s shape, the open/close counters, and retired_.
    /// entries()/find() stay lock-free: sessions are never opened or
    /// closed while a pump is slicing the fleet (the SliceHook contract).
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Entry>> entries_;
    int next_id_ = 1;
    std::uint64_t opened_ = 0;
    std::uint64_t closed_ = 0;
    core::EngineStats retired_; ///< totals carried over from closed sessions
};

} // namespace gmdf::hub
