// HubController: the protocol face of a multi-session debug hub.
//
// Wraps a SessionRegistry and a PollScheduler behind the same
// line-oriented protocol a single SessionController speaks, adding
// session addressing on top:
//
//   session open <scenario> [name]   host a new session (becomes current)
//   session close [session]          close a session (default: current)
//   session list                     list hosted sessions
//   session use <session>            switch the current session
//   session stats                    hub totals and aggregate counters
//   @<session> <verb ...>            route one request to a session by
//                                    id or name without switching
//
// Every other verb is dispatched to the addressed (or current) session's
// own controller, whose `run` hook the hub rebinds to the scheduler — so
// `run <ms>` advances every live session concurrently, interleaving
// their events. With a single hosted session the transcript is
// byte-identical to a bare SessionController: event lines grow their
// "[<name>] " session tag only once a second concurrent session has
// been opened (the tagging latches on for the rest of the hub's life,
// so a transcript never changes shape mid-stream when sessions close).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "hub/registry.hpp"
#include "hub/scheduler.hpp"
#include "proto/dispatcher.hpp"
#include "proto/script.hpp"

namespace gmdf::hub {

class HubController final : public proto::ScriptClient {
public:
    /// Requests handled at hub level (session verbs, routing failures);
    /// requests routed into a session count in that session's
    /// EngineStats instead, exactly as without a hub.
    struct HubStats {
        std::uint64_t requests = 0;
        std::uint64_t request_errors = 0;
        std::uint64_t events_dropped = 0; ///< event lines evicted, full queue
    };

    HubController();

    HubController(const HubController&) = delete;
    HubController& operator=(const HubController&) = delete;

    /// Read-only: sessions registered behind the controller's back would
    /// miss install() (run-hook rebinding, current tracking, the
    /// multi-session tag latch) — go through open()/adopt() instead.
    [[nodiscard]] const SessionRegistry& registry() const { return registry_; }
    [[nodiscard]] PollScheduler& scheduler() { return scheduler_; }

    /// Hosts a new session from a built-in scenario / an externally
    /// built one; rebinds its run hook to the scheduler and makes it
    /// current. Null on failure, with the reason in `error` when
    /// provided.
    SessionRegistry::Entry* open(std::string_view scenario, std::string name,
                                 SessionRegistry::OpenError* error = nullptr);
    SessionRegistry::Entry* adopt(std::unique_ptr<proto::Scenario> scenario,
                                  std::string name,
                                  SessionRegistry::OpenError* error = nullptr);

    /// The current session (unaddressed verbs route here); null when no
    /// session is open.
    [[nodiscard]] SessionRegistry::Entry* current() { return registry_.find(current_); }

    /// Executes one request line: resolves an optional @<session>
    /// prefix, handles `session` verbs at hub level, and routes
    /// everything else to the addressed session. Never throws.
    proto::Response execute_line(std::string_view line) override;

    /// Formatted event lines from every hosted session, oldest first,
    /// tagged with their session once the hub has gone multi-session.
    std::vector<std::string> drain_event_lines() override;

    /// Bounds the hub event queue (a client not draining must not grow
    /// memory without bound; the oldest lines are evicted and counted in
    /// stats().events_dropped). 0 is unbounded; defaults to 65536.
    void set_event_capacity(std::size_t capacity) { event_capacity_ = capacity; }
    [[nodiscard]] std::size_t event_capacity() const { return event_capacity_; }

    /// The hub-level verb registry (the `session` rows).
    [[nodiscard]] const proto::Dispatcher& dispatcher() const { return hub_dispatcher_; }

    [[nodiscard]] const HubStats& stats() const { return stats_; }

    /// True once a second concurrent session has been opened (event
    /// tagging is on for good).
    [[nodiscard]] bool multi_session() const { return multi_; }

private:
    proto::Response hub_ok(std::vector<std::string> body);
    proto::Response hub_error(proto::ErrorCode code, std::string message);
    proto::Response route(SessionRegistry::Entry& entry, std::string_view line);
    void install(SessionRegistry::Entry& entry);
    void collect_events(SessionRegistry::Entry& entry);

    proto::Response cmd_session(const proto::Request& req);
    proto::Response session_open(const proto::Request& req);
    proto::Response session_close(const proto::Request& req);
    proto::Response session_list();
    proto::Response session_use(const proto::Request& req);
    proto::Response session_stats();

    SessionRegistry registry_;
    PollScheduler scheduler_;
    proto::Dispatcher hub_dispatcher_;
    int current_ = 0;
    bool multi_ = false;
    HubStats stats_;
    std::size_t event_capacity_ = 65536;
    std::deque<std::string> event_lines_;
};

} // namespace gmdf::hub
