// HubController: the protocol face of a multi-session debug hub.
//
// Wraps a SessionRegistry and a PollScheduler behind the same
// line-oriented protocol a single SessionController speaks, adding
// session addressing on top:
//
//   session open <scenario> [name]   host a new session (becomes current)
//   session close [session]          close a session (default: current)
//   session list                     list hosted sessions
//   session use <session>            switch the current session
//   session revive [session]         lift a faulted session's quarantine,
//                                    restoring its last checkpoint when a
//                                    timeline is attached
//   session stats                    hub totals and aggregate counters
//   session stats net                network server + per-connection counters
//   session stats shards             per-shard pump counters (sharded hubs)
//   @<session> <verb ...>            route one request to a session by
//                                    id or name without switching
//   attach <session>                 switch this client's session (= use)
//   acl allow|clear|show ...         restrict which sessions this client
//                                    may address or receive events from
//   campaign run <pairs> [seed]      seeded fault-hunt campaign over
//                                    generated models (gmdf::campaign)
//   campaign report                  re-print the last campaign's summary
//
// Every other verb is dispatched to the addressed (or current) session's
// own controller, whose `run` hook the hub rebinds to the scheduler — so
// `run <ms>` advances every live session concurrently, interleaving
// their events. With a single hosted session the transcript is
// byte-identical to a bare SessionController: event lines grow their
// "[<name>] " session tag only once a second concurrent session has
// been opened (the tagging latches on for the rest of the hub's life,
// so a transcript never changes shape mid-stream when sessions close).
//
// Multi-client routing: every request executes under a RouteContext —
// the per-client view of the hub (current session, ACL allowlist,
// sessions this client opened). The plain ScriptClient face runs under
// the hub's own root context, so a single-client transcript is
// unchanged; a network server passes one context per connection, giving
// each client its own `session use` state and allowlist over the same
// shared fleet.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hub/registry.hpp"
#include "hub/sharded.hpp"
#include "proto/dispatcher.hpp"
#include "proto/script.hpp"

namespace gmdf::campaign {
struct CampaignReport;
} // namespace gmdf::campaign

namespace gmdf::hub {

/// One client's view of the hub: which session its unaddressed verbs
/// route to, which sessions it may touch, and which it opened (and
/// therefore owns). The hub keeps a root context for its direct
/// ScriptClient face; a network server keeps one per connection.
struct RouteContext {
    int current = 0;              ///< session id unaddressed verbs route to
    bool restricted = false;      ///< false: every session is allowed
    std::vector<std::string> acl; ///< allowed session names (when restricted)
    std::vector<int> opened;      ///< ids opened via this context (always allowed)

    /// May this client address / receive events from the session?
    [[nodiscard]] bool allows(int id, std::string_view name) const {
        if (!restricted) return true;
        for (int own : opened)
            if (own == id) return true;
        for (const std::string& a : acl)
            if (a == name) return true;
        return false;
    }
};

class HubController final : public proto::ScriptClient {
public:
    /// Requests handled at hub level (session verbs, routing failures);
    /// requests routed into a session count in that session's
    /// EngineStats instead, exactly as without a hub.
    struct HubStats {
        std::uint64_t requests = 0;
        std::uint64_t request_errors = 0;
        std::uint64_t events_dropped = 0; ///< event lines evicted, full queue
    };

    HubController();
    ~HubController();

    HubController(const HubController&) = delete;
    HubController& operator=(const HubController&) = delete;

    /// Read-only: sessions registered behind the controller's back would
    /// miss install() (run-hook rebinding, current tracking, the
    /// multi-session tag latch) — go through open()/adopt() instead.
    [[nodiscard]] const SessionRegistry& registry() const { return registry_; }

    /// The fleet pump. threads=1 (default) keeps the single-threaded
    /// PollScheduler semantics and transcripts; set_threads(N) shards
    /// the fleet across N workers (`session stats shards` reports the
    /// split). Event collection is safe either way: the hub queue is a
    /// mutex-guarded MPSC under a sharded pump.
    [[nodiscard]] ShardedScheduler& scheduler() { return scheduler_; }

    /// Hosts a new session from a built-in scenario / an externally
    /// built one; rebinds its run hook to the scheduler and makes it
    /// current. Null on failure, with the reason in `error` when
    /// provided.
    SessionRegistry::Entry* open(std::string_view scenario, std::string name,
                                 SessionRegistry::OpenError* error = nullptr);
    SessionRegistry::Entry* adopt(std::unique_ptr<proto::Scenario> scenario,
                                  std::string name,
                                  SessionRegistry::OpenError* error = nullptr);

    /// The current session (unaddressed verbs route here); null when no
    /// session is open.
    [[nodiscard]] SessionRegistry::Entry* current() { return registry_.find(root_.current); }

    /// The hub's own client view (what the plain ScriptClient face runs
    /// under).
    [[nodiscard]] RouteContext& root_context() { return root_; }

    /// Executes one request line: resolves an optional @<session>
    /// prefix, handles `session`/`attach`/`acl` verbs at hub level, and
    /// routes everything else to the addressed session. Never throws.
    proto::Response execute_line(std::string_view line) override;

    /// Same, under an explicit per-client context (a network connection).
    proto::Response execute_line(std::string_view line, RouteContext& ctx);

    /// Releases one client's grip on the hub when it goes away: closes
    /// the sessions this context opened (a client must never tear down
    /// sessions it didn't open — those are left untouched) and clears
    /// the context. Safe against sessions already closed by other means.
    void release_context(RouteContext& ctx);

    /// Formatted event lines from every hosted session, oldest first,
    /// tagged with their session once the hub has gone multi-session.
    std::vector<std::string> drain_event_lines() override;

    /// Network fan-out hook: with a sink installed, event lines bypass
    /// the hub's own queue and are handed to the sink as they are
    /// collected (already formatted and session-tagged), together with
    /// the emitting session's identity so a server can fan them out
    /// per-connection under each connection's ACL.
    using EventSink =
        std::function<void(int session_id, std::string_view session_name,
                           const std::string& line)>;
    void set_event_sink(EventSink sink) { event_sink_ = std::move(sink); }

    /// `session stats net` delegates here; installed by a network server
    /// (bad-state without one, so non-networked transcripts never grow
    /// nondeterministic counter lines).
    using NetStatsProvider = std::function<std::vector<std::string>()>;
    void set_net_stats_provider(NetStatsProvider provider) {
        net_stats_provider_ = std::move(provider);
    }

    /// Bounds the hub event queue (a client not draining must not grow
    /// memory without bound; the oldest lines are evicted and counted in
    /// stats().events_dropped). 0 is unbounded; defaults to 65536.
    void set_event_capacity(std::size_t capacity) { event_capacity_ = capacity; }
    [[nodiscard]] std::size_t event_capacity() const { return event_capacity_; }

    /// The hub-level verb registry (the `session` rows).
    [[nodiscard]] const proto::Dispatcher& dispatcher() const { return hub_dispatcher_; }

    [[nodiscard]] const HubStats& stats() const { return stats_; }

    /// True once a second concurrent session has been opened (event
    /// tagging is on for good).
    [[nodiscard]] bool multi_session() const { return multi_; }

private:
    void init_slice_hook();
    proto::Response hub_ok(std::vector<std::string> body);
    proto::Response hub_error(proto::ErrorCode code, std::string message);
    proto::Response route(SessionRegistry::Entry& entry, std::string_view line);
    void install(SessionRegistry::Entry& entry, RouteContext& ctx);
    void collect_events(SessionRegistry::Entry& entry);
    void close_entry(SessionRegistry::Entry& entry, RouteContext& ctx);
    proto::Response acl_denied(const std::string& name);

    proto::Response cmd_session(const proto::Request& req, RouteContext& ctx);
    proto::Response session_open(const proto::Request& req, RouteContext& ctx);
    proto::Response session_close(const proto::Request& req, RouteContext& ctx);
    proto::Response session_list(const RouteContext& ctx);
    proto::Response session_use(const proto::Request& req, RouteContext& ctx);
    proto::Response session_revive(const proto::Request& req, RouteContext& ctx);
    proto::Response session_stats();
    proto::Response session_stats_net();
    proto::Response session_stats_shards();
    proto::Response cmd_attach(const proto::Request& req, RouteContext& ctx);
    proto::Response cmd_acl(const proto::Request& req, RouteContext& ctx);
    proto::Response cmd_campaign(const proto::Request& req);
    proto::Response cmd_metrics(const proto::Request& req);
    void publish_metrics();

    SessionRegistry registry_;
    ShardedScheduler scheduler_;
    proto::Dispatcher hub_dispatcher_;
    RouteContext root_;
    bool multi_ = false;
    HubStats stats_;
    /// Built once (not per `run`) and handed to every pump: collects a
    /// session's events and drives its checkpoint cadence after each
    /// slice. Runs on scheduler worker threads when the fleet is
    /// sharded, hence the event mutex below.
    ShardedScheduler::SliceHook slice_hook_;
    /// Guards the hub event queue, its drop counter, and the event
    /// sink call — the MPSC surface worker threads publish into.
    std::mutex event_mu_;
    std::size_t event_capacity_ = 65536;
    std::deque<std::string> event_lines_;
    EventSink event_sink_;
    NetStatsProvider net_stats_provider_;
    /// Last `campaign run` result (for `campaign report`); null until
    /// a campaign has run on this hub.
    std::unique_ptr<campaign::CampaignReport> last_campaign_;
};

} // namespace gmdf::hub
