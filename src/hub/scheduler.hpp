// PollScheduler: one cooperative loop pumping every live session.
//
// Each hosted session fronts its own simulated target with its own
// clock. Advancing them serially (session A for the whole duration,
// then session B) would batch each target's events and let one chatty
// target starve the others' liveness. The scheduler instead advances
// all sessions round-robin in bounded simulated-time slices: every
// round, each live session's target runs forward by at most the
// per-session budget and every attached transport is polled, so events
// from concurrent targets interleave in elapsed-time order at budget
// granularity and no session waits longer than one round for service.
//
// For a single session the sliced pump is behaviourally identical to
// one contiguous run (the DES kernel dispatches the same events in the
// same order across run_until boundaries) — which is what keeps
// single-session transcripts byte-stable under the hub.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "hub/registry.hpp"
#include "rt/des.hpp"

namespace gmdf::hub {

/// Advances one session's target by `slice` and polls its transports at
/// the new clock — the unit of work both schedulers are built from.
/// Touches only that session's state, so distinct sessions may be
/// sliced concurrently (ShardedScheduler relies on this).
void pump_session_slice(SessionRegistry::Entry& entry, rt::SimTime slice);

class PollScheduler {
public:
    /// Called after each per-session slice (events queued by that slice
    /// are ready to collect). Must not open or close sessions. Under
    /// ShardedScheduler the hook runs on worker threads (never two
    /// concurrent calls for the same session) — it must be safe to call
    /// for distinct sessions concurrently.
    using SliceHook = std::function<void(SessionRegistry::Entry&)>;

    /// Per-session slice counters, kept across pumps.
    struct SessionPumpStats {
        std::uint64_t slices = 0;
        rt::SimTime advanced = 0;
    };

    /// Per-session simulated-time budget of one round-robin slice.
    /// Must be positive; defaults to 10 ms.
    void set_budget(rt::SimTime budget);
    [[nodiscard]] rt::SimTime budget() const { return budget_; }

    /// Advances every live session in `registry` by `duration`:
    /// round-robin over the sessions in id order, each slice running one
    /// session's target forward by min(budget, remaining) and polling
    /// its transports at the new clock.
    void pump(SessionRegistry& registry, rt::SimTime duration,
              const SliceHook& after_slice = {});

    /// Per live (not yet forgotten) session; total_slices() keeps the
    /// all-time count.
    [[nodiscard]] const std::map<int, SessionPumpStats>& stats() const { return stats_; }
    [[nodiscard]] std::uint64_t total_slices() const { return total_slices_; }

    /// Drops the per-session counters of a closed session so churny
    /// long-lived hubs don't accumulate one map entry per session ever
    /// hosted. total_slices() is unaffected.
    void forget(int session_id) { stats_.erase(session_id); }

private:
    void pump_slice(SessionRegistry::Entry& entry, rt::SimTime slice);

    rt::SimTime budget_ = 10 * rt::kMs;
    std::map<int, SessionPumpStats> stats_;
    std::uint64_t total_slices_ = 0;
};

} // namespace gmdf::hub
