// PollScheduler: one cooperative loop pumping every live session.
//
// Each hosted session fronts its own simulated target with its own
// clock. Advancing them serially (session A for the whole duration,
// then session B) would batch each target's events and let one chatty
// target starve the others' liveness. The scheduler instead advances
// all sessions round-robin in bounded simulated-time slices: every
// round, each live session's target runs forward by at most the
// per-session budget and every attached transport is polled, so events
// from concurrent targets interleave in elapsed-time order at budget
// granularity and no session waits longer than one round for service.
//
// For a single session the sliced pump is behaviourally identical to
// one contiguous run (the DES kernel dispatches the same events in the
// same order across run_until boundaries) — which is what keeps
// single-session transcripts byte-stable under the hub.
//
// Fault containment: every slice runs guarded. A session whose target
// throws — or that repeatedly blows the optional wall-clock watchdog
// deadline — transitions to Faulted and drops out of the rotation for
// the rest of the hub's life (until revived); the other sessions' slice
// sequences are unchanged, so their transcripts stay byte-identical
// with or without a crashing neighbour.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "hub/registry.hpp"
#include "obs/metrics.hpp"
#include "rt/des.hpp"

namespace gmdf::hub {

/// Advances one session's target by `slice` and polls its transports at
/// the new clock — the unit of work both schedulers are built from.
/// Touches only that session's state, so distinct sessions may be
/// sliced concurrently (ShardedScheduler relies on this).
void pump_session_slice(SessionRegistry::Entry& entry, rt::SimTime slice);

/// Pump watchdog knobs, shared by both schedulers. Off by default: the
/// deadline is wall-clock time per slice, so enabling it makes pump
/// outcomes depend on host load — an explicit operator choice.
struct WatchdogConfig {
    /// Wall-clock deadline of one slice in microseconds; 0 disables.
    std::int64_t slice_limit_us = 0;
    /// Consecutive overruns before the session is flagged runaway and
    /// quarantined (a single slow slice on a loaded host is forgiven).
    int max_strikes = 3;
    [[nodiscard]] bool enabled() const { return slice_limit_us > 0; }
};

/// Lifetime watchdog counters.
struct WatchdogStats {
    std::uint64_t overruns = 0;  ///< slices that blew the deadline
    std::uint64_t runaways = 0;  ///< sessions quarantined for repeat offenses
};

/// pump_session_slice under crash isolation: an exception transitions
/// the session to Faulted (quarantining it from scheduling) instead of
/// unwinding the pump, and a watchdog deadline overrun counts a strike
/// — max_strikes consecutive ones quarantine the session as runaway.
/// Returns false when the session faulted (the caller drops it from the
/// round). The entry is exclusively held by the caller, so its health
/// fields need no locking; `stats` is the caller's accumulator.
///
/// Every slice also feeds the obs layer: wall duration into the
/// `hub.pump.slice_ns` histogram and, when the tracer is running, a
/// "pump-slice" span. `trace_tid` picks the Perfetto track (-1 = the
/// calling thread's automatic id; the sharded pump passes a stable
/// per-shard id so slices group under "shard-N" tracks).
bool pump_session_slice_guarded(SessionRegistry::Entry& entry, rt::SimTime slice,
                                const WatchdogConfig& watchdog, WatchdogStats& stats,
                                int trace_tid = -1);

/// Process-global pump instrumentation handles, shared by both
/// schedulers; exposed so the hub can touch them at construction and the
/// /metrics catalog is complete before the first pump.
struct PumpMetrics {
    obs::Histogram* slice_ns;
};
const PumpMetrics& pump_metrics();

class PollScheduler {
public:
    /// Called after each per-session slice (events queued by that slice
    /// are ready to collect). Must not open or close sessions. Under
    /// ShardedScheduler the hook runs on worker threads (never two
    /// concurrent calls for the same session) — it must be safe to call
    /// for distinct sessions concurrently.
    using SliceHook = std::function<void(SessionRegistry::Entry&)>;

    /// Per-session slice counters, kept across pumps.
    struct SessionPumpStats {
        std::uint64_t slices = 0;
        rt::SimTime advanced = 0;
    };

    /// Per-session simulated-time budget of one round-robin slice.
    /// Must be positive; defaults to 10 ms.
    void set_budget(rt::SimTime budget);
    [[nodiscard]] rt::SimTime budget() const { return budget_; }

    /// Pump watchdog (per-slice wall-clock deadline); disabled by
    /// default so transcripts never depend on host load unless asked to.
    void set_watchdog(WatchdogConfig config) { watchdog_ = config; }
    [[nodiscard]] const WatchdogConfig& watchdog() const { return watchdog_; }
    [[nodiscard]] const WatchdogStats& watchdog_stats() const { return watchdog_stats_; }

    /// Advances every live session in `registry` by `duration`:
    /// round-robin over the sessions in id order, each slice running one
    /// session's target forward by min(budget, remaining) and polling
    /// its transports at the new clock.
    void pump(SessionRegistry& registry, rt::SimTime duration,
              const SliceHook& after_slice = {});

    /// Per live (not yet forgotten) session; total_slices() keeps the
    /// all-time count.
    [[nodiscard]] const std::map<int, SessionPumpStats>& stats() const { return stats_; }
    [[nodiscard]] std::uint64_t total_slices() const { return total_slices_; }

    /// Drops the per-session counters of a closed session so churny
    /// long-lived hubs don't accumulate one map entry per session ever
    /// hosted. total_slices() is unaffected.
    void forget(int session_id) { stats_.erase(session_id); }

private:
    /// Returns false when the slice faulted the session.
    bool pump_slice(SessionRegistry::Entry& entry, rt::SimTime slice);

    rt::SimTime budget_ = 10 * rt::kMs;
    WatchdogConfig watchdog_;
    WatchdogStats watchdog_stats_;
    std::map<int, SessionPumpStats> stats_;
    std::uint64_t total_slices_ = 0;
};

} // namespace gmdf::hub
