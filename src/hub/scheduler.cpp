#include "hub/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/session.hpp"
#include "obs/trace.hpp"
#include "rt/target.hpp"

namespace gmdf::hub {

const PumpMetrics& pump_metrics() {
    static const PumpMetrics metrics{&obs::registry().histogram("hub.pump.slice_ns")};
    return metrics;
}

void pump_session_slice(SessionRegistry::Entry& entry, rt::SimTime slice) {
    proto::Scenario& scenario = *entry.scenario;
    scenario.target.run_for(slice);
    rt::SimTime now = scenario.target.sim().now();
    core::DebugSession& session = *scenario.session;
    for (const auto& transport : session.transports())
        transport->poll(session.engine(), now);
}

bool pump_session_slice_guarded(SessionRegistry::Entry& entry, rt::SimTime slice,
                                const WatchdogConfig& watchdog,
                                WatchdogStats& stats, int trace_tid) {
    using clock = std::chrono::steady_clock;
    // One clock pair serves the watchdog deadline and the obs histogram;
    // with both off the slice takes no timestamps at all.
    const bool metrics_on = obs::metrics_enabled();
    const bool timed = watchdog.enabled() || metrics_on;
    const clock::time_point start = timed ? clock::now() : clock::time_point{};
    {
        obs::Span span("hub", "pump-slice", {}, trace_tid);
        span.arg("session", entry.name);
        try {
            pump_session_slice(entry, slice);
        } catch (const std::exception& e) {
            entry.mark_faulted(e.what());
            return false;
        } catch (...) {
            entry.mark_faulted("unknown exception during pump slice");
            return false;
        }
    }
    std::int64_t elapsed_ns = 0;
    if (timed) {
        elapsed_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                          start)
                         .count();
        if (metrics_on)
            pump_metrics().slice_ns->record(static_cast<std::uint64_t>(elapsed_ns));
    }
    if (watchdog.enabled()) {
        const auto elapsed_us = elapsed_ns / 1000;
        if (elapsed_us > watchdog.slice_limit_us) {
            ++stats.overruns;
            if (++entry.overrun_strikes >= watchdog.max_strikes) {
                ++stats.runaways;
                entry.runaway = true;
                entry.mark_faulted(
                    "watchdog: " + std::to_string(entry.overrun_strikes) +
                    " consecutive slices over the " +
                    std::to_string(watchdog.slice_limit_us) + " us deadline (last " +
                    std::to_string(elapsed_us) + " us)");
                return false;
            }
        } else {
            entry.overrun_strikes = 0; // strikes are consecutive, not lifetime
        }
    }
    return true;
}

void PollScheduler::set_budget(rt::SimTime budget) {
    if (budget <= 0) throw std::invalid_argument("scheduler budget must be positive");
    budget_ = budget;
}

void PollScheduler::pump(SessionRegistry& registry, rt::SimTime duration,
                         const SliceHook& after_slice) {
    if (duration <= 0) return;
    // Remaining simulated time per session id. Sessions opened mid-pump
    // (there is no protocol path that does) would simply be skipped;
    // faulted sessions never enter the rotation.
    std::map<int, rt::SimTime> remaining;
    for (const auto& e : registry.entries())
        if (!e->faulted()) remaining[e->id] = duration;

    // Hoisted out of the slice loop: std::function's operator bool and
    // the indirect call setup are not free at bench_p2's ~0.3 µs/slice.
    const bool has_hook = static_cast<bool>(after_slice);

    bool any = true;
    while (any) {
        any = false;
        for (const auto& e : registry.entries()) {
            auto it = remaining.find(e->id);
            if (it == remaining.end() || it->second <= 0) continue;
            rt::SimTime slice = std::min(budget_, it->second);
            bool alive = pump_slice(*e, slice);
            it->second -= slice;
            any = true;
            if (has_hook) after_slice(*e);
            if (!alive) it->second = 0; // quarantined: out of this rotation too
        }
    }
}

bool PollScheduler::pump_slice(SessionRegistry::Entry& entry, rt::SimTime slice) {
    bool alive = pump_session_slice_guarded(entry, slice, watchdog_, watchdog_stats_);
    SessionPumpStats& s = stats_[entry.id];
    ++s.slices;
    s.advanced += slice;
    ++total_slices_;
    return alive;
}

} // namespace gmdf::hub
