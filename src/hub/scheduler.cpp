#include "hub/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/session.hpp"
#include "rt/target.hpp"

namespace gmdf::hub {

void pump_session_slice(SessionRegistry::Entry& entry, rt::SimTime slice) {
    proto::Scenario& scenario = *entry.scenario;
    scenario.target.run_for(slice);
    rt::SimTime now = scenario.target.sim().now();
    core::DebugSession& session = *scenario.session;
    for (const auto& transport : session.transports())
        transport->poll(session.engine(), now);
}

void PollScheduler::set_budget(rt::SimTime budget) {
    if (budget <= 0) throw std::invalid_argument("scheduler budget must be positive");
    budget_ = budget;
}

void PollScheduler::pump(SessionRegistry& registry, rt::SimTime duration,
                         const SliceHook& after_slice) {
    if (duration <= 0) return;
    // Remaining simulated time per session id. Sessions opened mid-pump
    // (there is no protocol path that does) would simply be skipped.
    std::map<int, rt::SimTime> remaining;
    for (const auto& e : registry.entries()) remaining[e->id] = duration;

    // Hoisted out of the slice loop: std::function's operator bool and
    // the indirect call setup are not free at bench_p2's ~0.3 µs/slice.
    const bool has_hook = static_cast<bool>(after_slice);

    bool any = true;
    while (any) {
        any = false;
        for (const auto& e : registry.entries()) {
            auto it = remaining.find(e->id);
            if (it == remaining.end() || it->second <= 0) continue;
            rt::SimTime slice = std::min(budget_, it->second);
            pump_slice(*e, slice);
            it->second -= slice;
            any = true;
            if (has_hook) after_slice(*e);
        }
    }
}

void PollScheduler::pump_slice(SessionRegistry::Entry& entry, rt::SimTime slice) {
    pump_session_slice(entry, slice);
    SessionPumpStats& s = stats_[entry.id];
    ++s.slices;
    s.advanced += slice;
    ++total_slices_;
}

} // namespace gmdf::hub
