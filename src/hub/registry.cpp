#include "hub/registry.hpp"

#include <algorithm>

namespace gmdf::hub {

bool SessionRegistry::valid_name(std::string_view name) {
    if (name.empty()) return false;
    bool non_digit = false;
    for (char c : name) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == '-')
            non_digit = true;
        else if (c < '0' || c > '9')
            return false;
    }
    // All-digit names would be unaddressable: resolve() reads an
    // all-digit tag as a session id.
    return non_digit;
}

namespace {

void report(SessionRegistry::OpenError* out, SessionRegistry::OpenError error) {
    if (out != nullptr) *out = error;
}

} // namespace

bool SessionRegistry::check_name(const std::string& name, OpenError* error) {
    report(error, OpenError::None);
    if (!valid_name(name)) {
        report(error, OpenError::BadName);
        return false;
    }
    if (find_named(name) != nullptr) {
        report(error, OpenError::DuplicateName);
        return false;
    }
    return true;
}

SessionRegistry::Entry* SessionRegistry::open(std::string_view scenario_name,
                                              std::string name, OpenError* error) {
    if (!check_name(name, error)) return nullptr;
    auto scenario = proto::make_scenario(scenario_name);
    if (scenario == nullptr) {
        report(error, OpenError::NoScenario);
        return nullptr;
    }
    return insert(std::move(scenario), std::move(name));
}

SessionRegistry::Entry* SessionRegistry::adopt(std::unique_ptr<proto::Scenario> scenario,
                                               std::string name, OpenError* error) {
    if (!check_name(name, error)) return nullptr;
    if (scenario == nullptr || scenario->session == nullptr) {
        report(error, OpenError::NoScenario);
        return nullptr;
    }
    return insert(std::move(scenario), std::move(name));
}

SessionRegistry::Entry* SessionRegistry::insert(std::unique_ptr<proto::Scenario> scenario,
                                                std::string name) {
    auto entry = std::make_unique<Entry>();
    entry->name = std::move(name);
    entry->scenario = std::move(scenario);
    std::lock_guard<std::mutex> lock(mu_);
    entry->id = next_id_++;
    ++opened_;
    entries_.push_back(std::move(entry));
    return entries_.back().get();
}

bool SessionRegistry::close(int id) {
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [id](const auto& e) { return e->id == id; });
    if (it == entries_.end()) return false;
    std::lock_guard<std::mutex> lock(mu_);
    accumulate(retired_, (*it)->scenario->session->engine().stats());
    entries_.erase(it);
    ++closed_;
    return true;
}

SessionRegistry::Entry* SessionRegistry::find(int id) {
    for (const auto& e : entries_)
        if (e->id == id) return e.get();
    return nullptr;
}

SessionRegistry::Entry* SessionRegistry::find_named(std::string_view name) {
    for (const auto& e : entries_)
        if (e->name == name) return e.get();
    return nullptr;
}

SessionRegistry::Entry* SessionRegistry::resolve(std::string_view tag) {
    if (tag.empty()) return nullptr;
    bool digits = std::all_of(tag.begin(), tag.end(),
                              [](char c) { return c >= '0' && c <= '9'; });
    if (digits) {
        // Ids are small and sequential; anything longer than 9 digits
        // cannot be live (and would overflow an int).
        if (tag.size() > 9) return nullptr;
        int id = 0;
        for (char c : tag) id = id * 10 + (c - '0');
        return find(id);
    }
    return find_named(tag);
}

void SessionRegistry::accumulate(core::EngineStats& into,
                                 const core::EngineStats& from) {
    into.commands += from.commands;
    into.reactions += from.reactions;
    into.breakpoints_hit += from.breakpoints_hit;
    into.divergences += from.divergences;
    into.requests += from.requests;
    into.request_errors += from.request_errors;
    into.events_emitted += from.events_emitted;
    into.events_dropped += from.events_dropped;
}

core::EngineStats SessionRegistry::aggregate_stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    core::EngineStats total = retired_;
    for (const auto& e : entries_)
        accumulate(total, e->scenario->session->engine().stats());
    return total;
}

} // namespace gmdf::hub
