#include "proto/controller.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "comdes/metamodel.hpp"
#include "core/names.hpp"
#include "core/session.hpp"
#include "expr/parser.hpp"
#include "obs/trace.hpp"
#include "replay/timeline.hpp"

namespace gmdf::proto {

namespace {

constexpr std::size_t kMaxQueuedEvents = 4096;

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> out;
    std::string line;
    for (char c : text) {
        if (c == '\n') {
            out.push_back(line);
            line.clear();
        } else {
            line.push_back(c);
        }
    }
    if (!line.empty()) out.push_back(line);
    return out;
}

Response bad_args(const std::string& usage) {
    return Response::make_error(ErrorCode::BadArgument, "usage: " + usage);
}

/// Parses a finite number token in full; nullopt on junk (incl. nan/inf).
std::optional<double> parse_number(const std::string& token) {
    if (token.empty()) return std::nullopt;
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) return std::nullopt;
    return v;
}

/// Parses a non-negative integer token in full; nullopt on junk —
/// including fractional input, so "remove 1.9" cannot silently act on
/// breakpoint 1.
std::optional<std::uint64_t> parse_index(const std::string& token) {
    if (token.empty()) return std::nullopt;
    std::uint64_t v = 0;
    for (char c : token) {
        if (c < '0' || c > '9') return std::nullopt;
        auto digit = static_cast<std::uint64_t>(c - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return std::nullopt; // overflow would wrap to a different index
        v = v * 10 + digit;
    }
    return v;
}

/// The COMDES metaclass to resolve against, or null for generic models.
const meta::MetaClass* comdes_class(const meta::Model& design,
                                    const meta::MetaClass* cls) {
    const auto& c = comdes::comdes_metamodel();
    return &design.metamodel() == &c.mm ? cls : nullptr;
}

/// Resolves an element argument: "#<id>" (any model) or a name looked up
/// under `cls` (COMDES models; any named element when cls is null).
const meta::MObject* resolve_element(const meta::Model& design,
                                     const meta::MetaClass* cls,
                                     const std::string& token) {
    if (!token.empty() && token.front() == '#') {
        auto raw = parse_index(token.substr(1));
        if (!raw.has_value()) return nullptr;
        const meta::MObject* obj = design.get(meta::ObjectId{*raw});
        if (obj != nullptr && cls != nullptr && !obj->meta_class().is_subtype_of(*cls))
            return nullptr;
        return obj;
    }
    if (cls != nullptr) return design.find_named(*cls, token);
    for (meta::ObjectId id : design.ids()) {
        const meta::MObject& obj = design.at(id);
        if (obj.name() == token) return &obj;
    }
    return nullptr;
}

std::string breakpoint_line(const meta::Model& design, int handle,
                            const core::Breakpoint& bp) {
    std::ostringstream os;
    os << "breakpoint " << handle << " " << core::to_string(bp.kind) << " ";
    if (bp.kind == core::Breakpoint::Kind::SignalPredicate)
        os << quote_token(bp.predicate);
    else
        os << core::element_label(design, bp.element.raw);
    if (!bp.enabled) os << " disabled";
    if (bp.one_shot) os << " once";
    return os.str();
}

} // namespace

// One row of the shared session verb table: the registry metadata plus
// the unbound handler. The table is a function-local static constructed
// once per process; every controller binds its `this` against it, so a
// hub hosting N sessions keeps one copy of the registry.
struct SessionController::VerbEntry {
    std::string_view verb;
    std::string_view usage;
    std::string_view summary;
    Response (SessionController::*handler)(const Request&); ///< null: doc-only row
};

const std::vector<SessionController::VerbEntry>& SessionController::verb_table() {
    using C = SessionController;
    static const std::vector<VerbEntry> table = {
        {"help", "help [verb]", "list commands (or one verb's forms)", &C::cmd_help},
        {"info", "info", "session summary: model, GDM, engine, transports", &C::cmd_info},
        {"run", "run <ms>", "advance the attached target by <ms> milliseconds",
         &C::cmd_run},
        {"pause", "pause", "halt the target at the next opportunity", &C::cmd_pause},
        {"resume", "resume", "resume a paused target", &C::cmd_resume},
        {"step", "step [actor]",
         "run one task release then pause again; [actor] also sets the "
         "step filter (see step-filter)",
         &C::cmd_step},
        {"step-filter", "step-filter [actor]",
         "restrict stepping to one actor (no arg: any)", &C::cmd_step_filter},
        {"break", "break add state|transition <element> [once]",
         "pause when the state is entered / the transition fires", &C::cmd_break},
        {"break", "break add signal <predicate> [once]",
         "pause when the signal expression becomes true", nullptr},
        {"break", "break remove <handle>", "delete one breakpoint", nullptr},
        {"break", "break list", "list breakpoints", nullptr},
        {"query", "query signal <name>", "last observed value of a signal",
         &C::cmd_query},
        {"query", "query state <machine>", "current state of a state machine", nullptr},
        {"query", "query stats", "engine, protocol, and transport counters", nullptr},
        {"query", "query divergences",
         "model/implementation divergences detected so far", nullptr},
        {"render", "render ascii|svg", "render the current animation frame",
         &C::cmd_render},
        {"trace", "trace vcd|timing [columns]",
         "export the recorded trace (VCD dump / ASCII timing diagram)", &C::cmd_trace},
        {"trace", "trace profile start|stop|dump <file>",
         "profile the debugger itself: capture obs spans, export Chrome trace"
         " JSON (Perfetto)",
         nullptr},
        {"replay", "replay [stride]",
         "re-animate the recorded trace; shows the final frame", &C::cmd_replay},
        {"checkpoint", "checkpoint now", "capture a full-state checkpoint",
         &C::cmd_checkpoint},
        {"checkpoint", "checkpoint list", "list checkpoints and ring stats", nullptr},
        {"checkpoint", "checkpoint auto <ms>",
         "capture automatically every <ms> of sim time (0 disables)", nullptr},
        {"checkpoint", "checkpoint limit <bytes>",
         "byte budget of the checkpoint ring (oldest evicted)", nullptr},
        {"rewind", "rewind <ms>",
         "time-travel: restore the session to an earlier sim time", &C::cmd_rewind},
        {"step-back", "step-back [n]",
         "rewind to just before the n-th most recent event (default 1)",
         &C::cmd_step_back},
        {"bisect", "bisect",
         "binary-search the timeline for the first step that diverges from "
         "the design model or the recorded trace",
         &C::cmd_bisect},
        {"quit", "quit", "end the session", &C::cmd_quit},
    };
    return table;
}

SessionController::SessionController(core::DebugSession& session) : session_(&session) {
    bind_verbs();
    session_->engine().add_observer(this);
}

SessionController::~SessionController() { session_->engine().remove_observer(this); }

void SessionController::bind_verbs() {
    for (const VerbEntry& entry : verb_table()) {
        Handler handler;
        if (entry.handler != nullptr) {
            auto fn = entry.handler;
            handler = [this, fn](const Request& req) { return (this->*fn)(req); };
        }
        dispatcher_.add({entry.verb, entry.usage, entry.summary, std::move(handler)});
    }
}

Response SessionController::execute(const Request& req) {
    session_->engine().note_request();
    Response resp = dispatcher_.dispatch(req);
    if (!resp.ok()) session_->engine().note_request_error();
    return resp;
}

Response SessionController::execute_line(std::string_view line) {
    ParseResult parsed = parse_request(line);
    if (!parsed.ok()) {
        session_->engine().note_request();
        session_->engine().note_request_error();
        return Response::make_error(ErrorCode::BadRequest, parsed.error);
    }
    return execute(*parsed.request);
}

std::vector<Event> SessionController::drain_events() {
    std::vector<Event> out(events_.begin(), events_.end());
    events_.clear();
    return out;
}

std::uint64_t SessionController::dropped_events() const {
    return session_->engine().stats().events_dropped;
}

void SessionController::push_event(Event ev) {
    if (events_.size() >= kMaxQueuedEvents) {
        events_.pop_front();
        session_->engine().note_event_dropped();
    }
    events_.push_back(std::move(ev));
    session_->engine().note_event();
}

void SessionController::on_breakpoint_hit(int handle, const core::Breakpoint& bp,
                                          const link::Command& cmd, rt::SimTime t) {
    std::ostringstream os;
    os << "handle=" << handle << " " << core::to_string(bp.kind) << " ";
    if (bp.kind == core::Breakpoint::Kind::SignalPredicate)
        os << quote_token(bp.predicate);
    else
        os << core::element_label(session_->design(), bp.element.raw);
    os << " cmd=" << cmd.to_string();
    push_event({Event::Kind::BreakpointHit, t, os.str()});
}

void SessionController::on_divergence(const core::Divergence& d) {
    push_event({Event::Kind::Divergence, d.t, d.message});
}

void SessionController::on_state_change(core::EngineState from, core::EngineState to) {
    push_event({Event::Kind::StateChange, std::nullopt,
                std::string(core::to_string(from)) + " -> " + core::to_string(to)});
}

// ---- handlers ---------------------------------------------------------------

Response SessionController::cmd_help(const Request& req) {
    if (req.args.size() > 1) return bad_args("help [verb]");
    if (req.args.empty()) return Response::make_ok(dispatcher_.help_lines());
    auto lines = dispatcher_.help_lines(req.args[0]);
    if (lines.empty())
        return Response::make_error(ErrorCode::NotFound,
                                    "no verb '" + req.args[0] + "'");
    return Response::make_ok(std::move(lines));
}

Response SessionController::cmd_info(const Request& req) {
    if (!req.args.empty()) return bad_args("info");
    const auto& design = session_->design();
    const auto& abs = session_->abstraction();
    std::vector<std::string> body;
    std::string model_name = "(unnamed)";
    for (meta::ObjectId id : design.ids()) {
        if (design.container_of(id) == nullptr && !design.at(id).name().empty()) {
            model_name = design.at(id).name();
            break;
        }
    }
    body.push_back("model " + model_name);
    body.push_back("elements " + std::to_string(design.size()));
    body.push_back("gdm nodes=" + std::to_string(abs.mapped_nodes) +
                   " edges=" + std::to_string(abs.mapped_edges));
    body.push_back(std::string("engine ") + core::to_string(session_->engine().state()));
    std::string transports;
    for (const auto& t : session_->transports()) {
        if (!transports.empty()) transports += ",";
        transports += t->name();
    }
    body.push_back("transports " + (transports.empty() ? "(none)" : transports));
    body.push_back("breakpoints " + std::to_string(session_->engine().breakpoints().size()));
    const auto& filter = session_->engine().step_filter();
    body.push_back("step-filter " + (filter.any() ? "any" : filter.actor));
    return Response::make_ok(std::move(body));
}

Response SessionController::cmd_run(const Request& req) {
    if (req.args.size() != 1) return bad_args("run <ms>");
    auto ms = parse_number(req.args[0]);
    // The upper bound keeps ms * 1e6 representable as SimTime ns — a
    // float-to-int cast out of range is UB, not a saturation.
    if (!ms.has_value() || *ms <= 0 ||
        *ms * 1e6 >= static_cast<double>(std::numeric_limits<rt::SimTime>::max()))
        return Response::make_error(ErrorCode::BadArgument,
                                    "'" + req.args[0] + "' is not a positive duration");
    if (!run_hook_)
        return Response::make_error(ErrorCode::BadState,
                                    "no target clock attached (run hook unset)");
    run_hook_(static_cast<rt::SimTime>(*ms * 1e6));
    return Response::make_ok(
        {"ran " + req.args[0] + " ms",
         std::string("engine ") + core::to_string(session_->engine().state())});
}

Response SessionController::cmd_pause(const Request& req) {
    if (!req.args.empty()) return bad_args("pause");
    if (session_->engine().state() == core::EngineState::Paused)
        return Response::make_error(ErrorCode::BadState, "already paused");
    session_->engine().pause();
    if (timeline_ != nullptr) timeline_->note_pause();
    return Response::make_ok({"engine paused"});
}

Response SessionController::cmd_resume(const Request& req) {
    if (!req.args.empty()) return bad_args("resume");
    if (session_->engine().state() != core::EngineState::Paused)
        return Response::make_error(ErrorCode::BadState, "not paused");
    session_->engine().resume();
    if (timeline_ != nullptr) timeline_->note_resume();
    return Response::make_ok({"engine animating"});
}

Response SessionController::cmd_step(const Request& req) {
    if (req.args.size() > 1) return bad_args("step [actor]");
    if (session_->engine().state() != core::EngineState::Paused)
        return Response::make_error(ErrorCode::BadState,
                                    "not paused (set a breakpoint or 'pause' first)");
    if (!req.args.empty()) {
        session_->engine().set_step_filter({req.args[0]});
        if (timeline_ != nullptr) timeline_->note_step_filter(req.args[0]);
    }
    session_->engine().step();
    if (timeline_ != nullptr) timeline_->note_step();
    const auto& filter = session_->engine().step_filter();
    return Response::make_ok(
        {"stepping " + (filter.any() ? "any task" : filter.actor)});
}

Response SessionController::cmd_step_filter(const Request& req) {
    if (req.args.size() > 1) return bad_args("step-filter [actor]");
    session_->engine().set_step_filter(
        req.args.empty() ? link::StepFilter{} : link::StepFilter{req.args[0]});
    if (timeline_ != nullptr)
        timeline_->note_step_filter(req.args.empty() ? std::string{} : req.args[0]);
    const auto& filter = session_->engine().step_filter();
    return Response::make_ok({"step-filter " + (filter.any() ? "any" : filter.actor)});
}

Response SessionController::cmd_break(const Request& req) {
    const auto& design = session_->design();
    auto& engine = session_->engine();
    const auto& c = comdes::comdes_metamodel();
    if (req.args.empty())
        return bad_args("break add|remove|list ...");
    const std::string& sub = req.args[0];

    if (sub == "list") {
        if (req.args.size() != 1) return bad_args("break list");
        std::vector<std::string> body;
        for (const auto& [handle, bp] : engine.breakpoints())
            body.push_back(breakpoint_line(design, handle, bp));
        if (body.empty()) body.push_back("(no breakpoints)");
        return Response::make_ok(std::move(body));
    }

    if (sub == "remove") {
        if (req.args.size() != 2) return bad_args("break remove <handle>");
        auto handle = parse_index(req.args[1]);
        if (!handle.has_value())
            return Response::make_error(ErrorCode::BadArgument,
                                        "'" + req.args[1] + "' is not a handle");
        if (*handle > static_cast<std::uint64_t>(std::numeric_limits<int>::max()) ||
            !engine.remove_breakpoint(static_cast<int>(*handle)))
            return Response::make_error(ErrorCode::NotFound,
                                        "no breakpoint " + req.args[1]);
        if (timeline_ != nullptr)
            timeline_->note_break_remove(static_cast<int>(*handle));
        return Response::make_ok({"breakpoint " + req.args[1] + " removed"});
    }

    if (sub == "add") {
        if (req.args.size() < 3 || req.args.size() > 4 ||
            (req.args.size() == 4 && req.args[3] != "once"))
            return bad_args("break add state|transition|signal <target> [once]");
        const std::string& kind = req.args[1];
        const std::string& target = req.args[2];
        bool once = req.args.size() == 4;
        core::Breakpoint bp;
        bp.one_shot = once;
        if (kind == "state" || kind == "transition") {
            const meta::MetaClass* cls =
                comdes_class(design, kind == "state" ? c.state : c.transition);
            const meta::MObject* obj = resolve_element(design, cls, target);
            if (obj == nullptr)
                return Response::make_error(ErrorCode::NotFound,
                                            "no " + kind + " '" + target + "'");
            bp.kind = kind == "state" ? core::Breakpoint::Kind::StateEnter
                                      : core::Breakpoint::Kind::TransitionFired;
            bp.element = obj->id();
        } else if (kind == "signal") {
            try {
                (void)expr::parse(target);
            } catch (const std::exception& e) {
                return Response::make_error(ErrorCode::BadArgument,
                                            std::string("bad predicate: ") + e.what());
            }
            bp.kind = core::Breakpoint::Kind::SignalPredicate;
            bp.predicate = target;
        } else {
            return bad_args("break add state|transition|signal <target> [once]");
        }
        int handle = engine.add_breakpoint(bp);
        if (timeline_ != nullptr) timeline_->note_break_add(handle, bp);
        return Response::make_ok({breakpoint_line(design, handle, bp)});
    }

    return bad_args("break add|remove|list ...");
}

Response SessionController::cmd_query(const Request& req) {
    const auto& design = session_->design();
    const auto& engine = session_->engine();
    const auto& c = comdes::comdes_metamodel();
    if (req.args.empty()) return bad_args("query signal|state|stats|divergences ...");
    const std::string& sub = req.args[0];

    if (sub == "signal") {
        if (req.args.size() != 2) return bad_args("query signal <name>");
        const meta::MObject* sig =
            resolve_element(design, comdes_class(design, c.signal), req.args[1]);
        if (sig == nullptr)
            return Response::make_error(ErrorCode::NotFound,
                                        "no signal '" + req.args[1] + "'");
        std::string label = core::element_label(design, sig->id().raw);
        auto value = engine.signal_value(sig->id());
        if (!value.has_value())
            return Response::make_ok({"signal " + label + " unobserved"});
        return Response::make_ok({"signal " + label + " = " + core::value_label(*value)});
    }

    if (sub == "state") {
        if (req.args.size() != 2) return bad_args("query state <machine>");
        const meta::MObject* sm =
            resolve_element(design, comdes_class(design, c.sm_fb), req.args[1]);
        if (sm == nullptr)
            return Response::make_error(ErrorCode::NotFound,
                                        "no state machine '" + req.args[1] + "'");
        std::string label = core::element_label(design, sm->id().raw);
        auto state = engine.current_state(sm->id());
        if (!state.has_value())
            return Response::make_ok({"machine " + label + " unobserved"});
        return Response::make_ok({"machine " + label + " in " +
                                  core::element_label(design, state->raw)});
    }

    if (sub == "stats") {
        if (req.args.size() != 1) return bad_args("query stats");
        const auto& s = engine.stats();
        std::vector<std::string> body = {
            "commands " + std::to_string(s.commands),
            "reactions " + std::to_string(s.reactions),
            "breakpoints-hit " + std::to_string(s.breakpoints_hit),
            "divergences " + std::to_string(s.divergences),
            "requests " + std::to_string(s.requests),
            "request-errors " + std::to_string(s.request_errors),
            "events-emitted " + std::to_string(s.events_emitted),
            "events-dropped " + std::to_string(s.events_dropped),
        };
        for (const auto& t : session_->transports()) {
            const auto ts = t->stats();
            body.push_back(std::string("transport ") + t->name() + " commands=" +
                           std::to_string(ts.commands) + " corrupt=" +
                           std::to_string(ts.corrupt_frames) + " polls=" +
                           std::to_string(ts.polls));
        }
        // Bounded-ring drop lines follow the cmd_trace convention:
        // silent until something was actually evicted, so unbounded and
        // quiet sessions keep their exact historical transcripts.
        const core::DivergenceLog& dlog = session_->divergence_log();
        if (dlog.dropped() > 0)
            body.push_back("divergence-ring dropped " +
                           std::to_string(dlog.dropped()) +
                           " oldest entries (capacity " +
                           std::to_string(dlog.capacity()) + ")");
        if (timeline_ != nullptr && timeline_->journal_dropped() > 0)
            body.push_back("journal-ring dropped " +
                           std::to_string(timeline_->journal_dropped()) +
                           " oldest entries (capacity " +
                           std::to_string(timeline_->journal_capacity()) + ")");
        return Response::make_ok(std::move(body));
    }

    if (sub == "divergences") {
        if (req.args.size() != 1) return bad_args("query divergences");
        const auto& divs = session_->divergences();
        std::vector<std::string> body = {"divergences " + std::to_string(divs.size())};
        for (const auto& d : divs)
            body.push_back("@" + std::to_string(d.t) + "ns " + d.message);
        return Response::make_ok(std::move(body));
    }

    return bad_args("query signal|state|stats|divergences ...");
}

Response SessionController::cmd_render(const Request& req) {
    if (req.args.size() != 1) return bad_args("render ascii|svg");
    if (req.args[0] == "ascii")
        return Response::make_ok(split_lines(session_->render_ascii()));
    if (req.args[0] == "svg")
        return Response::make_ok(split_lines(session_->render_svg()));
    return bad_args("render ascii|svg");
}

Response SessionController::cmd_trace(const Request& req) {
    // Bounded recorders evict the oldest events; say so ahead of any
    // export built from the surviving window. (Silent with no drops, so
    // unbounded sessions keep their exact historical transcripts.)
    auto export_ok = [this](const std::string& text) {
        std::vector<std::string> body;
        if (session_->trace().dropped() > 0)
            body.push_back("(trace ring dropped " +
                           std::to_string(session_->trace().dropped()) +
                           " oldest events; capacity " +
                           std::to_string(session_->trace().capacity()) + ")");
        auto lines = split_lines(text);
        body.insert(body.end(), lines.begin(), lines.end());
        return Response::make_ok(std::move(body));
    };

    if (req.args.empty()) return bad_args("trace vcd|timing [columns]");
    if (req.args[0] == "profile") return cmd_trace_profile(req);
    if (req.args[0] == "vcd") {
        if (req.args.size() != 1) return bad_args("trace vcd");
        return export_ok(session_->vcd());
    }
    if (req.args[0] == "timing") {
        if (req.args.size() > 2) return bad_args("trace timing [columns]");
        std::size_t columns = 64;
        if (req.args.size() == 2) {
            auto n = parse_index(req.args[1]);
            if (!n.has_value() || *n < 8)
                return Response::make_error(ErrorCode::BadArgument,
                                            "'" + req.args[1] +
                                                "' is not a column count (>= 8)");
            columns = static_cast<std::size_t>(*n);
        }
        return export_ok(session_->timing_diagram().render_ascii(columns));
    }
    return bad_args("trace vcd|timing [columns]");
}

// The *debugger's own* profiler, not the target's trace: wall-clock spans
// (dispatch, pump slices, checkpoint capture/restore) captured by
// gmdf::obs and dumped as Chrome trace-event JSON for Perfetto. Span
// counts and wall timings are nondeterministic by nature, so none of
// these subverbs appear in golden transcripts.
Response SessionController::cmd_trace_profile(const Request& req) {
    const std::string usage = "trace profile start|stop|dump <file>";
    if (req.args.size() < 2) return bad_args(usage);
    const std::string& sub = req.args[1];
    if (sub == "start") {
        if (req.args.size() != 2) return bad_args("trace profile start");
        obs::tracer().start();
        return Response::make_ok({"trace profile started (spans recording; 'trace "
                                  "profile dump <file>' exports Chrome trace JSON)"});
    }
    if (sub == "stop") {
        if (req.args.size() != 2) return bad_args("trace profile stop");
        if (!obs::tracer().enabled())
            return Response::make_error(ErrorCode::BadState,
                                        "trace profile is not running");
        obs::tracer().stop();
        std::vector<std::string> body = {
            "trace profile stopped (" + std::to_string(obs::tracer().event_count()) +
            " spans captured)"};
        if (obs::tracer().dropped() > 0)
            body.push_back("(span ring dropped " +
                           std::to_string(obs::tracer().dropped()) +
                           " oldest spans)");
        return Response::make_ok(std::move(body));
    }
    if (sub == "dump") {
        if (req.args.size() != 3) return bad_args("trace profile dump <file>");
        std::ofstream out(req.args[2], std::ios::binary);
        if (!out)
            return Response::make_error(ErrorCode::BadState,
                                        "cannot open '" + req.args[2] + "' for writing");
        obs::tracer().write_chrome_json(out);
        return Response::make_ok(
            {"trace profile wrote " + req.args[2] + " (" +
             std::to_string(obs::tracer().event_count()) + " spans)"});
    }
    return bad_args(usage);
}

Response SessionController::cmd_replay(const Request& req) {
    if (req.args.size() > 1) return bad_args("replay [stride]");
    std::size_t stride = 1;
    if (!req.args.empty()) {
        auto n = parse_index(req.args[0]);
        if (!n.has_value() || *n < 1)
            return Response::make_error(ErrorCode::BadArgument,
                                        "'" + req.args[0] + "' is not a stride (>= 1)");
        stride = static_cast<std::size_t>(*n);
    }
    auto frames = session_->replay_frames(stride);
    std::vector<std::string> body = {"replay " + std::to_string(frames.size()) +
                                     " frames (stride " + std::to_string(stride) + ")"};
    if (!frames.empty()) {
        auto last = split_lines(frames.back());
        body.insert(body.end(), last.begin(), last.end());
    }
    return Response::make_ok(std::move(body));
}

namespace {

Response no_timeline() {
    return Response::make_error(
        ErrorCode::BadState,
        "time travel is not available for this session (no timeline attached)");
}

/// Maps a timeline refusal onto the wire: the error class plus, for
/// out-of-range, the reachable window so the client can retarget.
Response nav_error(const replay::NavError& err) {
    std::string msg = err.detail;
    if (err.kind == replay::NavError::Kind::OutOfRange && err.earliest >= 0)
        msg += "; reachable window [" + std::to_string(err.earliest) + "ns, " +
               std::to_string(err.latest) + "ns]";
    switch (err.kind) {
    case replay::NavError::Kind::NotDeterministic:
    case replay::NavError::Kind::EmptyTrace:
        return Response::make_error(ErrorCode::BadState, std::move(msg));
    case replay::NavError::Kind::NoCheckpoint:
        return Response::make_error(ErrorCode::BadState, std::move(msg));
    case replay::NavError::Kind::OutOfRange:
        return Response::make_error(ErrorCode::BadArgument, std::move(msg));
    }
    return Response::make_error(ErrorCode::Internal, std::move(msg));
}

} // namespace

Response SessionController::cmd_checkpoint(const Request& req) {
    if (timeline_ == nullptr) return no_timeline();
    if (req.args.empty()) return bad_args("checkpoint now|list|auto <ms>|limit <bytes>");
    const std::string& sub = req.args[0];

    if (sub == "now") {
        if (req.args.size() != 1) return bad_args("checkpoint now");
        std::string error;
        const replay::Checkpoint* cp = timeline_->capture_now(&error);
        if (cp == nullptr) return Response::make_error(ErrorCode::BadState, error);
        auto stats = timeline_->store().stats();
        return Response::make_ok(
            {"checkpoint @" + std::to_string(cp->snap.time) + "ns " +
             std::to_string(cp->snap.size_bytes()) + " bytes (" +
             std::to_string(stats.count) + " held)"});
    }

    if (sub == "list") {
        if (req.args.size() != 1) return bad_args("checkpoint list");
        auto stats = timeline_->store().stats();
        std::vector<std::string> body;
        body.push_back("checkpoints " + std::to_string(stats.count) + " holding " +
                       std::to_string(stats.bytes) + " bytes (limit " +
                       std::to_string(stats.byte_limit) + ", evicted " +
                       std::to_string(stats.evictions) + ")");
        body.push_back(timeline_->auto_period() > 0
                           ? "auto every " +
                                 std::to_string(timeline_->auto_period() / rt::kMs) +
                                 " ms"
                           : "auto off");
        std::size_t i = 0;
        for (const replay::Checkpoint& cp : timeline_->store().entries())
            body.push_back(std::to_string(i++) + " @" + std::to_string(cp.snap.time) +
                           "ns " + std::to_string(cp.snap.size_bytes()) + " bytes");
        return Response::make_ok(std::move(body));
    }

    if (sub == "auto") {
        if (req.args.size() != 2) return bad_args("checkpoint auto <ms>");
        auto ms = parse_number(req.args[1]);
        if (!ms.has_value() || *ms < 0 ||
            *ms * 1e6 >= static_cast<double>(std::numeric_limits<rt::SimTime>::max()))
            return Response::make_error(ErrorCode::BadArgument,
                                        "'" + req.args[1] +
                                            "' is not a cadence in ms (>= 0)");
        timeline_->set_auto_period(static_cast<rt::SimTime>(*ms * 1e6));
        return Response::make_ok({*ms == 0
                                      ? std::string("checkpoint auto off")
                                      : "checkpoint auto every " + req.args[1] + " ms"});
    }

    if (sub == "limit") {
        if (req.args.size() != 2) return bad_args("checkpoint limit <bytes>");
        auto bytes = parse_index(req.args[1]);
        if (!bytes.has_value() || *bytes == 0)
            return Response::make_error(ErrorCode::BadArgument,
                                        "'" + req.args[1] +
                                            "' is not a byte budget (>= 1)");
        timeline_->set_byte_limit(static_cast<std::size_t>(*bytes));
        return Response::make_ok({"checkpoint limit " + req.args[1] + " bytes"});
    }

    return bad_args("checkpoint now|list|auto <ms>|limit <bytes>");
}

Response SessionController::cmd_rewind(const Request& req) {
    if (timeline_ == nullptr) return no_timeline();
    if (req.args.size() != 1) return bad_args("rewind <ms>");
    auto ms = parse_number(req.args[0]);
    if (!ms.has_value() || *ms < 0 ||
        *ms * 1e6 >= static_cast<double>(std::numeric_limits<rt::SimTime>::max()))
        return Response::make_error(ErrorCode::BadArgument,
                                    "'" + req.args[0] + "' is not a time in ms (>= 0)");
    auto t = static_cast<rt::SimTime>(*ms * 1e6);
    if (auto err = timeline_->rewind_to(t); err.has_value()) return nav_error(*err);
    return Response::make_ok(
        {"rewound to " + req.args[0] + " ms",
         std::string("engine ") + core::to_string(session_->engine().state())});
}

Response SessionController::cmd_step_back(const Request& req) {
    if (timeline_ == nullptr) return no_timeline();
    if (req.args.size() > 1) return bad_args("step-back [n]");
    std::size_t n = 1;
    if (!req.args.empty()) {
        auto parsed = parse_index(req.args[0]);
        if (!parsed.has_value() || *parsed < 1)
            return Response::make_error(ErrorCode::BadArgument,
                                        "'" + req.args[0] + "' is not a count (>= 1)");
        n = static_cast<std::size_t>(*parsed);
    }
    if (auto err = timeline_->step_back(n); err.has_value()) return nav_error(*err);
    return Response::make_ok(
        {"stepped back " + std::to_string(n) + " event(s)",
         "now @" + std::to_string(timeline_->now()) + "ns",
         std::string("engine ") + core::to_string(session_->engine().state())});
}

Response SessionController::cmd_bisect(const Request& req) {
    if (timeline_ == nullptr) return no_timeline();
    if (!req.args.empty()) return bad_args("bisect");
    replay::BisectResult res = timeline_->bisect();
    if (!res.error.empty())
        return Response::make_error(ErrorCode::BadState, res.error);
    std::vector<std::string> body = {
        "bisect searched " + std::to_string(res.steps_searched) + " steps in " +
        std::to_string(res.probes) + " probes"};
    if (!res.found) {
        body.push_back("no divergence: re-execution matches the recorded trace");
    } else {
        body.push_back("first divergent step " + std::to_string(res.step) + " @" +
                       std::to_string(res.t) + "ns " + res.command);
        body.push_back(res.reason);
    }
    return Response::make_ok(std::move(body));
}

Response SessionController::cmd_quit(const Request& req) {
    if (!req.args.empty()) return bad_args("quit");
    return Response::make_ok({"bye"});
}

} // namespace gmdf::proto
