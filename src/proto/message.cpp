#include "proto/message.hpp"

#include <cctype>
#include <sstream>

namespace gmdf::proto {

const char* to_string(ErrorCode code) {
    switch (code) {
    case ErrorCode::None: return "ok";
    case ErrorCode::BadRequest: return "bad-request";
    case ErrorCode::UnknownVerb: return "unknown-verb";
    case ErrorCode::BadArgument: return "bad-argument";
    case ErrorCode::NotFound: return "not-found";
    case ErrorCode::BadState: return "bad-state";
    case ErrorCode::Internal: return "internal";
    }
    return "?";
}

std::optional<ErrorCode> error_code_from_string(std::string_view text) {
    for (ErrorCode code : {ErrorCode::None, ErrorCode::BadRequest, ErrorCode::UnknownVerb,
                           ErrorCode::BadArgument, ErrorCode::NotFound,
                           ErrorCode::BadState, ErrorCode::Internal})
        if (text == to_string(code)) return code;
    return std::nullopt;
}

const char* to_string(Event::Kind kind) {
    switch (kind) {
    case Event::Kind::BreakpointHit: return "breakpoint-hit";
    case Event::Kind::Divergence: return "divergence";
    case Event::Kind::StateChange: return "state-change";
    }
    return "?";
}

namespace {

ParseResult parse_error(std::string message) {
    ParseResult r;
    r.error = std::move(message);
    return r;
}

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

} // namespace

ParseResult parse_request(std::string_view line) {
    if (line.size() > kMaxRequestLine)
        return parse_error("request line of " + std::to_string(line.size()) +
                           " bytes exceeds the " + std::to_string(kMaxRequestLine) +
                           "-byte limit");
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        if (is_space(line[i])) {
            ++i;
            continue;
        }
        std::string token;
        if (line[i] == '"') {
            ++i;
            bool closed = false;
            while (i < line.size()) {
                char c = line[i];
                if (c == '"') {
                    closed = true;
                    ++i;
                    break;
                }
                if (c == '\\') {
                    if (i + 1 >= line.size())
                        return parse_error("dangling escape at end of line");
                    char esc = line[i + 1];
                    switch (esc) {
                    case '"': token.push_back('"'); break;
                    case '\\': token.push_back('\\'); break;
                    case 'n': token.push_back('\n'); break;
                    case 't': token.push_back('\t'); break;
                    default:
                        return parse_error(std::string("bad escape '\\") + esc + "'");
                    }
                    i += 2;
                    continue;
                }
                token.push_back(c);
                ++i;
            }
            if (!closed) return parse_error("unterminated quote");
            if (i < line.size() && !is_space(line[i]))
                return parse_error("text after closing quote");
        } else {
            while (i < line.size() && !is_space(line[i])) {
                if (line[i] == '"') return parse_error("quote inside bare token");
                token.push_back(line[i]);
                ++i;
            }
        }
        tokens.push_back(std::move(token));
    }
    if (tokens.empty()) return parse_error("empty request");
    Request req;
    req.verb = std::move(tokens.front());
    req.args.assign(std::make_move_iterator(tokens.begin() + 1),
                    std::make_move_iterator(tokens.end()));
    ParseResult r;
    r.request = std::move(req);
    return r;
}

std::string quote_token(std::string_view token) {
    bool needs_quotes = token.empty();
    for (char c : token)
        if (is_space(c) || c == '"' || c == '\\' || c == '\n' || c == '\t')
            needs_quotes = true;
    if (!needs_quotes) return std::string(token);
    std::string out = "\"";
    for (char c : token) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

std::string format_request(const Request& req) {
    std::string out = quote_token(req.verb);
    for (const std::string& arg : req.args) {
        out.push_back(' ');
        out += quote_token(arg);
    }
    return out;
}

std::string format_response(const Response& resp) {
    std::string out;
    if (resp.ok()) {
        out = "ok\n";
        for (const std::string& line : resp.body) {
            out += "| ";
            out += line;
            out.push_back('\n');
        }
    } else {
        out = "error ";
        out += to_string(resp.code);
        out += ": ";
        out += resp.message;
        out.push_back('\n');
    }
    return out;
}

std::optional<Response> parse_response(std::string_view text) {
    // format_response always newline-terminates its last line.
    if (text.empty() || text.back() != '\n') return std::nullopt;
    text.remove_suffix(1);
    std::vector<std::string_view> lines;
    while (true) {
        std::size_t nl = text.find('\n');
        if (nl == std::string_view::npos) {
            lines.push_back(text);
            break;
        }
        lines.push_back(text.substr(0, nl));
        text.remove_prefix(nl + 1);
    }
    if (lines.empty()) return std::nullopt;
    if (lines.front() == "ok") {
        Response r;
        for (std::size_t i = 1; i < lines.size(); ++i) {
            if (!lines[i].starts_with("| ")) return std::nullopt;
            r.body.emplace_back(lines[i].substr(2));
        }
        return r;
    }
    if (lines.size() != 1 || !lines.front().starts_with("error ")) return std::nullopt;
    std::string_view rest = lines.front().substr(6);
    std::size_t sep = rest.find(": ");
    if (sep == std::string_view::npos) return std::nullopt;
    auto code = error_code_from_string(rest.substr(0, sep));
    if (!code.has_value() || *code == ErrorCode::None) return std::nullopt;
    return Response::make_error(*code, std::string(rest.substr(sep + 2)));
}

std::string format_event(const Event& ev) {
    std::ostringstream os;
    os << "* " << to_string(ev.kind);
    if (ev.t.has_value()) os << " @" << *ev.t << "ns";
    if (!ev.detail.empty()) os << " " << ev.detail;
    os << "\n";
    return os.str();
}

} // namespace gmdf::proto
