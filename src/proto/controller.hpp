// SessionController: the protocol face of one DebugSession.
//
// Owns the Dispatcher with the debugger verb set, executes Requests
// against the session, and — as an EngineObserver — turns breakpoint
// hits, divergences, and engine-state changes into asynchronous Events
// queued for the client. DebugSession's own control methods route
// through the same handlers (see core/session.cpp), so the C++ API and
// the protocol cannot drift.
//
// The verb registry (names, usage, summaries, handler bindings) is one
// shared table constructed once per process; a controller instance holds
// strictly per-session state — the session pointer, the run hook, and
// the event queue — so a hub hosting many sessions pays per session only
// for the handler bindings, never for the registry itself.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <vector>

#include "core/observer.hpp"
#include "proto/dispatcher.hpp"
#include "proto/message.hpp"
#include "rt/des.hpp"

namespace gmdf::core {
class DebugSession;
} // namespace gmdf::core

namespace gmdf::replay {
class Timeline;
} // namespace gmdf::replay

namespace gmdf::proto {

/// Advances the host clock (wall time of the attached platform) by the
/// given simulated duration; what the `run` verb drives. The REPL binds
/// this to rt::Target::run_for; scripted harnesses pump their transport.
using RunHook = std::function<void(rt::SimTime)>;

class SessionController final : public core::EngineObserver {
public:
    /// Registers the debugger verbs and subscribes to `session`'s engine.
    /// The session must outlive the controller.
    explicit SessionController(core::DebugSession& session);
    ~SessionController() override;

    SessionController(const SessionController&) = delete;
    SessionController& operator=(const SessionController&) = delete;

    [[nodiscard]] Dispatcher& dispatcher() { return dispatcher_; }
    [[nodiscard]] const Dispatcher& dispatcher() const { return dispatcher_; }

    /// Executes one request; counts it in the session's EngineStats.
    /// Never throws.
    Response execute(const Request& req);

    /// Parses and executes one request line.
    Response execute_line(std::string_view line);

    /// Installs the `run` verb's clock hook; without one, `run` reports
    /// bad-state.
    void set_run_hook(RunHook hook) { run_hook_ = std::move(hook); }

    /// Attaches the session's time-travel timeline (non-owning; may be
    /// null). With one attached, the checkpoint/rewind/step-back/bisect
    /// verbs work and every execution-affecting verb is journaled so
    /// rewind can re-apply it during catch-up re-execution.
    void set_timeline(replay::Timeline* timeline) { timeline_ = timeline; }
    [[nodiscard]] replay::Timeline* timeline() { return timeline_; }

    /// Queued asynchronous events, oldest first; the queue is emptied.
    [[nodiscard]] std::vector<Event> drain_events();

    [[nodiscard]] bool has_events() const { return !events_.empty(); }

    /// Events dropped because the queue hit its bound (client not
    /// draining); counted in the session's EngineStats::events_dropped.
    [[nodiscard]] std::uint64_t dropped_events() const;

    // EngineObserver: queue asynchronous notifications.
    void on_breakpoint_hit(int handle, const core::Breakpoint& bp,
                           const link::Command& cmd, rt::SimTime t) override;
    void on_divergence(const core::Divergence& d) override;
    void on_state_change(core::EngineState from, core::EngineState to) override;

private:
    struct VerbEntry; ///< one row of the shared verb table (controller.cpp)

    /// The process-wide verb registry: constructed once, shared by every
    /// controller instance.
    static const std::vector<VerbEntry>& verb_table();

    void bind_verbs();
    void push_event(Event ev);

    // Verb handlers.
    Response cmd_help(const Request& req);
    Response cmd_info(const Request& req);
    Response cmd_run(const Request& req);
    Response cmd_pause(const Request& req);
    Response cmd_resume(const Request& req);
    Response cmd_step(const Request& req);
    Response cmd_step_filter(const Request& req);
    Response cmd_break(const Request& req);
    Response cmd_query(const Request& req);
    Response cmd_render(const Request& req);
    Response cmd_trace_profile(const Request& req);
    Response cmd_trace(const Request& req);
    Response cmd_replay(const Request& req);
    Response cmd_checkpoint(const Request& req);
    Response cmd_rewind(const Request& req);
    Response cmd_step_back(const Request& req);
    Response cmd_bisect(const Request& req);
    Response cmd_quit(const Request& req);

    core::DebugSession* session_;
    Dispatcher dispatcher_;
    RunHook run_hook_;
    replay::Timeline* timeline_ = nullptr;
    std::deque<Event> events_;
};

} // namespace gmdf::proto
