#include "proto/dispatcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace gmdf::proto {

void Dispatcher::add(CommandSpec spec) { commands_.push_back(std::move(spec)); }

std::vector<std::string> Dispatcher::verbs() const {
    std::vector<std::string> out;
    for (const CommandSpec& c : commands_)
        if (std::find(out.begin(), out.end(), c.verb) == out.end())
            out.emplace_back(c.verb);
    return out;
}

std::vector<std::string> Dispatcher::help_lines(std::string_view verb) const {
    std::vector<std::string> out;
    for (const CommandSpec& c : commands_)
        if (verb.empty() || c.verb == verb)
            out.push_back(std::string(c.usage) + " -- " + std::string(c.summary));
    return out;
}

Response Dispatcher::dispatch(const Request& req) const {
    const CommandSpec* match = nullptr;
    for (const CommandSpec& c : commands_)
        if (c.verb == req.verb && c.handler != nullptr) {
            match = &c;
            break;
        }
    if (match == nullptr)
        return Response::make_error(ErrorCode::UnknownVerb,
                                    "unknown verb '" + req.verb + "' (try 'help')");
    try {
        return match->handler(req);
    } catch (const std::exception& e) {
        return Response::make_error(ErrorCode::Internal,
                                    req.verb + " failed: " + e.what());
    } catch (...) {
        return Response::make_error(ErrorCode::Internal, req.verb + " failed");
    }
}

} // namespace gmdf::proto
