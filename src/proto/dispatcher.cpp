#include "proto/dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/trace.hpp"

namespace gmdf::proto {

void Dispatcher::add(CommandSpec spec) {
    // Register the per-verb metrics eagerly so the /metrics catalog is
    // complete the moment a session exists, not after each verb first runs.
    if (spec.handler != nullptr) {
        spec.obs_requests = &obs::registry().counter("proto.requests", "verb", spec.verb);
        spec.obs_latency = &obs::registry().histogram("proto.request_ns", "verb", spec.verb);
    }
    commands_.push_back(std::move(spec));
}

std::vector<std::string> Dispatcher::verbs() const {
    std::vector<std::string> out;
    for (const CommandSpec& c : commands_)
        if (std::find(out.begin(), out.end(), c.verb) == out.end())
            out.emplace_back(c.verb);
    return out;
}

std::vector<std::string> Dispatcher::help_lines(std::string_view verb) const {
    std::vector<std::string> out;
    for (const CommandSpec& c : commands_)
        if (verb.empty() || c.verb == verb)
            out.push_back(std::string(c.usage) + " -- " + std::string(c.summary));
    return out;
}

Response Dispatcher::dispatch(const Request& req) const {
    const CommandSpec* match = nullptr;
    for (const CommandSpec& c : commands_)
        if (c.verb == req.verb && c.handler != nullptr) {
            match = &c;
            break;
        }
    if (match == nullptr)
        return Response::make_error(ErrorCode::UnknownVerb,
                                    "unknown verb '" + req.verb + "' (try 'help')");
    // One relaxed load gates the whole instrumentation block; with metrics
    // off the dispatch path is byte-for-byte the uninstrumented one.
    const bool timed = obs::metrics_enabled();
    const auto begin = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
    obs::Span span("proto", "dispatch:", req.verb);
    Response resp;
    try {
        resp = match->handler(req);
    } catch (const std::exception& e) {
        resp = Response::make_error(ErrorCode::Internal, req.verb + " failed: " + e.what());
    } catch (...) {
        resp = Response::make_error(ErrorCode::Internal, req.verb + " failed");
    }
    if (timed) {
        match->obs_requests->add();
        match->obs_latency->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count()));
    }
    return resp;
}

} // namespace gmdf::proto
