// The protocol command registry: verbs -> handlers.
//
// A Dispatcher is a plain table, deliberately ignorant of what the
// handlers do: the session controller registers the debugger verbs, and
// anything else (a future remote server, a test harness) can add its
// own. The registry is also the single source of the `help` listing, so
// documentation cannot drift from what is actually dispatchable.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "proto/message.hpp"

namespace gmdf::proto {

/// Handler for one verb. Receives the full request (verb included);
/// must not throw — report failures as error Responses.
using Handler = std::function<Response(const Request&)>;

/// One registry row. Several rows may share a verb to document
/// subcommands separately (`break add ...` / `break remove <handle>`);
/// dispatch uses the first row with a non-null handler for the verb.
///
/// The text fields are non-owning: register string literals (or storage
/// outliving the dispatcher), so a registry shared by many sessions is
/// constructed once and never copies its documentation.
struct CommandSpec {
    std::string_view verb;
    std::string_view usage;   ///< e.g. "step [actor]"
    std::string_view summary; ///< one-line human description
    Handler handler;          ///< null for doc-only rows

    /// Per-verb obs handles (process-global, shared by every dispatcher
    /// that registers the verb); filled in by add() for dispatchable rows.
    obs::Counter* obs_requests = nullptr;
    obs::Histogram* obs_latency = nullptr;
};

class Dispatcher {
public:
    /// Appends a registry row (registration order = help order).
    void add(CommandSpec spec);

    /// All registry rows, in registration order.
    [[nodiscard]] const std::vector<CommandSpec>& commands() const { return commands_; }

    /// Distinct verbs, in first-registration order.
    [[nodiscard]] std::vector<std::string> verbs() const;

    /// The machine-readable help listing: "<usage> -- <summary>" per row,
    /// optionally restricted to one verb.
    [[nodiscard]] std::vector<std::string> help_lines(std::string_view verb = {}) const;

    /// Routes a request to its handler. Unknown verbs and handler
    /// exceptions come back as error Responses, never as C++ exceptions.
    [[nodiscard]] Response dispatch(const Request& req) const;

private:
    std::vector<CommandSpec> commands_;
};

} // namespace gmdf::proto
