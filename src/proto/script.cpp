#include "proto/script.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace gmdf::proto {

namespace {

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

/// ScriptClient face of one SessionController.
class ControllerClient final : public ScriptClient {
public:
    explicit ControllerClient(SessionController& controller) : controller_(&controller) {}

    Response execute_line(std::string_view line) override {
        return controller_->execute_line(line);
    }

    std::vector<std::string> drain_event_lines() override {
        std::vector<std::string> out;
        for (const Event& ev : controller_->drain_events())
            out.push_back(format_event(ev));
        return out;
    }

private:
    SessionController* controller_;
};

// ---- .gds extension language -----------------------------------------------

std::vector<std::string> split_tokens(std::string_view line) {
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
        std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
        if (i > start) tokens.emplace_back(line.substr(start, i - start));
    }
    return tokens;
}

std::string join(const std::vector<std::string>& tokens, std::size_t first,
                 std::size_t last) {
    std::string out;
    for (std::size_t i = first; i < last; ++i) {
        if (!out.empty()) out += ' ';
        out += tokens[i];
    }
    return out;
}

bool is_comparison_op(std::string_view token) {
    return token == "==" || token == "!=" || token == "<" || token == ">" ||
           token == "<=" || token == ">=" || token == "contains";
}

std::string first_word(std::string_view line) {
    std::size_t end = line.find_first_of(" \t");
    return std::string(end == std::string_view::npos ? line : line.substr(0, end));
}

/// One parsed script construct.
struct Node {
    enum class Kind { Request, Comment, Let, Expect, ExpectBlock, Repeat, If };
    Kind kind = Kind::Request;
    int line = 0;
    std::string text;  ///< trimmed source line (pre-substitution)
    std::string name;  ///< let: variable name
    std::string query; ///< let: value; repeat: count; expect/if/expect-block: query
    std::string op;    ///< expect/if
    std::string value; ///< expect/if
    std::vector<std::string> expected;  ///< expect-block: literal "| " lines
    std::vector<Node> body, else_body;  ///< repeat/if
};

struct SrcLine {
    int no = 0;
    std::string text;
};

struct ParseError {
    int line = 0;
    std::string text;
    std::string message;
};

bool starts_block(std::string_view word) {
    return word == "repeat" || word == "if" || word == "expect-block";
}

/// Parses lines[i..] into `body` until a terminator ("end", and "else"
/// when `stop_at_else`) or end of input. Returns the terminator index
/// (== lines.size() when input ran out).
std::size_t parse_body(const std::vector<SrcLine>& lines, std::size_t i,
                       bool stop_at_else, std::vector<Node>& body,
                       std::optional<ParseError>& err);

std::optional<Node> parse_line(const std::vector<SrcLine>& lines, std::size_t& i,
                               std::optional<ParseError>& err) {
    const SrcLine& src = lines[i];
    Node n;
    n.line = src.no;
    n.text = src.text;
    const std::string word = first_word(src.text);
    const std::vector<std::string> tokens = split_tokens(src.text);

    auto fail = [&](std::string message) -> std::optional<Node> {
        err = ParseError{src.no, src.text, std::move(message)};
        return std::nullopt;
    };

    if (src.text.front() == '#') {
        n.kind = Node::Kind::Comment;
        ++i;
        return n;
    }
    if (word == "let") {
        if (tokens.size() < 3) return fail("usage: let <name> <value>");
        n.kind = Node::Kind::Let;
        n.name = tokens[1];
        n.query = join(tokens, 2, tokens.size());
        ++i;
        return n;
    }
    if (word == "expect") {
        // The op is the last comparison token; the query may span words.
        std::size_t op_at = 0;
        for (std::size_t t = tokens.size(); t-- > 1;)
            if (is_comparison_op(tokens[t])) {
                op_at = t;
                break;
            }
        if (op_at < 2 || op_at + 1 >= tokens.size())
            return fail("usage: expect <query> <op> <value>");
        n.kind = Node::Kind::Expect;
        n.query = join(tokens, 1, op_at);
        n.op = tokens[op_at];
        n.value = join(tokens, op_at + 1, tokens.size());
        ++i;
        return n;
    }
    if (word == "expect-block") {
        if (tokens.size() < 2) return fail("usage: expect-block <query>");
        n.kind = Node::Kind::ExpectBlock;
        n.query = join(tokens, 1, tokens.size());
        ++i;
        while (i < lines.size() && lines[i].text != "end") {
            if (lines[i].text.front() != '|')
                err = ParseError{lines[i].no, lines[i].text,
                                 "expect-block lines must start with '|'"};
            if (err.has_value()) return std::nullopt;
            n.expected.push_back(lines[i].text);
            ++i;
        }
        if (i >= lines.size()) return fail("expect-block without matching 'end'");
        ++i; // consume end
        return n;
    }
    if (word == "repeat") {
        if (tokens.size() != 2) return fail("usage: repeat <count>");
        n.kind = Node::Kind::Repeat;
        n.query = tokens[1];
        std::size_t stop = parse_body(lines, i + 1, /*stop_at_else=*/false, n.body, err);
        if (err.has_value()) return std::nullopt;
        if (stop >= lines.size()) return fail("repeat without matching 'end'");
        i = stop + 1;
        return n;
    }
    if (word == "if") {
        std::size_t op_at = 0;
        for (std::size_t t = tokens.size(); t-- > 1;)
            if (is_comparison_op(tokens[t])) {
                op_at = t;
                break;
            }
        if (op_at < 2 || op_at + 1 >= tokens.size())
            return fail("usage: if <query> <op> <value>");
        n.kind = Node::Kind::If;
        n.query = join(tokens, 1, op_at);
        n.op = tokens[op_at];
        n.value = join(tokens, op_at + 1, tokens.size());
        std::size_t stop = parse_body(lines, i + 1, /*stop_at_else=*/true, n.body, err);
        if (err.has_value()) return std::nullopt;
        if (stop >= lines.size()) return fail("if without matching 'end'");
        if (lines[stop].text == "else") {
            stop = parse_body(lines, stop + 1, /*stop_at_else=*/false, n.else_body, err);
            if (err.has_value()) return std::nullopt;
            if (stop >= lines.size()) return fail("if without matching 'end'");
        }
        i = stop + 1;
        return n;
    }
    if (word == "end" || word == "else") return fail("'" + word + "' outside a block");

    n.kind = Node::Kind::Request;
    ++i;
    return n;
}

std::size_t parse_body(const std::vector<SrcLine>& lines, std::size_t i,
                       bool stop_at_else, std::vector<Node>& body,
                       std::optional<ParseError>& err) {
    while (i < lines.size()) {
        if (lines[i].text == "end") return i;
        if (stop_at_else && lines[i].text == "else") return i;
        auto node = parse_line(lines, i, err);
        if (!node.has_value()) return lines.size();
        body.push_back(std::move(*node));
    }
    return i;
}

/// Execution state threaded through a whole run_script call.
struct Exec {
    ScriptClient& client;
    std::ostream& out;
    const ScriptOptions& options;
    ScriptResult& result;
    std::vector<std::pair<std::string, std::string>> vars;
    bool stopped = false; ///< quit, failed expect, or malformed construct

    void diagnose(int line, const std::string& text, std::string message) {
        result.diagnostics.push_back({line, text, std::move(message)});
    }

    void fail(int line, const std::string& text, const std::string& message) {
        if (options.echo) out << "! line " << line << ": " << message << "\n";
        diagnose(line, text, message);
        result.failed = true;
        stopped = true;
    }
};

const std::string* lookup(const Exec& e, std::string_view name) {
    for (const auto& [k, v] : e.vars)
        if (k == name) return &v;
    return nullptr;
}

bool ident_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/// Expands $name references ($$ is a literal $). False on an unknown
/// variable, with its name in `bad`.
bool substitute(const Exec& e, std::string_view text, std::string& out,
                std::string& bad) {
    out.clear();
    std::size_t i = 0;
    while (i < text.size()) {
        if (text[i] != '$') {
            out += text[i++];
            continue;
        }
        if (i + 1 < text.size() && text[i + 1] == '$') {
            out += '$';
            i += 2;
            continue;
        }
        std::size_t start = i + 1, end = start;
        while (end < text.size() && ident_char(text[end])) ++end;
        if (end == start) { // bare '$': literal
            out += '$';
            ++i;
            continue;
        }
        std::string name(text.substr(start, end - start));
        const std::string* value = lookup(e, name);
        if (value == nullptr) {
            bad = name;
            return false;
        }
        out += *value;
        i = end;
    }
    return true;
}

/// Substitutes into `raw`, failing the script on unknown variables.
bool expand(Exec& e, const Node& n, const std::string& raw, std::string& out) {
    std::string bad;
    if (substitute(e, raw, out, bad)) return true;
    e.fail(n.line, n.text, "unknown variable '$" + bad + "'");
    return false;
}

bool numeric(const std::string& s, double& v) {
    if (s.empty()) return false;
    char* end = nullptr;
    v = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0';
}

bool compare(const std::string& op, const std::string& actual,
             const std::string& wanted) {
    double a = 0, w = 0;
    if (numeric(actual, a) && numeric(wanted, w)) {
        if (op == "==") return a == w;
        if (op == "!=") return a != w;
        if (op == "<") return a < w;
        if (op == ">") return a > w;
        if (op == "<=") return a <= w;
        if (op == ">=") return a >= w;
    }
    if (op == "==") return actual == wanted;
    if (op == "!=") return actual != wanted;
    if (op == "<") return actual < wanted;
    if (op == ">") return actual > wanted;
    if (op == "<=") return actual <= wanted;
    if (op == ">=") return actual >= wanted;
    return false; // contains handled by the caller
}

/// Runs a condition query and evaluates `<op> <value>` against its
/// response: `contains` searches every body line; other ops compare the
/// last whitespace token of the first body line. Error responses yield
/// an empty actual (conditions are probes — they never fail the script).
bool evaluate(Exec& e, const std::string& query, const std::string& op,
              const std::string& wanted, std::string& actual) {
    Response resp = e.client.execute_line(query);
    ++e.result.requests;
    for (const std::string& ev : e.client.drain_event_lines()) e.out << ev;
    actual.clear();
    if (!resp.ok()) {
        actual = "error " + std::string(to_string(resp.code)) + ": " + resp.message;
        return op == "contains" ? actual.find(wanted) != std::string::npos
                                : compare(op, "", wanted);
    }
    if (op == "contains") {
        for (const std::string& line : resp.body)
            if (line.find(wanted) != std::string::npos) return true;
        actual = resp.body.empty() ? "" : resp.body.front();
        return false;
    }
    if (!resp.body.empty()) {
        const std::vector<std::string> tokens = split_tokens(resp.body.front());
        if (!tokens.empty()) actual = tokens.back();
    }
    return compare(op, actual, wanted);
}

void exec_body(Exec& e, const std::vector<Node>& body);

void exec_node(Exec& e, const Node& n) {
    switch (n.kind) {
    case Node::Kind::Comment:
        if (e.options.echo) e.out << n.text << "\n";
        return;
    case Node::Kind::Request: {
        std::string line;
        if (!expand(e, n, n.text, line)) return;
        if (e.options.echo) e.out << "> " << line << "\n";
        const bool is_quit = line == "quit" || line == "exit";
        Response resp = e.client.execute_line(is_quit ? "quit" : line);
        ++e.result.requests;
        if (!resp.ok()) {
            ++e.result.errors;
            e.diagnose(n.line, line,
                       "error " + std::string(to_string(resp.code)) + ": " +
                           resp.message);
        }
        e.out << format_response(resp);
        for (const std::string& ev : e.client.drain_event_lines()) e.out << ev;
        if (is_quit) {
            e.result.quit = true;
            e.stopped = true;
        }
        return;
    }
    case Node::Kind::Let: {
        std::string value;
        if (!expand(e, n, n.query, value)) return;
        if (e.options.echo) e.out << "> let " << n.name << " " << value << "\n";
        for (auto& [k, v] : e.vars)
            if (k == n.name) {
                v = value;
                return;
            }
        e.vars.emplace_back(n.name, std::move(value));
        return;
    }
    case Node::Kind::Repeat: {
        std::string count_text;
        if (!expand(e, n, n.query, count_text)) return;
        double count = 0;
        if (!numeric(count_text, count) || count < 0 || count > 100000 ||
            count != static_cast<double>(static_cast<long>(count))) {
            e.fail(n.line, n.text, "repeat count '" + count_text + "' is not a count");
            return;
        }
        if (e.options.echo) e.out << "> repeat " << count_text << "\n";
        for (long i = 0; i < static_cast<long>(count) && !e.stopped; ++i)
            exec_body(e, n.body);
        if (e.options.echo && !e.stopped) e.out << "> end\n";
        return;
    }
    case Node::Kind::If: {
        std::string query, value;
        if (!expand(e, n, n.query, query) || !expand(e, n, n.value, value)) return;
        if (e.options.echo)
            e.out << "> if " << query << " " << n.op << " " << value << "\n";
        std::string actual;
        const bool taken = evaluate(e, query, n.op, value, actual);
        exec_body(e, taken ? n.body : n.else_body);
        if (e.options.echo && !e.stopped) e.out << "> end\n";
        return;
    }
    case Node::Kind::Expect: {
        std::string query, value;
        if (!expand(e, n, n.query, query) || !expand(e, n, n.value, value)) return;
        if (e.options.echo)
            e.out << "> expect " << query << " " << n.op << " " << value << "\n";
        std::string actual;
        if (evaluate(e, query, n.op, value, actual)) return;
        e.fail(n.line, n.text,
               "expect failed: '" + query + "' " + n.op + " '" + value +
                   "' (actual '" + actual + "')");
        return;
    }
    case Node::Kind::ExpectBlock: {
        std::string query;
        if (!expand(e, n, n.query, query)) return;
        if (e.options.echo) e.out << "> expect-block " << query << "\n";
        Response resp = e.client.execute_line(query);
        ++e.result.requests;
        for (const std::string& ev : e.client.drain_event_lines()) e.out << ev;
        std::vector<std::string> got;
        if (!resp.ok())
            got.push_back("error " + std::string(to_string(resp.code)) + ": " +
                          resp.message);
        for (const std::string& line : resp.body) got.push_back("| " + line);
        const std::size_t n_lines = std::max(got.size(), n.expected.size());
        for (std::size_t i = 0; i < n_lines; ++i) {
            std::string want, have;
            if (i < n.expected.size() && !expand(e, n, n.expected[i], want)) return;
            if (i < got.size()) have = got[i];
            if (std::string_view(trim(want)) == std::string_view(trim(have))) continue;
            e.fail(n.line + static_cast<int>(i) + 1,
                   i < n.expected.size() ? n.expected[i] : "",
                   "expect-block mismatch: got '" + have + "', wanted '" + want + "'");
            return;
        }
        return;
    }
    }
}

void exec_body(Exec& e, const std::vector<Node>& body) {
    for (const Node& n : body) {
        if (e.stopped) return;
        exec_node(e, n);
    }
}

} // namespace

ScriptResult run_script(ScriptClient& client, std::istream& in, std::ostream& out,
                        const ScriptOptions& options) {
    ScriptResult result;
    Exec e{client, out, options, result, {}, false};

    std::vector<SrcLine> chunk;
    int depth = 0;
    int lineno = 0;
    std::string raw;
    while (!e.stopped) {
        if (!options.prompt.empty()) out << options.prompt << std::flush;
        if (!std::getline(in, raw)) break;
        ++lineno;
        std::string_view line = trim(raw);
        if (line.empty()) continue;
        if (depth == 0 && line.front() == '#') {
            if (options.echo) out << line << "\n";
            continue;
        }

        const std::string word = first_word(line);
        if (starts_block(word)) {
            ++depth;
        } else if (line == "end") {
            if (depth == 0) {
                e.fail(lineno, std::string(line), "'end' outside a block");
                break;
            }
            --depth;
        }
        chunk.push_back({lineno, std::string(line)});
        if (depth > 0) continue;

        std::optional<ParseError> err;
        std::vector<Node> nodes;
        std::size_t i = 0;
        while (i < chunk.size() && !err.has_value()) {
            auto node = parse_line(chunk, i, err);
            if (node.has_value()) nodes.push_back(std::move(*node));
        }
        chunk.clear();
        if (err.has_value()) {
            e.fail(err->line, err->text, err->message);
            break;
        }
        exec_body(e, nodes);
    }
    if (depth > 0 && !e.stopped && !chunk.empty())
        e.fail(chunk.front().no, chunk.front().text,
               "'" + first_word(chunk.front().text) + "' without matching 'end'");
    return result;
}

ScriptResult run_script(SessionController& controller, std::istream& in,
                        std::ostream& out, const ScriptOptions& options) {
    ControllerClient client(controller);
    return run_script(client, in, out, options);
}

} // namespace gmdf::proto
