#include "proto/script.hpp"

#include <istream>
#include <ostream>

namespace gmdf::proto {

namespace {

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

/// ScriptClient face of one SessionController.
class ControllerClient final : public ScriptClient {
public:
    explicit ControllerClient(SessionController& controller) : controller_(&controller) {}

    Response execute_line(std::string_view line) override {
        return controller_->execute_line(line);
    }

    std::vector<std::string> drain_event_lines() override {
        std::vector<std::string> out;
        for (const Event& ev : controller_->drain_events())
            out.push_back(format_event(ev));
        return out;
    }

private:
    SessionController* controller_;
};

} // namespace

ScriptResult run_script(ScriptClient& client, std::istream& in, std::ostream& out,
                        const ScriptOptions& options) {
    ScriptResult result;
    std::string raw;
    while (true) {
        if (!options.prompt.empty()) out << options.prompt << std::flush;
        if (!std::getline(in, raw)) break;
        std::string_view line = trim(raw);
        if (line.empty()) continue;
        if (line.front() == '#') {
            if (options.echo) out << line << "\n";
            continue;
        }
        if (options.echo) out << "> " << line << "\n";
        bool is_quit = line == "quit" || line == "exit";
        Response resp = client.execute_line(is_quit ? "quit" : line);
        ++result.requests;
        if (!resp.ok()) ++result.errors;
        out << format_response(resp);
        for (const std::string& ev : client.drain_event_lines()) out << ev;
        if (is_quit) {
            result.quit = true;
            break;
        }
    }
    return result;
}

ScriptResult run_script(SessionController& controller, std::istream& in,
                        std::ostream& out, const ScriptOptions& options) {
    ControllerClient client(controller);
    return run_script(client, in, out, options);
}

} // namespace gmdf::proto
