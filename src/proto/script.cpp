#include "proto/script.hpp"

#include <istream>
#include <ostream>

namespace gmdf::proto {

namespace {

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

} // namespace

ScriptResult run_script(SessionController& controller, std::istream& in,
                        std::ostream& out, const ScriptOptions& options) {
    ScriptResult result;
    std::string raw;
    while (true) {
        if (!options.prompt.empty()) out << options.prompt << std::flush;
        if (!std::getline(in, raw)) break;
        std::string_view line = trim(raw);
        if (line.empty()) continue;
        if (line.front() == '#') {
            if (options.echo) out << line << "\n";
            continue;
        }
        if (options.echo) out << "> " << line << "\n";
        bool is_quit = line == "quit" || line == "exit";
        Response resp = controller.execute_line(is_quit ? "quit" : line);
        ++result.requests;
        if (!resp.ok()) ++result.errors;
        out << format_response(resp);
        for (const Event& ev : controller.drain_events()) out << format_event(ev);
        if (is_quit) {
            result.quit = true;
            break;
        }
    }
    return result;
}

} // namespace gmdf::proto
