// Script/REPL driver shared by the gmdf_dbg tool and the golden tests.
//
// Reads request lines from a stream, executes them against a script
// client — a single SessionController or a whole hub::HubController —
// and writes the transcript — echoed commands, responses, and any
// asynchronous events queued while a command ran — to an output stream.
// Deterministic input therefore yields a byte-stable transcript, which
// is what makes whole debug scenarios usable as text fixtures.
//
// Beyond plain request lines, scripts may use the .gds extension
// language (after Parson et al.'s debugger scripting): client-side
// constructs interpreted here, so they work identically against an
// in-process controller, a hub, and a net::Channel to a remote hub.
//
//   let <name> <value>            define a variable; `$name` substitutes
//                                 in later lines ($$ is a literal $)
//   repeat <n> ... end            run the body n times
//   if <query> <op> <value> ...   run the body when the comparison holds
//     [else ...] end              (the query is a protocol request; its
//                                 response's last token is compared)
//   expect <query> <op> <value>   assertion; a failed expect aborts the
//                                 script with a line-numbered diagnostic
//   expect-block <query>          assert the query's full response body:
//     | <line> ... end            each "| " line must match exactly
//
// Comparison ops: == != < > <= >= contains. Values that both parse as
// numbers compare numerically, otherwise as strings; `contains`
// searches every response body line for the substring.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "proto/controller.hpp"

namespace gmdf::proto {

/// What the script loop drives: anything that can execute one request
/// line and surface the event lines queued while it ran. The hub
/// implements this directly (tagging events with their session);
/// SessionController is adapted in script.cpp.
class ScriptClient {
public:
    virtual ~ScriptClient() = default;

    /// Executes one request line; never throws.
    virtual Response execute_line(std::string_view line) = 0;

    /// Formatted, newline-terminated event lines queued since the last
    /// drain, oldest first; the queue is emptied.
    virtual std::vector<std::string> drain_event_lines() = 0;
};

struct ScriptOptions {
    /// Echo each executed line as "> <line>" and pass comment lines
    /// through (script/transcript mode). Off for interactive REPLs.
    bool echo = true;
    /// Printed before reading each line (interactive mode); no trailing
    /// newline is added.
    std::string prompt;
};

/// One line-numbered account of something going wrong: an error
/// response to a request line, a failed expect / expect-block, or a
/// malformed script construct. `text` is the offending source line.
struct ScriptDiagnostic {
    int line = 0;
    std::string text;
    std::string message;
};

struct ScriptResult {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    bool quit = false;   ///< the script ended with quit/exit
    /// An expect tripped or the script was malformed; execution stopped
    /// at the diagnostic.
    bool failed = false;
    std::vector<ScriptDiagnostic> diagnostics;
};

/// Runs lines from `in` until EOF, quit, or a failed expect. Blank
/// lines are skipped; lines starting with '#' are comments (echoed in
/// script mode).
ScriptResult run_script(ScriptClient& client, std::istream& in, std::ostream& out,
                        const ScriptOptions& options = {});

/// Same, against one session's controller (events untagged).
ScriptResult run_script(SessionController& controller, std::istream& in,
                        std::ostream& out, const ScriptOptions& options = {});

} // namespace gmdf::proto
