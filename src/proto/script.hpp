// Script/REPL driver shared by the gmdf_dbg tool and the golden tests.
//
// Reads request lines from a stream, executes them against a
// SessionController, and writes the transcript — echoed commands,
// responses, and any asynchronous events queued while a command ran —
// to an output stream. Deterministic input therefore yields a
// byte-stable transcript, which is what makes whole debug scenarios
// usable as text fixtures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "proto/controller.hpp"

namespace gmdf::proto {

struct ScriptOptions {
    /// Echo each executed line as "> <line>" and pass comment lines
    /// through (script/transcript mode). Off for interactive REPLs.
    bool echo = true;
    /// Printed before reading each line (interactive mode); no trailing
    /// newline is added.
    std::string prompt;
};

struct ScriptResult {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    bool quit = false; ///< the script ended with quit/exit
};

/// Runs lines from `in` until EOF or quit. Blank lines are skipped;
/// lines starting with '#' are comments (echoed in script mode).
ScriptResult run_script(SessionController& controller, std::istream& in,
                        std::ostream& out, const ScriptOptions& options = {});

} // namespace gmdf::proto
