// Self-contained demo scenarios the protocol layer can drive.
//
// Each scenario bundles a COMDES design model, a simulated target with
// the generated code loaded (active command interface), a DebugSession
// attached over UART, and the session's controller with the run hook
// bound to the target clock. gmdf_dbg serves these from the command
// line; the golden-transcript tests run the same objects in-process, so
// the CLI and the test fixtures cannot diverge.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "core/session.hpp"
#include "proto/controller.hpp"
#include "rt/target.hpp"

namespace gmdf::proto {

/// One ready-to-drive debug scenario. Construction order matters: the
/// model outlives the session, the target outlives its transport.
struct Scenario {
    std::string name;
    comdes::SystemBuilder sys;
    rt::Target target;
    codegen::LoadedSystem loaded;
    std::unique_ptr<core::DebugSession> session;

    explicit Scenario(std::string scenario_name)
        : name(std::move(scenario_name)), sys(name + "_system") {}

    /// The session's controller (run hook already bound to the target).
    [[nodiscard]] SessionController& controller() { return session->controller(); }
};

/// Names servable by make_scenario, in listing order.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Builds a scenario by name ("blinker": the quickstart toggler;
/// "turntable": the two-node production cell with scheduled stimuli).
/// Returns null for unknown names. The target is started; drive it with
/// the `run` verb.
[[nodiscard]] std::unique_ptr<Scenario> make_scenario(std::string_view name);

} // namespace gmdf::proto
