// Self-contained demo scenarios the protocol layer can drive.
//
// Each scenario bundles a COMDES design model, a simulated target with
// the generated code loaded (active command interface), a DebugSession
// attached over UART, and the session's controller with the run hook
// bound to the target clock. gmdf_dbg serves these from the command
// line; the golden-transcript tests run the same objects in-process, so
// the CLI and the test fixtures cannot diverge.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "core/session.hpp"
#include "proto/controller.hpp"
#include "replay/timeline.hpp"
#include "rt/target.hpp"

namespace gmdf::proto {

/// One ready-to-drive debug scenario. Construction order matters: the
/// model outlives the session, the target outlives its transport.
struct Scenario {
    /// A scheduled environment stimulus (applied through the target's
    /// rewind-safe publish path once the system is loaded).
    struct Stimulus {
        meta::ObjectId signal;
        double value = 0.0;
        rt::SimTime at = 0;
        int node = 0;
    };

    std::string name;
    comdes::SystemBuilder sys;
    rt::Target target;
    codegen::LoadedSystem loaded;
    std::vector<Stimulus> stimuli;
    /// Fault scenarios generate code from a mutated clone while the
    /// debugger keeps sys.model() as the design (null otherwise).
    std::unique_ptr<meta::Model> mutated;
    std::unique_ptr<core::DebugSession> session;
    /// Time-travel navigation (checkpoint/rewind/step-back/bisect);
    /// bound to the session's controller by make_scenario.
    std::unique_ptr<replay::Timeline> timeline;

    explicit Scenario(std::string scenario_name)
        : name(std::move(scenario_name)), sys(name + "_system") {}

    /// The session's controller (run hook already bound to the target).
    [[nodiscard]] SessionController& controller() { return session->controller(); }
};

/// Names servable by make_scenario, in listing order.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Builds a scenario by name ("blinker": the quickstart toggler;
/// "turntable": the two-node production cell with scheduled stimuli;
/// "lift_fault": an elevator controller whose generated code carries an
/// injected wrong-transition-target fault — the bisect demo).
/// Two parameterized families extend the fixed names:
///   "lift_fault:<fault-kind>"  the elevator with any codegen::FaultKind
///                              injected (kebab-case kind names);
///   "gen:<seed>[:<fault-kind>]" a campaign-generated random model,
///                              optionally with an injected fault.
/// Returns null for unknown names, unknown fault kinds, and faults
/// inapplicable to the model. The target is started; drive it with the
/// `run` verb.
[[nodiscard]] std::unique_ptr<Scenario> make_scenario(std::string_view name);

/// Wires an externally built scenario (sys + stimuli populated, mutated
/// optionally set): validates the design model, loads the generated code
/// (from `mutated` when set — the injected-fault twin — else the design)
/// onto the target, builds the session over the active command
/// interface, schedules the stimuli through the rewind-safe publish
/// path, attaches a replay::Timeline, and starts the target. False when
/// the design model fails COMDES validation. The campaign runner and
/// make_scenario share this tail.
bool finalize_scenario(Scenario& s);

} // namespace gmdf::proto
