// Typed protocol messages and their line-oriented text codec.
//
// The control plane of the debugger framework: clients drive a session
// through Requests and get Responses back; the session pushes
// asynchronous Events (breakpoint hits, divergences, engine-state
// changes) on the side. Everything is line-oriented text so whole debug
// scenarios can live in version-controlled script files and transcripts
// diff cleanly.
//
// Wire shapes:
//   request   verb arg1 "arg with spaces" ...
//   response  ok                          (body lines prefixed "| ")
//             error <code>: <message>
//   event     * <kind> [@<t>ns] <detail>
//
// Parsing never throws: malformed input comes back as a structured
// ParseResult / error Response, so nothing propagates exceptions across
// the wire.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rt/des.hpp"

namespace gmdf::proto {

/// One client request: a verb plus positional arguments.
struct Request {
    std::string verb;
    std::vector<std::string> args;

    friend bool operator==(const Request&, const Request&) = default;
};

/// Machine-readable error classes (kebab-case on the wire).
enum class ErrorCode {
    None,
    BadRequest,  ///< unparsable request line
    UnknownVerb, ///< verb not in the registry
    BadArgument, ///< wrong arity / unparsable argument
    NotFound,    ///< named element / handle does not exist
    BadState,    ///< verb is valid but the session cannot honour it now
    Internal,    ///< handler failure (caught, never thrown to the client)
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// Inverse of to_string(ErrorCode); nullopt for unknown spellings.
[[nodiscard]] std::optional<ErrorCode> error_code_from_string(std::string_view text);

/// One reply. Ok responses carry zero or more body lines; error
/// responses carry a code and a one-line message.
struct Response {
    ErrorCode code = ErrorCode::None;
    std::string message;            ///< error responses only
    std::vector<std::string> body;  ///< ok responses only

    [[nodiscard]] bool ok() const { return code == ErrorCode::None; }

    [[nodiscard]] static Response make_ok(std::vector<std::string> body = {}) {
        Response r;
        r.body = std::move(body);
        return r;
    }
    [[nodiscard]] static Response make_error(ErrorCode code, std::string message) {
        Response r;
        r.code = code;
        r.message = std::move(message);
        return r;
    }
};

/// One asynchronous notification queued by the session controller.
struct Event {
    enum class Kind { BreakpointHit, Divergence, StateChange };

    Kind kind = Kind::StateChange;
    /// Simulated time of the triggering command; absent for events that
    /// carry no timestamp (engine FSM moves).
    std::optional<rt::SimTime> t;
    std::string detail;
};

[[nodiscard]] const char* to_string(Event::Kind kind);

/// Result of parsing one request line: either a request or an error
/// message (never both, never neither).
struct ParseResult {
    std::optional<Request> request;
    std::string error;

    [[nodiscard]] bool ok() const { return request.has_value(); }
};

/// Hard ceiling on one request line. Network clients control the bytes
/// they send; without a bound a hostile or broken peer could grow a
/// "line" without limit before the parser ever sees a newline.
inline constexpr std::size_t kMaxRequestLine = 16 * 1024;

/// Parses one request line. Tokens are whitespace-separated; a token may
/// be double-quoted to carry spaces, with \" \\ \n \t escapes. Errors
/// (empty line, oversized line, unterminated quote, bad escape) come
/// back structured.
[[nodiscard]] ParseResult parse_request(std::string_view line);

/// Formats a request so that parse_request(format_request(r)) == r.
[[nodiscard]] std::string format_request(const Request& req);

/// Formats a response (multi-line, newline-terminated).
[[nodiscard]] std::string format_response(const Response& resp);

/// Parses text produced by format_response back into a Response — the
/// network client's half of the codec seam, so a remote ScriptClient
/// returns the same typed Response an in-process controller would.
/// Round-trips: parse_response(format_response(r)) reformats to the
/// same bytes. nullopt for text format_response cannot have produced.
[[nodiscard]] std::optional<Response> parse_response(std::string_view text);

/// Formats one event line (newline-terminated).
[[nodiscard]] std::string format_event(const Event& ev);

/// Quotes `token` if needed so it survives tokenization as one argument.
[[nodiscard]] std::string quote_token(std::string_view token);

} // namespace gmdf::proto
