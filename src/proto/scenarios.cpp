#include "proto/scenarios.hpp"

#include <cstdint>
#include <optional>

#include "campaign/generator.hpp"
#include "codegen/faults.hpp"
#include "comdes/validate.hpp"
#include "core/builder.hpp"
#include "core/transports.hpp"
#include "meta/diagnostics.hpp"

namespace gmdf::proto {

namespace {

// The quickstart blinker: one actor, a two-state toggler driving a LED.
void build_blinker(comdes::SystemBuilder& sys) {
    auto led = sys.add_signal("led", "bool_");
    auto actor = sys.add_actor("blinker", /*period_us=*/100'000); // 10 Hz
    auto sm = actor.add_sm("toggler", {"tick"}, {"out"});
    auto off = sm.add_state("off", {{"out", "0"}});
    auto on = sm.add_state("on", {{"out", "1"}});
    sm.add_transition(off, on, "tick");
    sm.add_transition(on, off, "tick");
    auto one = actor.add_basic("one", "const_", {1.0});
    actor.connect(one, "out", sm.sm_id(), "tick");
    actor.bind_output(sm.sm_id(), "out", led);
}

// The two-node production cell: sequencing SM on node 0, motor ramp on
// node 1, with the part/position stimuli scheduled on the target clock.
void build_turntable(Scenario& s) {
    auto& sys = s.sys;
    auto part_present = sys.add_signal("part_present", "bool_");
    auto at_position = sys.add_signal("at_position", "bool_");
    auto rotate_cmd = sys.add_signal("rotate_cmd", "real_");
    auto drill_cmd = sys.add_signal("drill_cmd", "bool_");
    auto motor = sys.add_signal("motor", "real_");

    auto ctl = sys.add_actor("controller", 20'000, 0, /*node=*/0);
    auto sm = ctl.add_sm("sequencer", {"part", "in_pos"}, {"rotate", "drill"});
    auto s_idle = sm.add_state("idle", {{"rotate", "0"}, {"drill", "0"}});
    auto s_rotating = sm.add_state("rotating", {{"rotate", "0.8"}});
    auto s_drilling = sm.add_state("drilling", {{"rotate", "0"}, {"drill", "1"}});
    auto s_retract = sm.add_state("retracting", {{"drill", "0"}});
    sm.add_transition(s_idle, s_rotating, "part");
    sm.add_transition(s_rotating, s_drilling, "in_pos");
    sm.add_transition(s_drilling, s_retract);
    sm.add_transition(s_retract, s_idle, "", "!part");
    ctl.bind_input(part_present, sm.sm_id(), "part");
    ctl.bind_input(at_position, sm.sm_id(), "in_pos");
    ctl.bind_output(sm.sm_id(), "rotate", rotate_cmd);
    ctl.bind_output(sm.sm_id(), "drill", drill_cmd);

    auto drive = sys.add_actor("drive", 10'000, 0, /*node=*/1);
    auto ramp = drive.add_basic("ramp", "ratelimit_", {2.0});
    drive.bind_input(rotate_cmd, ramp, "in");
    drive.bind_output(ramp, "out", motor);

    s.target.set_network_latency(500 * rt::kUs);
    // Environment: a part arrives, then the table reaches position.
    // Declared data-only; make_scenario schedules them through the
    // target's rewind-safe publish path once the system is loaded.
    s.stimuli.push_back({part_present, 1.0, 50 * rt::kMs, 0});
    s.stimuli.push_back({at_position, 1.0, 200 * rt::kMs, 0});
}

// The elevator controller from the fault-hunt study. The debugger keeps
// this design model; the generated code comes from a mutated clone (a
// wrong-transition-target fault), so the consistency checker trips at
// runtime — the scenario behind the `bisect` golden workflow.
void build_lift(Scenario& s) {
    auto& sys = s.sys;
    auto call_sig = sys.add_signal("call", "bool_");
    auto at_floor = sys.add_signal("at_floor", "bool_");
    auto door_sig = sys.add_signal("door", "real_");
    auto a = sys.add_actor("elevator_ctl", 10'000);
    auto sm = a.add_sm("lift", {"call", "arrived"}, {"move", "door"});
    auto idle = sm.add_state("idle", {{"move", "0"}, {"door", "1"}});
    auto moving = sm.add_state("moving", {{"move", "1"}, {"door", "0"}});
    auto open = sm.add_state("doors_open", {{"move", "0"}, {"door", "1"}});
    sm.add_transition(idle, moving, "call", "!arrived");
    sm.add_transition(moving, open, "arrived");
    sm.add_transition(open, idle, "", "!call");
    a.bind_input(call_sig, sm.sm_id(), "call");
    a.bind_input(at_floor, sm.sm_id(), "arrived");
    a.bind_output(sm.sm_id(), "door", door_sig);

    // Exercise the elevator: call, arrive, release.
    s.stimuli.push_back({call_sig, 1.0, 50 * rt::kMs, 0});
    s.stimuli.push_back({at_floor, 1.0, 200 * rt::kMs, 0});
    s.stimuli.push_back({call_sig, 0.0, 350 * rt::kMs, 0});
    s.stimuli.push_back({at_floor, 0.0, 360 * rt::kMs, 0});
}

/// Parses a decimal seed; nullopt when `text` is empty or not all digits.
std::optional<std::uint32_t> parse_seed(std::string_view text) {
    if (text.empty() || text.size() > 9) return std::nullopt;
    std::uint32_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') return std::nullopt;
        value = value * 10 + static_cast<std::uint32_t>(c - '0');
    }
    return value;
}

} // namespace

std::vector<std::string> scenario_names() {
    return {"blinker", "turntable", "lift_fault"};
}

bool finalize_scenario(Scenario& s) {
    if (!meta::is_clean(comdes::validate_comdes(s.sys.model()))) return false;

    // Fault scenarios generate code from a mutated clone of the design
    // (emulating a model-transformation bug, codegen/faults); the
    // debugger keeps sys.model() as the design.
    const meta::Model* generated = s.mutated ? s.mutated.get() : &s.sys.model();
    s.loaded = codegen::load_system(s.target, *generated,
                                    codegen::InstrumentOptions::active());
    s.session = core::SessionBuilder(s.sys.model())
                    .bindings(core::CommandBindingTable::defaults())
                    .active_uart(s.target)
                    .build();
    for (const Scenario::Stimulus& st : s.stimuli)
        s.target.schedule_publish(st.at, st.node,
                                  s.loaded.signal_index.at(st.signal.raw), st.value);
    s.timeline = std::make_unique<replay::Timeline>(s.target, *s.session);
    s.controller().set_timeline(s.timeline.get());
    replay::Timeline* timeline = s.timeline.get();
    s.controller().set_run_hook(
        [timeline](rt::SimTime duration) { timeline->advance(duration); });
    s.target.start();
    return true;
}

std::unique_ptr<Scenario> make_scenario(std::string_view name) {
    auto scenario = std::make_unique<Scenario>(std::string(name));
    std::optional<codegen::FaultKind> fault;

    if (name == "blinker") {
        build_blinker(scenario->sys);
    } else if (name == "turntable") {
        build_turntable(*scenario);
    } else if (name == "lift_fault") {
        build_lift(*scenario);
        fault = codegen::FaultKind::WrongTransitionTarget;
    } else if (name.rfind("lift_fault:", 0) == 0) {
        fault = codegen::fault_kind_from_string(name.substr(11));
        if (!fault.has_value()) return nullptr;
        build_lift(*scenario);
    } else if (name.rfind("gen:", 0) == 0) {
        // "gen:<seed>[:<fault-kind>]" — a campaign-generated model.
        std::string_view rest = name.substr(4);
        std::string_view seed_text = rest;
        if (auto colon = rest.find(':'); colon != std::string_view::npos) {
            seed_text = rest.substr(0, colon);
            fault = codegen::fault_kind_from_string(rest.substr(colon + 1));
            if (!fault.has_value()) return nullptr;
        }
        auto seed = parse_seed(seed_text);
        if (!seed.has_value()) return nullptr;
        campaign::GeneratedSystem gen =
            campaign::generate_system(scenario->sys, campaign::GenSpec{}, *seed);
        if (gen.nodes > 1) scenario->target.set_network_latency(500 * rt::kUs);
        for (const campaign::GenStimulus& st : gen.stimuli)
            scenario->stimuli.push_back({st.signal, st.value, st.at, st.node});
    } else {
        return nullptr;
    }

    if (fault.has_value()) {
        scenario->mutated =
            std::make_unique<meta::Model>(scenario->sys.model().clone());
        if (!codegen::inject_fault(*scenario->mutated, *fault, /*seed=*/23)
                 .has_value())
            return nullptr;
    }
    if (!finalize_scenario(*scenario)) return nullptr;
    return scenario;
}

} // namespace gmdf::proto
