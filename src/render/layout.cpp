#include "render/layout.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace gmdf::render {

void auto_layout(Scene& scene, const LayoutOptions& opt) {
    auto& nodes = scene.nodes();
    if (nodes.empty()) return;

    std::map<std::uint64_t, std::size_t> index;
    for (std::size_t i = 0; i < nodes.size(); ++i) index[nodes[i].id] = i;

    // Adjacency, ignoring self loops; cycle edges are relaxed by capping
    // the relaxation rounds.
    std::vector<std::vector<std::size_t>> out(nodes.size());
    std::vector<int> indeg(static_cast<int>(nodes.size()), 0);
    for (const auto& e : scene.edges()) {
        auto fi = index.find(e.from);
        auto ti = index.find(e.to);
        if (fi == index.end() || ti == index.end() || fi->second == ti->second) continue;
        out[fi->second].push_back(ti->second);
        ++indeg[ti->second];
    }

    // Longest-path ranking with bounded relaxation (handles cycles).
    std::vector<int> rank(nodes.size(), 0);
    for (std::size_t round = 0; round < nodes.size(); ++round) {
        bool changed = false;
        for (std::size_t i = 0; i < nodes.size(); ++i)
            for (std::size_t j : out[i])
                if (rank[j] < rank[i] + 1 && rank[i] + 1 <= static_cast<int>(nodes.size())) {
                    rank[j] = rank[i] + 1;
                    changed = true;
                }
        if (!changed) break;
    }

    // Group members share the rank of their group minimum? Groups are
    // visual only; keep ranks but sort within layers so groups cluster.
    int max_rank = 0;
    for (int r : rank) max_rank = std::max(max_rank, r);
    std::vector<std::vector<std::size_t>> layers(static_cast<std::size_t>(max_rank) + 1);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        layers[static_cast<std::size_t>(rank[i])].push_back(i);

    // One barycenter pass: order each layer by mean predecessor row.
    std::vector<double> row(nodes.size(), 0.0);
    for (std::size_t l = 0; l < layers.size(); ++l) {
        auto& layer = layers[l];
        if (l > 0) {
            std::vector<std::vector<std::size_t>> preds(nodes.size());
            for (std::size_t i = 0; i < nodes.size(); ++i)
                for (std::size_t j : out[i]) preds[j].push_back(i);
            std::stable_sort(layer.begin(), layer.end(), [&](std::size_t a, std::size_t b) {
                auto bary = [&](std::size_t n) {
                    if (preds[n].empty()) return row[n];
                    double sum = 0;
                    for (std::size_t p : preds[n]) sum += row[p];
                    return sum / static_cast<double>(preds[n].size());
                };
                double ba = bary(a), bb = bary(b);
                if (ba != bb) return ba < bb;
                return nodes[a].group < nodes[b].group; // cluster groups
            });
        }
        for (std::size_t r = 0; r < layer.size(); ++r) row[layer[r]] = static_cast<double>(r);
    }

    for (std::size_t l = 0; l < layers.size(); ++l) {
        for (std::size_t r = 0; r < layers[l].size(); ++r) {
            SceneNode& n = nodes[layers[l][r]];
            if (n.rect.w == 0) n.rect.w = opt.node_w;
            if (n.rect.h == 0) n.rect.h = opt.node_h;
            n.rect.x = static_cast<double>(l) * (opt.node_w + opt.h_gap) + opt.group_pad;
            n.rect.y = static_cast<double>(r) * (opt.node_h + opt.v_gap) + opt.group_pad;
        }
    }
}

} // namespace gmdf::render
