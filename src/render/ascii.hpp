// ASCII renderer: animation frames on a terminal (and in test output).
#pragma once

#include <string>

#include "render/scene.hpp"

namespace gmdf::render {

struct AsciiOptions {
    /// World units per character cell.
    double x_scale = 8.0;
    double y_scale = 16.0;
    std::size_t max_width = 200;
};

/// Renders the scene onto a character canvas. Highlighted nodes use '#'
/// borders (plain nodes use '+---+' boxes); dimmed nodes use '.'.
/// Edges are drawn as '
///  *' dotted straight runs between node centers.
[[nodiscard]] std::string render_ascii(const Scene& scene, const AsciiOptions& options = {});

} // namespace gmdf::render
