#include "render/scene.hpp"

#include <algorithm>

namespace gmdf::render {

const char* to_string(Shape s) {
    switch (s) {
    case Shape::Rectangle: return "Rectangle";
    case Shape::Circle: return "Circle";
    case Shape::Triangle: return "Triangle";
    case Shape::Diamond: return "Diamond";
    case Shape::Line: return "Line";
    case Shape::Arrow: return "Arrow";
    }
    return "?";
}

SceneNode& Scene::add_node(SceneNode n) {
    node_index_[n.id] = nodes_.size();
    nodes_.push_back(std::move(n));
    return nodes_.back();
}

SceneEdge& Scene::add_edge(SceneEdge e) {
    edge_index_[e.id] = edges_.size();
    edges_.push_back(std::move(e));
    return edges_.back();
}

SceneNode* Scene::find_node(std::uint64_t id) {
    auto it = node_index_.find(id);
    return it == node_index_.end() ? nullptr : &nodes_[it->second];
}

const SceneNode* Scene::find_node(std::uint64_t id) const {
    auto it = node_index_.find(id);
    return it == node_index_.end() ? nullptr : &nodes_[it->second];
}

SceneEdge* Scene::find_edge(std::uint64_t id) {
    auto it = edge_index_.find(id);
    return it == edge_index_.end() ? nullptr : &edges_[it->second];
}

Rect Scene::bounds() const {
    if (nodes_.empty()) return {};
    double x0 = nodes_[0].rect.x, y0 = nodes_[0].rect.y;
    double x1 = x0, y1 = y0;
    for (const auto& n : nodes_) {
        x0 = std::min(x0, n.rect.x);
        y0 = std::min(y0, n.rect.y);
        x1 = std::max(x1, n.rect.x + n.rect.w);
        y1 = std::max(y1, n.rect.y + n.rect.h);
    }
    return {x0, y0, x1 - x0, y1 - y0};
}

void Scene::decay_highlights(double factor) {
    auto decay = [&](Style& s) {
        s.intensity *= factor;
        if (s.intensity < 0.05) {
            s.intensity = 0.0;
            s.highlighted = false;
        }
    };
    for (auto& n : nodes_) decay(n.style);
    for (auto& e : edges_) decay(e.style);
}

} // namespace gmdf::render
