#include "render/vcd.hpp"

#include <algorithm>
#include <bitset>
#include <sstream>
#include <stdexcept>

namespace gmdf::render {

std::string VcdWriter::code_for(std::size_t index) const {
    // Printable identifier codes: ! .. ~ then two-character codes.
    std::string code;
    std::size_t n = index;
    do {
        code += static_cast<char>('!' + n % 94);
        n /= 94;
    } while (n > 0);
    return code;
}

std::size_t VcdWriter::add_real(const std::string& name) {
    vars_.push_back({name, true, code_for(vars_.size())});
    return vars_.size() - 1;
}

std::size_t VcdWriter::add_int(const std::string& name) {
    vars_.push_back({name, false, code_for(vars_.size())});
    return vars_.size() - 1;
}

void VcdWriter::change_real(std::size_t var, std::int64_t t, double value) {
    if (!vars_.at(var).is_real) throw std::invalid_argument("variable is not real");
    changes_.push_back({t, var, value, 0});
}

void VcdWriter::change_int(std::size_t var, std::int64_t t, std::int64_t value) {
    if (vars_.at(var).is_real) throw std::invalid_argument("variable is not integral");
    changes_.push_back({t, var, 0.0, value});
}

std::string VcdWriter::str() const {
    std::ostringstream os;
    os << "$date gmdf trace $end\n";
    os << "$version gmdf 1.0 $end\n";
    os << "$timescale " << timescale_ << " $end\n";
    os << "$scope module gmdf $end\n";
    for (const Var& v : vars_) {
        if (v.is_real)
            os << "$var real 64 " << v.code << " " << v.name << " $end\n";
        else
            os << "$var wire 32 " << v.code << " " << v.name << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    auto sorted = changes_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Change& a, const Change& b) { return a.t < b.t; });
    std::int64_t current_t = -1;
    for (const Change& c : sorted) {
        if (c.t != current_t) {
            os << "#" << c.t << "\n";
            current_t = c.t;
        }
        const Var& v = vars_[c.var];
        if (v.is_real) {
            os << "r" << c.real_v << " " << v.code << "\n";
        } else {
            os << "b" << std::bitset<32>(static_cast<unsigned long long>(c.int_v)).to_string()
               << " " << v.code << "\n";
        }
    }
    return os.str();
}

} // namespace gmdf::render
