#include "render/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gmdf::render {

namespace {

class Canvas {
public:
    Canvas(std::size_t w, std::size_t h) : w_(w), h_(h), cells_(w * h, ' ') {}

    void put(std::size_t x, std::size_t y, char c, bool weak = false) {
        if (x >= w_ || y >= h_) return;
        char& cell = cells_[y * w_ + x];
        if (weak && cell != ' ') return; // edges never overwrite boxes/text
        cell = c;
    }

    void text(std::size_t x, std::size_t y, const std::string& s) {
        for (std::size_t i = 0; i < s.size(); ++i) put(x + i, y, s[i]);
    }

    [[nodiscard]] std::string str() const {
        std::string out;
        for (std::size_t y = 0; y < h_; ++y) {
            std::string line(cells_.begin() + static_cast<std::ptrdiff_t>(y * w_),
                             cells_.begin() + static_cast<std::ptrdiff_t>((y + 1) * w_));
            // Trim trailing spaces per line.
            while (!line.empty() && line.back() == ' ') line.pop_back();
            out += line;
            out += '\n';
        }
        return out;
    }

private:
    std::size_t w_, h_;
    std::vector<char> cells_;
};

} // namespace

std::string render_ascii(const Scene& scene, const AsciiOptions& opt) {
    if (scene.nodes().empty()) return "(empty scene)\n";
    Rect b = scene.bounds();
    auto cx = [&](double x) {
        return static_cast<std::size_t>(std::max(0.0, (x - b.x) / opt.x_scale));
    };
    auto cy = [&](double y) {
        return static_cast<std::size_t>(std::max(0.0, (y - b.y) / opt.y_scale));
    };
    std::size_t w = std::min(opt.max_width, cx(b.x + b.w) + 4);
    std::size_t h = cy(b.y + b.h) + 3;
    Canvas canvas(w, h);

    // Edges first (boxes and labels overdraw them).
    for (const auto& e : scene.edges()) {
        const SceneNode* from = scene.find_node(e.from);
        const SceneNode* to = scene.find_node(e.to);
        if (from == nullptr || to == nullptr) continue;
        double x0 = from->rect.cx(), y0 = from->rect.cy();
        double x1 = to->rect.cx(), y1 = to->rect.cy();
        int steps = static_cast<int>(std::max(std::fabs(x1 - x0) / opt.x_scale,
                                              std::fabs(y1 - y0) / opt.y_scale)) +
                    1;
        char mark = e.style.highlighted ? '*' : '.';
        for (int i = 1; i < steps; ++i) {
            double t = static_cast<double>(i) / steps;
            canvas.put(cx(x0 + (x1 - x0) * t), cy(y0 + (y1 - y0) * t), mark, /*weak=*/true);
        }
        canvas.put(cx(x1), cy(y1), '>', /*weak=*/true);
    }

    for (const auto& n : scene.nodes()) {
        std::size_t x0 = cx(n.rect.x), x1 = cx(n.rect.x + n.rect.w);
        std::size_t y0 = cy(n.rect.y), y1 = cy(n.rect.y + n.rect.h);
        if (x1 <= x0 + 1) x1 = x0 + 2;
        if (y1 <= y0 + 1) y1 = y0 + 2;
        char horiz = n.style.highlighted ? '#' : (n.style.dimmed ? '.' : '-');
        char vert = n.style.highlighted ? '#' : (n.style.dimmed ? '.' : '|');
        char corner = n.style.highlighted ? '#' : '+';
        for (std::size_t x = x0; x <= x1; ++x) {
            canvas.put(x, y0, horiz);
            canvas.put(x, y1, horiz);
        }
        for (std::size_t y = y0; y <= y1; ++y) {
            canvas.put(x0, y, vert);
            canvas.put(x1, y, vert);
        }
        canvas.put(x0, y0, corner);
        canvas.put(x1, y0, corner);
        canvas.put(x0, y1, corner);
        canvas.put(x1, y1, corner);
        std::string label = n.label;
        std::size_t room = x1 - x0 > 1 ? x1 - x0 - 1 : 0;
        if (label.size() > room) label.resize(room);
        canvas.text(x0 + 1, y0 + 1, label);
        if (!n.sublabel.empty() && y1 > y0 + 2) {
            std::string sub = n.sublabel;
            if (sub.size() > room) sub.resize(room);
            canvas.text(x0 + 1, y0 + 2, sub);
        }
    }
    return canvas.str();
}

} // namespace gmdf::render
