// Value Change Dump (IEEE 1364) writer for execution traces, so recorded
// model behaviour can be inspected in standard waveform viewers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gmdf::render {

class VcdWriter {
public:
    /// `timescale` e.g. "1ns".
    explicit VcdWriter(std::string timescale = "1ns") : timescale_(std::move(timescale)) {}

    /// Declares a real-valued variable; returns its handle.
    std::size_t add_real(const std::string& name);

    /// Declares an integer (32-bit wire) variable; returns its handle.
    std::size_t add_int(const std::string& name);

    /// Records a change; times must be globally non-decreasing.
    void change_real(std::size_t var, std::int64_t t, double value);
    void change_int(std::size_t var, std::int64_t t, std::int64_t value);

    /// Produces the complete VCD document.
    [[nodiscard]] std::string str() const;

private:
    struct Var {
        std::string name;
        bool is_real;
        std::string code; ///< VCD identifier code
    };
    struct Change {
        std::int64_t t;
        std::size_t var;
        double real_v;
        std::int64_t int_v;
    };

    std::string code_for(std::size_t index) const;

    std::string timescale_;
    std::vector<Var> vars_;
    std::vector<Change> changes_;
};

} // namespace gmdf::render
