// SVG renderer for scenes (the diffable stand-in for the GEF canvas).
#pragma once

#include <string>

#include "render/scene.hpp"

namespace gmdf::render {

struct SvgOptions {
    double padding = 20;
    /// Highlight fill; intensity scales the alpha.
    std::string highlight_color = "#ff8800";
    std::string node_fill = "#e8eef7";
    std::string stroke = "#334";
};

/// Renders the scene as a standalone SVG document.
[[nodiscard]] std::string render_svg(const Scene& scene, const SvgOptions& options = {});

} // namespace gmdf::render
