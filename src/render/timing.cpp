#include "render/timing.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace gmdf::render {

std::size_t TimingDiagram::add_lane(std::string name) {
    lanes_.push_back({std::move(name), {}});
    return lanes_.size() - 1;
}

void TimingDiagram::change(std::size_t lane, std::int64_t t_ns, std::string value) {
    Lane& l = lanes_.at(lane);
    if (!l.changes.empty() && t_ns < l.changes.back().first)
        throw std::invalid_argument("timing diagram changes must be time-ordered");
    l.changes.emplace_back(t_ns, std::move(value));
}

std::string TimingDiagram::render_ascii(std::size_t columns, std::int64_t t0,
                                        std::int64_t t1) const {
    // Data range.
    std::int64_t lo = t0, hi = t1;
    if (lo < 0 || hi < 0) {
        lo = 0;
        hi = 1;
        for (const Lane& l : lanes_)
            for (const auto& [t, _] : l.changes) hi = std::max(hi, t);
    }
    if (hi <= lo) hi = lo + 1;

    std::size_t name_w = 4;
    for (const Lane& l : lanes_) name_w = std::max(name_w, l.name.size());

    std::ostringstream os;
    os << std::string(name_w, ' ') << " t=" << lo << "ns"
       << std::string(columns > 20 ? columns - 20 : 1, ' ') << "t=" << hi << "ns\n";
    for (const Lane& l : lanes_) {
        os << l.name << std::string(name_w - l.name.size(), ' ') << " ";
        std::size_t change_idx = 0;
        std::string current = "_";
        for (std::size_t col = 0; col < columns; ++col) {
            std::int64_t bucket_start =
                lo + static_cast<std::int64_t>(col) * (hi - lo) / static_cast<std::int64_t>(columns);
            std::int64_t bucket_end =
                lo + static_cast<std::int64_t>(col + 1) * (hi - lo) / static_cast<std::int64_t>(columns);
            bool changed = false;
            while (change_idx < l.changes.size() && l.changes[change_idx].first < bucket_end) {
                if (l.changes[change_idx].first >= bucket_start) changed = true;
                current = l.changes[change_idx].second;
                ++change_idx;
            }
            os << (changed ? '|' : (current.empty() ? '_' : current[0]));
        }
        os << "\n";
    }
    return os.str();
}

} // namespace gmdf::render
