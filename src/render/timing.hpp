// Timing diagrams: the paper's replay companion view.
//
// "GDM animation will trace model-level behavior and always make a record
// of the execution trace. The user can then monitor the application's
// behavior via a replay function associated with a timing diagram."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gmdf::render {

/// One lane of a timing diagram: a named discrete-valued waveform.
struct Lane {
    std::string name;
    /// (time_ns, value-label) change points, time-ascending.
    std::vector<std::pair<std::int64_t, std::string>> changes;
};

class TimingDiagram {
public:
    /// Adds a lane and returns its index.
    std::size_t add_lane(std::string name);

    /// Records a value change; times must be non-decreasing per lane.
    void change(std::size_t lane, std::int64_t t_ns, std::string value);

    [[nodiscard]] const std::vector<Lane>& lanes() const { return lanes_; }

    /// Renders an ASCII waveform view: one row per lane, `columns` time
    /// buckets spanning [t0, t1] (defaults to the data range); a cell
    /// shows the first letter of the value active in that bucket and '|'
    /// at change points.
    [[nodiscard]] std::string render_ascii(std::size_t columns = 72, std::int64_t t0 = -1,
                                           std::int64_t t1 = -1) const;

private:
    std::vector<Lane> lanes_;
};

} // namespace gmdf::render
