// Scene graph for graphical model rendering.
//
// The Eclipse prototype renders GDM elements through GEF; here the scene
// is a plain data structure rendered to SVG or ASCII. Animation is a
// sequence of scene states (highlight/dim/label changes between frames).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gmdf::render {

/// Graphical patterns offered by the abstraction guide (paper Fig. 4
/// shows Rectangle / Triangle / Circle / Arrow; Line and Diamond round
/// out the set).
enum class Shape { Rectangle, Circle, Triangle, Diamond, Line, Arrow };

[[nodiscard]] const char* to_string(Shape s);

struct Style {
    bool highlighted = false;
    bool dimmed = false;
    /// Highlight intensity in [0,1]; animated reactions decay it.
    double intensity = 0.0;
};

struct Rect {
    double x = 0, y = 0, w = 0, h = 0;

    [[nodiscard]] double cx() const { return x + w / 2; }
    [[nodiscard]] double cy() const { return y + h / 2; }
};

/// A node item keyed by the model element it visualizes.
struct SceneNode {
    std::uint64_t id = 0; ///< source model element id
    Shape shape = Shape::Rectangle;
    Rect rect;
    std::string label;
    std::string sublabel; ///< second line: live values, state names...
    Style style;
    /// Optional grouping (e.g. states inside their machine's frame).
    std::uint64_t group = 0;
};

/// An edge item (transitions, connections).
struct SceneEdge {
    std::uint64_t id = 0;
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    std::string label;
    Style style;
};

/// The drawable scene; mutated by debugger reactions, read by renderers.
class Scene {
public:
    SceneNode& add_node(SceneNode n);
    SceneEdge& add_edge(SceneEdge e);

    [[nodiscard]] SceneNode* find_node(std::uint64_t id);
    [[nodiscard]] const SceneNode* find_node(std::uint64_t id) const;
    [[nodiscard]] SceneEdge* find_edge(std::uint64_t id);

    [[nodiscard]] std::vector<SceneNode>& nodes() { return nodes_; }
    [[nodiscard]] const std::vector<SceneNode>& nodes() const { return nodes_; }
    [[nodiscard]] std::vector<SceneEdge>& edges() { return edges_; }
    [[nodiscard]] const std::vector<SceneEdge>& edges() const { return edges_; }

    /// Bounding box of all nodes (empty scene: zero rect).
    [[nodiscard]] Rect bounds() const;

    /// Multiplies every intensity by `factor` and drops highlights that
    /// fall below 0.05 (per-frame animation decay).
    void decay_highlights(double factor);

private:
    std::vector<SceneNode> nodes_;
    std::vector<SceneEdge> edges_;
    std::map<std::uint64_t, std::size_t> node_index_;
    std::map<std::uint64_t, std::size_t> edge_index_;
};

} // namespace gmdf::render
