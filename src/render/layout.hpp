// Automatic layout for abstracted debug models.
#pragma once

#include "render/scene.hpp"

namespace gmdf::render {

struct LayoutOptions {
    double node_w = 120;
    double node_h = 48;
    double h_gap = 60;  ///< gap between layers
    double v_gap = 28;  ///< gap within a layer
    double group_pad = 24;
};

/// Layered left-to-right layout (Sugiyama-style): nodes are ranked by
/// longest path from the sources along scene edges (cycles are relaxed),
/// ordered within a layer by a single barycenter pass, and grouped nodes
/// are kept on adjacent rows. Works for dataflow networks and state
/// graphs alike.
void auto_layout(Scene& scene, const LayoutOptions& options = {});

} // namespace gmdf::render
