#include "render/svg.hpp"

#include <sstream>

namespace gmdf::render {

namespace {

std::string escape_xml(const std::string& s) {
    std::string out;
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '"': out += "&quot;"; break;
        default: out += c;
        }
    }
    return out;
}

void emit_shape(std::ostringstream& os, const SceneNode& n, const SvgOptions& opt) {
    const Rect& r = n.rect;
    std::string fill = opt.node_fill;
    double stroke_w = 1.5;
    if (n.style.highlighted) {
        fill = opt.highlight_color;
        stroke_w = 3.0;
    }
    std::ostringstream style;
    style << "fill=\"" << fill << "\" stroke=\"" << opt.stroke << "\" stroke-width=\""
          << stroke_w << "\"";
    if (n.style.highlighted)
        style << " fill-opacity=\"" << (0.35 + 0.65 * n.style.intensity) << "\"";
    if (n.style.dimmed) style << " opacity=\"0.35\"";

    switch (n.shape) {
    case Shape::Circle:
        os << "  <ellipse cx=\"" << r.cx() << "\" cy=\"" << r.cy() << "\" rx=\"" << r.w / 2
           << "\" ry=\"" << r.h / 2 << "\" " << style.str() << "/>\n";
        break;
    case Shape::Triangle:
        os << "  <polygon points=\"" << r.cx() << "," << r.y << " " << r.x + r.w << ","
           << r.y + r.h << " " << r.x << "," << r.y + r.h << "\" " << style.str() << "/>\n";
        break;
    case Shape::Diamond:
        os << "  <polygon points=\"" << r.cx() << "," << r.y << " " << r.x + r.w << ","
           << r.cy() << " " << r.cx() << "," << r.y + r.h << " " << r.x << "," << r.cy()
           << "\" " << style.str() << "/>\n";
        break;
    case Shape::Line:
        os << "  <line x1=\"" << r.x << "\" y1=\"" << r.cy() << "\" x2=\"" << r.x + r.w
           << "\" y2=\"" << r.cy() << "\" " << style.str() << "/>\n";
        break;
    case Shape::Arrow:
    case Shape::Rectangle:
        os << "  <rect x=\"" << r.x << "\" y=\"" << r.y << "\" width=\"" << r.w
           << "\" height=\"" << r.h << "\" rx=\"6\" " << style.str() << "/>\n";
        break;
    }
    os << "  <text x=\"" << r.cx() << "\" y=\"" << r.cy() - 2
       << "\" text-anchor=\"middle\" font-size=\"12\" font-family=\"monospace\">"
       << escape_xml(n.label) << "</text>\n";
    if (!n.sublabel.empty())
        os << "  <text x=\"" << r.cx() << "\" y=\"" << r.cy() + 12
           << "\" text-anchor=\"middle\" font-size=\"10\" fill=\"#555\" "
              "font-family=\"monospace\">"
           << escape_xml(n.sublabel) << "</text>\n";
}

} // namespace

std::string render_svg(const Scene& scene, const SvgOptions& opt) {
    Rect b = scene.bounds();
    double w = b.w + 2 * opt.padding, h = b.h + 2 * opt.padding;
    std::ostringstream os;
    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
       << "\" viewBox=\"" << b.x - opt.padding << " " << b.y - opt.padding << " " << w << " "
       << h << "\">\n";
    os << "  <defs><marker id=\"arrow\" markerWidth=\"10\" markerHeight=\"8\" refX=\"9\" "
          "refY=\"4\" orient=\"auto\"><path d=\"M0,0 L10,4 L0,8 z\" fill=\"#334\"/>"
          "</marker></defs>\n";

    for (const auto& e : scene.edges()) {
        const SceneNode* from = scene.find_node(e.from);
        const SceneNode* to = scene.find_node(e.to);
        if (from == nullptr || to == nullptr) continue;
        double sw = e.style.highlighted ? 3.0 : 1.2;
        std::string color = e.style.highlighted ? "#ff3300" : "#334";
        os << "  <line x1=\"" << from->rect.cx() << "\" y1=\"" << from->rect.cy()
           << "\" x2=\"" << to->rect.cx() << "\" y2=\"" << to->rect.cy() << "\" stroke=\""
           << color << "\" stroke-width=\"" << sw << "\" marker-end=\"url(#arrow)\"/>\n";
        if (!e.label.empty())
            os << "  <text x=\"" << (from->rect.cx() + to->rect.cx()) / 2 << "\" y=\""
               << (from->rect.cy() + to->rect.cy()) / 2 - 4
               << "\" text-anchor=\"middle\" font-size=\"10\" fill=\"#633\" "
                  "font-family=\"monospace\">"
               << escape_xml(e.label) << "</text>\n";
    }
    for (const auto& n : scene.nodes()) emit_shape(os, n, opt);
    os << "</svg>\n";
    return os.str();
}

} // namespace gmdf::render
