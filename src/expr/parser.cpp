#include "expr/parser.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace gmdf::expr {

namespace {

class Parser {
public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    ExprPtr run() {
        ExprPtr e = conditional();
        if (peek().kind != TokKind::End)
            throw ExprError(peek().pos, "trailing input after expression");
        return e;
    }

private:
    const Token& peek() const { return toks_[idx_]; }
    Token take() { return toks_[idx_++]; }

    bool accept(TokKind k) {
        if (peek().kind == k) {
            ++idx_;
            return true;
        }
        return false;
    }

    void expect(TokKind k, const char* what) {
        if (!accept(k)) throw ExprError(peek().pos, std::string("expected ") + what);
    }

    static ExprPtr make(std::size_t pos, auto&& node) {
        auto e = std::make_unique<Expr>();
        e->node = std::forward<decltype(node)>(node);
        e->pos = pos;
        return e;
    }

    ExprPtr conditional() {
        std::size_t pos = peek().pos;
        ExprPtr c = logical_or();
        if (accept(TokKind::Question)) {
            ExprPtr t = conditional();
            expect(TokKind::Colon, "':'");
            ExprPtr f = conditional();
            return make(pos, Conditional{std::move(c), std::move(t), std::move(f)});
        }
        return c;
    }

    ExprPtr logical_or() {
        ExprPtr lhs = logical_and();
        while (peek().kind == TokKind::OrOr) {
            std::size_t pos = take().pos;
            lhs = make(pos, Binary{BinOp::Or, std::move(lhs), logical_and()});
        }
        return lhs;
    }

    ExprPtr logical_and() {
        ExprPtr lhs = comparison();
        while (peek().kind == TokKind::AndAnd) {
            std::size_t pos = take().pos;
            lhs = make(pos, Binary{BinOp::And, std::move(lhs), comparison()});
        }
        return lhs;
    }

    ExprPtr comparison() {
        ExprPtr lhs = additive();
        BinOp op;
        switch (peek().kind) {
        case TokKind::Lt: op = BinOp::Lt; break;
        case TokKind::Le: op = BinOp::Le; break;
        case TokKind::Gt: op = BinOp::Gt; break;
        case TokKind::Ge: op = BinOp::Ge; break;
        case TokKind::EqEq: op = BinOp::Eq; break;
        case TokKind::NotEq: op = BinOp::Ne; break;
        default: return lhs;
        }
        std::size_t pos = take().pos;
        return make(pos, Binary{op, std::move(lhs), additive()});
    }

    ExprPtr additive() {
        ExprPtr lhs = multiplicative();
        while (peek().kind == TokKind::Plus || peek().kind == TokKind::Minus) {
            BinOp op = peek().kind == TokKind::Plus ? BinOp::Add : BinOp::Sub;
            std::size_t pos = take().pos;
            lhs = make(pos, Binary{op, std::move(lhs), multiplicative()});
        }
        return lhs;
    }

    ExprPtr multiplicative() {
        ExprPtr lhs = unary();
        while (true) {
            BinOp op;
            switch (peek().kind) {
            case TokKind::Star: op = BinOp::Mul; break;
            case TokKind::Slash: op = BinOp::Div; break;
            case TokKind::Percent: op = BinOp::Mod; break;
            default: return lhs;
            }
            std::size_t pos = take().pos;
            lhs = make(pos, Binary{op, std::move(lhs), unary()});
        }
    }

    ExprPtr unary() {
        if (peek().kind == TokKind::Minus) {
            std::size_t pos = take().pos;
            return make(pos, Unary{UnOp::Neg, unary()});
        }
        if (peek().kind == TokKind::Not) {
            std::size_t pos = take().pos;
            return make(pos, Unary{UnOp::Not, unary()});
        }
        return primary();
    }

    ExprPtr primary() {
        Token t = take();
        switch (t.kind) {
        case TokKind::Int: return make(t.pos, IntLit{t.int_val});
        case TokKind::Real: return make(t.pos, RealLit{t.real_val});
        case TokKind::True: return make(t.pos, BoolLit{true});
        case TokKind::False: return make(t.pos, BoolLit{false});
        case TokKind::LParen: {
            ExprPtr e = conditional();
            expect(TokKind::RParen, "')'");
            return e;
        }
        case TokKind::Ident: {
            if (accept(TokKind::LParen)) {
                Call call{std::move(t.text), {}};
                if (!accept(TokKind::RParen)) {
                    do {
                        call.args.push_back(conditional());
                    } while (accept(TokKind::Comma));
                    expect(TokKind::RParen, "')'");
                }
                return make(t.pos, std::move(call));
            }
            return make(t.pos, VarRef{std::move(t.text)});
        }
        default: throw ExprError(t.pos, "expected an expression");
        }
    }

    std::vector<Token> toks_;
    std::size_t idx_ = 0;
};

void collect_vars(const Expr& e, std::set<std::string>& out) {
    std::visit(
        [&](const auto& n) {
            using T = std::decay_t<decltype(n)>;
            if constexpr (std::is_same_v<T, VarRef>) {
                out.insert(n.name);
            } else if constexpr (std::is_same_v<T, Unary>) {
                collect_vars(*n.operand, out);
            } else if constexpr (std::is_same_v<T, Binary>) {
                collect_vars(*n.lhs, out);
                collect_vars(*n.rhs, out);
            } else if constexpr (std::is_same_v<T, Conditional>) {
                collect_vars(*n.cond, out);
                collect_vars(*n.then_e, out);
                collect_vars(*n.else_e, out);
            } else if constexpr (std::is_same_v<T, Call>) {
                for (const auto& a : n.args) collect_vars(*a, out);
            }
        },
        e.node);
}

const char* op_text(BinOp op) {
    switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
    }
    return "?";
}

} // namespace

ExprPtr parse(std::string_view src) { return Parser(lex(src)).run(); }

std::vector<std::string> free_variables(const Expr& e) {
    std::set<std::string> s;
    collect_vars(e, s);
    return {s.begin(), s.end()};
}

std::string to_string(const Expr& e) {
    std::ostringstream os;
    std::visit(
        [&](const auto& n) {
            using T = std::decay_t<decltype(n)>;
            if constexpr (std::is_same_v<T, IntLit>) {
                os << n.value;
            } else if constexpr (std::is_same_v<T, RealLit>) {
                os.precision(17);
                os << n.value;
            } else if constexpr (std::is_same_v<T, BoolLit>) {
                os << (n.value ? "true" : "false");
            } else if constexpr (std::is_same_v<T, VarRef>) {
                os << n.name;
            } else if constexpr (std::is_same_v<T, Unary>) {
                os << (n.op == UnOp::Neg ? "-" : "!") << "(" << to_string(*n.operand) << ")";
            } else if constexpr (std::is_same_v<T, Binary>) {
                os << "(" << to_string(*n.lhs) << " " << op_text(n.op) << " "
                   << to_string(*n.rhs) << ")";
            } else if constexpr (std::is_same_v<T, Conditional>) {
                os << "(" << to_string(*n.cond) << " ? " << to_string(*n.then_e) << " : "
                   << to_string(*n.else_e) << ")";
            } else if constexpr (std::is_same_v<T, Call>) {
                os << n.fn << "(";
                for (std::size_t i = 0; i < n.args.size(); ++i) {
                    if (i != 0) os << ", ";
                    os << to_string(*n.args[i]);
                }
                os << ")";
            }
        },
        e.node);
    return os.str();
}

} // namespace gmdf::expr
