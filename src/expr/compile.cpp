#include "expr/compile.hpp"

#include <bit>
#include <optional>

#include "expr/parser.hpp"

namespace gmdf::expr {

namespace {

/// Possible-kind bitmask for the numeric-fast-path analysis (slots are
/// assumed Real, which is the contract of run(span<double>)).
constexpr int kBool = 1;
constexpr int kInt = 2;
constexpr int kReal = 4;

bool may_int(int mask) { return (mask & kInt) != 0; }

int mask_of(const VmValue& v) {
    switch (v.tag) {
    case VmValue::Tag::Bool: return kBool;
    case VmValue::Tag::Int: return kInt;
    case VmValue::Tag::Real: return kReal;
    }
    return kReal;
}

/// Result mask of an interpreter arithmetic/unary-minus node: Int only
/// when both operands can be Int; Real whenever either side can take the
/// numeric (promoting) path.
int arith_mask(int l, int r) {
    int m = 0;
    if ((l & kInt) && (r & kInt)) m |= kInt;
    if ((l & (kBool | kReal)) || (r & (kBool | kReal))) m |= kReal;
    return m == 0 ? kReal : m;
}

bool const_eq(const VmValue& a, const VmValue& b) {
    if (a.tag != b.tag) return false;
    switch (a.tag) {
    case VmValue::Tag::Bool: return a.b == b.b;
    case VmValue::Tag::Int: return a.i == b.i;
    case VmValue::Tag::Real:
        return std::bit_cast<std::uint64_t>(a.d) == std::bit_cast<std::uint64_t>(b.d);
    }
    return false;
}

Op bin_op(BinOp op) {
    switch (op) {
    case BinOp::Add: return Op::Add;
    case BinOp::Sub: return Op::Sub;
    case BinOp::Mul: return Op::Mul;
    case BinOp::Div: return Op::Div;
    case BinOp::Mod: return Op::Mod;
    case BinOp::Lt: return Op::Lt;
    case BinOp::Le: return Op::Le;
    case BinOp::Gt: return Op::Gt;
    case BinOp::Ge: return Op::Ge;
    case BinOp::Eq: return Op::Eq;
    case BinOp::Ne: return Op::Ne;
    case BinOp::And: return Op::BrFalse; // never emitted directly
    case BinOp::Or: return Op::BrTrue;   // never emitted directly
    }
    return Op::Ret;
}

bool is_arith(BinOp op) {
    return op == BinOp::Add || op == BinOp::Sub || op == BinOp::Mul ||
           op == BinOp::Div || op == BinOp::Mod;
}

} // namespace

/// Named at namespace scope (not file-local) so the friend declaration
/// in CompiledExpr applies.
class Compiler {
public:
    explicit Compiler(const SlotResolver& slots) : resolver_(slots) {}

    CompiledExpr compile(const Expr& e) {
        EmitResult r = gen(e);
        materialize(r);
        emit(Op::Ret);
        prog_.max_stack_ = max_depth_;
        prog_.numeric_ok_ = !has_fail_ && !numeric_bad_;
        prog_.consts_num_.reserve(prog_.consts_.size());
        for (const VmValue& v : prog_.consts_) prog_.consts_num_.push_back(v.as_number());
        return std::move(prog_);
    }

private:
    /// Outcome of generating one subtree: either code has been emitted
    /// that leaves exactly one value on the stack (is_const == false), or
    /// NOTHING was emitted and `cval` is the folded constant.
    struct EmitResult {
        int mask = kReal;
        bool is_const = false;
        VmValue cval;
    };

    // ---- pure constant folding (no emission) ---------------------------

    /// Folds `e` to a constant when every reachable part is constant and
    /// folding cannot fault; faulting folds (1/0) and traps (unknown
    /// variable/function) stay unfolded so they fault at run time.
    std::optional<VmValue> try_fold(const Expr& e) {
        if (const auto* n = std::get_if<IntLit>(&e.node)) return VmValue::of_int(n->value);
        if (const auto* n = std::get_if<RealLit>(&e.node)) return VmValue::of_real(n->value);
        if (const auto* n = std::get_if<BoolLit>(&e.node)) return VmValue::of_bool(n->value);
        if (std::holds_alternative<VarRef>(e.node)) return std::nullopt;
        if (const auto* n = std::get_if<Unary>(&e.node)) {
            auto v = try_fold(*n->operand);
            if (!v) return std::nullopt;
            if (n->op == UnOp::Not) return VmValue::of_bool(!v->truthy());
            return v->is_int() ? VmValue::of_int(-v->i) : VmValue::of_real(-v->as_number());
        }
        if (const auto* n = std::get_if<Binary>(&e.node)) {
            auto l = try_fold(*n->lhs);
            if (!l) return std::nullopt;
            if (n->op == BinOp::And) {
                if (!l->truthy()) return VmValue::of_bool(false); // rhs never evaluated
                auto r = try_fold(*n->rhs);
                if (!r) return std::nullopt;
                return VmValue::of_bool(r->truthy());
            }
            if (n->op == BinOp::Or) {
                if (l->truthy()) return VmValue::of_bool(true);
                auto r = try_fold(*n->rhs);
                if (!r) return std::nullopt;
                return VmValue::of_bool(r->truthy());
            }
            auto r = try_fold(*n->rhs);
            if (!r) return std::nullopt;
            if (is_arith(n->op)) {
                VmValue out;
                if (vmops::arith(bin_op(n->op), *l, *r, out) != VmStatus::Ok)
                    return std::nullopt; // fault stays a runtime result code
                return out;
            }
            return vmops::compare(bin_op(n->op), *l, *r);
        }
        if (const auto* n = std::get_if<Conditional>(&e.node)) {
            auto c = try_fold(*n->cond);
            if (!c) return std::nullopt;
            return try_fold(c->truthy() ? *n->then_e : *n->else_e);
        }
        if (const auto* n = std::get_if<Call>(&e.node)) {
            const BuiltinSpec* spec = find_builtin(n->fn);
            if (spec == nullptr || static_cast<int>(n->args.size()) != spec->arity)
                return std::nullopt; // trap stays a runtime result code
            VmValue args[4];
            for (std::size_t i = 0; i < n->args.size(); ++i) {
                auto v = try_fold(*n->args[i]);
                if (!v) return std::nullopt;
                args[i] = *v;
            }
            return vmops::call_builtin(spec->id, args, spec->arity);
        }
        return std::nullopt;
    }

    // ---- emission ------------------------------------------------------

    void emit(Op op, std::int32_t a = 0, std::int32_t b = 0) {
        prog_.code_.push_back({op, a, b});
    }

    void note_push() {
        if (++depth_ > max_depth_) max_depth_ = depth_;
    }

    void push_const(const VmValue& v) {
        std::int32_t idx = -1;
        for (std::size_t i = 0; i < prog_.consts_.size(); ++i)
            if (const_eq(prog_.consts_[i], v)) { idx = static_cast<std::int32_t>(i); break; }
        if (idx < 0) {
            idx = static_cast<std::int32_t>(prog_.consts_.size());
            prog_.consts_.push_back(v);
        }
        emit(Op::PushConst, idx);
        note_push();
    }

    /// Emits a trap; statically accounted as pushing the (never produced)
    /// result so stack bookkeeping stays consistent.
    void emit_fail(VmStatus status, const std::string& name) {
        std::int32_t idx = static_cast<std::int32_t>(prog_.names_.size());
        prog_.names_.push_back(name);
        emit(Op::Fail, static_cast<std::int32_t>(status), idx);
        note_push();
        has_fail_ = true;
    }

    std::size_t emit_branch(Op op) {
        emit(op);
        --depth_; // branches consume the condition
        return prog_.code_.size() - 1;
    }

    void patch(std::size_t insn) {
        prog_.code_[insn].a = static_cast<std::int32_t>(prog_.code_.size());
    }

    /// Generates code leaving one value on the stack; folded constants
    /// are pushed. Returns the possible-kind mask.
    int gen_mat(const Expr& e) {
        EmitResult r = gen(e);
        materialize(r);
        return r.mask;
    }

    void materialize(const EmitResult& r) {
        if (r.is_const) push_const(r.cval);
    }

    EmitResult gen(const Expr& e) {
        if (auto cv = try_fold(e)) return {mask_of(*cv), true, *cv};

        if (const auto* n = std::get_if<VarRef>(&e.node)) {
            int slot = resolver_(n->name);
            if (slot < 0) {
                emit_fail(VmStatus::UnknownVar, n->name);
                return {kReal, false, {}};
            }
            emit(Op::LoadSlot, slot);
            note_push();
            if (static_cast<std::uint32_t>(slot) + 1 > prog_.slot_count_)
                prog_.slot_count_ = static_cast<std::uint32_t>(slot) + 1;
            return {kReal, false, {}}; // run(span<double>) slots are Real
        }

        if (const auto* n = std::get_if<Unary>(&e.node)) {
            int m = gen_mat(*n->operand);
            if (n->op == UnOp::Not) {
                emit(Op::Not);
                return {kBool, false, {}};
            }
            emit(Op::Neg);
            return {arith_mask(m, m), false, {}};
        }

        if (const auto* n = std::get_if<Binary>(&e.node)) {
            if (n->op == BinOp::And || n->op == BinOp::Or) return gen_logic(*n);
            int lm = gen_mat(*n->lhs);
            int rm = gen_mat(*n->rhs);
            emit(bin_op(n->op));
            --depth_;
            if (is_arith(n->op)) {
                if (may_int(lm) && may_int(rm)) numeric_bad_ = true;
                return {arith_mask(lm, rm), false, {}};
            }
            return {kBool, false, {}};
        }

        if (const auto* n = std::get_if<Conditional>(&e.node)) {
            if (auto c = try_fold(*n->cond))
                return gen(c->truthy() ? *n->then_e : *n->else_e);
            gen_mat(*n->cond);
            std::size_t br = emit_branch(Op::BrFalse);
            std::uint32_t base = depth_;
            int tm = gen_mat(*n->then_e);
            std::size_t jmp = prog_.code_.size();
            emit(Op::Jump);
            patch(br);
            depth_ = base; // else branch starts at the pre-then depth
            int em = gen_mat(*n->else_e);
            patch(jmp);
            return {tm | em, false, {}};
        }

        if (const auto* n = std::get_if<Call>(&e.node)) {
            const BuiltinSpec* spec = find_builtin(n->fn);
            int arg_masks[4] = {kReal, kReal, kReal, kReal};
            for (std::size_t i = 0; i < n->args.size(); ++i) {
                int m = gen_mat(*n->args[i]);
                if (i < 4) arg_masks[i] = m;
            }
            if (spec == nullptr || static_cast<int>(n->args.size()) != spec->arity) {
                // The interpreter evaluates arguments before discovering
                // the bad call, so the trap comes after the argument code.
                depth_ -= static_cast<std::uint32_t>(n->args.size());
                emit_fail(VmStatus::BadCall, n->fn);
                return {kReal, false, {}};
            }
            emit(Op::Call, static_cast<std::int32_t>(spec->id),
                 static_cast<std::int32_t>(spec->arity));
            depth_ -= static_cast<std::uint32_t>(spec->arity) - 1;
            return {call_mask(spec->id, arg_masks), false, {}};
        }

        // Literals are always folded by try_fold; unreachable.
        return {kReal, false, {}};
    }

    /// Short-circuit And/Or lowering. try_fold already handled the
    /// constant-lhs-falsy (And) / truthy (Or) cases where the whole
    /// node folds; a constant lhs that passes the gate reduces to
    /// Truthy(rhs).
    EmitResult gen_logic(const Binary& n) {
        bool is_and = n.op == BinOp::And;
        if (auto l = try_fold(*n.lhs)) {
            // Gate passed (else try_fold would have folded the node).
            gen_mat(*n.rhs);
            emit(Op::Truthy);
            return {kBool, false, {}};
        }
        gen_mat(*n.lhs);
        std::size_t br = emit_branch(is_and ? Op::BrFalse : Op::BrTrue);
        std::uint32_t base = depth_;
        gen_mat(*n.rhs);
        emit(Op::Truthy);
        std::size_t jmp = prog_.code_.size();
        emit(Op::Jump);
        patch(br);
        depth_ = base;
        push_const(VmValue::of_bool(!is_and));
        patch(jmp);
        return {kBool, false, {}};
    }

    static int call_mask(Builtin id, const int* a) {
        switch (id) {
        case Builtin::Min: case Builtin::Max: return arith_mask(a[0], a[1]);
        case Builtin::Abs: return arith_mask(a[0], a[0]);
        case Builtin::Clamp: {
            int m = 0;
            if ((a[0] & kInt) && (a[1] & kInt) && (a[2] & kInt)) m |= kInt;
            if (((a[0] | a[1] | a[2]) & (kBool | kReal)) != 0) m |= kReal;
            return m == 0 ? kReal : m;
        }
        case Builtin::Sign: return kInt;
        default: return kReal;
        }
    }

    CompiledExpr prog_;
    const SlotResolver& resolver_;
    std::uint32_t depth_ = 0;
    std::uint32_t max_depth_ = 0;
    bool has_fail_ = false;
    bool numeric_bad_ = false;
};

CompiledExpr compile(const Expr& e, const SlotResolver& slots) {
    return Compiler(slots).compile(e);
}

CompiledExpr compile(const Expr& e, std::span<const std::string> slot_names) {
    return compile(e, [&](std::string_view name) -> int {
        for (std::size_t i = 0; i < slot_names.size(); ++i)
            if (slot_names[i] == name) return static_cast<int>(i);
        return -1;
    });
}

CompiledExpr compile(std::string_view src, std::span<const std::string> slot_names) {
    auto ast = parse(src);
    return compile(*ast, slot_names);
}

} // namespace gmdf::expr
