#include "expr/eval.hpp"

#include <cmath>

#include "expr/vm.hpp"

namespace gmdf::expr {

namespace {

using meta::Value;

bool truthy(const Value& v) {
    if (v.is_bool()) return v.as_bool();
    if (v.is_int()) return v.as_int() != 0;
    if (v.is_real()) return v.as_real() != 0.0;
    throw EvalError("cannot use " + v.to_string() + " as a condition");
}

double numeric(const Value& v, const char* what) {
    if (v.is_int()) return static_cast<double>(v.as_int());
    if (v.is_real()) return v.as_real();
    if (v.is_bool()) return v.as_bool() ? 1.0 : 0.0;
    throw EvalError(std::string("operand of ") + what + " is not numeric: " + v.to_string());
}

bool both_int(const Value& a, const Value& b) { return a.is_int() && b.is_int(); }

Value arith(BinOp op, const Value& a, const Value& b) {
    if (both_int(a, b)) {
        std::int64_t x = a.as_int(), y = b.as_int();
        switch (op) {
        case BinOp::Add: return Value(x + y);
        case BinOp::Sub: return Value(x - y);
        case BinOp::Mul: return Value(x * y);
        case BinOp::Div:
            if (y == 0) throw EvalError("integer division by zero");
            return Value(x / y);
        case BinOp::Mod:
            if (y == 0) throw EvalError("integer modulo by zero");
            return Value(x % y);
        default: break;
        }
    }
    double x = numeric(a, "arithmetic"), y = numeric(b, "arithmetic");
    switch (op) {
    case BinOp::Add: return Value(x + y);
    case BinOp::Sub: return Value(x - y);
    case BinOp::Mul: return Value(x * y);
    case BinOp::Div: return Value(x / y); // IEEE semantics for real division
    case BinOp::Mod: return Value(std::fmod(x, y));
    default: throw EvalError("not an arithmetic operator");
    }
}

Value compare(BinOp op, const Value& a, const Value& b) {
    // Bool equality compares as bool; everything else numerically.
    if (a.is_bool() && b.is_bool() && (op == BinOp::Eq || op == BinOp::Ne)) {
        bool eq = a.as_bool() == b.as_bool();
        return Value(op == BinOp::Eq ? eq : !eq);
    }
    double x = numeric(a, "comparison"), y = numeric(b, "comparison");
    switch (op) {
    case BinOp::Lt: return Value(x < y);
    case BinOp::Le: return Value(x <= y);
    case BinOp::Gt: return Value(x > y);
    case BinOp::Ge: return Value(x >= y);
    case BinOp::Eq: return Value(x == y);
    case BinOp::Ne: return Value(x != y);
    default: throw EvalError("not a comparison operator");
    }
}

Value call_builtin(const std::string& fn, const std::vector<Value>& args) {
    auto need = [&](std::size_t n) {
        if (args.size() != n)
            throw EvalError("function '" + fn + "' expects " + std::to_string(n) +
                            " argument(s), got " + std::to_string(args.size()));
    };
    auto num = [&](std::size_t i) { return numeric(args[i], fn.c_str()); };

    if (fn == "min") {
        need(2);
        if (both_int(args[0], args[1]))
            return Value(std::min(args[0].as_int(), args[1].as_int()));
        return Value(std::min(num(0), num(1)));
    }
    if (fn == "max") {
        need(2);
        if (both_int(args[0], args[1]))
            return Value(std::max(args[0].as_int(), args[1].as_int()));
        return Value(std::max(num(0), num(1)));
    }
    if (fn == "abs") {
        need(1);
        if (args[0].is_int()) return Value(args[0].as_int() < 0 ? -args[0].as_int() : args[0].as_int());
        return Value(std::fabs(num(0)));
    }
    if (fn == "clamp") {
        need(3);
        if (both_int(args[0], args[1]) && args[2].is_int())
            return Value(std::clamp(args[0].as_int(), args[1].as_int(), args[2].as_int()));
        return Value(std::clamp(num(0), num(1), num(2)));
    }
    if (fn == "floor") { need(1); return Value(std::floor(num(0))); }
    if (fn == "ceil") { need(1); return Value(std::ceil(num(0))); }
    if (fn == "sqrt") { need(1); return Value(std::sqrt(num(0))); }
    if (fn == "sin") { need(1); return Value(std::sin(num(0))); }
    if (fn == "cos") { need(1); return Value(std::cos(num(0))); }
    if (fn == "exp") { need(1); return Value(std::exp(num(0))); }
    if (fn == "log") { need(1); return Value(std::log(num(0))); }
    if (fn == "pow") { need(2); return Value(std::pow(num(0), num(1))); }
    if (fn == "sign") {
        need(1);
        double v = num(0);
        return Value(static_cast<std::int64_t>(v > 0 ? 1 : v < 0 ? -1 : 0));
    }
    throw EvalError("unknown function '" + fn + "'");
}

} // namespace

bool is_builtin(std::string_view fn) { return find_builtin(fn) != nullptr; }

Value eval(const Expr& e, const VarLookup& vars) {
    return std::visit(
        [&](const auto& n) -> Value {
            using T = std::decay_t<decltype(n)>;
            if constexpr (std::is_same_v<T, IntLit>) {
                return Value(n.value);
            } else if constexpr (std::is_same_v<T, RealLit>) {
                return Value(n.value);
            } else if constexpr (std::is_same_v<T, BoolLit>) {
                return Value(n.value);
            } else if constexpr (std::is_same_v<T, VarRef>) {
                Value v = vars(n.name);
                if (v.is_null()) throw EvalError("unknown variable '" + n.name + "'");
                return v;
            } else if constexpr (std::is_same_v<T, Unary>) {
                Value v = eval(*n.operand, vars);
                if (n.op == UnOp::Not) return Value(!truthy(v));
                if (v.is_int()) return Value(-v.as_int());
                return Value(-numeric(v, "negation"));
            } else if constexpr (std::is_same_v<T, Binary>) {
                // Short-circuit logical operators.
                if (n.op == BinOp::And) {
                    if (!truthy(eval(*n.lhs, vars))) return Value(false);
                    return Value(truthy(eval(*n.rhs, vars)));
                }
                if (n.op == BinOp::Or) {
                    if (truthy(eval(*n.lhs, vars))) return Value(true);
                    return Value(truthy(eval(*n.rhs, vars)));
                }
                Value a = eval(*n.lhs, vars);
                Value b = eval(*n.rhs, vars);
                switch (n.op) {
                case BinOp::Add: case BinOp::Sub: case BinOp::Mul:
                case BinOp::Div: case BinOp::Mod:
                    return arith(n.op, a, b);
                default:
                    return compare(n.op, a, b);
                }
            } else if constexpr (std::is_same_v<T, Conditional>) {
                return truthy(eval(*n.cond, vars)) ? eval(*n.then_e, vars)
                                                   : eval(*n.else_e, vars);
            } else if constexpr (std::is_same_v<T, Call>) {
                std::vector<Value> args;
                args.reserve(n.args.size());
                for (const auto& a : n.args) args.push_back(eval(*a, vars));
                return call_builtin(n.fn, args);
            }
        },
        e.node);
}

Value eval(const Expr& e, const std::map<std::string, meta::Value>& vars) {
    return eval(e, [&](std::string_view name) -> Value {
        auto it = vars.find(std::string(name));
        return it == vars.end() ? Value() : it->second;
    });
}

bool eval_bool(const Expr& e, const VarLookup& vars) { return truthy(eval(e, vars)); }

} // namespace gmdf::expr
