#include "expr/lexer.hpp"

#include <cctype>
#include <charconv>

namespace gmdf::expr {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

} // namespace

std::vector<Token> lex(std::string_view src) {
    std::vector<Token> out;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto push = [&](TokKind k, std::size_t pos) { out.push_back({k, {}, 0, 0.0, pos}); };

    while (i < n) {
        char c = src[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        std::size_t start = i;
        if (ident_start(c)) {
            while (i < n && ident_char(src[i])) ++i;
            std::string word(src.substr(start, i - start));
            if (word == "true")
                push(TokKind::True, start);
            else if (word == "false")
                push(TokKind::False, start);
            else if (word == "and")
                push(TokKind::AndAnd, start);
            else if (word == "or")
                push(TokKind::OrOr, start);
            else if (word == "not")
                push(TokKind::Not, start);
            else
                out.push_back({TokKind::Ident, std::move(word), 0, 0.0, start});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            // Scan the longest numeric literal; decide int vs real by the
            // presence of '.' or an exponent.
            bool is_real = false;
            while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
            if (i < n && src[i] == '.') {
                is_real = true;
                ++i;
                while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
            }
            if (i < n && (src[i] == 'e' || src[i] == 'E')) {
                is_real = true;
                ++i;
                if (i < n && (src[i] == '+' || src[i] == '-')) ++i;
                if (i >= n || !std::isdigit(static_cast<unsigned char>(src[i])))
                    throw ExprError(i, "malformed exponent");
                while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
            }
            std::string_view lit = src.substr(start, i - start);
            Token t;
            t.pos = start;
            if (is_real) {
                t.kind = TokKind::Real;
                auto [p, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), t.real_val);
                if (ec != std::errc{} || p != lit.data() + lit.size())
                    throw ExprError(start, "bad real literal");
            } else {
                t.kind = TokKind::Int;
                auto [p, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), t.int_val);
                if (ec != std::errc{} || p != lit.data() + lit.size())
                    throw ExprError(start, "bad int literal");
            }
            out.push_back(std::move(t));
            continue;
        }
        auto two = [&](char second) { return i + 1 < n && src[i + 1] == second; };
        switch (c) {
        case '+': push(TokKind::Plus, start); ++i; break;
        case '-': push(TokKind::Minus, start); ++i; break;
        case '*': push(TokKind::Star, start); ++i; break;
        case '/': push(TokKind::Slash, start); ++i; break;
        case '%': push(TokKind::Percent, start); ++i; break;
        case '(': push(TokKind::LParen, start); ++i; break;
        case ')': push(TokKind::RParen, start); ++i; break;
        case ',': push(TokKind::Comma, start); ++i; break;
        case '?': push(TokKind::Question, start); ++i; break;
        case ':': push(TokKind::Colon, start); ++i; break;
        case '<':
            if (two('=')) { push(TokKind::Le, start); i += 2; }
            else { push(TokKind::Lt, start); ++i; }
            break;
        case '>':
            if (two('=')) { push(TokKind::Ge, start); i += 2; }
            else { push(TokKind::Gt, start); ++i; }
            break;
        case '=':
            if (two('=')) { push(TokKind::EqEq, start); i += 2; }
            else throw ExprError(start, "single '=' is not an operator (use '==')");
            break;
        case '!':
            if (two('=')) { push(TokKind::NotEq, start); i += 2; }
            else { push(TokKind::Not, start); ++i; }
            break;
        case '&':
            if (two('&')) { push(TokKind::AndAnd, start); i += 2; }
            else throw ExprError(start, "single '&' is not an operator (use '&&')");
            break;
        case '|':
            if (two('|')) { push(TokKind::OrOr, start); i += 2; }
            else throw ExprError(start, "single '|' is not an operator (use '||')");
            break;
        default:
            throw ExprError(start, std::string("unexpected character '") + c + "'");
        }
    }
    out.push_back({TokKind::End, {}, 0, 0.0, n});
    return out;
}

} // namespace gmdf::expr
