// Recursive-descent / precedence-climbing parser for the expression language.
#pragma once

#include <string_view>

#include "expr/ast.hpp"
#include "expr/lexer.hpp"

namespace gmdf::expr {

/// Parses a complete expression; throws ExprError on syntax errors or
/// trailing junk.
///
/// Grammar (lowest to highest precedence):
///   conditional := or ('?' conditional ':' conditional)?
///   or          := and ('||' and)*
///   and         := cmp ('&&' cmp)*
///   cmp         := add (('<'|'<='|'>'|'>='|'=='|'!=') add)?
///   add         := mul (('+'|'-') mul)*
///   mul         := unary (('*'|'/'|'%') unary)*
///   unary       := ('-'|'!') unary | primary
///   primary     := literal | ident | ident '(' args ')' | '(' conditional ')'
[[nodiscard]] ExprPtr parse(std::string_view src);

} // namespace gmdf::expr
