// Bytecode virtual machine for compiled GMDF expressions.
//
// expr::compile() (compile.hpp) lowers a parsed AST into a CompiledExpr:
// a flat instruction vector over a small operand stack, with variables
// resolved to integer slots at compile time and constants folded. The VM
// evaluates with zero per-eval allocation; hot-path errors are VmStatus
// result codes, never exceptions. expr::eval remains the reference
// tree-walk interpreter (cold paths, differential testing); the VM is
// semantics-preserving against it bit for bit, including error
// classification and short-circuit evaluation (an unknown variable only
// faults if the instruction is actually reached).
//
// Two execution tiers:
//  - run(span<VmValue>)  tagged values, full Int/Real/Bool semantics;
//  - run(span<double>)   all-Real slots; programs proven free of both-Int
//    arithmetic (numeric_fast_path()) execute on a raw double stack with
//    no tag dispatch at all — the innermost loop of every FB scan, SM
//    guard check, and breakpoint predicate sweep.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gmdf::expr {

/// VM opcodes. `a`/`b` operand meaning per op is documented inline.
enum class Op : std::uint8_t {
    PushConst, ///< push consts()[a]
    LoadSlot,  ///< push slots[a]
    Neg,       ///< arithmetic negation (Int stays Int)
    Not,       ///< logical not -> Bool
    Truthy,    ///< coerce top to Bool (And/Or result normalization)
    Add, Sub, Mul, Div, Mod,
    Lt, Le, Gt, Ge, Eq, Ne,
    Jump,      ///< pc = a
    BrFalse,   ///< pop; if !truthy pc = a
    BrTrue,    ///< pop; if truthy pc = a
    Call,      ///< builtin a over top b args (arity pre-checked)
    Fail,      ///< return status a (b = name index for diagnostics)
    Ret,       ///< return top of stack
};

/// Builtin function ids (operand `a` of Op::Call).
enum class Builtin : std::uint8_t {
    Min, Max, Abs, Clamp, Floor, Ceil, Sqrt, Sin, Cos, Exp, Log, Pow, Sign,
};

/// One registry entry; the single source of truth for builtin names and
/// arities, shared by the compiler, the VM, and expr::is_builtin.
struct BuiltinSpec {
    std::string_view name;
    Builtin id;
    int arity;
};

/// All builtins, in Builtin declaration order.
[[nodiscard]] std::span<const BuiltinSpec> builtins();

/// Registry lookup; nullptr when `name` is not a builtin.
[[nodiscard]] const BuiltinSpec* find_builtin(std::string_view name);

/// Hot-path result codes; mirrors the EvalError classes of the reference
/// interpreter (compile+run matches eval on classification, not just on
/// values).
enum class VmStatus : std::uint8_t {
    Ok,
    DivByZero,  ///< integer division/modulo by zero
    UnknownVar, ///< variable with no slot was reached
    BadCall,    ///< unknown function or wrong argument count was reached
    TypeError,  ///< slot span shorter than the program's slot count
};

[[nodiscard]] const char* to_string(VmStatus s);

/// Unboxed tagged value: the VM's working representation. Restricted to
/// the three kinds expression evaluation can produce.
struct VmValue {
    enum class Tag : std::uint8_t { Bool, Int, Real };

    Tag tag = Tag::Int;
    union {
        bool b;
        std::int64_t i;
        double d;
    };

    VmValue() : i(0) {}

    [[nodiscard]] static VmValue of_bool(bool v) {
        VmValue x; x.tag = Tag::Bool; x.b = v; return x;
    }
    [[nodiscard]] static VmValue of_int(std::int64_t v) {
        VmValue x; x.tag = Tag::Int; x.i = v; return x;
    }
    [[nodiscard]] static VmValue of_real(double v) {
        VmValue x; x.tag = Tag::Real; x.d = v; return x;
    }

    [[nodiscard]] bool is_bool() const { return tag == Tag::Bool; }
    [[nodiscard]] bool is_int() const { return tag == Tag::Int; }
    [[nodiscard]] bool is_real() const { return tag == Tag::Real; }

    /// Numeric coercion, matching meta::Value::as_number.
    [[nodiscard]] double as_number() const {
        switch (tag) {
        case Tag::Bool: return b ? 1.0 : 0.0;
        case Tag::Int: return static_cast<double>(i);
        case Tag::Real: return d;
        }
        return 0.0;
    }

    /// Truthiness, matching the reference interpreter.
    [[nodiscard]] bool truthy() const {
        switch (tag) {
        case Tag::Bool: return b;
        case Tag::Int: return i != 0;
        case Tag::Real: return d != 0.0;
        }
        return false;
    }
};

/// One fixed-size instruction.
struct Insn {
    Op op;
    std::int32_t a = 0;
    std::int32_t b = 0;
};

/// Single source of truth for operator semantics, shared by the VM's
/// tagged loop and the compiler's constant folder (so a folded constant
/// is bit-identical to the value the instruction would have produced).
namespace vmops {
/// Int op Int stays Int; Div/Mod by integer zero reports DivByZero
/// (and leaves `out` untouched).
VmStatus arith(Op op, const VmValue& a, const VmValue& b, VmValue& out);
/// Bool==Bool compares as bool; everything else numerically.
[[nodiscard]] VmValue compare(Op op, const VmValue& a, const VmValue& b);
/// Builtin over `argc` values at `args`; arity must already be correct.
[[nodiscard]] VmValue call_builtin(Builtin fn, const VmValue* args, int argc);
} // namespace vmops

/// A compiled, immutable expression program. Movable and copyable; safe
/// to evaluate concurrently from multiple threads (run() is const and
/// allocation-free for programs within the inline stack budget, which
/// compile() guarantees for any expression it accepts).
class CompiledExpr {
public:
    CompiledExpr() = default;

    /// Evaluates over tagged slot values (slot i = the variable the
    /// compiler resolved to i). Exact Int/Real/Bool semantics.
    VmStatus run(std::span<const VmValue> slots, VmValue& out) const;

    /// Evaluates with every slot holding Real(slots[i]); `out` receives
    /// the result coerced through as_number(). Dispatches to the unboxed
    /// double loop when numeric_fast_path() holds, else falls back to the
    /// tagged loop.
    VmStatus run(std::span<const double> slots, double& out) const;

    /// True when the program provably needs no Int/Real distinction for
    /// all-Real slots (no reachable both-Int arithmetic, no faults), so
    /// run(span<double>) executes on a raw double stack.
    [[nodiscard]] bool numeric_fast_path() const { return numeric_ok_; }

    /// True when constant folding reduced the whole program to one
    /// PushConst (evaluation cannot fault and ignores slots).
    [[nodiscard]] bool is_constant() const;

    /// Number of slots the program may read; run() requires at least
    /// this many.
    [[nodiscard]] std::size_t slot_count() const { return slot_count_; }

    [[nodiscard]] const std::vector<Insn>& code() const { return code_; }
    [[nodiscard]] const std::vector<VmValue>& consts() const { return consts_; }

    /// Human-readable listing, one instruction per line (tests, tracing).
    [[nodiscard]] std::string disassemble() const;

private:
    friend class Compiler;

    std::vector<Insn> code_;
    std::vector<VmValue> consts_;
    std::vector<double> consts_num_; ///< as_number() image of consts_
    std::vector<std::string> names_; ///< diagnostic names (Fail operand b)
    std::uint32_t max_stack_ = 0;
    std::uint32_t slot_count_ = 0;
    bool numeric_ok_ = false;
};

} // namespace gmdf::expr
