// Staged compilation of GMDF expressions to bytecode (expr::vm).
//
// compile() performs, once, all the work the tree-walk interpreter repays
// on every evaluation:
//  - variable references resolve to integer slots against a caller-
//    supplied slot table (pin indices for FB kernels and SM guards,
//    signal indices for breakpoint predicates) — the per-eval string
//    scan disappears;
//  - constant subexpressions fold, with exactly the interpreter's
//    semantics (a folding step that would fault, like 1/0, is left in
//    the program so the fault stays a runtime result code);
//  - short-circuit structure lowers to branches, so an unknown variable
//    or bad call only faults if its instruction is reached, exactly like
//    the interpreter;
//  - a type analysis marks programs that can run on the unboxed double
//    fast path (CompiledExpr::numeric_fast_path()).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "expr/ast.hpp"
#include "expr/vm.hpp"

namespace gmdf::expr {

/// Resolves a variable name to its slot index; any negative value means
/// "unknown" (the reference compiles to a trap that yields
/// VmStatus::UnknownVar only if actually executed).
using SlotResolver = std::function<int(std::string_view)>;

/// Lowers `e` to a CompiledExpr. Never throws for unknown variables or
/// functions (those become runtime traps, preserving interpreter
/// semantics under short-circuit evaluation).
[[nodiscard]] CompiledExpr compile(const Expr& e, const SlotResolver& slots);

/// Convenience: slot i = slot_names[i] (the pin-order contract of
/// ExprKernel and the SM kernel: input span index == slot index).
[[nodiscard]] CompiledExpr compile(const Expr& e, std::span<const std::string> slot_names);

/// Parse-and-compile convenience; throws ExprError on syntax errors.
[[nodiscard]] CompiledExpr compile(std::string_view src,
                                   std::span<const std::string> slot_names);

} // namespace gmdf::expr
