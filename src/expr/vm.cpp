#include "expr/vm.hpp"

#include <algorithm>
#include <cmath>

namespace gmdf::expr {

namespace {

/// Stack frames this deep live on the C stack; compile() keeps typical
/// expressions far below this, and deeper programs fall back to a heap
/// buffer (still correct, just off the fast path).
constexpr std::uint32_t kInlineStack = 64;

double numeric(const VmValue& v) { return v.as_number(); }

bool both_int(const VmValue& a, const VmValue& b) { return a.is_int() && b.is_int(); }

} // namespace

namespace vmops {

/// Tagged arithmetic, mirroring the reference interpreter: Int op Int
/// stays Int (C semantics), anything else promotes to Real.
VmStatus arith(Op op, const VmValue& a, const VmValue& b, VmValue& out) {
    if (both_int(a, b)) {
        std::int64_t x = a.i, y = b.i;
        switch (op) {
        case Op::Add: out = VmValue::of_int(x + y); return VmStatus::Ok;
        case Op::Sub: out = VmValue::of_int(x - y); return VmStatus::Ok;
        case Op::Mul: out = VmValue::of_int(x * y); return VmStatus::Ok;
        case Op::Div:
            if (y == 0) return VmStatus::DivByZero;
            out = VmValue::of_int(x / y);
            return VmStatus::Ok;
        case Op::Mod:
            if (y == 0) return VmStatus::DivByZero;
            out = VmValue::of_int(x % y);
            return VmStatus::Ok;
        default: break;
        }
    }
    double x = numeric(a), y = numeric(b);
    switch (op) {
    case Op::Add: out = VmValue::of_real(x + y); break;
    case Op::Sub: out = VmValue::of_real(x - y); break;
    case Op::Mul: out = VmValue::of_real(x * y); break;
    case Op::Div: out = VmValue::of_real(x / y); break; // IEEE real division
    case Op::Mod: out = VmValue::of_real(std::fmod(x, y)); break;
    default: return VmStatus::TypeError;
    }
    return VmStatus::Ok;
}

/// Tagged comparison: Bool equality compares as bool, everything else
/// numerically (exactly as the interpreter's compare()).
VmValue compare(Op op, const VmValue& a, const VmValue& b) {
    if (a.is_bool() && b.is_bool() && (op == Op::Eq || op == Op::Ne)) {
        bool eq = a.b == b.b;
        return VmValue::of_bool(op == Op::Eq ? eq : !eq);
    }
    double x = numeric(a), y = numeric(b);
    switch (op) {
    case Op::Lt: return VmValue::of_bool(x < y);
    case Op::Le: return VmValue::of_bool(x <= y);
    case Op::Gt: return VmValue::of_bool(x > y);
    case Op::Ge: return VmValue::of_bool(x >= y);
    case Op::Eq: return VmValue::of_bool(x == y);
    default: return VmValue::of_bool(x != y);
    }
}

/// Tagged builtin call over `argc` stack values ending at `args`;
/// arity is guaranteed by the compiler. Mirrors call_builtin().
VmValue call_builtin(Builtin fn, const VmValue* args, int argc) {
    (void)argc;
    auto num = [&](int i) { return numeric(args[i]); };
    switch (fn) {
    case Builtin::Min:
        if (both_int(args[0], args[1]))
            return VmValue::of_int(std::min(args[0].i, args[1].i));
        return VmValue::of_real(std::min(num(0), num(1)));
    case Builtin::Max:
        if (both_int(args[0], args[1]))
            return VmValue::of_int(std::max(args[0].i, args[1].i));
        return VmValue::of_real(std::max(num(0), num(1)));
    case Builtin::Abs:
        if (args[0].is_int())
            return VmValue::of_int(args[0].i < 0 ? -args[0].i : args[0].i);
        return VmValue::of_real(std::fabs(num(0)));
    case Builtin::Clamp:
        if (both_int(args[0], args[1]) && args[2].is_int())
            return VmValue::of_int(std::clamp(args[0].i, args[1].i, args[2].i));
        return VmValue::of_real(std::clamp(num(0), num(1), num(2)));
    case Builtin::Floor: return VmValue::of_real(std::floor(num(0)));
    case Builtin::Ceil: return VmValue::of_real(std::ceil(num(0)));
    case Builtin::Sqrt: return VmValue::of_real(std::sqrt(num(0)));
    case Builtin::Sin: return VmValue::of_real(std::sin(num(0)));
    case Builtin::Cos: return VmValue::of_real(std::cos(num(0)));
    case Builtin::Exp: return VmValue::of_real(std::exp(num(0)));
    case Builtin::Log: return VmValue::of_real(std::log(num(0)));
    case Builtin::Pow: return VmValue::of_real(std::pow(num(0), num(1)));
    case Builtin::Sign: {
        double v = num(0);
        return VmValue::of_int(v > 0 ? 1 : v < 0 ? -1 : 0);
    }
    }
    return VmValue::of_int(0);
}

} // namespace vmops

namespace {

using vmops::arith;
using vmops::call_builtin;
using vmops::compare;

/// Double-only builtin call: only taken on numeric-fast-path programs,
/// where the interpreter would take the real branch anyway (or where the
/// Int/Real distinction provably cannot alter the coerced result).
double call_builtin_num(Builtin fn, const double* args) {
    switch (fn) {
    case Builtin::Min: return std::min(args[0], args[1]);
    case Builtin::Max: return std::max(args[0], args[1]);
    case Builtin::Abs: return std::fabs(args[0]);
    case Builtin::Clamp: return std::clamp(args[0], args[1], args[2]);
    case Builtin::Floor: return std::floor(args[0]);
    case Builtin::Ceil: return std::ceil(args[0]);
    case Builtin::Sqrt: return std::sqrt(args[0]);
    case Builtin::Sin: return std::sin(args[0]);
    case Builtin::Cos: return std::cos(args[0]);
    case Builtin::Exp: return std::exp(args[0]);
    case Builtin::Log: return std::log(args[0]);
    case Builtin::Pow: return std::pow(args[0], args[1]);
    case Builtin::Sign: return args[0] > 0 ? 1.0 : args[0] < 0 ? -1.0 : 0.0;
    }
    return 0.0;
}

const char* op_name(Op op) {
    switch (op) {
    case Op::PushConst: return "push";
    case Op::LoadSlot: return "load";
    case Op::Neg: return "neg";
    case Op::Not: return "not";
    case Op::Truthy: return "truthy";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Mod: return "mod";
    case Op::Lt: return "lt";
    case Op::Le: return "le";
    case Op::Gt: return "gt";
    case Op::Ge: return "ge";
    case Op::Eq: return "eq";
    case Op::Ne: return "ne";
    case Op::Jump: return "jump";
    case Op::BrFalse: return "brfalse";
    case Op::BrTrue: return "brtrue";
    case Op::Call: return "call";
    case Op::Fail: return "fail";
    case Op::Ret: return "ret";
    }
    return "?";
}

} // namespace

namespace {

constexpr BuiltinSpec kBuiltins[] = {
    {"min", Builtin::Min, 2},     {"max", Builtin::Max, 2},
    {"abs", Builtin::Abs, 1},     {"clamp", Builtin::Clamp, 3},
    {"floor", Builtin::Floor, 1}, {"ceil", Builtin::Ceil, 1},
    {"sqrt", Builtin::Sqrt, 1},   {"sin", Builtin::Sin, 1},
    {"cos", Builtin::Cos, 1},     {"exp", Builtin::Exp, 1},
    {"log", Builtin::Log, 1},     {"pow", Builtin::Pow, 2},
    {"sign", Builtin::Sign, 1},
};

} // namespace

std::span<const BuiltinSpec> builtins() { return kBuiltins; }

const BuiltinSpec* find_builtin(std::string_view name) {
    for (const auto& b : kBuiltins)
        if (b.name == name) return &b;
    return nullptr;
}

const char* to_string(VmStatus s) {
    switch (s) {
    case VmStatus::Ok: return "ok";
    case VmStatus::DivByZero: return "integer division or modulo by zero";
    case VmStatus::UnknownVar: return "unknown variable";
    case VmStatus::BadCall: return "unknown function or bad argument count";
    case VmStatus::TypeError: return "type error";
    }
    return "?";
}

VmStatus CompiledExpr::run(std::span<const VmValue> slots, VmValue& out) const {
    if (slots.size() < slot_count_) return VmStatus::TypeError;
    VmValue inline_buf[kInlineStack];
    std::vector<VmValue> heap_buf;
    VmValue* st = inline_buf;
    if (max_stack_ > kInlineStack) {
        heap_buf.resize(max_stack_);
        st = heap_buf.data();
    }
    std::size_t sp = 0;
    const Insn* code = code_.data();
    const std::size_t n = code_.size();
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Insn& in = code[pc];
        switch (in.op) {
        case Op::PushConst: st[sp++] = consts_[static_cast<std::size_t>(in.a)]; break;
        case Op::LoadSlot: st[sp++] = slots[static_cast<std::size_t>(in.a)]; break;
        case Op::Neg: {
            VmValue& v = st[sp - 1];
            v = v.is_int() ? VmValue::of_int(-v.i) : VmValue::of_real(-numeric(v));
            break;
        }
        case Op::Not: st[sp - 1] = VmValue::of_bool(!st[sp - 1].truthy()); break;
        case Op::Truthy: st[sp - 1] = VmValue::of_bool(st[sp - 1].truthy()); break;
        case Op::Add: case Op::Sub: case Op::Mul: case Op::Div: case Op::Mod: {
            VmStatus s = arith(in.op, st[sp - 2], st[sp - 1], st[sp - 2]);
            if (s != VmStatus::Ok) return s;
            --sp;
            break;
        }
        case Op::Lt: case Op::Le: case Op::Gt: case Op::Ge: case Op::Eq: case Op::Ne:
            st[sp - 2] = compare(in.op, st[sp - 2], st[sp - 1]);
            --sp;
            break;
        case Op::Jump: pc = static_cast<std::size_t>(in.a) - 1; break;
        case Op::BrFalse:
            if (!st[--sp].truthy()) pc = static_cast<std::size_t>(in.a) - 1;
            break;
        case Op::BrTrue:
            if (st[--sp].truthy()) pc = static_cast<std::size_t>(in.a) - 1;
            break;
        case Op::Call: {
            int argc = in.b;
            sp -= static_cast<std::size_t>(argc);
            st[sp] = call_builtin(static_cast<Builtin>(in.a), st + sp, argc);
            ++sp;
            break;
        }
        case Op::Fail: return static_cast<VmStatus>(in.a);
        case Op::Ret: out = st[sp - 1]; return VmStatus::Ok;
        }
    }
    return VmStatus::TypeError; // fell off the end: malformed program
}

VmStatus CompiledExpr::run(std::span<const double> slots, double& out) const {
    if (slots.size() < slot_count_) return VmStatus::TypeError;
    if (!numeric_ok_) {
        // Tagged fallback: box the slots once, coerce the result.
        VmValue inline_slots[kInlineStack];
        std::vector<VmValue> heap_slots;
        VmValue* sv = inline_slots;
        if (slot_count_ > kInlineStack) {
            heap_slots.resize(slot_count_);
            sv = heap_slots.data();
        }
        for (std::size_t i = 0; i < slot_count_; ++i) sv[i] = VmValue::of_real(slots[i]);
        VmValue v;
        VmStatus s = run(std::span<const VmValue>(sv, slot_count_), v);
        if (s == VmStatus::Ok) out = v.as_number();
        return s;
    }

    // Unboxed double loop: no tags, no faults (the compiler proved both
    // impossible for this program).
    double inline_buf[kInlineStack];
    std::vector<double> heap_buf;
    double* st = inline_buf;
    if (max_stack_ > kInlineStack) {
        heap_buf.resize(max_stack_);
        st = heap_buf.data();
    }
    std::size_t sp = 0;
    const Insn* code = code_.data();
    const std::size_t n = code_.size();
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Insn& in = code[pc];
        switch (in.op) {
        case Op::PushConst: st[sp++] = consts_num_[static_cast<std::size_t>(in.a)]; break;
        case Op::LoadSlot: st[sp++] = slots[static_cast<std::size_t>(in.a)]; break;
        case Op::Neg: st[sp - 1] = -st[sp - 1]; break;
        case Op::Not: st[sp - 1] = st[sp - 1] != 0.0 ? 0.0 : 1.0; break;
        case Op::Truthy: st[sp - 1] = st[sp - 1] != 0.0 ? 1.0 : 0.0; break;
        case Op::Add: st[sp - 2] += st[sp - 1]; --sp; break;
        case Op::Sub: st[sp - 2] -= st[sp - 1]; --sp; break;
        case Op::Mul: st[sp - 2] *= st[sp - 1]; --sp; break;
        case Op::Div: st[sp - 2] /= st[sp - 1]; --sp; break;
        case Op::Mod: st[sp - 2] = std::fmod(st[sp - 2], st[sp - 1]); --sp; break;
        case Op::Lt: st[sp - 2] = st[sp - 2] < st[sp - 1] ? 1.0 : 0.0; --sp; break;
        case Op::Le: st[sp - 2] = st[sp - 2] <= st[sp - 1] ? 1.0 : 0.0; --sp; break;
        case Op::Gt: st[sp - 2] = st[sp - 2] > st[sp - 1] ? 1.0 : 0.0; --sp; break;
        case Op::Ge: st[sp - 2] = st[sp - 2] >= st[sp - 1] ? 1.0 : 0.0; --sp; break;
        case Op::Eq: st[sp - 2] = st[sp - 2] == st[sp - 1] ? 1.0 : 0.0; --sp; break;
        case Op::Ne: st[sp - 2] = st[sp - 2] != st[sp - 1] ? 1.0 : 0.0; --sp; break;
        case Op::Jump: pc = static_cast<std::size_t>(in.a) - 1; break;
        case Op::BrFalse:
            if (st[--sp] == 0.0) pc = static_cast<std::size_t>(in.a) - 1;
            break;
        case Op::BrTrue:
            if (st[--sp] != 0.0) pc = static_cast<std::size_t>(in.a) - 1;
            break;
        case Op::Call: {
            sp -= static_cast<std::size_t>(in.b);
            st[sp] = call_builtin_num(static_cast<Builtin>(in.a), st + sp);
            ++sp;
            break;
        }
        case Op::Fail: return static_cast<VmStatus>(in.a); // unreachable by construction
        case Op::Ret: out = st[sp - 1]; return VmStatus::Ok;
        }
    }
    return VmStatus::TypeError;
}

bool CompiledExpr::is_constant() const {
    return code_.size() == 2 && code_[0].op == Op::PushConst && code_[1].op == Op::Ret;
}

std::string CompiledExpr::disassemble() const {
    std::string out;
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
        const Insn& in = code_[pc];
        out += std::to_string(pc);
        out += ": ";
        out += op_name(in.op);
        switch (in.op) {
        case Op::PushConst: {
            const VmValue& c = consts_[static_cast<std::size_t>(in.a)];
            out += c.is_bool() ? (c.b ? " true" : " false")
                 : c.is_int() ? " " + std::to_string(c.i)
                              : " " + std::to_string(c.d);
            break;
        }
        case Op::LoadSlot:
            out += " #" + std::to_string(in.a);
            break;
        case Op::Jump: case Op::BrFalse: case Op::BrTrue:
            out += " @" + std::to_string(in.a);
            break;
        case Op::Call:
            out += " fn" + std::to_string(in.a) + "/" + std::to_string(in.b);
            break;
        case Op::Fail:
            out += std::string(" ") + to_string(static_cast<VmStatus>(in.a));
            if (static_cast<std::size_t>(in.b) < names_.size())
                out += " '" + names_[static_cast<std::size_t>(in.b)] + "'";
            break;
        default: break;
        }
        out += "\n";
    }
    return out;
}

} // namespace gmdf::expr
