// Tokenizer for the GMDF expression language.
//
// The language is used for basic function-block computations, state-machine
// guards/actions, and signal-predicate breakpoints in the debugger. It has
// bool/int/real values, arithmetic, comparisons, logical operators, a
// conditional operator, and a small builtin function library.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gmdf::expr {

enum class TokKind {
    End,
    Ident,      // variable or function name
    Int,        // 123
    Real,       // 1.5, 2e-3
    True,
    False,
    Plus, Minus, Star, Slash, Percent,
    Lt, Le, Gt, Ge, EqEq, NotEq,
    AndAnd, OrOr, Not,
    LParen, RParen, Comma,
    Question, Colon,
};

struct Token {
    TokKind kind = TokKind::End;
    std::string text;      // identifier spelling
    std::int64_t int_val = 0;
    double real_val = 0.0;
    std::size_t pos = 0;   // byte offset in the source, for diagnostics
};

/// Error thrown by the lexer/parser with a byte offset into the source.
class ExprError : public std::runtime_error {
public:
    ExprError(std::size_t pos, const std::string& message)
        : std::runtime_error("at offset " + std::to_string(pos) + ": " + message),
          pos_(pos) {}

    [[nodiscard]] std::size_t pos() const { return pos_; }

private:
    std::size_t pos_;
};

/// Tokenizes the full source; throws ExprError on an unexpected character.
[[nodiscard]] std::vector<Token> lex(std::string_view src);

} // namespace gmdf::expr
