// Abstract syntax tree for the GMDF expression language.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace gmdf::expr {

enum class BinOp {
    Add, Sub, Mul, Div, Mod,
    Lt, Le, Gt, Ge, Eq, Ne,
    And, Or,
};

enum class UnOp { Neg, Not };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct IntLit { std::int64_t value; };
struct RealLit { double value; };
struct BoolLit { bool value; };
struct VarRef { std::string name; };
struct Unary { UnOp op; ExprPtr operand; };
struct Binary { BinOp op; ExprPtr lhs; ExprPtr rhs; };
struct Conditional { ExprPtr cond; ExprPtr then_e; ExprPtr else_e; };
struct Call { std::string fn; std::vector<ExprPtr> args; };

/// One AST node. Nodes own their children; an Expr tree is immutable after
/// parsing and safe to share across threads for read-only evaluation.
struct Expr {
    std::variant<IntLit, RealLit, BoolLit, VarRef, Unary, Binary, Conditional, Call> node;
    std::size_t pos = 0; // source offset for diagnostics

    template <typename T>
    [[nodiscard]] bool is() const { return std::holds_alternative<T>(node); }
    template <typename T>
    [[nodiscard]] const T& as() const { return std::get<T>(node); }
};

/// Collects the variable names referenced by `e` (each name once, sorted).
[[nodiscard]] std::vector<std::string> free_variables(const Expr& e);

/// Renders the tree back to source-like text (parenthesized; used by the
/// C code emitter and by diagnostics).
[[nodiscard]] std::string to_string(const Expr& e);

} // namespace gmdf::expr
