// Evaluator for the GMDF expression language.
//
// Evaluation is dynamically typed over meta::Value restricted to
// Bool/Int/Real. Arithmetic on two Ints stays Int (C semantics, matching
// the generated code); any Real operand promotes the operation to Real.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "expr/ast.hpp"
#include "meta/value.hpp"

namespace gmdf::expr {

/// Resolves a variable name to its current value; empty result means the
/// variable is unknown (evaluation throws EvalError).
using VarLookup = std::function<meta::Value(std::string_view)>;

/// Error raised during evaluation (unknown variable/function, type error,
/// division by zero).
class EvalError : public std::runtime_error {
public:
    explicit EvalError(const std::string& message) : std::runtime_error(message) {}
};

/// Evaluates `e` against `vars`.
[[nodiscard]] meta::Value eval(const Expr& e, const VarLookup& vars);

/// Convenience overload over a name->value map.
[[nodiscard]] meta::Value eval(const Expr& e, const std::map<std::string, meta::Value>& vars);

/// Evaluates and coerces to bool; Int/Real are truthy when non-zero.
[[nodiscard]] bool eval_bool(const Expr& e, const VarLookup& vars);

/// Names of the builtin functions (min, max, abs, clamp, floor, ceil,
/// sqrt, sin, cos, exp, log, pow, sign). Used by the type checker and the
/// C code emitter.
[[nodiscard]] bool is_builtin(std::string_view fn);

} // namespace gmdf::expr
