#include "replay/snapshot.hpp"

#include "core/session.hpp"
#include "rt/state.hpp"
#include "rt/target.hpp"

namespace gmdf::replay {

Snapshot capture_snapshot(rt::Target& target, core::DebugSession& session) {
    rt::StateWriter w;
    w.u32(Snapshot::kMagic);
    w.u16(Snapshot::kVersion);
    w.i64(target.sim().now());
    try {
        target.save_state(w);
    } catch (const std::runtime_error& e) {
        throw SnapshotError(e.what());
    }
    session.engine().save_state(w);
    const auto& transports = session.transports();
    w.size(transports.size());
    for (const auto& t : transports) {
        link::TransportStats s = t->stats();
        w.u64(s.commands);
        w.u64(s.corrupt_frames);
        w.u64(s.junk_bytes);
        w.u64(s.polls);
        w.u64(s.watch_events);
    }

    Snapshot snap;
    snap.time = target.sim().now();
    snap.bytes = w.take();
    return snap;
}

void restore_snapshot(const Snapshot& snap, rt::Target& target,
                      core::DebugSession& session) {
    rt::StateReader r(snap.bytes);
    try {
        if (r.u32() != Snapshot::kMagic)
            throw SnapshotError("not a gmdf snapshot");
        if (std::uint16_t v = r.u16(); v != Snapshot::kVersion)
            throw SnapshotError("snapshot version " + std::to_string(v) +
                                " is not supported (expected " +
                                std::to_string(Snapshot::kVersion) + ")");
        (void)r.i64(); // capture time; authoritative copy lives in snap.time
        target.load_state(r);
        session.engine().load_state(r);
        std::size_t n = r.size();
        const auto& transports = session.transports();
        if (n != transports.size())
            throw SnapshotError("snapshot transport count does not match");
        for (const auto& t : transports) {
            link::TransportStats s;
            s.commands = r.u64();
            s.corrupt_frames = r.u64();
            s.junk_bytes = r.u64();
            s.polls = r.u64();
            s.watch_events = r.u64();
            t->restore_stats(s);
        }
        if (!r.at_end()) throw SnapshotError("snapshot has trailing bytes");
    } catch (const SnapshotError&) {
        throw;
    } catch (const std::runtime_error& e) {
        throw SnapshotError(e.what());
    }
}

} // namespace gmdf::replay
