// CheckpointStore: a byte-budgeted ring of session snapshots.
//
// The timeline takes automatic snapshots on a sim-time cadence; this
// store bounds their memory. When the budget is exceeded the oldest
// checkpoints are evicted (shrinking how far back rewind can reach —
// the reachable window is reported in rewind's out-of-range error), but
// the newest checkpoint always survives so rewind never loses its
// anchor entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "replay/snapshot.hpp"

namespace gmdf::replay {

/// One stored checkpoint: the snapshot plus the journal position at
/// capture (where catch-up re-execution resumes reading control ops).
struct Checkpoint {
    Snapshot snap;
    std::size_t journal_index = 0;
};

class CheckpointStore {
public:
    struct Stats {
        std::size_t count = 0;        ///< checkpoints currently held
        std::size_t bytes = 0;        ///< total snapshot bytes held
        std::size_t byte_limit = 0;   ///< configured budget
        std::uint64_t captures = 0;   ///< checkpoints ever added
        std::uint64_t evictions = 0;  ///< oldest-out evictions so far
    };

    /// Byte budget; the oldest checkpoints are evicted past it, keeping
    /// at least one. Defaults to 64 MiB.
    void set_byte_limit(std::size_t limit) {
        byte_limit_ = limit;
        enforce();
    }
    [[nodiscard]] std::size_t byte_limit() const { return byte_limit_; }

    /// Appends a checkpoint (times must be non-decreasing) and evicts
    /// the oldest entries past the byte budget.
    void add(Checkpoint cp);

    /// The latest checkpoint with time <= t; null when none qualifies.
    [[nodiscard]] const Checkpoint* nearest_at_or_before(rt::SimTime t) const;

    /// Drops checkpoints after time `t` (rewind discards the future they
    /// describe).
    void drop_after(rt::SimTime t);

    /// Drops checkpoints whose catch-up anchor predates `journal_index`
    /// (the timeline's journal ring evicted the entries they replay
    /// from, so restoring them could no longer catch up faithfully).
    void drop_before_journal_index(std::size_t journal_index) {
        while (!ring_.empty() && ring_.front().journal_index < journal_index) {
            total_bytes_ -= ring_.front().snap.size_bytes();
            ring_.pop_front();
            ++evictions_;
        }
    }

    [[nodiscard]] std::optional<rt::SimTime> earliest_time() const {
        if (ring_.empty()) return std::nullopt;
        return ring_.front().snap.time;
    }
    [[nodiscard]] std::optional<rt::SimTime> latest_time() const {
        if (ring_.empty()) return std::nullopt;
        return ring_.back().snap.time;
    }

    [[nodiscard]] const std::deque<Checkpoint>& entries() const { return ring_; }
    [[nodiscard]] Stats stats() const {
        return {ring_.size(), total_bytes_, byte_limit_, captures_, evictions_};
    }

    void clear() {
        ring_.clear();
        total_bytes_ = 0;
    }

private:
    void enforce();

    std::deque<Checkpoint> ring_;
    std::size_t byte_limit_ = 64u << 20;
    std::size_t total_bytes_ = 0;
    std::uint64_t captures_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace gmdf::replay
