// Snapshot: one restorable image of a deterministic debug session.
//
// Captures the full deterministic state of a simulated target and the
// engine observing it — DES clock/queue (periodic events by stable id,
// one-shot work as typed pending ops), node RAM and signal replicas,
// task scheduler state and statistics, function-block internal state,
// the engine's model-level mirrors and breakpoints, and the transport
// counters — as one version-tagged compact binary buffer.
//
// Restore is in-place onto the same live target/session pair: the
// closures still alive in the simulator are re-timed, everything else is
// data. That is what lets replay::Timeline rewind a session and
// re-execute forward byte-identically.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "rt/des.hpp"

namespace gmdf::core {
class DebugSession;
} // namespace gmdf::core

namespace gmdf::rt {
class Target;
} // namespace gmdf::rt

namespace gmdf::replay {

/// Thrown when a snapshot cannot be taken (unrestorable one-shot events
/// in flight) or restored (version mismatch, layout mismatch,
/// truncation).
class SnapshotError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct Snapshot {
    static constexpr std::uint32_t kMagic = 0x53444D47; ///< "GMDS" (LE)
    static constexpr std::uint16_t kVersion = 1;

    rt::SimTime time = 0;                ///< sim time at capture
    std::vector<std::uint8_t> bytes;     ///< versioned binary image

    [[nodiscard]] std::size_t size_bytes() const { return bytes.size(); }
};

/// Captures target + engine + transport-counter state. Throws
/// SnapshotError when the platform holds state a snapshot cannot carry.
[[nodiscard]] Snapshot capture_snapshot(rt::Target& target,
                                        core::DebugSession& session);

/// In-place restore of a snapshot taken from this same target/session
/// pair. No observer callbacks fire. Throws SnapshotError on a snapshot
/// that does not match this session's layout or version.
void restore_snapshot(const Snapshot& snap, rt::Target& target,
                      core::DebugSession& session);

} // namespace gmdf::replay
