// Timeline: time-travel navigation over one deterministic debug session.
//
// Combines three records to make any past sim-time reachable:
//   - the CheckpointStore's periodic snapshots (anchor states),
//   - a control journal of everything that influenced execution after
//     each checkpoint (run segments, pause/resume/step, breakpoint
//     add/remove — noted by the protocol controller), and
//   - the session's TraceRecorder (the observed command history, used
//     for step-back targeting, scene rebuild, and bisect comparison).
//
// rewind(t): restore the nearest checkpoint <= t, then deterministically
// re-execute forward to t with the engine in replay mode (observers
// suppressed, so the trace / divergence log / protocol events don't
// double-report), truncate the abandoned future (trace, divergences,
// journal, later checkpoints), and rebuild the scene from the surviving
// trace. After a rewind, running forward reproduces the original
// execution byte-identically — the whole platform is deterministic and
// every execution-affecting input is restored or replayed.
//
// bisect(): binary-searches the recorded steps for the first one whose
// re-execution from the earliest checkpoint disagrees with the recorded
// trace or trips the divergence checker — the fault-localization loop
// (find the first step where target behaviour left the design model)
// as one verb.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/observer.hpp"
#include "replay/checkpoint.hpp"

namespace gmdf::core {
class DebugSession;
} // namespace gmdf::core

namespace gmdf::replay {

/// One recorded execution-affecting control action.
struct ControlOp {
    enum class Kind : std::uint8_t {
        Pause,
        Resume,
        Step,
        StepFilter,
        BreakAdd,
        BreakRemove,
    };
    Kind kind = Kind::Pause;
    std::string actor;    ///< StepFilter
    int handle = 0;       ///< BreakAdd / BreakRemove
    core::Breakpoint bp;  ///< BreakAdd
};

/// One journal record: either a run segment (target advanced to
/// `run_to`) or a control action applied at sim time `at`.
struct JournalEntry {
    rt::SimTime at = 0;
    bool is_run = false;
    rt::SimTime run_to = 0;
    ControlOp op;
};

/// Why a navigation request was refused. `earliest`/`latest` carry the
/// reachable window for OutOfRange (in ns; -1 when there is none).
struct NavError {
    enum class Kind {
        NotDeterministic, ///< a transport cannot promise replay fidelity
        NoCheckpoint,     ///< nothing to restore from
        OutOfRange,       ///< target time outside the reachable window
        EmptyTrace,       ///< step-back/bisect with no recorded events
    };
    Kind kind = Kind::OutOfRange;
    std::string detail;
    rt::SimTime earliest = -1;
    rt::SimTime latest = -1;
};

/// Outcome of bisect().
struct BisectResult {
    bool found = false;
    std::size_t step = 0;      ///< trace index of the first bad step
    rt::SimTime t = 0;         ///< its simulated time
    std::string command;       ///< the culprit command, formatted
    std::string reason;        ///< divergence message / mismatch description
    std::size_t steps_searched = 0;
    std::size_t probes = 0;    ///< checkpoint-restore re-executions used
    std::string error;         ///< non-empty: bisect refused, and why
};

class Timeline {
public:
    /// Both references must outlive the timeline; `session` must be
    /// attached to `target` (its engine is the target's command sink).
    Timeline(rt::Target& target, core::DebugSession& session);

    // ---- configuration -----------------------------------------------------

    /// Automatic checkpoint cadence in sim time; 0 disables. Enabling
    /// schedules the next capture immediately (a baseline lands at the
    /// start of the next advance).
    void set_auto_period(rt::SimTime period);
    [[nodiscard]] rt::SimTime auto_period() const { return auto_period_; }

    void set_byte_limit(std::size_t limit) { store_.set_byte_limit(limit); }

    [[nodiscard]] const CheckpointStore& store() const { return store_; }

    // ---- capture -----------------------------------------------------------

    /// Takes a checkpoint now. Null on refusal with the reason in
    /// `error` (non-deterministic transports, unrestorable state).
    const Checkpoint* capture_now(std::string* error = nullptr);

    /// Cadence capture: takes a checkpoint when the auto period elapsed.
    /// Safe to call from any pump loop; no-op when auto is off, a
    /// capture is not due yet, or a replay is in progress.
    void maybe_capture();

    /// Run-hook implementation: advances the target by `duration`,
    /// sliced at cadence points so automatic checkpoints land exactly on
    /// the configured grid, and journals the run segment.
    void advance(rt::SimTime duration);

    // ---- journal (called by the protocol controller) -----------------------

    void note_pause();
    void note_resume();
    void note_step();
    void note_step_filter(const std::string& actor);
    void note_break_add(int handle, const core::Breakpoint& bp);
    void note_break_remove(int handle);

    [[nodiscard]] std::size_t journal_size() const { return journal_.size(); }

    /// Journal ring capacity in entries; 0 records unbounded. Like the
    /// trace ring, the oldest entries are evicted past it — checkpoints
    /// whose catch-up window they anchored are dropped with them, which
    /// shrinks how far back rewind can reach (never its correctness).
    void set_journal_capacity(std::size_t capacity);
    [[nodiscard]] std::size_t journal_capacity() const { return journal_capacity_; }

    /// Journal entries evicted because the ring was full.
    [[nodiscard]] std::uint64_t journal_dropped() const { return journal_dropped_; }

    // ---- navigation --------------------------------------------------------

    /// Rewinds the session to sim time `t`. Returns the refusal, or
    /// nullopt on success.
    std::optional<NavError> rewind_to(rt::SimTime t);

    /// Rewinds to just before the n-th most recent recorded event.
    std::optional<NavError> step_back(std::size_t n);

    [[nodiscard]] BisectResult bisect();

    [[nodiscard]] std::uint64_t rewinds() const { return rewinds_; }

    /// The session clock (convenience for protocol responses).
    [[nodiscard]] rt::SimTime now() const;

private:
    struct ReplayStop {
        std::size_t next_entry = 0; ///< first journal entry not fully applied
        bool partial_run = false;   ///< that entry is a run clamped at t
    };

    /// Journals any time advance that happened outside advance() (hub
    /// scheduler pumps, direct target runs).
    void sync_journal();
    void note_control(ControlOp op);
    /// Appends under the ring capacity: evicts the oldest entry (and any
    /// checkpoint stranded before the new window) when full.
    void append_journal(JournalEntry e);
    [[nodiscard]] bool transports_replay_safe(std::string* who) const;
    NavError out_of_range(std::string detail) const;

    /// Restores `cp` and re-executes forward to `t` in replay mode,
    /// re-applying journaled control actions; `extra` (may be null) is
    /// registered as a replay-aware observer for the duration.
    ReplayStop replay_span(const Checkpoint& cp, rt::SimTime t,
                           core::EngineObserver* extra);
    void apply_control(const ControlOp& op);
    void rebuild_scene();

    rt::Target* target_;
    core::DebugSession* session_;
    CheckpointStore store_;
    /// Journal ring. Checkpoint.journal_index stays an *absolute* index
    /// (entries ever appended); journal_base_ is the absolute index of
    /// journal_.front(), so eviction never invalidates stored indices.
    std::deque<JournalEntry> journal_;
    std::size_t journal_base_ = 0;
    std::size_t journal_capacity_ = 65536;
    std::uint64_t journal_dropped_ = 0;
    rt::SimTime journal_time_ = 0;
    rt::SimTime auto_period_ = 0;
    rt::SimTime next_capture_ = 0;
    bool replaying_ = false;
    std::uint64_t rewinds_ = 0;
};

} // namespace gmdf::replay
