#include "replay/animate.hpp"

#include "core/engine.hpp"

namespace gmdf::replay {

void animate_trace(const meta::Model& design,
                   const core::CommandBindingTable& bindings,
                   const std::deque<core::TraceEvent>& events,
                   core::SceneAnimator& animator,
                   const std::function<void(std::size_t)>& on_event) {
    core::DebuggerEngine engine(design);
    engine.set_bindings(bindings);
    engine.add_observer(&animator);
    animator.reset_clock();
    std::size_t i = 0;
    for (const core::TraceEvent& ev : events) {
        engine.ingest(ev.cmd, ev.t);
        ++i;
        if (on_event) on_event(i);
    }
}

} // namespace gmdf::replay
