// Trace re-animation: one shared implementation of "drive a recorded
// command stream through a fresh engine into a scene animator".
//
// Used by DebugSession::replay_frames (the `replay` verb), by
// replay::Timeline to rebuild the session scene after a rewind, and by
// the C3 replay-throughput bench — previously each re-implemented the
// same loop.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>

#include "core/animator.hpp"
#include "core/bindings.hpp"
#include "core/trace.hpp"
#include "meta/model.hpp"

namespace gmdf::replay {

/// Re-animates `events` in order through a temporary engine configured
/// with `bindings`, with `animator` as the only observer; `on_event` (if
/// set) runs after each event — index is the 1-based count so callers
/// can stride frames. The animator's decay clock is reset first, so the
/// first event does not decay against a stale timestamp.
void animate_trace(const meta::Model& design,
                   const core::CommandBindingTable& bindings,
                   const std::deque<core::TraceEvent>& events,
                   core::SceneAnimator& animator,
                   const std::function<void(std::size_t)>& on_event = {});

} // namespace gmdf::replay
