// TraceComparator: the replay-aware differential observer.
//
// Compares a command stream against a recorded trace and watches for
// divergences. Two consumers share it: Timeline::bisect attaches one to
// the engine while re-executing a span (the re-executed stream vs the
// session's own recorded past), and campaign runs feed one twin's
// recorded trace through it against the other twin's (faulted vs clean
// differential check). Once the first disagreement (of either kind) is
// found, later events are ignored — both consumers only need the
// earliest bad step.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "core/observer.hpp"
#include "core/trace.hpp"

namespace gmdf::replay {

class TraceComparator final : public core::EngineObserver {
public:
    /// Compares against `expected` starting at index `start`; the deque
    /// must outlive the comparator.
    TraceComparator(const std::deque<core::TraceEvent>& expected, std::size_t start)
        : expected_(&expected), idx_(start) {}

    [[nodiscard]] bool replay_aware() const override { return true; }

    void on_command(const link::Command& cmd, rt::SimTime t) override;
    void on_divergence(const core::Divergence& d) override;

    /// Earliest bad step across both legs; nullopt when the compared
    /// stream was a faithful, divergence-free match so far.
    [[nodiscard]] std::optional<std::size_t> first_bad() const {
        if (mismatch_.has_value() && div_step_.has_value())
            return std::min(*mismatch_, *div_step_);
        return mismatch_.has_value() ? mismatch_ : div_step_;
    }

    /// Human-readable account of the disagreement at `step`.
    [[nodiscard]] std::string reason(std::size_t step) const;

    /// Index of the next expected event (how far the match got).
    [[nodiscard]] std::size_t matched_through() const { return idx_; }

private:
    const std::deque<core::TraceEvent>* expected_;
    std::size_t idx_;
    std::optional<std::size_t> mismatch_;
    std::string got_;
    std::optional<std::size_t> div_step_;
    std::string div_msg_;
};

/// Offline differential check: feeds `observed` through a TraceComparator
/// against `expected` and reports the first differing step — a length
/// mismatch after a clean prefix counts as a difference at the shorter
/// stream's end. nullopt when the traces agree event-for-event.
struct TraceDifference {
    std::size_t step = 0;  ///< index into `expected` of the first disagreement
    rt::SimTime t = 0;     ///< its simulated time (of whichever stream has it)
    std::string reason;
};
[[nodiscard]] std::optional<TraceDifference> first_trace_difference(
    const std::deque<core::TraceEvent>& expected,
    const std::deque<core::TraceEvent>& observed);

} // namespace gmdf::replay
