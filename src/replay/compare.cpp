#include "replay/compare.hpp"

namespace gmdf::replay {

void TraceComparator::on_command(const link::Command& cmd, rt::SimTime t) {
    if (mismatch_.has_value()) return;
    if (idx_ >= expected_->size() || (*expected_)[idx_].t != t ||
        !((*expected_)[idx_].cmd == cmd)) {
        mismatch_ = idx_;
        got_ = "@" + std::to_string(t) + "ns " + cmd.to_string();
        return;
    }
    ++idx_;
}

void TraceComparator::on_divergence(const core::Divergence& d) {
    if (div_step_.has_value()) return;
    // on_command for the triggering command ran first, so the
    // culprit is the event just consumed.
    div_step_ = idx_ > 0 ? idx_ - 1 : 0;
    div_msg_ = d.message;
}

std::string TraceComparator::reason(std::size_t step) const {
    if (div_step_.has_value() && *div_step_ == step) return div_msg_;
    if (step >= expected_->size())
        return "re-execution produced " + got_ +
               " beyond the end of the recorded trace";
    return "re-execution produced " + got_ + " where the recorded trace has " +
           "@" + std::to_string((*expected_)[step].t) + "ns " +
           (*expected_)[step].cmd.to_string();
}

std::optional<TraceDifference> first_trace_difference(
    const std::deque<core::TraceEvent>& expected,
    const std::deque<core::TraceEvent>& observed) {
    TraceComparator comp(expected, 0);
    for (const core::TraceEvent& ev : observed) {
        comp.on_command(ev.cmd, ev.t);
        if (comp.first_bad().has_value()) break;
    }
    if (auto bad = comp.first_bad(); bad.has_value()) {
        rt::SimTime t = *bad < expected.size() ? expected[*bad].t
                                               : observed[comp.matched_through()].t;
        std::string why = comp.reason(*bad);
        // The comparator speaks bisect's dialect; reword for twin streams.
        std::size_t pos = why.find("re-execution produced");
        if (pos != std::string::npos)
            why.replace(pos, std::string("re-execution produced").size(),
                        "observed stream has");
        return TraceDifference{*bad, t, std::move(why)};
    }
    if (observed.size() < expected.size())
        return TraceDifference{observed.size(), expected[observed.size()].t,
                               "observed stream ends " +
                                   std::to_string(expected.size() - observed.size()) +
                                   " event(s) before the expected stream"};
    return std::nullopt;
}

} // namespace gmdf::replay
