#include "replay/checkpoint.hpp"

namespace gmdf::replay {

void CheckpointStore::add(Checkpoint cp) {
    total_bytes_ += cp.snap.size_bytes();
    ring_.push_back(std::move(cp));
    ++captures_;
    enforce();
}

void CheckpointStore::enforce() {
    while (ring_.size() > 1 && total_bytes_ > byte_limit_) {
        total_bytes_ -= ring_.front().snap.size_bytes();
        ring_.pop_front();
        ++evictions_;
    }
}

const Checkpoint* CheckpointStore::nearest_at_or_before(rt::SimTime t) const {
    const Checkpoint* best = nullptr;
    for (const Checkpoint& cp : ring_) {
        if (cp.snap.time > t) break;
        best = &cp;
    }
    return best;
}

void CheckpointStore::drop_after(rt::SimTime t) {
    while (!ring_.empty() && ring_.back().snap.time > t) {
        total_bytes_ -= ring_.back().snap.size_bytes();
        ring_.pop_back();
    }
}

} // namespace gmdf::replay
