#include "replay/timeline.hpp"

#include <algorithm>
#include <chrono>
#include <type_traits>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replay/animate.hpp"
#include "replay/compare.hpp"
#include "rt/target.hpp"

namespace gmdf::replay {

namespace {

/// Checkpoint capture/restore wall-clock timings, shared across every
/// timeline in the process. Touched from the Timeline ctor so a fresh
/// hub's /metrics catalog lists them before the first checkpoint.
struct ReplayMetrics {
    obs::Histogram* capture_ns;
    obs::Histogram* restore_ns;
};

const ReplayMetrics& replay_metrics() {
    static const ReplayMetrics metrics{&obs::registry().histogram("replay.capture_ns"),
                                       &obs::registry().histogram("replay.restore_ns")};
    return metrics;
}

/// Times one capture_snapshot/restore_snapshot call into `hist` (and a
/// tracer span); cost with metrics off is one relaxed load.
template <typename Fn>
auto timed_snapshot_op(obs::Histogram* hist, const char* span_name, Fn&& fn) {
    const bool timed = obs::metrics_enabled();
    const auto begin = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
    obs::Span span("replay", span_name);
    if constexpr (std::is_void_v<decltype(fn())>) {
        fn();
        if (timed)
            hist->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - begin)
                    .count()));
    } else {
        auto result = fn();
        if (timed)
            hist->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - begin)
                    .count()));
        return result;
    }
}

} // namespace

Timeline::Timeline(rt::Target& target, core::DebugSession& session)
    : target_(&target), session_(&session) {
    (void)replay_metrics();
}

rt::SimTime Timeline::now() const { return target_->sim().now(); }

void Timeline::set_auto_period(rt::SimTime period) {
    auto_period_ = period < 0 ? 0 : period;
    if (auto_period_ > 0) next_capture_ = target_->sim().now();
}

const Checkpoint* Timeline::capture_now(std::string* error) {
    sync_journal();
    std::string who;
    if (!transports_replay_safe(&who)) {
        if (error != nullptr)
            *error = "transport '" + who + "' is not deterministic-replay capable";
        return nullptr;
    }
    try {
        Checkpoint cp;
        cp.snap = timed_snapshot_op(replay_metrics().capture_ns, "capture",
                                    [&] { return capture_snapshot(*target_, *session_); });
        cp.journal_index = journal_base_ + journal_.size();
        // A trailing run entry is still open — sync_journal extends it in
        // place as time advances past this capture — so catch-up must
        // start AT it; replay clamps its span to [cp.time, t].
        if (!journal_.empty() && journal_.back().is_run)
            cp.journal_index -= 1;
        store_.add(std::move(cp));
        return &store_.entries().back();
    } catch (const std::runtime_error& e) {
        if (error != nullptr) *error = e.what();
        return nullptr;
    }
}

void Timeline::maybe_capture() {
    if (auto_period_ <= 0 || replaying_) return;
    rt::SimTime now = target_->sim().now();
    if (now < next_capture_) return;
    capture_now(nullptr);
    next_capture_ = (now / auto_period_ + 1) * auto_period_;
}

void Timeline::advance(rt::SimTime duration) {
    rt::SimTime horizon = target_->sim().now() + duration;
    if (auto_period_ > 0) {
        maybe_capture(); // baseline (or overdue cadence point) at start
        while (target_->sim().now() < horizon) {
            rt::SimTime next = std::min(horizon, next_capture_);
            rt::SimTime now = target_->sim().now();
            target_->run_for(std::max<rt::SimTime>(next - now, 0));
            maybe_capture();
        }
    } else {
        target_->run_for(duration);
    }
    sync_journal();
}

void Timeline::set_journal_capacity(std::size_t capacity) {
    journal_capacity_ = capacity;
    while (journal_capacity_ != 0 && journal_.size() > journal_capacity_) {
        journal_.pop_front();
        ++journal_base_;
        ++journal_dropped_;
    }
    store_.drop_before_journal_index(journal_base_);
}

void Timeline::append_journal(JournalEntry e) {
    if (journal_capacity_ != 0 && journal_.size() >= journal_capacity_) {
        journal_.pop_front();
        ++journal_base_;
        ++journal_dropped_;
        // Checkpoints anchored before the surviving window can no longer
        // catch up — rewind past them now refuses with its usual
        // out-of-range/no-checkpoint error instead of replaying wrong.
        store_.drop_before_journal_index(journal_base_);
    }
    journal_.push_back(std::move(e));
}

void Timeline::sync_journal() {
    rt::SimTime now = target_->sim().now();
    if (now <= journal_time_) return;
    if (!journal_.empty() && journal_.back().is_run) {
        journal_.back().run_to = now;
    } else {
        JournalEntry e;
        e.at = journal_time_;
        e.is_run = true;
        e.run_to = now;
        append_journal(std::move(e));
    }
    journal_time_ = now;
}

void Timeline::note_control(ControlOp op) {
    sync_journal();
    JournalEntry e;
    e.at = target_->sim().now();
    e.op = std::move(op);
    append_journal(std::move(e));
}

void Timeline::note_pause() { note_control({ControlOp::Kind::Pause, {}, 0, {}}); }
void Timeline::note_resume() { note_control({ControlOp::Kind::Resume, {}, 0, {}}); }
void Timeline::note_step() { note_control({ControlOp::Kind::Step, {}, 0, {}}); }

void Timeline::note_step_filter(const std::string& actor) {
    note_control({ControlOp::Kind::StepFilter, actor, 0, {}});
}

void Timeline::note_break_add(int handle, const core::Breakpoint& bp) {
    note_control({ControlOp::Kind::BreakAdd, {}, handle, bp});
}

void Timeline::note_break_remove(int handle) {
    note_control({ControlOp::Kind::BreakRemove, {}, handle, {}});
}

bool Timeline::transports_replay_safe(std::string* who) const {
    for (const auto& t : session_->transports()) {
        if (!t->replay_safe()) {
            if (who != nullptr) *who = t->name();
            return false;
        }
    }
    return true;
}

NavError Timeline::out_of_range(std::string detail) const {
    NavError err;
    err.kind = store_.entries().empty() ? NavError::Kind::NoCheckpoint
                                        : NavError::Kind::OutOfRange;
    err.detail = std::move(detail);
    if (auto t = store_.earliest_time(); t.has_value()) err.earliest = *t;
    err.latest = target_->sim().now();
    return err;
}

void Timeline::apply_control(const ControlOp& op) {
    core::DebuggerEngine& engine = session_->engine();
    switch (op.kind) {
    case ControlOp::Kind::Pause: engine.pause(); break;
    case ControlOp::Kind::Resume: engine.resume(); break;
    case ControlOp::Kind::Step: engine.step(); break;
    case ControlOp::Kind::StepFilter: engine.set_step_filter({op.actor}); break;
    case ControlOp::Kind::BreakAdd: engine.restore_breakpoint(op.handle, op.bp); break;
    case ControlOp::Kind::BreakRemove: engine.remove_breakpoint(op.handle); break;
    }
}

Timeline::ReplayStop Timeline::replay_span(const Checkpoint& cp, rt::SimTime t,
                                           core::EngineObserver* extra) {
    core::DebuggerEngine& engine = session_->engine();
    // Exception-safe replay scope: restore/load paths can throw, and the
    // dispatcher surfaces that as an internal error — the engine must
    // never be left stuck in replay mode with a dangling observer.
    struct ReplayScope {
        Timeline* tl;
        core::DebuggerEngine* engine;
        core::EngineObserver* extra;
        ~ReplayScope() {
            if (extra != nullptr) engine->remove_observer(extra);
            engine->set_replay_mode(false);
            tl->replaying_ = false;
        }
    } scope{this, &engine, extra};
    replaying_ = true;
    engine.set_replay_mode(true);
    if (extra != nullptr) engine.add_observer(extra);

    timed_snapshot_op(replay_metrics().restore_ns, "restore",
                      [&] { restore_snapshot(cp.snap, *target_, *session_); });
    // journal_index is absolute; the ring holds [journal_base_, base +
    // size). Checkpoints stranded below the window are dropped at
    // eviction time, so the start is always inside it.
    std::size_t i = cp.journal_index;
    rt::SimTime cur = cp.snap.time;
    bool partial = false;
    while (i - journal_base_ < journal_.size()) {
        const JournalEntry& e = journal_[i - journal_base_];
        if (e.is_run) {
            rt::SimTime to = std::min(e.run_to, t);
            if (to > cur) {
                target_->run_for(to - cur);
                cur = to;
            }
            if (e.run_to > t) {
                partial = true;
                break;
            }
            ++i;
        } else {
            // Controls stamped exactly at t belong to time t (trace
            // events at t are retained, so the journal boundary must
            // match); anything later is the discarded future.
            if (e.at > t) break;
            apply_control(e.op);
            ++i;
        }
    }
    // Paranoia: the journal always covers [0, now] via sync_journal, but
    // never leave the clock short of the requested instant.
    if (cur < t) target_->run_for(t - cur);

    return {i, partial};
}

void Timeline::rebuild_scene() {
    session_->reset_scene();
    animate_trace(session_->design(), session_->engine().bindings(),
                  session_->trace().events(), session_->animator());
}

std::optional<NavError> Timeline::rewind_to(rt::SimTime t) {
    sync_journal();
    std::string who;
    if (!transports_replay_safe(&who))
        return NavError{NavError::Kind::NotDeterministic,
                        "transport '" + who +
                            "' is not deterministic-replay capable; rewind refused",
                        -1, -1};
    rt::SimTime now = target_->sim().now();
    if (t < 0 || t > now)
        return out_of_range("time is ahead of the session clock");
    const Checkpoint* cp = store_.nearest_at_or_before(t);
    if (cp == nullptr)
        return out_of_range("no checkpoint at or before the requested time");

    ReplayStop stop = replay_span(*cp, t, nullptr);

    // The future past t is now abandoned history: drop it everywhere.
    journal_.resize((stop.partial_run ? stop.next_entry + 1 : stop.next_entry) -
                    journal_base_);
    if (stop.partial_run) journal_.back().run_to = t;
    journal_time_ = t;
    session_->trace_recorder().truncate_after(t);
    session_->divergence_log().truncate_after(t);
    store_.drop_after(t);
    rebuild_scene();
    if (auto_period_ > 0) next_capture_ = (t / auto_period_ + 1) * auto_period_;
    ++rewinds_;
    return std::nullopt;
}

std::optional<NavError> Timeline::step_back(std::size_t n) {
    sync_journal();
    const auto& events = session_->trace().events();
    if (events.empty())
        return NavError{NavError::Kind::EmptyTrace,
                        "no recorded events to step back over", -1, -1};
    if (n == 0 || n > events.size())
        return out_of_range("step-back count exceeds the recorded trace (" +
                            std::to_string(events.size()) + " events)");
    rt::SimTime te = events[events.size() - n].t;
    if (te <= 0)
        return out_of_range("the targeted event is at the start of time");
    return rewind_to(te - 1);
}

BisectResult Timeline::bisect() {
    BisectResult res;
    sync_journal();
    std::string who;
    if (!transports_replay_safe(&who)) {
        res.error =
            "transport '" + who + "' is not deterministic-replay capable";
        return res;
    }
    const auto& events = session_->trace().events();
    if (events.empty()) {
        res.error = "trace is empty - run the target first";
        return res;
    }
    if (store_.entries().empty()) {
        res.error = "no checkpoints - 'checkpoint now' or 'checkpoint auto' "
                    "before running";
        return res;
    }

    // Probe from a fixed base (the earliest checkpoint) so "first bad
    // step <= i" is monotone in i; later checkpoints already contain the
    // recorded (possibly faulty) state and would mask earlier badness.
    const Checkpoint& base = store_.entries().front();
    std::size_t lo = 0;
    while (lo < events.size() && events[lo].t <= base.snap.time) ++lo;
    if (lo >= events.size()) {
        res.error = "every recorded event predates the earliest checkpoint";
        return res;
    }
    const std::size_t start = lo;
    res.steps_searched = events.size() - start;

    // A probe re-executes [base, events[i].t] and reports the earliest
    // disagreement (trace mismatch or divergence) it observed. Probing
    // from the fixed base keeps "bad(i)" monotone, so every nullopt
    // probe proves the prefix up to its midpoint re-executes faithfully.
    Snapshot bookmark = timed_snapshot_op(
        replay_metrics().capture_ns, "capture",
        [&] { return capture_snapshot(*target_, *session_); });
    auto probe = [&](std::size_t i) -> std::optional<std::size_t> {
        TraceComparator comp(events, start);
        replay_span(base, events[i].t, &comp);
        ++res.probes;
        return comp.first_bad();
    };

    std::size_t hi = events.size() - 1;
    std::optional<std::size_t> full = probe(hi);
    if (!full.has_value()) {
        timed_snapshot_op(replay_metrics().restore_ns, "restore",
                          [&] { restore_snapshot(bookmark, *target_, *session_); });
        return res; // faithful, divergence-free timeline
    }
    // Probes are time-granular (a probe at step i replays every event
    // sharing events[i].t), so a probe may report a first-bad index past
    // its midpoint; the report is exact within the probed window, never
    // clamp it below itself.
    std::size_t hi_bad = *full;
    while (lo < hi_bad) {
        std::size_t mid = lo + (hi_bad - lo) / 2;
        std::optional<std::size_t> bad = probe(mid);
        if (!bad.has_value()) {
            lo = mid + 1;
            continue;
        }
        hi_bad = *bad;
        if (*bad > mid) lo = mid + 1; // everything through mid replayed clean
    }

    // One confirming probe at the culprit for the human-readable reason.
    // hi_bad == events.size() means the re-execution emitted extra
    // events past the recorded end: anchor on the last recorded step.
    std::size_t culprit = std::min(hi_bad, events.size() - 1);
    TraceComparator confirm(events, start);
    replay_span(base, events[culprit].t, &confirm);
    ++res.probes;
    res.found = true;
    res.step = culprit;
    res.t = events[culprit].t;
    res.command = hi_bad < events.size()
                      ? events[hi_bad].cmd.to_string()
                      : "(re-execution continued past the recorded trace)";
    res.reason = confirm.first_bad().has_value()
                     ? confirm.reason(*confirm.first_bad())
                     : "disagreement did not reproduce on the confirming probe";
    timed_snapshot_op(replay_metrics().restore_ns, "restore",
                      [&] { restore_snapshot(bookmark, *target_, *session_); });
    return res;
}

} // namespace gmdf::replay
