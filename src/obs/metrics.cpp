#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace gmdf::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// Fold a dotted metric name into a Prometheus-legal one: gmdf_<name> with
// every non-[A-Za-z0-9_] character mapped to '_'.
std::string sanitize(std::string_view name) {
    std::string out = "gmdf_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string format_u64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    return buf;
}

std::string format_i64(std::int64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
}

} // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void set_metrics_enabled(bool on) { g_metrics_enabled.store(on, std::memory_order_relaxed); }

double Histogram::Snapshot::percentile(double p) const {
    if (count == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    const double rank = (p / 100.0) * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(i)];
        if (in_bucket == 0) continue;
        const std::uint64_t next = cumulative + in_bucket;
        if (static_cast<double>(next) >= rank) {
            const double lower =
                i == 0 ? 0.0 : static_cast<double>(bucket_upper(i - 1)) + 1.0;
            const double upper = i >= kBuckets - 1
                                     ? lower // open-ended top bucket: report its floor
                                     : static_cast<double>(bucket_upper(i));
            const double into =
                (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
            return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
        }
        cumulative = next;
    }
    return static_cast<double>(bucket_upper(kBuckets - 2)) + 1.0;
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot snap;
    // Relaxed loads: a snapshot taken mid-record may be off by the in-flight
    // sample; scrape output never promises a consistent cut.
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    std::uint64_t bucket_total = 0;
    for (int i = 0; i < kBuckets; ++i) {
        snap.buckets[static_cast<std::size_t>(i)] =
            buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
        bucket_total += snap.buckets[static_cast<std::size_t>(i)];
    }
    // Keep count consistent with the bucket sum so percentile ranks and the
    // cumulative exposition never disagree with each other.
    snap.count = bucket_total;
    return snap;
}

Registry::Shard& Registry::shard_for(std::string_view name, std::string_view label_value) {
    const std::size_t h =
        std::hash<std::string_view>{}(name) ^ (std::hash<std::string_view>{}(label_value) << 1);
    return shards_[h % kShards];
}

Registry::Entry& Registry::find_or_create(Kind kind, std::string_view name,
                                          std::string_view label_key,
                                          std::string_view label_value) {
    Shard& shard = shard_for(name, label_value);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto key = std::make_pair(std::string(name), std::string(label_value));
    auto it = shard.metrics.find(key);
    if (it == shard.metrics.end()) {
        Entry entry;
        entry.kind = kind;
        entry.label_key = std::string(label_key);
        switch (kind) {
            case Kind::Counter: entry.counter = std::make_unique<Counter>(); break;
            case Kind::Gauge: entry.gauge = std::make_unique<Gauge>(); break;
            case Kind::Histogram: entry.histogram = std::make_unique<Histogram>(); break;
        }
        it = shard.metrics.emplace(std::move(key), std::move(entry)).first;
    } else if (it->second.kind != kind) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' re-registered as a different kind");
    }
    return it->second;
}

Counter& Registry::counter(std::string_view name, std::string_view label_key,
                           std::string_view label_value) {
    return *find_or_create(Kind::Counter, name, label_key, label_value).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view label_key,
                       std::string_view label_value) {
    return *find_or_create(Kind::Gauge, name, label_key, label_value).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view label_key,
                               std::string_view label_value) {
    return *find_or_create(Kind::Histogram, name, label_key, label_value).histogram;
}

void Registry::add_collector(const void* owner, std::function<void(Registry&)> fn) {
    std::lock_guard<std::mutex> lock(collector_mu_);
    collectors_.emplace_back(owner, std::move(fn));
}

void Registry::remove_collector(const void* owner) {
    std::lock_guard<std::mutex> lock(collector_mu_);
    std::erase_if(collectors_, [owner](const auto& c) { return c.first == owner; });
}

void Registry::collect() {
    std::lock_guard<std::mutex> lock(collector_mu_);
    for (auto& [owner, fn] : collectors_) fn(*this);
}

template <typename Fn>
void Registry::for_each_sorted(Fn&& fn) {
    // Scrape path: gather (name, label value) → Entry* across shards, then
    // visit in sorted order. Entry pointers stay valid after the shard
    // mutexes drop because metrics are never erased.
    std::vector<std::pair<std::pair<std::string, std::string>, const Entry*>> all;
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto& [key, entry] : shard.metrics) all.emplace_back(key, &entry);
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, entry] : all) fn(key.first, key.second, *entry);
}

std::vector<std::string> Registry::text_dump(std::string_view prefix) {
    collect();
    std::vector<std::string> lines;
    for_each_sorted([&](const std::string& name, const std::string& label_value,
                        const Entry& entry) {
        if (!prefix.empty() && name.compare(0, prefix.size(), prefix) != 0) return;
        std::string line = name;
        if (!entry.label_key.empty()) {
            line += '{';
            line += entry.label_key;
            line += '=';
            line += label_value;
            line += '}';
        }
        line += ' ';
        switch (entry.kind) {
            case Kind::Counter: line += format_u64(entry.counter->value()); break;
            case Kind::Gauge: line += format_i64(entry.gauge->value()); break;
            case Kind::Histogram: {
                const Histogram::Snapshot snap = entry.histogram->snapshot();
                line += "count=" + format_u64(snap.count);
                line += " p50=" + format_u64(static_cast<std::uint64_t>(snap.percentile(50)));
                line += " p90=" + format_u64(static_cast<std::uint64_t>(snap.percentile(90)));
                line += " p99=" + format_u64(static_cast<std::uint64_t>(snap.percentile(99)));
                line += " mean=" + format_u64(static_cast<std::uint64_t>(snap.mean()));
                break;
            }
        }
        lines.push_back(std::move(line));
    });
    return lines;
}

std::string Registry::prometheus_text() {
    collect();
    std::string out;
    out.reserve(4096);
    std::string last_family;
    for_each_sorted([&](const std::string& name, const std::string& label_value,
                        const Entry& entry) {
        const std::string family = sanitize(name);
        if (family != last_family) {
            out += "# TYPE " + family + ' ';
            switch (entry.kind) {
                case Kind::Counter: out += "counter"; break;
                case Kind::Gauge: out += "gauge"; break;
                case Kind::Histogram: out += "histogram"; break;
            }
            out += '\n';
            last_family = family;
        }
        std::string labels;
        if (!entry.label_key.empty())
            labels = entry.label_key + "=\"" + label_value + "\"";
        const auto with = [&](const std::string& suffix, const std::string& extra) {
            std::string s = family + suffix;
            if (!labels.empty() || !extra.empty()) {
                s += '{';
                s += labels;
                if (!labels.empty() && !extra.empty()) s += ',';
                s += extra;
                s += '}';
            }
            return s;
        };
        switch (entry.kind) {
            case Kind::Counter:
                out += with("", "") + ' ' + format_u64(entry.counter->value()) + '\n';
                break;
            case Kind::Gauge:
                out += with("", "") + ' ' + format_i64(entry.gauge->value()) + '\n';
                break;
            case Kind::Histogram: {
                const Histogram::Snapshot snap = entry.histogram->snapshot();
                int highest = -1;
                for (int i = 0; i < Histogram::kBuckets; ++i)
                    if (snap.buckets[static_cast<std::size_t>(i)] != 0) highest = i;
                std::uint64_t cumulative = 0;
                for (int i = 0; i <= highest; ++i) {
                    cumulative += snap.buckets[static_cast<std::size_t>(i)];
                    out += with("_bucket", "le=\"" + format_u64(Histogram::bucket_upper(i)) +
                                               "\"") +
                           ' ' + format_u64(cumulative) + '\n';
                }
                out += with("_bucket", "le=\"+Inf\"") + ' ' + format_u64(snap.count) + '\n';
                out += with("_sum", "") + ' ' + format_u64(snap.sum) + '\n';
                out += with("_count", "") + ' ' + format_u64(snap.count) + '\n';
                break;
            }
        }
    });
    return out;
}

std::size_t Registry::metric_count() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        n += shard.metrics.size();
    }
    return n;
}

Registry& registry() {
    static Registry instance;
    return instance;
}

} // namespace gmdf::obs
