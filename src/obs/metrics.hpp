// gmdf::obs — unified metrics registry.
//
// One process-global registry of named counters, gauges, and fixed-bucket
// latency histograms, designed so the hot path pays one relaxed atomic op
// per update and the scrape path can render everything deterministically:
//
//   obs::registry().counter("proto.requests", "verb", "query").add();
//   obs::registry().histogram("proto.request_ns", "verb", "query").record(ns);
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// process lifetime — metrics are never erased — so call sites look a metric
// up once and cache the reference. The name→metric map is lock-sharded;
// lookups take one shard mutex, updates through a handle take none.
//
// Metrics carry at most one label pair (key, value); families that fan out
// (per-verb, per-shard, per-codec) use it, everything else leaves it empty.
//
// Legacy stats structs (EngineStats, NetStats, ShardStats, ...) publish via
// *collectors*: callbacks registered with an owner pointer that set gauges
// at scrape time. Collectors run serialized under the registry's collector
// mutex, on the thread that asked for the dump — owners must only register
// collectors whose reads are safe from the scraping thread (the hub and
// server scrape from the serving thread, between requests).
//
// Rendering:
//   - text_dump(prefix)   — one line per metric, sorted by (name, label),
//                           for the `metrics [prefix]` hub verb
//   - prometheus_text()   — Prometheus text exposition (version 0.0.4) with
//                           a gmdf_ prefix, served for GET /metrics
//
// set_metrics_enabled(false) turns every update into a no-op (one relaxed
// load) — the knob the overhead bench flips to price the instrumentation.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gmdf::obs {

bool metrics_enabled();
void set_metrics_enabled(bool on);

class Counter {
  public:
    void add(std::uint64_t n = 1) {
        if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

// Gauges are set, not accumulated — collectors overwrite them at scrape
// time, so they are not gated on metrics_enabled().
class Gauge {
  public:
    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
    std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

// Fixed power-of-two buckets sized for nanosecond latencies: bucket 0 holds
// exactly 0, bucket i (i >= 1) holds [2^(i-1), 2^i - 1]. 40 buckets reach
// ~9 minutes, enough for any slice or request this hub will ever time.
class Histogram {
  public:
    static constexpr int kBuckets = 40;

    static int bucket_index(std::uint64_t v) {
        if (v == 0) return 0;
        const int w = std::bit_width(v);
        return w >= kBuckets ? kBuckets - 1 : w;
    }

    // Inclusive upper bound of a bucket (the value Prometheus calls `le`).
    static std::uint64_t bucket_upper(int index) {
        if (index <= 0) return 0;
        if (index >= kBuckets - 1) return ~std::uint64_t{0};
        return (std::uint64_t{1} << index) - 1;
    }

    void record(std::uint64_t v) {
        if (!metrics_enabled()) return;
        buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    struct Snapshot {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        // p in [0, 100]; linear interpolation inside the bucket holding the
        // requested rank. Returns 0 for an empty histogram.
        double percentile(double p) const;
        double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
    };

    Snapshot snapshot() const;

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

class Registry {
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    // Find-or-create. Throws std::logic_error if the same (name, label
    // value) was previously registered as a different kind.
    Counter& counter(std::string_view name, std::string_view label_key = {},
                     std::string_view label_value = {});
    Gauge& gauge(std::string_view name, std::string_view label_key = {},
                 std::string_view label_value = {});
    Histogram& histogram(std::string_view name, std::string_view label_key = {},
                         std::string_view label_value = {});

    // Collectors publish derived values (legacy stats structs) as gauges at
    // scrape time. `owner` keys removal; register in a ctor, remove in the
    // matching dtor.
    void add_collector(const void* owner, std::function<void(Registry&)> fn);
    void remove_collector(const void* owner);

    // Run all collectors (serialized). text_dump/prometheus_text call this
    // themselves.
    void collect();

    // `metrics [prefix]` view: "name{key=value} <value>" per counter/gauge,
    // "name{key=value} count=<n> p50=<ns> p90=<ns> p99=<ns> mean=<ns>" per
    // histogram; sorted by (name, label value); optionally filtered to
    // names starting with `prefix`.
    std::vector<std::string> text_dump(std::string_view prefix = {});

    // Prometheus text exposition: names sanitized to gmdf_<name> with
    // non-alphanumerics folded to '_'; histograms as cumulative _bucket
    // series (trimmed past the last occupied bucket) plus _sum/_count.
    std::string prometheus_text();

    std::size_t metric_count() const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Entry {
        Kind kind;
        std::string label_key;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Shard {
        mutable std::mutex mu;
        // Keyed by (name, label value); map nodes give Entry pointer
        // stability, which is what makes handles permanent.
        std::map<std::pair<std::string, std::string>, Entry> metrics;
    };

    Entry& find_or_create(Kind kind, std::string_view name,
                          std::string_view label_key, std::string_view label_value);
    Shard& shard_for(std::string_view name, std::string_view label_value);

    template <typename Fn>
    void for_each_sorted(Fn&& fn);

    static constexpr std::size_t kShards = 16;
    std::array<Shard, kShards> shards_;

    std::mutex collector_mu_;
    std::vector<std::pair<const void*, std::function<void(Registry&)>>> collectors_;
};

// The process-global registry every instrumented subsystem publishes into.
Registry& registry();

} // namespace gmdf::obs
