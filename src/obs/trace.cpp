#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace gmdf::obs {

namespace {

std::atomic<int> g_next_tid{1};

void append_json_escaped(std::string& out, std::string_view s) {
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

} // namespace

void Tracer::start() {
    // Quiesce recorders before clearing so a span racing stop()/start()
    // lands either in the old capture or the new one, never in a torn ring.
    enabled_.store(false, std::memory_order_relaxed);
    for (Ring& ring : rings_) {
        std::lock_guard<std::mutex> lock(ring.mu);
        ring.events.clear();
        ring.dropped = 0;
    }
    {
        std::lock_guard<std::mutex> lock(meta_mu_);
        thread_names_.clear();
    }
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::set_capacity(std::size_t events) {
    stop();
    capacity_ = events == 0 ? 1 : events;
}

std::uint64_t Tracer::now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void Tracer::record(std::string name, const char* category, std::uint64_t begin_ns,
                    std::uint64_t duration_ns, int tid, std::string args_json) {
    if (!enabled()) return;
    Ring& ring = ring_for_tid(tid);
    const std::size_t per_ring = std::max<std::size_t>(1, capacity_ / kRings);
    std::lock_guard<std::mutex> lock(ring.mu);
    if (ring.events.size() >= per_ring) {
        ring.events.pop_front();
        ++ring.dropped;
    }
    ring.events.push_back(Event{std::move(name), category, begin_ns, duration_ns, tid,
                                std::move(args_json)});
}

void Tracer::set_thread_name(int tid, std::string name) {
    std::lock_guard<std::mutex> lock(meta_mu_);
    thread_names_[tid] = std::move(name);
}

std::size_t Tracer::event_count() const {
    std::size_t n = 0;
    for (const Ring& ring : rings_) {
        std::lock_guard<std::mutex> lock(ring.mu);
        n += ring.events.size();
    }
    return n;
}

std::uint64_t Tracer::dropped() const {
    std::uint64_t n = 0;
    for (const Ring& ring : rings_) {
        std::lock_guard<std::mutex> lock(ring.mu);
        n += ring.dropped;
    }
    return n;
}

void Tracer::write_chrome_json(std::ostream& out) const {
    std::vector<Event> events;
    for (const Ring& ring : rings_) {
        std::lock_guard<std::mutex> lock(ring.mu);
        events.insert(events.end(), ring.events.begin(), ring.events.end());
    }
    std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
        return a.begin_ns < b.begin_ns;
    });

    out << "{\"traceEvents\":[";
    bool first = true;
    {
        std::lock_guard<std::mutex> lock(meta_mu_);
        for (const auto& [tid, name] : thread_names_) {
            std::string line;
            line += first ? "\n" : ",\n";
            line += "{\"ph\":\"M\",\"pid\":0,\"tid\":";
            line += std::to_string(tid);
            line += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
            append_json_escaped(line, name);
            line += "\"}}";
            out << line;
            first = false;
        }
    }
    char num[32];
    for (const Event& ev : events) {
        std::string line;
        line += first ? "\n" : ",\n";
        line += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
        line += std::to_string(ev.tid);
        std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(ev.begin_ns) / 1000.0);
        line += ",\"ts\":";
        line += num;
        std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(ev.duration_ns) / 1000.0);
        line += ",\"dur\":";
        line += num;
        line += ",\"cat\":\"";
        append_json_escaped(line, ev.category);
        line += "\",\"name\":\"";
        append_json_escaped(line, ev.name);
        line += '"';
        if (!ev.args_json.empty()) {
            line += ",\"args\":";
            line += ev.args_json;
        }
        line += '}';
        out << line;
        first = false;
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Tracer& tracer() {
    static Tracer instance;
    return instance;
}

int current_trace_tid() {
    thread_local int tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void Span::arg(std::string_view key, std::string_view value) {
    if (!armed_) return;
    args_json_ += args_json_.empty() ? "{\"" : ",\"";
    append_json_escaped(args_json_, key);
    args_json_ += "\":\"";
    append_json_escaped(args_json_, value);
    args_json_ += '"';
}

} // namespace gmdf::obs
