// gmdf::obs — span tracer with Chrome trace-event export.
//
// A process-global, ring-buffered span recorder that is off by default and
// costs one relaxed atomic load per would-be span while off. When enabled
// (`trace profile start`, or `gmdf_serve --trace-out`), RAII Spans capture
// complete "X" events (begin + wall duration) into lock-sharded rings;
// write_chrome_json() renders them as Chrome trace-event JSON that loads
// directly in Perfetto / chrome://tracing.
//
//   obs::Span span("hub", "pump-slice", /*suffix=*/{}, shard_tid);
//   span.arg("session", entry.name);
//
// Trace "thread" ids are a presentation concept, not OS tids: the fleet
// pump passes an explicit per-shard tid (kShardTidBase + shard) so slices
// group under stable "shard-N" tracks in Perfetto even though worker
// threads are respawned every pump; everything else gets a small
// automatically assigned per-thread id. set_thread_name() attaches the
// metadata rows Perfetto uses as track labels.
//
// Timestamps are steady-clock nanoseconds since start(); start() clears any
// previous capture. Rings drop the oldest events once full (dropped() says
// how many), so a long capture keeps the most recent window.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace gmdf::obs {

class Tracer {
  public:
    // Presentation tid for fleet-pump shard workers: shard w → kShardTidBase + w.
    static constexpr int kShardTidBase = 1000;

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    // Clears previous events and thread names, re-arms the clock epoch.
    void start();
    void stop();

    // Max buffered events across all rings; resets the capture.
    void set_capacity(std::size_t events);

    std::uint64_t now_ns() const;

    // Record a complete span. Callers check enabled() first (Span does);
    // events recorded while disabled are ignored.
    void record(std::string name, const char* category, std::uint64_t begin_ns,
                std::uint64_t duration_ns, int tid, std::string args_json = {});

    void set_thread_name(int tid, std::string name);

    std::size_t event_count() const;
    std::uint64_t dropped() const;

    // Render everything captured so far as a Chrome trace-event JSON
    // document ({"traceEvents": [...]}); timestamps in microseconds.
    void write_chrome_json(std::ostream& out) const;

  private:
    struct Event {
        std::string name;
        const char* category;
        std::uint64_t begin_ns;
        std::uint64_t duration_ns;
        int tid;
        std::string args_json; // pre-rendered {"k":"v"} payload, may be empty
    };

    struct Ring {
        mutable std::mutex mu;
        std::deque<Event> events;
        std::uint64_t dropped = 0;
    };

    static constexpr std::size_t kRings = 8;
    Ring& ring_for_tid(int tid) { return rings_[static_cast<std::size_t>(tid) % kRings]; }

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_{};
    std::size_t capacity_ = 1 << 18;
    Ring rings_[kRings];
    mutable std::mutex meta_mu_;
    std::map<int, std::string> thread_names_;
};

Tracer& tracer();

// Small stable per-thread presentation id (assigned on first use, >= 1) for
// spans that don't pass an explicit tid.
int current_trace_tid();

// RAII complete-span. All construction cost (name concatenation, clock
// read) is skipped when the tracer is disabled.
class Span {
  public:
    Span(const char* category, std::string_view name, std::string_view name_suffix = {},
         int tid = -1) {
        if (!tracer().enabled()) return;
        armed_ = true;
        category_ = category;
        name_.reserve(name.size() + name_suffix.size());
        name_.assign(name);
        name_.append(name_suffix);
        tid_ = tid >= 0 ? tid : current_trace_tid();
        begin_ns_ = tracer().now_ns();
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    // Attach a string argument shown in the Perfetto slice details pane.
    void arg(std::string_view key, std::string_view value);

    ~Span() {
        if (!armed_) return;
        if (!args_json_.empty()) args_json_ += '}';
        tracer().record(std::move(name_), category_, begin_ns_,
                        tracer().now_ns() - begin_ns_, tid_, std::move(args_json_));
    }

  private:
    bool armed_ = false;
    const char* category_ = "";
    std::string name_;
    std::string args_json_;
    int tid_ = 0;
    std::uint64_t begin_ns_ = 0;
};

} // namespace gmdf::obs
