#include "meta/model.hpp"

#include <stdexcept>

namespace gmdf::meta {

namespace {

const Value& null_value() {
    static const Value v;
    return v;
}

bool kind_matches(AttrType t, const Value& v) {
    if (v.is_null()) return true; // unset; validate() handles required attrs
    switch (t) {
    case AttrType::Bool: return v.is_bool();
    case AttrType::Int: return v.is_int();
    case AttrType::Real: return v.is_real() || v.is_int();
    case AttrType::String: return v.is_string();
    case AttrType::Enum: return v.is_string();
    case AttrType::ListInt:
    case AttrType::ListReal:
    case AttrType::ListString: return v.is_list();
    }
    return false;
}

} // namespace

bool MObject::has_attr(std::string_view name) const {
    auto it = attrs_.find(name);
    return it != attrs_.end() && !it->second.is_null();
}

const Value& MObject::attr(std::string_view name) const {
    if (cls_->find_attribute(name) == nullptr)
        throw std::invalid_argument("class " + cls_->name() + " has no attribute '" +
                                    std::string(name) + "'");
    auto it = attrs_.find(name);
    return it == attrs_.end() ? null_value() : it->second;
}

void MObject::set_attr(std::string_view name, Value v) {
    const MetaAttribute* a = cls_->find_attribute(name);
    if (a == nullptr)
        throw std::invalid_argument("class " + cls_->name() + " has no attribute '" +
                                    std::string(name) + "'");
    if (!kind_matches(a->type, v))
        throw std::invalid_argument("attribute '" + a->name + "' on " + cls_->name() +
                                    ": value kind mismatch (" + v.to_string() + ")");
    // Normalize Int into Real slots so readers can rely on as_real().
    if (a->type == AttrType::Real && v.is_int()) v = Value(static_cast<double>(v.as_int()));
    attrs_[std::string(name)] = std::move(v);
}

const MetaReference& MObject::checked_reference(std::string_view name) const {
    const MetaReference* r = cls_->find_reference(name);
    if (r == nullptr)
        throw std::invalid_argument("class " + cls_->name() + " has no reference '" +
                                    std::string(name) + "'");
    return *r;
}

std::span<const ObjectId> MObject::refs(std::string_view name) const {
    checked_reference(name);
    auto it = refs_.find(name);
    if (it == refs_.end()) return {};
    return it->second;
}

ObjectId MObject::ref(std::string_view name) const {
    auto r = refs(name);
    return r.empty() ? ObjectId{} : r.front();
}

void MObject::add_ref(std::string_view name, ObjectId target) {
    checked_reference(name);
    refs_[std::string(name)].push_back(target);
}

void MObject::set_ref(std::string_view name, ObjectId target) {
    checked_reference(name);
    refs_[std::string(name)] = {target};
}

std::size_t MObject::remove_ref(std::string_view name, ObjectId target) {
    checked_reference(name);
    auto it = refs_.find(name);
    if (it == refs_.end()) return 0;
    auto& vec = it->second;
    std::size_t before = vec.size();
    std::erase(vec, target);
    return before - vec.size();
}

void MObject::clear_ref(std::string_view name) {
    checked_reference(name);
    refs_.erase(std::string(name));
}

std::string MObject::name() const {
    if (cls_->find_attribute("name") == nullptr) return {};
    const Value& v = attr("name");
    return v.is_string() ? v.as_string() : std::string{};
}

Model Model::clone() const {
    Model out(*mm_);
    out.next_id_ = next_id_;
    for (const auto& [raw, obj] : objects_) {
        auto copy = std::unique_ptr<MObject>(new MObject(*obj));
        out.objects_.emplace(raw, std::move(copy));
    }
    return out;
}

MObject& Model::create(const MetaClass& cls) {
    if (cls.is_abstract())
        throw std::invalid_argument("cannot instantiate abstract class " + cls.name());
    if (!mm_->owns(cls))
        throw std::invalid_argument("class " + cls.name() + " not owned by metamodel " +
                                    mm_->name());
    ObjectId id{next_id_++};
    auto obj = std::unique_ptr<MObject>(new MObject(id, cls));
    for (const MetaAttribute* a : cls.all_attributes())
        if (!a->default_value.is_null()) obj->set_attr(a->name, a->default_value);
    MObject& ref = *obj;
    objects_.emplace(id.raw, std::move(obj));
    return ref;
}

MObject& Model::create(std::string_view class_name) {
    const MetaClass* cls = mm_->find_class(class_name);
    if (cls == nullptr)
        throw std::invalid_argument("unknown class '" + std::string(class_name) + "'");
    return create(*cls);
}

MObject* Model::get(ObjectId id) {
    auto it = objects_.find(id.raw);
    return it == objects_.end() ? nullptr : it->second.get();
}

const MObject* Model::get(ObjectId id) const {
    auto it = objects_.find(id.raw);
    return it == objects_.end() ? nullptr : it->second.get();
}

MObject& Model::at(ObjectId id) {
    MObject* o = get(id);
    if (o == nullptr) throw std::out_of_range("no object " + to_string(id));
    return *o;
}

const MObject& Model::at(ObjectId id) const {
    const MObject* o = get(id);
    if (o == nullptr) throw std::out_of_range("no object " + to_string(id));
    return *o;
}

bool Model::destroy(ObjectId id) { return objects_.erase(id.raw) > 0; }

std::vector<ObjectId> Model::ids() const {
    std::vector<ObjectId> out;
    out.reserve(objects_.size());
    for (const auto& [raw, _] : objects_) out.push_back(ObjectId{raw});
    return out;
}

std::vector<const MObject*> Model::all_of(const MetaClass& cls) const {
    std::vector<const MObject*> out;
    for (const auto& [_, obj] : objects_)
        if (obj->meta_class().is_subtype_of(cls)) out.push_back(obj.get());
    return out;
}

std::vector<MObject*> Model::all_of(const MetaClass& cls) {
    std::vector<MObject*> out;
    for (auto& [_, obj] : objects_)
        if (obj->meta_class().is_subtype_of(cls)) out.push_back(obj.get());
    return out;
}

const MObject* Model::find_named(const MetaClass& cls, std::string_view name) const {
    for (const auto& [_, obj] : objects_)
        if (obj->meta_class().is_subtype_of(cls) && obj->name() == name) return obj.get();
    return nullptr;
}

std::vector<const MObject*> Model::roots() const {
    std::vector<const MObject*> out;
    for (const auto& [_, obj] : objects_)
        if (container_of(obj->id()) == nullptr) out.push_back(obj.get());
    return out;
}

const MObject* Model::container_of(ObjectId id) const {
    for (const auto& [_, obj] : objects_) {
        for (const MetaReference* r : obj->meta_class().all_references()) {
            if (!r->containment) continue;
            for (ObjectId t : obj->refs(r->name))
                if (t == id) return obj.get();
        }
    }
    return nullptr;
}

} // namespace gmdf::meta
