#include "meta/metamodel.hpp"

#include <algorithm>
#include <stdexcept>

namespace gmdf::meta {

std::optional<std::size_t> MetaEnum::index_of(std::string_view literal) const {
    for (std::size_t i = 0; i < literals_.size(); ++i)
        if (literals_[i] == literal) return i;
    return std::nullopt;
}

std::vector<const MetaAttribute*> MetaClass::all_attributes() const {
    std::vector<const MetaAttribute*> out;
    if (super_) out = super_->all_attributes();
    for (const auto& a : attrs_) out.push_back(&a);
    return out;
}

std::vector<const MetaReference*> MetaClass::all_references() const {
    std::vector<const MetaReference*> out;
    if (super_) out = super_->all_references();
    for (const auto& r : refs_) out.push_back(&r);
    return out;
}

const MetaAttribute* MetaClass::find_attribute(std::string_view name) const {
    for (const auto& a : attrs_)
        if (a.name == name) return &a;
    return super_ ? super_->find_attribute(name) : nullptr;
}

const MetaReference* MetaClass::find_reference(std::string_view name) const {
    for (const auto& r : refs_)
        if (r.name == name) return &r;
    return super_ ? super_->find_reference(name) : nullptr;
}

bool MetaClass::is_subtype_of(const MetaClass& other) const {
    for (const MetaClass* c = this; c != nullptr; c = c->super_)
        if (c == &other) return true;
    return false;
}

const MetaEnum& Metamodel::add_enum(std::string name, std::vector<std::string> literals) {
    if (find_enum(name) != nullptr)
        throw std::invalid_argument("duplicate enum: " + name);
    enums_.push_back(std::make_unique<MetaEnum>(std::move(name), std::move(literals)));
    return *enums_.back();
}

MetaClass& Metamodel::add_class(std::string name, bool is_abstract, const MetaClass* super) {
    if (find_class(name) != nullptr)
        throw std::invalid_argument("duplicate class: " + name);
    if (super != nullptr && !owns(*super))
        throw std::invalid_argument("superclass '" + super->name() +
                                    "' belongs to a different metamodel");
    classes_.push_back(std::make_unique<MetaClass>(std::move(name), is_abstract, super));
    return *classes_.back();
}

void Metamodel::add_attribute(MetaClass& cls, MetaAttribute attr) {
    if (cls.find_attribute(attr.name) != nullptr || cls.find_reference(attr.name) != nullptr)
        throw std::invalid_argument("duplicate feature '" + attr.name + "' on class " +
                                    cls.name());
    if (attr.type == AttrType::Enum && attr.enum_type == nullptr)
        throw std::invalid_argument("enum attribute '" + attr.name + "' lacks enum type");
    cls.attrs_.push_back(std::move(attr));
}

void Metamodel::add_reference(MetaClass& cls, MetaReference ref) {
    if (cls.find_attribute(ref.name) != nullptr || cls.find_reference(ref.name) != nullptr)
        throw std::invalid_argument("duplicate feature '" + ref.name + "' on class " +
                                    cls.name());
    if (ref.target == nullptr)
        throw std::invalid_argument("reference '" + ref.name + "' lacks target class");
    cls.refs_.push_back(std::move(ref));
}

const MetaClass* Metamodel::find_class(std::string_view name) const {
    for (const auto& c : classes_)
        if (c->name() == name) return c.get();
    return nullptr;
}

const MetaEnum* Metamodel::find_enum(std::string_view name) const {
    for (const auto& e : enums_)
        if (e->name() == name) return e.get();
    return nullptr;
}

bool Metamodel::owns(const MetaClass& cls) const {
    return std::any_of(classes_.begin(), classes_.end(),
                       [&](const auto& c) { return c.get() == &cls; });
}

MetaAttribute attr_bool(std::string name, bool required, Value def) {
    return {std::move(name), AttrType::Bool, nullptr, required, std::move(def)};
}
MetaAttribute attr_int(std::string name, bool required, Value def) {
    return {std::move(name), AttrType::Int, nullptr, required, std::move(def)};
}
MetaAttribute attr_real(std::string name, bool required, Value def) {
    return {std::move(name), AttrType::Real, nullptr, required, std::move(def)};
}
MetaAttribute attr_string(std::string name, bool required, Value def) {
    return {std::move(name), AttrType::String, nullptr, required, std::move(def)};
}
MetaAttribute attr_enum(std::string name, const MetaEnum& e, bool required, Value def) {
    return {std::move(name), AttrType::Enum, &e, required, std::move(def)};
}

MetaReference ref_contain(std::string name, const MetaClass& target, int lower, int upper) {
    return {std::move(name), &target, true, lower, upper};
}
MetaReference ref_plain(std::string name, const MetaClass& target, int lower, int upper) {
    return {std::move(name), &target, false, lower, upper};
}

} // namespace gmdf::meta
