// Diagnostics produced by model/metamodel validation.
#pragma once

#include <string>
#include <vector>

#include "meta/value.hpp"

namespace gmdf::meta {

enum class Severity { Info, Warning, Error };

/// One validation finding: what went wrong, where, and how severe it is.
struct Diagnostic {
    Severity severity = Severity::Error;
    /// Offending object, or null for model-level findings.
    ObjectId object;
    /// Attribute/reference name involved, empty if not feature-specific.
    std::string feature;
    std::string message;

    [[nodiscard]] std::string to_string() const {
        std::string out;
        switch (severity) {
        case Severity::Info: out = "info: "; break;
        case Severity::Warning: out = "warning: "; break;
        case Severity::Error: out = "error: "; break;
        }
        if (!object.is_null()) out += meta::to_string(object) + " ";
        if (!feature.empty()) out += "'" + feature + "' ";
        out += message;
        return out;
    }
};

using Diagnostics = std::vector<Diagnostic>;

/// True if no diagnostic at Error severity is present.
[[nodiscard]] inline bool is_clean(const Diagnostics& ds) {
    for (const auto& d : ds)
        if (d.severity == Severity::Error) return false;
    return true;
}

} // namespace gmdf::meta
