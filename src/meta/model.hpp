// Reflective model instances conforming to a Metamodel.
//
// A Model owns MObjects created from MetaClasses. Objects carry attribute
// values and reference lists keyed by feature name; feature existence and
// basic type compatibility are checked eagerly (throw), deeper conformance
// (multiplicities, containment shape, enum literals) is checked by
// validate() in validate.hpp.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "meta/metamodel.hpp"
#include "meta/value.hpp"

namespace gmdf::meta {

class Model;

/// One model object: an instance of a MetaClass with dynamic features.
class MObject {
public:
    [[nodiscard]] ObjectId id() const { return id_; }
    [[nodiscard]] const MetaClass& meta_class() const { return *cls_; }

    /// True when the attribute has been explicitly set (or defaulted).
    [[nodiscard]] bool has_attr(std::string_view name) const;

    /// Attribute value; a shared null Value when unset.
    /// Throws std::invalid_argument when the class declares no such attribute.
    [[nodiscard]] const Value& attr(std::string_view name) const;

    /// Sets an attribute after checking the declaration and value kind.
    /// Throws std::invalid_argument on unknown attribute or kind mismatch.
    void set_attr(std::string_view name, Value v);

    /// Referenced object ids for the named reference (empty when unset).
    [[nodiscard]] std::span<const ObjectId> refs(std::string_view name) const;

    /// Single-valued reference helper: first target or null id.
    [[nodiscard]] ObjectId ref(std::string_view name) const;

    /// Appends a target; throws std::invalid_argument on unknown reference.
    void add_ref(std::string_view name, ObjectId target);

    /// Replaces targets with exactly one element.
    void set_ref(std::string_view name, ObjectId target);

    /// Removes every occurrence of `target`; returns how many were removed.
    std::size_t remove_ref(std::string_view name, ObjectId target);

    void clear_ref(std::string_view name);

    /// Convenience for the ubiquitous "name" attribute; empty if unset.
    [[nodiscard]] std::string name() const;

private:
    friend class Model;
    MObject(ObjectId id, const MetaClass& cls) : id_(id), cls_(&cls) {}

    const MetaReference& checked_reference(std::string_view name) const;

    ObjectId id_;
    const MetaClass* cls_;
    std::map<std::string, Value, std::less<>> attrs_;
    std::map<std::string, std::vector<ObjectId>, std::less<>> refs_;
};

/// A model: a set of objects conforming to one metamodel.
class Model {
public:
    explicit Model(const Metamodel& mm) : mm_(&mm) {}

    Model(Model&&) noexcept = default;
    Model& operator=(Model&&) noexcept = default;

    /// Deep copy preserving object ids (used e.g. to mutate a
    /// transformation input while keeping element identity stable).
    [[nodiscard]] Model clone() const;

    [[nodiscard]] const Metamodel& metamodel() const { return *mm_; }

    /// Creates an instance of `cls`, applying attribute defaults.
    /// Throws std::invalid_argument when `cls` is abstract or foreign.
    MObject& create(const MetaClass& cls);

    /// Creates by class name; throws when the class is unknown.
    MObject& create(std::string_view class_name);

    /// Object by id; nullptr when absent (destroyed or never created).
    [[nodiscard]] MObject* get(ObjectId id);
    [[nodiscard]] const MObject* get(ObjectId id) const;

    /// Object by id; throws std::out_of_range when absent.
    [[nodiscard]] MObject& at(ObjectId id);
    [[nodiscard]] const MObject& at(ObjectId id) const;

    /// Removes the object. References held by other objects are left in
    /// place and reported as dangling by validate().
    bool destroy(ObjectId id);

    [[nodiscard]] std::size_t size() const { return objects_.size(); }

    /// Ids of all live objects in creation order.
    [[nodiscard]] std::vector<ObjectId> ids() const;

    /// All live objects of `cls` (including subclasses), creation order.
    [[nodiscard]] std::vector<const MObject*> all_of(const MetaClass& cls) const;
    [[nodiscard]] std::vector<MObject*> all_of(const MetaClass& cls);

    /// First object of `cls` whose "name" attribute equals `name`.
    [[nodiscard]] const MObject* find_named(const MetaClass& cls, std::string_view name) const;

    /// Objects not targeted by any containment reference: the forest roots.
    [[nodiscard]] std::vector<const MObject*> roots() const;

    /// Owner of `id` via a containment reference, or nullptr.
    [[nodiscard]] const MObject* container_of(ObjectId id) const;

private:
    const Metamodel* mm_;
    std::uint64_t next_id_ = 1;
    std::map<std::uint64_t, std::unique_ptr<MObject>> objects_;
};

} // namespace gmdf::meta
