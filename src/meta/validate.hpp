// Conformance validation of a Model against its Metamodel.
#pragma once

#include "meta/diagnostics.hpp"
#include "meta/model.hpp"

namespace gmdf::meta {

/// Checks full conformance and returns every finding:
///  - required attributes are set and enum values use declared literals
///  - list attributes hold the declared element kind
///  - references resolve to live objects of a compatible class
///  - reference multiplicities hold
///  - each object is contained at most once; containment has no cycles
[[nodiscard]] Diagnostics validate(const Model& model);

} // namespace gmdf::meta
