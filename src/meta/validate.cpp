#include "meta/validate.hpp"

#include <map>
#include <set>

namespace gmdf::meta {

namespace {

void check_attr(const MObject& obj, const MetaAttribute& a, Diagnostics& out) {
    const Value& v = obj.attr(a.name);
    if (v.is_null()) {
        if (a.required)
            out.push_back({Severity::Error, obj.id(), a.name, "required attribute unset"});
        return;
    }
    if (a.type == AttrType::Enum) {
        if (!a.enum_type->contains(v.as_string()))
            out.push_back({Severity::Error, obj.id(), a.name,
                           "'" + v.as_string() + "' is not a literal of enum " +
                               a.enum_type->name()});
        return;
    }
    if (v.is_list()) {
        for (const Value& e : v.as_list()) {
            bool ok = (a.type == AttrType::ListInt && e.is_int()) ||
                      (a.type == AttrType::ListReal && (e.is_real() || e.is_int())) ||
                      (a.type == AttrType::ListString && e.is_string());
            if (!ok) {
                out.push_back({Severity::Error, obj.id(), a.name,
                               "list element kind mismatch: " + e.to_string()});
                break;
            }
        }
    }
}

void check_ref(const Model& model, const MObject& obj, const MetaReference& r,
               Diagnostics& out) {
    auto targets = obj.refs(r.name);
    auto n = static_cast<int>(targets.size());
    if (n < r.lower)
        out.push_back({Severity::Error, obj.id(), r.name,
                       "multiplicity violation: " + std::to_string(n) + " < lower bound " +
                           std::to_string(r.lower)});
    if (r.upper >= 0 && n > r.upper)
        out.push_back({Severity::Error, obj.id(), r.name,
                       "multiplicity violation: " + std::to_string(n) + " > upper bound " +
                           std::to_string(r.upper)});
    for (ObjectId t : targets) {
        const MObject* target = model.get(t);
        if (target == nullptr) {
            out.push_back(
                {Severity::Error, obj.id(), r.name, "dangling reference to " + to_string(t)});
            continue;
        }
        if (!target->meta_class().is_subtype_of(*r.target))
            out.push_back({Severity::Error, obj.id(), r.name,
                           "target " + to_string(t) + " has class " +
                               target->meta_class().name() + ", expected " +
                               r.target->name()});
    }
}

} // namespace

Diagnostics validate(const Model& model) {
    Diagnostics out;

    // Per-object feature checks.
    for (ObjectId id : model.ids()) {
        const MObject& obj = model.at(id);
        for (const MetaAttribute* a : obj.meta_class().all_attributes())
            check_attr(obj, *a, out);
        for (const MetaReference* r : obj.meta_class().all_references())
            check_ref(model, obj, *r, out);
    }

    // Containment shape: at most one container per object, no cycles.
    std::map<std::uint64_t, ObjectId> container; // child raw id -> container id
    for (ObjectId id : model.ids()) {
        const MObject& obj = model.at(id);
        for (const MetaReference* r : obj.meta_class().all_references()) {
            if (!r->containment) continue;
            for (ObjectId child : obj.refs(r->name)) {
                if (model.get(child) == nullptr) continue; // dangling already reported
                auto [it, inserted] = container.emplace(child.raw, id);
                if (!inserted && !(it->second == id))
                    out.push_back({Severity::Error, child, "",
                                   "object contained by both " + to_string(it->second) +
                                       " and " + to_string(id)});
            }
        }
    }
    for (ObjectId id : model.ids()) {
        // Walk up the container chain; a revisit of the start means a cycle.
        std::set<std::uint64_t> seen;
        ObjectId cur = id;
        while (true) {
            auto it = container.find(cur.raw);
            if (it == container.end()) break;
            cur = it->second;
            if (cur == id) {
                out.push_back({Severity::Error, id, "", "containment cycle"});
                break;
            }
            if (!seen.insert(cur.raw).second) break; // cycle not through id; reported there
        }
    }

    return out;
}

} // namespace gmdf::meta
