// Dynamic typed values used for model attributes.
//
// The metamodeling core is reflective: attribute values of model objects are
// not known at compile time, so they are carried in a small variant type.
// Value is a regular type (copyable, comparable, hashable via to_string).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace gmdf::meta {

/// Identifier of a model object. Ids are unique within one Model and are
/// never reused, so a stale id can be detected (lookup returns null).
struct ObjectId {
    std::uint64_t raw = 0;

    friend constexpr bool operator==(ObjectId, ObjectId) = default;
    friend constexpr auto operator<=>(ObjectId, ObjectId) = default;

    /// The null id; never assigned to a live object.
    [[nodiscard]] constexpr bool is_null() const { return raw == 0; }
};

/// Kinds a Value can hold. Enum literals are carried as strings and
/// validated against the declaring MetaEnum during model validation.
enum class ValueKind { Null, Bool, Int, Real, String, List };

/// A dynamically typed attribute value: null, bool, int64, double, string,
/// or a homogeneous-by-convention list of values.
class Value {
public:
    using List = std::vector<Value>;

    Value() = default;
    Value(bool b) : v_(b) {}
    Value(std::int64_t i) : v_(i) {}
    Value(int i) : v_(static_cast<std::int64_t>(i)) {}
    Value(double d) : v_(d) {}
    Value(std::string s) : v_(std::move(s)) {}
    Value(const char* s) : v_(std::string(s)) {}
    Value(List l) : v_(std::move(l)) {}

    [[nodiscard]] ValueKind kind() const;

    [[nodiscard]] bool is_null() const { return kind() == ValueKind::Null; }
    [[nodiscard]] bool is_bool() const { return kind() == ValueKind::Bool; }
    [[nodiscard]] bool is_int() const { return kind() == ValueKind::Int; }
    [[nodiscard]] bool is_real() const { return kind() == ValueKind::Real; }
    [[nodiscard]] bool is_string() const { return kind() == ValueKind::String; }
    [[nodiscard]] bool is_list() const { return kind() == ValueKind::List; }

    /// Checked accessors; throw std::bad_variant_access on kind mismatch.
    [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
    [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
    [[nodiscard]] double as_real() const { return std::get<double>(v_); }
    [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
    [[nodiscard]] const List& as_list() const { return std::get<List>(v_); }
    [[nodiscard]] List& as_list() { return std::get<List>(v_); }

    /// Numeric coercion: Int or Real as double, Bool as 0.0/1.0 (pin
    /// values are numeric; comparisons yield booleans). Throws otherwise.
    [[nodiscard]] double as_number() const;

    /// Canonical textual form (used by serialization and diagnostics).
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Value&, const Value&) = default;

private:
    std::variant<std::monostate, bool, std::int64_t, double, std::string, List> v_;
};

/// Renders an ObjectId as "@<raw>" for diagnostics.
[[nodiscard]] std::string to_string(ObjectId id);

} // namespace gmdf::meta
