// MOF-style metamodel definitions: enums, attributes, references, classes.
//
// A Metamodel owns MetaClass/MetaEnum definitions; Models (see model.hpp)
// instantiate those classes reflectively. This mirrors the subset of
// EMF/Ecore that the paper's framework relies on: named classes with single
// inheritance, typed attributes, and typed (possibly containment)
// references with multiplicities.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "meta/value.hpp"

namespace gmdf::meta {

class Metamodel;
class MetaClass;

/// Enumeration type: a named set of string literals.
class MetaEnum {
public:
    MetaEnum(std::string name, std::vector<std::string> literals)
        : name_(std::move(name)), literals_(std::move(literals)) {}

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<std::string>& literals() const { return literals_; }

    /// Index of a literal, or nullopt when unknown.
    [[nodiscard]] std::optional<std::size_t> index_of(std::string_view literal) const;
    [[nodiscard]] bool contains(std::string_view literal) const { return index_of(literal).has_value(); }

private:
    std::string name_;
    std::vector<std::string> literals_;
};

/// Declared type of an attribute.
enum class AttrType { Bool, Int, Real, String, Enum, ListInt, ListReal, ListString };

/// Attribute declaration on a MetaClass.
struct MetaAttribute {
    std::string name;
    AttrType type = AttrType::String;
    /// For AttrType::Enum: the declaring enum (owned by the Metamodel).
    const MetaEnum* enum_type = nullptr;
    /// When true, validation reports an unset value as an error.
    bool required = false;
    /// Default applied by Model::create when non-null.
    Value default_value;
};

/// Reference declaration on a MetaClass.
struct MetaReference {
    std::string name;
    /// Target class (owned by the Metamodel); references accept instances
    /// of the target class or any of its subclasses.
    const MetaClass* target = nullptr;
    /// Containment references define the ownership tree of a model: each
    /// object may be contained at most once, and containment is acyclic.
    bool containment = false;
    /// Multiplicity [lower, upper]; upper < 0 means unbounded.
    int lower = 0;
    int upper = -1;
};

/// A metaclass: named, possibly abstract, with single inheritance.
class MetaClass {
public:
    MetaClass(std::string name, bool is_abstract, const MetaClass* super)
        : name_(std::move(name)), abstract_(is_abstract), super_(super) {}

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] bool is_abstract() const { return abstract_; }
    [[nodiscard]] const MetaClass* super() const { return super_; }

    /// Declarations introduced by this class only (not inherited).
    [[nodiscard]] const std::vector<MetaAttribute>& own_attributes() const { return attrs_; }
    [[nodiscard]] const std::vector<MetaReference>& own_references() const { return refs_; }

    /// Declarations including inherited ones, supers first.
    [[nodiscard]] std::vector<const MetaAttribute*> all_attributes() const;
    [[nodiscard]] std::vector<const MetaReference*> all_references() const;

    /// Lookup through the inheritance chain; nullptr when absent.
    [[nodiscard]] const MetaAttribute* find_attribute(std::string_view name) const;
    [[nodiscard]] const MetaReference* find_reference(std::string_view name) const;

    /// True when this class equals `other` or inherits from it.
    [[nodiscard]] bool is_subtype_of(const MetaClass& other) const;

private:
    friend class Metamodel;

    std::string name_;
    bool abstract_ = false;
    const MetaClass* super_ = nullptr;
    std::vector<MetaAttribute> attrs_;
    std::vector<MetaReference> refs_;
};

/// A metamodel: a named package of classes and enums.
///
/// Construction is incremental via add_class/add_enum and the attribute /
/// reference builder calls; once models are instantiated, the metamodel
/// must not change (definitions are referenced by pointer).
class Metamodel {
public:
    explicit Metamodel(std::string name) : name_(std::move(name)) {}

    Metamodel(const Metamodel&) = delete;
    Metamodel& operator=(const Metamodel&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }

    /// Defines a new enum; throws std::invalid_argument on duplicate name.
    const MetaEnum& add_enum(std::string name, std::vector<std::string> literals);

    /// Defines a new class; throws std::invalid_argument on a duplicate
    /// name or when `super` belongs to a different metamodel.
    MetaClass& add_class(std::string name, bool is_abstract = false,
                         const MetaClass* super = nullptr);

    /// Adds an attribute declaration to `cls`; throws on duplicate name
    /// (including names inherited from supers).
    void add_attribute(MetaClass& cls, MetaAttribute attr);

    /// Adds a reference declaration to `cls`; throws on duplicate name.
    void add_reference(MetaClass& cls, MetaReference ref);

    [[nodiscard]] const MetaClass* find_class(std::string_view name) const;
    [[nodiscard]] const MetaEnum* find_enum(std::string_view name) const;

    [[nodiscard]] const std::vector<std::unique_ptr<MetaClass>>& classes() const { return classes_; }
    [[nodiscard]] const std::vector<std::unique_ptr<MetaEnum>>& enums() const { return enums_; }

    /// True when `cls` is owned by this metamodel.
    [[nodiscard]] bool owns(const MetaClass& cls) const;

private:
    std::string name_;
    std::vector<std::unique_ptr<MetaClass>> classes_;
    std::vector<std::unique_ptr<MetaEnum>> enums_;
};

/// Convenience builders for MetaAttribute.
[[nodiscard]] MetaAttribute attr_bool(std::string name, bool required = false, Value def = {});
[[nodiscard]] MetaAttribute attr_int(std::string name, bool required = false, Value def = {});
[[nodiscard]] MetaAttribute attr_real(std::string name, bool required = false, Value def = {});
[[nodiscard]] MetaAttribute attr_string(std::string name, bool required = false, Value def = {});
[[nodiscard]] MetaAttribute attr_enum(std::string name, const MetaEnum& e,
                                      bool required = false, Value def = {});

/// Convenience builders for MetaReference.
[[nodiscard]] MetaReference ref_contain(std::string name, const MetaClass& target,
                                        int lower = 0, int upper = -1);
[[nodiscard]] MetaReference ref_plain(std::string name, const MetaClass& target,
                                      int lower = 0, int upper = -1);

} // namespace gmdf::meta
