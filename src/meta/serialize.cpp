#include "meta/serialize.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <sstream>

namespace gmdf::meta {

std::string write_model(const Model& model) {
    std::ostringstream os;
    os << "model " << model.metamodel().name() << "\n";
    for (ObjectId id : model.ids()) {
        const MObject& obj = model.at(id);
        os << "object " << to_string(id) << " " << obj.meta_class().name() << "\n";
        for (const MetaAttribute* a : obj.meta_class().all_attributes()) {
            const Value& v = obj.attr(a->name);
            if (v.is_null()) continue;
            os << "  attr " << a->name << " = ";
            // Enum literals are bare words; everything else uses the
            // canonical Value literal.
            if (a->type == AttrType::Enum)
                os << v.as_string();
            else
                os << v.to_string();
            os << "\n";
        }
        for (const MetaReference* r : obj.meta_class().all_references()) {
            auto targets = obj.refs(r->name);
            if (targets.empty()) continue;
            os << "  ref " << r->name << " =";
            for (ObjectId t : targets) os << " " << to_string(t);
            os << "\n";
        }
    }
    return os.str();
}

namespace {

/// Cursor over one line of input.
struct LineCursor {
    std::string_view text;
    std::size_t pos = 0;
    std::size_t line_no = 0;

    void skip_ws() {
        while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
    }

    [[nodiscard]] bool at_end() {
        skip_ws();
        return pos >= text.size();
    }

    [[noreturn]] void fail(const std::string& msg) const { throw ParseError(line_no, msg); }

    std::string_view word() {
        skip_ws();
        std::size_t start = pos;
        while (pos < text.size() && !std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (start == pos) fail("expected a token");
        return text.substr(start, pos - start);
    }

    void expect(std::string_view token) {
        auto w = word();
        if (w != token) fail("expected '" + std::string(token) + "', got '" + std::string(w) + "'");
    }

    std::string quoted_string() {
        skip_ws();
        if (pos >= text.size() || text[pos] != '"') fail("expected '\"'");
        ++pos;
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size()) fail("dangling escape");
                char e = text[pos++];
                switch (e) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                default: fail(std::string("unknown escape '\\") + e + "'");
                }
            } else {
                out += c;
            }
        }
        if (pos >= text.size()) fail("unterminated string");
        ++pos; // closing quote
        return out;
    }
};

std::uint64_t parse_id_token(LineCursor& c, std::string_view tok) {
    if (tok.size() < 2 || tok[0] != '@') c.fail("expected object id, got '" + std::string(tok) + "'");
    std::uint64_t raw = 0;
    auto [p, ec] = std::from_chars(tok.data() + 1, tok.data() + tok.size(), raw);
    if (ec != std::errc{} || p != tok.data() + tok.size()) c.fail("bad object id");
    return raw;
}

std::int64_t parse_int(LineCursor& c, std::string_view tok) {
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || p != tok.data() + tok.size()) c.fail("bad integer literal");
    return v;
}

double parse_real(LineCursor& c, std::string_view tok) {
    double v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || p != tok.data() + tok.size()) c.fail("bad real literal");
    return v;
}

Value parse_scalar(LineCursor& c, AttrType type) {
    switch (type) {
    case AttrType::Bool: {
        auto tok = c.word();
        if (tok == "true") return Value(true);
        if (tok == "false") return Value(false);
        c.fail("bad bool literal");
    }
    case AttrType::Int: return Value(parse_int(c, c.word()));
    case AttrType::Real: return Value(parse_real(c, c.word()));
    case AttrType::String: return Value(c.quoted_string());
    case AttrType::Enum: return Value(std::string(c.word()));
    default: c.fail("scalar parse on list type");
    }
}

Value parse_attr_value(LineCursor& c, AttrType type) {
    if (type == AttrType::ListInt || type == AttrType::ListReal ||
        type == AttrType::ListString) {
        c.skip_ws();
        if (c.pos >= c.text.size() || c.text[c.pos] != '[') c.fail("expected '['");
        ++c.pos;
        Value::List out;
        AttrType elem = type == AttrType::ListInt    ? AttrType::Int
                        : type == AttrType::ListReal ? AttrType::Real
                                                     : AttrType::String;
        c.skip_ws();
        if (c.pos < c.text.size() && c.text[c.pos] == ']') {
            ++c.pos;
            return Value(std::move(out));
        }
        while (true) {
            // Element tokens may end with ',' or ']'; split them manually.
            c.skip_ws();
            if (elem == AttrType::String) {
                out.emplace_back(c.quoted_string());
            } else {
                std::size_t start = c.pos;
                while (c.pos < c.text.size() && c.text[c.pos] != ',' && c.text[c.pos] != ']')
                    ++c.pos;
                std::string_view tok = c.text.substr(start, c.pos - start);
                while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.back())))
                    tok.remove_suffix(1);
                out.emplace_back(elem == AttrType::Int ? Value(parse_int(c, tok))
                                                       : Value(parse_real(c, tok)));
            }
            c.skip_ws();
            if (c.pos < c.text.size() && c.text[c.pos] == ',') {
                ++c.pos;
                continue;
            }
            if (c.pos < c.text.size() && c.text[c.pos] == ']') {
                ++c.pos;
                return Value(std::move(out));
            }
            c.fail("expected ',' or ']' in list");
        }
    }
    return parse_scalar(c, type);
}

} // namespace

Model read_model(const Metamodel& mm, std::string_view text) {
    Model model(mm);
    std::map<std::uint64_t, ObjectId> id_map; // file id -> fresh id
    struct PendingRef {
        ObjectId source;
        std::string ref_name;
        std::uint64_t file_target;
        std::size_t line_no;
    };
    std::vector<PendingRef> pending;

    MObject* current = nullptr;
    std::size_t line_no = 0;
    bool saw_header = false;

    std::size_t offset = 0;
    while (offset <= text.size()) {
        std::size_t eol = text.find('\n', offset);
        std::string_view line = text.substr(
            offset, eol == std::string_view::npos ? std::string_view::npos : eol - offset);
        offset = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        ++line_no;

        LineCursor c{line, 0, line_no};
        if (c.at_end()) continue;
        auto keyword = c.word();

        if (keyword == "model") {
            auto name = c.word();
            if (name != mm.name())
                c.fail("model references metamodel '" + std::string(name) + "', expected '" +
                       mm.name() + "'");
            saw_header = true;
        } else if (keyword == "object") {
            if (!saw_header) c.fail("'object' before 'model' header");
            auto id_tok = c.word();
            std::uint64_t file_id = parse_id_token(c, id_tok);
            auto cls_name = c.word();
            const MetaClass* cls = mm.find_class(cls_name);
            if (cls == nullptr) c.fail("unknown class '" + std::string(cls_name) + "'");
            if (id_map.contains(file_id)) c.fail("duplicate object id");
            MObject& obj = model.create(*cls);
            id_map.emplace(file_id, obj.id());
            current = &obj;
        } else if (keyword == "attr") {
            if (current == nullptr) c.fail("'attr' outside an object block");
            auto name = c.word();
            const MetaAttribute* a = current->meta_class().find_attribute(name);
            if (a == nullptr)
                c.fail("class " + current->meta_class().name() + " has no attribute '" +
                       std::string(name) + "'");
            c.expect("=");
            current->set_attr(a->name, parse_attr_value(c, a->type));
        } else if (keyword == "ref") {
            if (current == nullptr) c.fail("'ref' outside an object block");
            auto name = c.word();
            const MetaReference* r = current->meta_class().find_reference(name);
            if (r == nullptr)
                c.fail("class " + current->meta_class().name() + " has no reference '" +
                       std::string(name) + "'");
            c.expect("=");
            while (!c.at_end()) {
                auto tok = c.word();
                pending.push_back({current->id(), r->name, parse_id_token(c, tok), line_no});
            }
        } else {
            c.fail("unknown keyword '" + std::string(keyword) + "'");
        }
    }

    for (const PendingRef& p : pending) {
        auto it = id_map.find(p.file_target);
        if (it == id_map.end())
            throw ParseError(p.line_no,
                             "reference to undefined object @" + std::to_string(p.file_target));
        model.at(p.source).add_ref(p.ref_name, it->second);
    }
    return model;
}

} // namespace gmdf::meta
