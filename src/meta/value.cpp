#include "meta/value.hpp"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gmdf::meta {

ValueKind Value::kind() const {
    switch (v_.index()) {
    case 0: return ValueKind::Null;
    case 1: return ValueKind::Bool;
    case 2: return ValueKind::Int;
    case 3: return ValueKind::Real;
    case 4: return ValueKind::String;
    case 5: return ValueKind::List;
    }
    return ValueKind::Null; // unreachable
}

double Value::as_number() const {
    if (is_int()) return static_cast<double>(as_int());
    if (is_real()) return as_real();
    if (is_bool()) return as_bool() ? 1.0 : 0.0;
    throw std::bad_variant_access();
}

namespace {

void escape_into(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default: os << c;
        }
    }
    os << '"';
}

} // namespace

std::string Value::to_string() const {
    std::ostringstream os;
    switch (kind()) {
    case ValueKind::Null: os << "null"; break;
    case ValueKind::Bool: os << (as_bool() ? "true" : "false"); break;
    case ValueKind::Int: os << as_int(); break;
    case ValueKind::Real: {
        double d = as_real();
        // Round-trippable real literal; always contains '.' or 'e' so the
        // reader can distinguish it from an Int.
        std::ostringstream tmp;
        tmp.precision(17);
        tmp << d;
        std::string out = tmp.str();
        if (out.find_first_of(".eE") == std::string::npos &&
            out.find_first_of("nN") == std::string::npos) { // nan/inf keep as-is
            out += ".0";
        }
        os << out;
        break;
    }
    case ValueKind::String: escape_into(os, as_string()); break;
    case ValueKind::List: {
        os << '[';
        const auto& l = as_list();
        for (std::size_t i = 0; i < l.size(); ++i) {
            if (i != 0) os << ", ";
            os << l[i].to_string();
        }
        os << ']';
        break;
    }
    }
    return os.str();
}

std::string to_string(ObjectId id) { return "@" + std::to_string(id.raw); }

} // namespace gmdf::meta
