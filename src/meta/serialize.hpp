// Text serialization of models (an XMI-like, line-oriented format).
//
// Format (one object block per live object, in id order):
//
//   model <metamodel-name>
//   object @<id> <ClassName>
//     attr <name> = <literal>
//     ref <name> = @<id> @<id> ...
//
// Attribute literals are parsed according to the declared AttrType, so the
// writer stays compact (enum literals are bare words, strings are quoted).
// Reading remaps ids to fresh ones in file order; because the writer emits
// objects in id order, write(read(write(m))) == write(read-result) holds.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "meta/model.hpp"

namespace gmdf::meta {

/// Error raised by read_model on malformed input.
class ParseError : public std::runtime_error {
public:
    ParseError(std::size_t line, const std::string& message)
        : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}

    [[nodiscard]] std::size_t line() const { return line_; }

private:
    std::size_t line_;
};

/// Serializes every live object of `model`.
[[nodiscard]] std::string write_model(const Model& model);

/// Parses `text` into a fresh model over `mm`.
/// Throws ParseError on syntax errors, unknown classes/features, or ids
/// that never appear as an object. The result is not validated; run
/// validate() for conformance diagnostics.
[[nodiscard]] Model read_model(const Metamodel& mm, std::string_view text);

} // namespace gmdf::meta
