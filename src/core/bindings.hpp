// Command -> reaction bindings (paper: "GMDF provides a user interface to
// setup commands associated with reaction types").
#pragma once

#include <map>
#include <optional>

#include "link/commands.hpp"

namespace gmdf::core {

/// Reactions the runtime engine can perform on GDM elements.
enum class ReactionType {
    None,
    /// Highlight the element named by the command (exclusive within its
    /// group for state-like elements: entering a state un-highlights the
    /// machine's other states).
    Highlight,
    /// Short flash of an edge (transition fired).
    Pulse,
    /// Update the element's value sublabel (signal updates).
    LabelUpdate,
};

[[nodiscard]] const char* to_string(ReactionType r);

struct ReactionSpec {
    ReactionType type = ReactionType::None;
    /// Whether Highlight clears sibling highlights (same group).
    bool exclusive = false;
};

/// The configurable binding table (command kind -> reaction).
class CommandBindingTable {
public:
    void bind(link::Cmd kind, ReactionSpec spec) { table_[kind] = spec; }
    void unbind(link::Cmd kind) { table_.erase(kind); }

    [[nodiscard]] ReactionSpec lookup(link::Cmd kind) const {
        auto it = table_.find(kind);
        return it == table_.end() ? ReactionSpec{} : it->second;
    }

    [[nodiscard]] std::size_t size() const { return table_.size(); }

    /// The defaults the prototype ships with.
    [[nodiscard]] static CommandBindingTable defaults() {
        CommandBindingTable t;
        t.bind(link::Cmd::StateEnter, {ReactionType::Highlight, /*exclusive=*/true});
        t.bind(link::Cmd::Transition, {ReactionType::Pulse, false});
        t.bind(link::Cmd::SignalUpdate, {ReactionType::LabelUpdate, false});
        t.bind(link::Cmd::ModeChange, {ReactionType::Highlight, true});
        t.bind(link::Cmd::TaskStart, {ReactionType::Highlight, false});
        return t;
    }

private:
    std::map<link::Cmd, ReactionSpec> table_;
};

} // namespace gmdf::core
