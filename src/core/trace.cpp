#include "core/trace.hpp"

#include <map>
#include <sstream>

#include "core/names.hpp"

namespace gmdf::core {

std::vector<TraceEvent> TraceRecorder::filter(link::Cmd kind) const {
    std::vector<TraceEvent> out;
    for (const auto& e : events_)
        if (e.cmd.kind == kind) out.push_back(e);
    return out;
}


render::TimingDiagram TraceRecorder::timing_diagram(const meta::Model& design) const {
    render::TimingDiagram diagram;
    std::map<std::uint32_t, std::size_t> sm_lane;
    std::map<std::uint32_t, std::size_t> sig_lane;

    for (const auto& e : events_) {
        switch (e.cmd.kind) {
        case link::Cmd::StateEnter:
        case link::Cmd::ModeChange: {
            auto [it, inserted] = sm_lane.try_emplace(e.cmd.a, 0);
            if (inserted) it->second = diagram.add_lane(element_label(design, e.cmd.a));
            diagram.change(it->second, e.t, element_label(design, e.cmd.b));
            break;
        }
        case link::Cmd::SignalUpdate: {
            auto [it, inserted] = sig_lane.try_emplace(e.cmd.a, 0);
            if (inserted) it->second = diagram.add_lane(element_label(design, e.cmd.a));
            diagram.change(it->second, e.t, value_label(e.cmd.value));
            break;
        }
        default: break;
        }
    }
    return diagram;
}

std::string TraceRecorder::to_vcd(const meta::Model& design) const {
    render::VcdWriter vcd("1ns");
    std::map<std::uint32_t, std::size_t> sm_var;
    std::map<std::uint32_t, std::size_t> sig_var;
    std::map<std::uint32_t, std::map<std::uint32_t, int>> state_index; // sm -> state -> idx

    // Declare variables first (VCD requires definitions before changes).
    for (const auto& e : events_) {
        if (e.cmd.kind == link::Cmd::StateEnter || e.cmd.kind == link::Cmd::ModeChange) {
            if (!sm_var.contains(e.cmd.a))
                sm_var[e.cmd.a] = vcd.add_int(element_label(design, e.cmd.a) + "_state");
            auto& idx = state_index[e.cmd.a];
            if (!idx.contains(e.cmd.b)) {
                int next = static_cast<int>(idx.size());
                idx[e.cmd.b] = next;
            }
        } else if (e.cmd.kind == link::Cmd::SignalUpdate) {
            if (!sig_var.contains(e.cmd.a))
                sig_var[e.cmd.a] = vcd.add_real(element_label(design, e.cmd.a));
        }
    }
    for (const auto& e : events_) {
        if (e.cmd.kind == link::Cmd::StateEnter || e.cmd.kind == link::Cmd::ModeChange)
            vcd.change_int(sm_var.at(e.cmd.a), e.t, state_index.at(e.cmd.a).at(e.cmd.b));
        else if (e.cmd.kind == link::Cmd::SignalUpdate)
            vcd.change_real(sig_var.at(e.cmd.a), e.t, static_cast<double>(e.cmd.value));
    }
    return vcd.str();
}

} // namespace gmdf::core
