#include "core/engine.hpp"

#include <algorithm>

#include "comdes/metamodel.hpp"
#include "expr/compile.hpp"
#include "expr/parser.hpp"

namespace gmdf::core {

using meta::MObject;
using meta::ObjectId;

const char* to_string(EngineState s) {
    switch (s) {
    case EngineState::Waiting: return "waiting";
    case EngineState::Animating: return "animating";
    case EngineState::Paused: return "paused";
    }
    return "?";
}

const char* to_string(Breakpoint::Kind kind) {
    switch (kind) {
    case Breakpoint::Kind::StateEnter: return "state-enter";
    case Breakpoint::Kind::TransitionFired: return "transition";
    case Breakpoint::Kind::SignalPredicate: return "signal-predicate";
    }
    return "?";
}

DebuggerEngine::DebuggerEngine(const meta::Model& design) : design_(&design) {
    // Pre-index signals into dense predicate slots: compiled predicates
    // address them by integer index, so each SIGNAL_UPDATE costs one id
    // lookup and each predicate evaluation costs none.
    const auto& c = comdes::comdes_metamodel();
    if (&design.metamodel() == &c.mm) {
        for (const MObject* sig : design.all_of(*c.signal)) {
            int slot = static_cast<int>(signal_slots_.size());
            slot_of_signal_[sig->id().raw] = slot;
            signal_slot_by_name_[sig->name()] = slot;
            signal_slots_.push_back(0.0);
        }
        slot_updated_.assign(signal_slots_.size(), false);
    }
}

void DebuggerEngine::add_observer(EngineObserver* observer) {
    if (observer == nullptr) return;
    if (std::find(observers_.begin(), observers_.end(), observer) != observers_.end())
        return;
    observers_.push_back(observer);
}

bool DebuggerEngine::remove_observer(EngineObserver* observer) {
    auto it = std::find(observers_.begin(), observers_.end(), observer);
    if (it == observers_.end()) return false;
    observers_.erase(it);
    return true;
}

void DebuggerEngine::set_state(EngineState next) {
    if (next == state_) return;
    EngineState from = state_;
    state_ = next;
    for (EngineObserver* obs : observers_) obs->on_state_change(from, next);
}

void DebuggerEngine::ingest(const link::Command& cmd, rt::SimTime t) {
    ++stats_.commands;
    for (EngineObserver* obs : observers_) obs->on_command(cmd, t);
    if (state_ == EngineState::Waiting) set_state(EngineState::Animating);

    // Track model-level state before reactions so breakpoints and
    // consistency checks see the up-to-date picture.
    if (cmd.kind == link::Cmd::SignalUpdate) {
        double v = static_cast<double>(cmd.value);
        if (auto it = slot_of_signal_.find(cmd.a); it != slot_of_signal_.end()) {
            auto slot = static_cast<std::size_t>(it->second);
            signal_slots_[slot] = v;
            slot_updated_[slot] = true;
        } else {
            // Ids outside the design model's signal set (generic models)
            // fall back to the sparse map.
            signal_values_[cmd.a] = v;
        }
    }

    check_consistency(cmd, t);

    ReactionSpec spec = bindings_.lookup(cmd.kind);
    if (spec.type != ReactionType::None) {
        ++stats_.reactions;
        for (EngineObserver* obs : observers_) obs->on_reaction(cmd, spec, t);
    }

    if (cmd.kind == link::Cmd::StateEnter || cmd.kind == link::Cmd::ModeChange)
        current_state_[cmd.a] = cmd.b;

    if (pause_on_next_command_) {
        pause_on_next_command_ = false;
        set_state(EngineState::Paused);
        if (control_.pause) control_.pause();
    } else {
        check_breakpoints(cmd, t);
    }
}

void DebuggerEngine::diverge(const link::Command& cmd, rt::SimTime t,
                             std::string message) {
    ++stats_.divergences;
    Divergence d{t, cmd, std::move(message)};
    for (EngineObserver* obs : observers_) obs->on_divergence(d);
}

void DebuggerEngine::check_consistency(const link::Command& cmd, rt::SimTime t) {
    const auto& c = comdes::comdes_metamodel();
    if (&design_->metamodel() != &c.mm) return; // generic models: no domain checks

    if (cmd.kind == link::Cmd::Transition) {
        const MObject* tr = design_->get(ObjectId{cmd.b});
        if (tr == nullptr || !tr->meta_class().is_subtype_of(*c.transition)) {
            diverge(cmd, t,
                    "TRANSITION names element #" + std::to_string(cmd.b) +
                        " which is not a transition in the design model");
            return;
        }
        auto cur = current_state_.find(cmd.a);
        if (cur != current_state_.end() && tr->ref("from").raw != cur->second)
            diverge(cmd, t,
                    "transition '" + std::to_string(cmd.b) + "' fired from state #" +
                        std::to_string(cur->second) +
                        " but the design model sources it at #" +
                        std::to_string(tr->ref("from").raw));
        pending_transition_[cmd.a] = cmd.b;
        return;
    }

    if (cmd.kind == link::Cmd::StateEnter) {
        const MObject* sm = design_->get(ObjectId{cmd.a});
        const MObject* state = design_->get(ObjectId{cmd.b});
        if (sm == nullptr || state == nullptr ||
            !sm->meta_class().is_subtype_of(*c.sm_fb) ||
            !state->meta_class().is_subtype_of(*c.state)) {
            diverge(cmd, t, "STATE_ENTER names unknown elements");
            return;
        }
        bool member = false;
        for (ObjectId s : sm->refs("states"))
            if (s.raw == cmd.b) member = true;
        if (!member) {
            diverge(cmd, t,
                    "state '" + state->name() + "' is not part of machine '" +
                        sm->name() + "'");
            return;
        }
        auto pend = pending_transition_.find(cmd.a);
        if (pend != pending_transition_.end()) {
            const MObject* tr = design_->get(ObjectId{pend->second});
            if (tr != nullptr && tr->ref("to").raw != cmd.b)
                diverge(cmd, t,
                        "transition #" + std::to_string(pend->second) +
                            " should enter state #" + std::to_string(tr->ref("to").raw) +
                            " but the target entered '" + state->name() + "'");
            pending_transition_.erase(pend);
            return;
        }
        auto cur = current_state_.find(cmd.a);
        if (cur == current_state_.end()) {
            // First entry must be the design model's initial state.
            if (sm->ref("initial").raw != cmd.b)
                diverge(cmd, t,
                        "machine '" + sm->name() + "' started in '" + state->name() +
                            "' but the design model starts in '" +
                            design_->at(sm->ref("initial")).name() + "'");
            return;
        }
        if (cur->second == cmd.b) return; // re-entry reported passively
        // No TRANSITION command seen (passive mode): require that some
        // design transition connects the two states.
        bool connected = false;
        for (ObjectId t_id : sm->refs("transitions")) {
            const MObject& tr = design_->at(t_id);
            if (tr.ref("from").raw == cur->second && tr.ref("to").raw == cmd.b)
                connected = true;
        }
        if (!connected)
            diverge(cmd, t,
                    "machine '" + sm->name() + "' jumped from state #" +
                        std::to_string(cur->second) + " to '" + state->name() +
                        "' without a design-model transition");
    }
}

void DebuggerEngine::check_breakpoints(const link::Command& cmd, rt::SimTime t) {
    for (auto it = breaks_.begin(); it != breaks_.end();) {
        const Breakpoint& bp = it->second;
        bool hit = false;
        if (bp.enabled) {
            switch (bp.kind) {
            case Breakpoint::Kind::StateEnter:
                hit = cmd.kind == link::Cmd::StateEnter && cmd.b == bp.element.raw;
                break;
            case Breakpoint::Kind::TransitionFired:
                hit = cmd.kind == link::Cmd::Transition && cmd.b == bp.element.raw;
                break;
            case Breakpoint::Kind::SignalPredicate: {
                if (cmd.kind != link::Cmd::SignalUpdate) break;
                auto ce = predicates_.find(it->first);
                if (ce == predicates_.end()) break; // malformed: never fires
                double v;
                // Evaluation faults (unknown signal name) never fire —
                // they are result codes now, not exceptions.
                hit = ce->second.run(signal_slots_, v) == expr::VmStatus::Ok && v != 0.0;
                break;
            }
            }
        }
        if (hit) {
            int handle = it->first;
            bool one_shot = bp.one_shot;
            hit_breakpoint(handle, bp, cmd, t);
            if (one_shot) {
                breaks_.erase(it);
                predicates_.erase(handle);
            }
            return; // at most one break per command
        }
        ++it;
    }
}

void DebuggerEngine::hit_breakpoint(int handle, const Breakpoint& bp,
                                    const link::Command& cmd, rt::SimTime t) {
    ++stats_.breakpoints_hit;
    for (EngineObserver* obs : observers_) obs->on_breakpoint_hit(handle, bp, cmd, t);
    set_state(EngineState::Paused);
    if (control_.pause) control_.pause();
}

void DebuggerEngine::pause() {
    if (state_ == EngineState::Paused) return;
    set_state(EngineState::Paused);
    if (control_.pause) control_.pause();
}

void DebuggerEngine::resume() {
    if (state_ != EngineState::Paused) return;
    set_state(EngineState::Animating);
    if (control_.resume) control_.resume();
}

void DebuggerEngine::step() {
    if (state_ != EngineState::Paused) return;
    pause_on_next_command_ = true;
    if (control_.step) control_.step(step_filter_);
}

int DebuggerEngine::add_breakpoint(Breakpoint bp) {
    int handle = next_break_++;
    if (bp.kind == Breakpoint::Kind::SignalPredicate) {
        try {
            auto ast = expr::parse(bp.predicate);
            predicates_.emplace(handle,
                                expr::compile(*ast, [&](std::string_view name) -> int {
                                    auto it = signal_slot_by_name_.find(name);
                                    return it == signal_slot_by_name_.end() ? -1
                                                                            : it->second;
                                }));
        } catch (const std::exception&) {
            // Malformed predicate: breakpoint exists but never fires.
        }
    }
    breaks_.emplace(handle, std::move(bp));
    return handle;
}

bool DebuggerEngine::remove_breakpoint(int handle) {
    predicates_.erase(handle);
    return breaks_.erase(handle) > 0;
}

std::optional<double> DebuggerEngine::signal_value(ObjectId signal) const {
    if (auto it = slot_of_signal_.find(signal.raw); it != slot_of_signal_.end()) {
        auto slot = static_cast<std::size_t>(it->second);
        if (!slot_updated_[slot]) return std::nullopt;
        return signal_slots_[slot];
    }
    auto it = signal_values_.find(signal.raw);
    if (it == signal_values_.end()) return std::nullopt;
    return it->second;
}

std::optional<ObjectId> DebuggerEngine::current_state(ObjectId sm) const {
    auto it = current_state_.find(sm.raw);
    if (it == current_state_.end()) return std::nullopt;
    return ObjectId{it->second};
}

} // namespace gmdf::core
