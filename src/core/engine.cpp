#include "core/engine.hpp"

#include <cmath>

#include "comdes/metamodel.hpp"
#include "expr/eval.hpp"

namespace gmdf::core {

using meta::MObject;
using meta::ObjectId;

const char* to_string(EngineState s) {
    switch (s) {
    case EngineState::Waiting: return "waiting";
    case EngineState::Animating: return "animating";
    case EngineState::Paused: return "paused";
    }
    return "?";
}

DebuggerEngine::DebuggerEngine(const meta::Model& design, render::Scene& scene)
    : design_(&design), scene_(&scene) {
    // Pre-index signal names for predicate breakpoints.
    const auto& c = comdes::comdes_metamodel();
    if (&design.metamodel() == &c.mm) {
        for (const MObject* sig : design.all_of(*c.signal))
            signal_by_name_[sig->name()] = sig->id().raw;
    }
}

void DebuggerEngine::ingest(const link::Command& cmd, rt::SimTime t) {
    ++stats_.commands;
    trace_.record(cmd, t);
    if (state_ == EngineState::Waiting) state_ = EngineState::Animating;

    // Time-based highlight decay (the animation "cools off" between events).
    if (half_life_ > 0 && last_event_t_ > 0 && t > last_event_t_) {
        double halves = static_cast<double>(t - last_event_t_) /
                        static_cast<double>(half_life_);
        scene_->decay_highlights(std::pow(0.5, halves));
    }

    // Track model-level state before reactions so breakpoints and
    // consistency checks see the up-to-date picture.
    if (cmd.kind == link::Cmd::SignalUpdate)
        signal_values_[cmd.a] = static_cast<double>(cmd.value);

    check_consistency(cmd, t);
    apply_reaction(cmd);

    if (cmd.kind == link::Cmd::StateEnter || cmd.kind == link::Cmd::ModeChange)
        current_state_[cmd.a] = cmd.b;

    if (pause_on_next_command_) {
        pause_on_next_command_ = false;
        state_ = EngineState::Paused;
        if (control_.pause) control_.pause();
    } else {
        check_breakpoints(cmd, t);
    }
    last_event_t_ = t;
}

void DebuggerEngine::apply_reaction(const link::Command& cmd) {
    ReactionSpec spec = bindings_.lookup(cmd.kind);
    switch (spec.type) {
    case ReactionType::None: return;
    case ReactionType::Highlight: {
        std::uint64_t element = cmd.kind == link::Cmd::StateEnter ||
                                        cmd.kind == link::Cmd::ModeChange
                                    ? cmd.b
                                    : cmd.a;
        if (spec.exclusive) highlight_exclusive(element, cmd.a);
        render::SceneNode* node = scene_->find_node(element);
        if (node != nullptr) {
            node->style.highlighted = true;
            node->style.intensity = 1.0;
            ++stats_.reactions;
            ++stats_.frames;
        }
        break;
    }
    case ReactionType::Pulse: {
        render::SceneEdge* edge = scene_->find_edge(cmd.b != 0 ? cmd.b : cmd.a);
        if (edge != nullptr) {
            edge->style.highlighted = true;
            edge->style.intensity = 1.0;
            ++stats_.reactions;
            ++stats_.frames;
        }
        break;
    }
    case ReactionType::LabelUpdate: {
        render::SceneNode* node = scene_->find_node(cmd.a);
        if (node != nullptr) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.4g", static_cast<double>(cmd.value));
            node->sublabel = buf;
            ++stats_.reactions;
            ++stats_.frames;
        }
        break;
    }
    }
}

void DebuggerEngine::highlight_exclusive(std::uint64_t element, std::uint64_t owner) {
    // Un-highlight sibling states: every node whose design-model container
    // is `owner` (the machine/modal FB named in the command).
    (void)element;
    const MObject* owner_obj = design_->get(ObjectId{owner});
    if (owner_obj == nullptr) return;
    for (const meta::MetaReference* r : owner_obj->meta_class().all_references()) {
        if (!r->containment) continue;
        for (ObjectId child : owner_obj->refs(r->name)) {
            render::SceneNode* node = scene_->find_node(child.raw);
            if (node != nullptr) {
                node->style.highlighted = false;
                node->style.intensity = 0.0;
            }
        }
    }
}

void DebuggerEngine::check_consistency(const link::Command& cmd, rt::SimTime t) {
    const auto& c = comdes::comdes_metamodel();
    if (&design_->metamodel() != &c.mm) return; // generic models: no domain checks

    auto diverge = [&](std::string msg) {
        divergences_.push_back({t, cmd, std::move(msg)});
    };

    if (cmd.kind == link::Cmd::Transition) {
        const MObject* tr = design_->get(ObjectId{cmd.b});
        if (tr == nullptr || !tr->meta_class().is_subtype_of(*c.transition)) {
            diverge("TRANSITION names element #" + std::to_string(cmd.b) +
                    " which is not a transition in the design model");
            return;
        }
        auto cur = current_state_.find(cmd.a);
        if (cur != current_state_.end() && tr->ref("from").raw != cur->second)
            diverge("transition '" + std::to_string(cmd.b) + "' fired from state #" +
                    std::to_string(cur->second) + " but the design model sources it at #" +
                    std::to_string(tr->ref("from").raw));
        pending_transition_[cmd.a] = cmd.b;
        return;
    }

    if (cmd.kind == link::Cmd::StateEnter) {
        const MObject* sm = design_->get(ObjectId{cmd.a});
        const MObject* state = design_->get(ObjectId{cmd.b});
        if (sm == nullptr || state == nullptr ||
            !sm->meta_class().is_subtype_of(*c.sm_fb) ||
            !state->meta_class().is_subtype_of(*c.state)) {
            diverge("STATE_ENTER names unknown elements");
            return;
        }
        bool member = false;
        for (ObjectId s : sm->refs("states"))
            if (s.raw == cmd.b) member = true;
        if (!member) {
            diverge("state '" + state->name() + "' is not part of machine '" + sm->name() +
                    "'");
            return;
        }
        auto pend = pending_transition_.find(cmd.a);
        if (pend != pending_transition_.end()) {
            const MObject* tr = design_->get(ObjectId{pend->second});
            if (tr != nullptr && tr->ref("to").raw != cmd.b)
                diverge("transition #" + std::to_string(pend->second) +
                        " should enter state #" + std::to_string(tr->ref("to").raw) +
                        " but the target entered '" + state->name() + "'");
            pending_transition_.erase(pend);
            return;
        }
        auto cur = current_state_.find(cmd.a);
        if (cur == current_state_.end()) {
            // First entry must be the design model's initial state.
            if (sm->ref("initial").raw != cmd.b)
                diverge("machine '" + sm->name() + "' started in '" + state->name() +
                        "' but the design model starts in '" +
                        design_->at(sm->ref("initial")).name() + "'");
            return;
        }
        if (cur->second == cmd.b) return; // re-entry reported passively
        // No TRANSITION command seen (passive mode): require that some
        // design transition connects the two states.
        bool connected = false;
        for (ObjectId t_id : sm->refs("transitions")) {
            const MObject& tr = design_->at(t_id);
            if (tr.ref("from").raw == cur->second && tr.ref("to").raw == cmd.b)
                connected = true;
        }
        if (!connected)
            diverge("machine '" + sm->name() + "' jumped from state #" +
                    std::to_string(cur->second) + " to '" + state->name() +
                    "' without a design-model transition");
    }
}

void DebuggerEngine::check_breakpoints(const link::Command& cmd, rt::SimTime t) {
    for (auto it = breaks_.begin(); it != breaks_.end();) {
        const Breakpoint& bp = it->second;
        bool hit = false;
        if (bp.enabled) {
            switch (bp.kind) {
            case Breakpoint::Kind::StateEnter:
                hit = cmd.kind == link::Cmd::StateEnter && cmd.b == bp.element.raw;
                break;
            case Breakpoint::Kind::TransitionFired:
                hit = cmd.kind == link::Cmd::Transition && cmd.b == bp.element.raw;
                break;
            case Breakpoint::Kind::SignalPredicate: {
                if (cmd.kind != link::Cmd::SignalUpdate) break;
                try {
                    auto ast = expr::parse(bp.predicate);
                    hit = expr::eval_bool(*ast, [&](std::string_view name) -> meta::Value {
                        auto sit = signal_by_name_.find(std::string(name));
                        if (sit == signal_by_name_.end()) return {};
                        auto vit = signal_values_.find(sit->second);
                        return vit == signal_values_.end() ? meta::Value(0.0)
                                                           : meta::Value(vit->second);
                    });
                } catch (const std::exception&) {
                    hit = false; // malformed predicates never fire
                }
                break;
            }
            }
        }
        if (hit) {
            int handle = it->first;
            bool one_shot = bp.one_shot;
            hit_breakpoint(handle, cmd, t);
            if (one_shot)
                it = breaks_.erase(it);
            else
                ++it;
            return; // at most one break per command
        }
        ++it;
    }
}

void DebuggerEngine::hit_breakpoint(int handle, const link::Command& cmd, rt::SimTime t) {
    (void)handle;
    (void)cmd;
    (void)t;
    ++stats_.breakpoints_hit;
    state_ = EngineState::Paused;
    if (control_.pause) control_.pause();
}

void DebuggerEngine::resume() {
    if (state_ != EngineState::Paused) return;
    state_ = EngineState::Animating;
    if (control_.resume) control_.resume();
}

void DebuggerEngine::step() {
    if (state_ != EngineState::Paused) return;
    pause_on_next_command_ = true;
    if (control_.step) control_.step();
}

int DebuggerEngine::add_breakpoint(Breakpoint bp) {
    int handle = next_break_++;
    breaks_.emplace(handle, std::move(bp));
    return handle;
}

bool DebuggerEngine::remove_breakpoint(int handle) { return breaks_.erase(handle) > 0; }

std::optional<double> DebuggerEngine::signal_value(ObjectId signal) const {
    auto it = signal_values_.find(signal.raw);
    if (it == signal_values_.end()) return std::nullopt;
    return it->second;
}

std::optional<ObjectId> DebuggerEngine::current_state(ObjectId sm) const {
    auto it = current_state_.find(sm.raw);
    if (it == current_state_.end()) return std::nullopt;
    return ObjectId{it->second};
}

} // namespace gmdf::core
