#include "core/engine.hpp"

#include <algorithm>

#include "comdes/metamodel.hpp"
#include "expr/compile.hpp"
#include "expr/parser.hpp"

namespace gmdf::core {

using meta::MObject;
using meta::ObjectId;

template <class F> void DebuggerEngine::notify(F&& deliver) {
    for (EngineObserver* obs : observers_)
        if (!replay_mode_ || obs->replay_aware()) deliver(*obs);
}

const char* to_string(EngineState s) {
    switch (s) {
    case EngineState::Waiting: return "waiting";
    case EngineState::Animating: return "animating";
    case EngineState::Paused: return "paused";
    }
    return "?";
}

const char* to_string(Breakpoint::Kind kind) {
    switch (kind) {
    case Breakpoint::Kind::StateEnter: return "state-enter";
    case Breakpoint::Kind::TransitionFired: return "transition";
    case Breakpoint::Kind::SignalPredicate: return "signal-predicate";
    }
    return "?";
}

DebuggerEngine::DebuggerEngine(const meta::Model& design) : design_(&design) {
    // Pre-index signals into dense predicate slots: compiled predicates
    // address them by integer index, so each SIGNAL_UPDATE costs one id
    // lookup and each predicate evaluation costs none.
    const auto& c = comdes::comdes_metamodel();
    if (&design.metamodel() == &c.mm) {
        for (const MObject* sig : design.all_of(*c.signal)) {
            int slot = static_cast<int>(signal_slots_.size());
            slot_of_signal_[sig->id().raw] = slot;
            signal_slot_by_name_[sig->name()] = slot;
            signal_slots_.push_back(0.0);
        }
        slot_updated_.assign(signal_slots_.size(), false);
    }
}

void DebuggerEngine::add_observer(EngineObserver* observer) {
    if (observer == nullptr) return;
    if (std::find(observers_.begin(), observers_.end(), observer) != observers_.end())
        return;
    observers_.push_back(observer);
}

bool DebuggerEngine::remove_observer(EngineObserver* observer) {
    auto it = std::find(observers_.begin(), observers_.end(), observer);
    if (it == observers_.end()) return false;
    observers_.erase(it);
    return true;
}

void DebuggerEngine::set_state(EngineState next) {
    if (next == state_) return;
    EngineState from = state_;
    state_ = next;
    notify([&](EngineObserver& obs) { obs.on_state_change(from, next); });
}

void DebuggerEngine::ingest(const link::Command& cmd, rt::SimTime t) {
    ++stats_.commands;
    notify([&](EngineObserver& obs) { obs.on_command(cmd, t); });
    if (state_ == EngineState::Waiting) set_state(EngineState::Animating);

    // Track model-level state before reactions so breakpoints and
    // consistency checks see the up-to-date picture.
    if (cmd.kind == link::Cmd::SignalUpdate) {
        double v = static_cast<double>(cmd.value);
        if (auto it = slot_of_signal_.find(cmd.a); it != slot_of_signal_.end()) {
            auto slot = static_cast<std::size_t>(it->second);
            signal_slots_[slot] = v;
            slot_updated_[slot] = true;
        } else {
            // Ids outside the design model's signal set (generic models)
            // fall back to the sparse map.
            signal_values_[cmd.a] = v;
        }
    }

    check_consistency(cmd, t);

    ReactionSpec spec = bindings_.lookup(cmd.kind);
    if (spec.type != ReactionType::None) {
        ++stats_.reactions;
        notify([&](EngineObserver& obs) { obs.on_reaction(cmd, spec, t); });
    }

    if (cmd.kind == link::Cmd::StateEnter || cmd.kind == link::Cmd::ModeChange)
        current_state_[cmd.a] = cmd.b;

    if (pause_on_next_command_) {
        pause_on_next_command_ = false;
        set_state(EngineState::Paused);
        if (control_.pause) control_.pause();
    } else {
        check_breakpoints(cmd, t);
    }
}

void DebuggerEngine::diverge(const link::Command& cmd, rt::SimTime t,
                             std::string message) {
    ++stats_.divergences;
    Divergence d{t, cmd, std::move(message)};
    notify([&](EngineObserver& obs) { obs.on_divergence(d); });
}

void DebuggerEngine::check_consistency(const link::Command& cmd, rt::SimTime t) {
    const auto& c = comdes::comdes_metamodel();
    if (&design_->metamodel() != &c.mm) return; // generic models: no domain checks

    if (cmd.kind == link::Cmd::Transition) {
        const MObject* tr = design_->get(ObjectId{cmd.b});
        if (tr == nullptr || !tr->meta_class().is_subtype_of(*c.transition)) {
            diverge(cmd, t,
                    "TRANSITION names element #" + std::to_string(cmd.b) +
                        " which is not a transition in the design model");
            return;
        }
        auto cur = current_state_.find(cmd.a);
        if (cur != current_state_.end() && tr->ref("from").raw != cur->second)
            diverge(cmd, t,
                    "transition '" + std::to_string(cmd.b) + "' fired from state #" +
                        std::to_string(cur->second) +
                        " but the design model sources it at #" +
                        std::to_string(tr->ref("from").raw));
        pending_transition_[cmd.a] = cmd.b;
        return;
    }

    if (cmd.kind == link::Cmd::StateEnter) {
        const MObject* sm = design_->get(ObjectId{cmd.a});
        const MObject* state = design_->get(ObjectId{cmd.b});
        if (sm == nullptr || state == nullptr ||
            !sm->meta_class().is_subtype_of(*c.sm_fb) ||
            !state->meta_class().is_subtype_of(*c.state)) {
            diverge(cmd, t, "STATE_ENTER names unknown elements");
            return;
        }
        bool member = false;
        for (ObjectId s : sm->refs("states"))
            if (s.raw == cmd.b) member = true;
        if (!member) {
            diverge(cmd, t,
                    "state '" + state->name() + "' is not part of machine '" +
                        sm->name() + "'");
            return;
        }
        auto pend = pending_transition_.find(cmd.a);
        if (pend != pending_transition_.end()) {
            const MObject* tr = design_->get(ObjectId{pend->second});
            if (tr != nullptr && tr->ref("to").raw != cmd.b)
                diverge(cmd, t,
                        "transition #" + std::to_string(pend->second) +
                            " should enter state #" + std::to_string(tr->ref("to").raw) +
                            " but the target entered '" + state->name() + "'");
            pending_transition_.erase(pend);
            return;
        }
        auto cur = current_state_.find(cmd.a);
        if (cur == current_state_.end()) {
            // First entry must be the design model's initial state.
            if (sm->ref("initial").raw != cmd.b)
                diverge(cmd, t,
                        "machine '" + sm->name() + "' started in '" + state->name() +
                            "' but the design model starts in '" +
                            design_->at(sm->ref("initial")).name() + "'");
            return;
        }
        if (cur->second == cmd.b) return; // re-entry reported passively
        // No TRANSITION command seen (passive mode): require that some
        // design transition connects the two states.
        bool connected = false;
        for (ObjectId t_id : sm->refs("transitions")) {
            const MObject& tr = design_->at(t_id);
            if (tr.ref("from").raw == cur->second && tr.ref("to").raw == cmd.b)
                connected = true;
        }
        if (!connected)
            diverge(cmd, t,
                    "machine '" + sm->name() + "' jumped from state #" +
                        std::to_string(cur->second) + " to '" + state->name() +
                        "' without a design-model transition");
    }
}

void DebuggerEngine::check_breakpoints(const link::Command& cmd, rt::SimTime t) {
    for (auto it = breaks_.begin(); it != breaks_.end();) {
        const Breakpoint& bp = it->second;
        bool hit = false;
        if (bp.enabled) {
            switch (bp.kind) {
            case Breakpoint::Kind::StateEnter:
                hit = cmd.kind == link::Cmd::StateEnter && cmd.b == bp.element.raw;
                break;
            case Breakpoint::Kind::TransitionFired:
                hit = cmd.kind == link::Cmd::Transition && cmd.b == bp.element.raw;
                break;
            case Breakpoint::Kind::SignalPredicate: {
                if (cmd.kind != link::Cmd::SignalUpdate) break;
                auto ce = predicates_.find(it->first);
                if (ce == predicates_.end()) break; // malformed: never fires
                double v;
                // Evaluation faults (unknown signal name) never fire —
                // they are result codes now, not exceptions.
                hit = ce->second.run(signal_slots_, v) == expr::VmStatus::Ok && v != 0.0;
                break;
            }
            }
        }
        if (hit) {
            int handle = it->first;
            bool one_shot = bp.one_shot;
            hit_breakpoint(handle, bp, cmd, t);
            if (one_shot) {
                breaks_.erase(it);
                predicates_.erase(handle);
            }
            return; // at most one break per command
        }
        ++it;
    }
}

void DebuggerEngine::hit_breakpoint(int handle, const Breakpoint& bp,
                                    const link::Command& cmd, rt::SimTime t) {
    ++stats_.breakpoints_hit;
    notify([&](EngineObserver& obs) { obs.on_breakpoint_hit(handle, bp, cmd, t); });
    set_state(EngineState::Paused);
    if (control_.pause) control_.pause();
}

void DebuggerEngine::pause() {
    if (state_ == EngineState::Paused) return;
    set_state(EngineState::Paused);
    if (control_.pause) control_.pause();
}

void DebuggerEngine::resume() {
    if (state_ != EngineState::Paused) return;
    set_state(EngineState::Animating);
    if (control_.resume) control_.resume();
}

void DebuggerEngine::step() {
    if (state_ != EngineState::Paused) return;
    pause_on_next_command_ = true;
    if (control_.step) control_.step(step_filter_);
}

void DebuggerEngine::compile_predicate(int handle, const Breakpoint& bp) {
    if (bp.kind != Breakpoint::Kind::SignalPredicate) return;
    try {
        auto ast = expr::parse(bp.predicate);
        predicates_.insert_or_assign(
            handle, expr::compile(*ast, [&](std::string_view name) -> int {
                auto it = signal_slot_by_name_.find(name);
                return it == signal_slot_by_name_.end() ? -1 : it->second;
            }));
    } catch (const std::exception&) {
        // Malformed predicate: breakpoint exists but never fires.
    }
}

int DebuggerEngine::add_breakpoint(Breakpoint bp) {
    int handle = next_break_++;
    compile_predicate(handle, bp);
    breaks_.emplace(handle, std::move(bp));
    return handle;
}

void DebuggerEngine::restore_breakpoint(int handle, Breakpoint bp) {
    predicates_.erase(handle);
    compile_predicate(handle, bp);
    breaks_.insert_or_assign(handle, std::move(bp));
    if (handle >= next_break_) next_break_ = handle + 1;
}

bool DebuggerEngine::remove_breakpoint(int handle) {
    predicates_.erase(handle);
    return breaks_.erase(handle) > 0;
}

std::optional<double> DebuggerEngine::signal_value(ObjectId signal) const {
    if (auto it = slot_of_signal_.find(signal.raw); it != slot_of_signal_.end()) {
        auto slot = static_cast<std::size_t>(it->second);
        if (!slot_updated_[slot]) return std::nullopt;
        return signal_slots_[slot];
    }
    auto it = signal_values_.find(signal.raw);
    if (it == signal_values_.end()) return std::nullopt;
    return it->second;
}

std::optional<ObjectId> DebuggerEngine::current_state(ObjectId sm) const {
    auto it = current_state_.find(sm.raw);
    if (it == current_state_.end()) return std::nullopt;
    return ObjectId{it->second};
}

void DebuggerEngine::save_state(rt::StateWriter& w) const {
    w.u8(static_cast<std::uint8_t>(state_));
    w.b(pause_on_next_command_);
    w.str(step_filter_.actor);
    w.u64(stats_.commands);
    w.u64(stats_.reactions);
    w.u64(stats_.breakpoints_hit);
    w.u64(stats_.divergences);
    w.size(current_state_.size());
    for (auto [sm, state] : current_state_) {
        w.u64(sm);
        w.u64(state);
    }
    w.size(pending_transition_.size());
    for (auto [sm, tr] : pending_transition_) {
        w.u64(sm);
        w.u32(tr);
    }
    w.size(signal_values_.size());
    for (auto [sig, value] : signal_values_) {
        w.u64(sig);
        w.f64(value);
    }
    w.doubles(signal_slots_);
    w.size(slot_updated_.size());
    for (bool updated : slot_updated_) w.b(updated);
    w.i32(next_break_);
    w.size(breaks_.size());
    for (const auto& [handle, bp] : breaks_) {
        w.i32(handle);
        w.u8(static_cast<std::uint8_t>(bp.kind));
        w.u64(bp.element.raw);
        w.str(bp.predicate);
        w.b(bp.enabled);
        w.b(bp.one_shot);
    }
}

void DebuggerEngine::load_state(rt::StateReader& r) {
    state_ = static_cast<EngineState>(r.u8());
    pause_on_next_command_ = r.b();
    step_filter_.actor = r.str();
    stats_.commands = r.u64();
    stats_.reactions = r.u64();
    stats_.breakpoints_hit = r.u64();
    stats_.divergences = r.u64();
    current_state_.clear();
    std::size_t n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sm = r.u64();
        current_state_[sm] = r.u64();
    }
    pending_transition_.clear();
    n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sm = r.u64();
        pending_transition_[sm] = r.u32();
    }
    signal_values_.clear();
    n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sig = r.u64();
        signal_values_[sig] = r.f64();
    }
    signal_slots_ = r.doubles();
    n = r.size();
    slot_updated_.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) slot_updated_[i] = r.b();
    breaks_.clear();
    predicates_.clear();
    next_break_ = r.i32();
    n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
        int handle = r.i32();
        Breakpoint bp;
        bp.kind = static_cast<Breakpoint::Kind>(r.u8());
        bp.element = ObjectId{r.u64()};
        bp.predicate = r.str();
        bp.enabled = r.b();
        bp.one_shot = r.b();
        compile_predicate(handle, bp);
        breaks_.emplace(handle, std::move(bp));
    }
}

} // namespace gmdf::core
