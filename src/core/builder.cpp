#include "core/builder.hpp"

#include <stdexcept>

#include "core/transports.hpp"

namespace gmdf::core {

SessionBuilder& SessionBuilder::mapping(MappingTable m) {
    mapping_ = std::move(m);
    return *this;
}

SessionBuilder& SessionBuilder::bindings(CommandBindingTable b) {
    bindings_ = std::move(b);
    return *this;
}

SessionBuilder& SessionBuilder::highlight_half_life(rt::SimTime ns) {
    half_life_ = ns;
    return *this;
}

SessionBuilder& SessionBuilder::trace_capacity(std::size_t capacity) {
    trace_capacity_ = capacity;
    return *this;
}

SessionBuilder& SessionBuilder::step_actor(std::string actor_name) {
    step_actor_ = std::move(actor_name);
    return *this;
}

SessionBuilder& SessionBuilder::breakpoint(Breakpoint bp) {
    breakpoints_.push_back(std::move(bp));
    return *this;
}

SessionBuilder& SessionBuilder::transport(std::unique_ptr<link::Transport> t) {
    transports_.push_back(std::move(t));
    return *this;
}

SessionBuilder& SessionBuilder::active_uart(rt::Target& target) {
    return transport(make_active_uart_transport(target));
}

SessionBuilder& SessionBuilder::passive_jtag(rt::Target& target,
                                             const codegen::LoadedSystem& loaded,
                                             rt::SimTime poll_period, double tck_hz) {
    return transport(
        make_passive_jtag_transport(target, loaded, *design_, poll_period, tck_hz));
}

SessionBuilder& SessionBuilder::observer(std::unique_ptr<EngineObserver> o) {
    observers_.push_back(std::move(o));
    return *this;
}

std::unique_ptr<DebugSession> SessionBuilder::build() {
    if (built_) throw std::logic_error("SessionBuilder::build() called twice");
    built_ = true;

    auto session = mapping_.has_value()
                       ? std::make_unique<DebugSession>(*design_, *mapping_)
                       : std::make_unique<DebugSession>(*design_);
    if (bindings_.has_value()) session->engine().set_bindings(std::move(*bindings_));
    if (half_life_.has_value()) session->animator().set_highlight_half_life(*half_life_);
    if (trace_capacity_.has_value()) session->set_trace_capacity(*trace_capacity_);
    if (step_actor_.has_value()) session->set_step_actor(*step_actor_);
    for (Breakpoint& bp : breakpoints_) session->engine().add_breakpoint(std::move(bp));
    // Observers before transports: nothing a transport emits at open()
    // (e.g. synthesized initial states) is missed.
    for (auto& obs : observers_) session->add_observer(std::move(obs));
    for (auto& t : transports_) session->attach(std::move(t));
    return session;
}

} // namespace gmdf::core
