// Factories wiring link::Transports to a loaded COMDES system.
//
// link::PassiveJtagTransport is deliberately ignorant of the code
// generator: it watches addresses and synthesizes commands from generic
// WatchSpec rules. These helpers compile the codegen load map (RAM
// placements, signal mirrors) plus the design model (element classes,
// initial states) down to those rules.
#pragma once

#include <memory>

#include "codegen/loader.hpp"
#include "link/transport.hpp"
#include "meta/model.hpp"
#include "rt/target.hpp"

namespace gmdf::core {

/// Active RS-232 command interface on `target`'s debug UART.
[[nodiscard]] std::unique_ptr<link::ActiveUartTransport>
make_active_uart_transport(rt::Target& target);

/// Passive JTAG watch over every mirrored SM/modal state word and signal
/// of `loaded`, with the initial-state commands synthesized from `design`.
/// `poll_period` bounds detection latency (bench C4).
[[nodiscard]] std::unique_ptr<link::PassiveJtagTransport>
make_passive_jtag_transport(rt::Target& target, const codegen::LoadedSystem& loaded,
                            const meta::Model& design, rt::SimTime poll_period,
                            double tck_hz = 1e6);

} // namespace gmdf::core
