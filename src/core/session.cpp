#include "core/session.hpp"

#include <bit>

#include "comdes/metamodel.hpp"
#include "meta/serialize.hpp"

namespace gmdf::core {

DebugSession::DebugSession(const meta::Model& design)
    : DebugSession(design, comdes_default_mapping()) {}

DebugSession::DebugSession(const meta::Model& design, const MappingTable& mapping)
    : design_(&design), abstraction_(abstract_model(design, mapping)),
      engine_(design, abstraction_.scene) {}

void DebugSession::attach_active(rt::Target& target) {
    target.set_debug_sink([this](int, std::span<const std::uint8_t> bytes, rt::SimTime at) {
        decoder_.feed(bytes);
        for (const auto& payload : decoder_.take_payloads()) {
            auto cmd = link::decode_command(payload);
            if (cmd.has_value()) engine_.ingest(*cmd, at);
        }
    });
    engine_.set_control({[&target] { target.pause(); },
                         [&target] { target.resume(); },
                         [&target, filter = step_filter_] {
                             target.request_single_step(*filter);
                         }});
}

void DebugSession::attach_passive(rt::Target& target, const codegen::LoadedSystem& loaded,
                                  rt::SimTime poll_period, double tck_hz) {
    engine_.set_control({[&target] { target.pause(); },
                         [&target] { target.resume(); },
                         [&target, filter = step_filter_] {
                             target.request_single_step(*filter);
                         }});

    // Address -> synthesis rule, per node.
    struct WatchTarget {
        enum class Kind { SmState, Signal } kind;
        meta::ObjectId element;
        std::vector<meta::ObjectId> indexed; // SmState: state by index
    };

    for (std::size_t n = 0; n < target.node_count(); ++n) {
        rt::Node& node = target.node(static_cast<int>(n));
        auto pn = std::make_unique<PassiveNode>();
        pn->tap = std::make_unique<link::JtagTap>(node.memory());
        pn->probe = std::make_unique<link::JtagProbe>(*pn->tap, tck_hz);
        pn->poller =
            std::make_unique<link::WatchPoller>(target.sim(), *pn->probe, poll_period);

        auto targets = std::make_shared<std::map<std::uint32_t, WatchTarget>>();

        // SM / modal state words of actors on this node.
        for (const codegen::LoadedActor& la : loaded.actors) {
            if (la.node != static_cast<int>(n)) continue;
            for (const codegen::ElementMemory& em : la.elements) {
                (*targets)[em.addr] = {WatchTarget::Kind::SmState, em.element, em.indexed};
                pn->poller->watch(em.addr);
            }
        }
        // Signal mirrors: watch on node 0 only (all replicas converge;
        // one watch avoids duplicate events).
        if (n == 0) {
            for (std::size_t i = 0; i < loaded.signal_ids.size(); ++i) {
                const std::string sym =
                    codegen::LoadedSystem::signal_symbol(target.signals().name(static_cast<int>(i)));
                if (!node.memory().has_symbol(sym)) continue;
                std::uint32_t addr = node.memory().address_of(sym);
                (*targets)[addr] = {WatchTarget::Kind::Signal, loaded.signal_ids[i], {}};
                pn->poller->watch(addr);
            }
        }

        pn->poller->set_callback([this, targets](const link::WatchEvent& ev) {
            auto it = targets->find(ev.addr);
            if (it == targets->end()) return;
            const WatchTarget& wt = it->second;
            link::Command cmd;
            if (wt.kind == WatchTarget::Kind::SmState) {
                if (ev.new_value >= wt.indexed.size()) return; // corrupt index
                // Modal FBs mirror their mode the same way SMs mirror
                // their state; pick the command kind by element class.
                const meta::MObject* element = design_->get(wt.element);
                bool is_modal =
                    element != nullptr &&
                    element->meta_class().is_subtype_of(*comdes::comdes_metamodel().modal_fb);
                cmd.kind = is_modal ? link::Cmd::ModeChange : link::Cmd::StateEnter;
                cmd.a = static_cast<std::uint32_t>(wt.element.raw);
                cmd.b = static_cast<std::uint32_t>(wt.indexed[ev.new_value].raw);
            } else {
                cmd.kind = link::Cmd::SignalUpdate;
                cmd.a = static_cast<std::uint32_t>(wt.element.raw);
                cmd.value = std::bit_cast<float>(ev.new_value);
            }
            engine_.ingest(cmd, ev.at);
        });
        pn->poller->start();
        passive_.push_back(std::move(pn));
    }

    // The initial state entry is invisible to a change-based watch (the
    // mirror word is primed with the initial index), so the debugger
    // synthesizes it from the design model — "the model debugger goes
    // immediately to its initial state" (paper Fig. 6). A transformation
    // fault in the initial state is therefore only detectable actively;
    // EXPERIMENTS.md documents this passive-mode limitation.
    const auto& c = comdes::comdes_metamodel();
    for (const codegen::LoadedActor& la : loaded.actors) {
        for (const codegen::ElementMemory& em : la.elements) {
            const meta::MObject* element = design_->get(em.element);
            if (element == nullptr || !element->meta_class().is_subtype_of(*c.sm_fb))
                continue;
            link::Command cmd{link::Cmd::StateEnter,
                              static_cast<std::uint32_t>(em.element.raw),
                              static_cast<std::uint32_t>(element->ref("initial").raw), 0.0f};
            engine_.ingest(cmd, target.sim().now());
        }
    }
}

std::string DebugSession::gdm_text() const { return meta::write_model(abstraction_.gdm); }

render::TimingDiagram DebugSession::timing_diagram() const {
    return engine_.trace().timing_diagram(*design_);
}

std::string DebugSession::vcd() const { return engine_.trace().to_vcd(*design_); }

std::vector<std::string> DebugSession::replay_frames(std::size_t stride) const {
    if (stride == 0) stride = 1;
    // Fresh scene + engine: replay is deterministic re-animation.
    AbstractionResult fresh = abstract_model(*design_, comdes_default_mapping());
    DebuggerEngine replay_engine(*design_, fresh.scene);
    std::vector<std::string> frames;
    std::size_t i = 0;
    for (const TraceEvent& ev : engine_.trace().events()) {
        replay_engine.ingest(ev.cmd, ev.t);
        if (++i % stride == 0) frames.push_back(render::render_ascii(fresh.scene));
    }
    return frames;
}

} // namespace gmdf::core
