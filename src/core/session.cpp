#include "core/session.hpp"

#include "comdes/metamodel.hpp"
#include "meta/serialize.hpp"
#include "proto/controller.hpp"
#include "replay/animate.hpp"

namespace gmdf::core {

DebugSession::DebugSession(const meta::Model& design)
    : DebugSession(design, comdes_default_mapping()) {}

DebugSession::DebugSession(const meta::Model& design, const MappingTable& mapping)
    : design_(&design), mapping_(mapping), abstraction_(abstract_model(design, mapping)),
      engine_(design), animator_(design, abstraction_.scene) {
    engine_.add_observer(&animator_);
    engine_.add_observer(&trace_);
    engine_.add_observer(&divergence_log_);
}

DebugSession::~DebugSession() = default;

link::Transport& DebugSession::attach(std::unique_ptr<link::Transport> transport) {
    link::Transport& t = *transport;
    transports_.push_back(std::move(transport));
    engine_.set_control(t.control());
    t.open(engine_);
    return t;
}

EngineObserver& DebugSession::add_observer(std::unique_ptr<EngineObserver> observer) {
    EngineObserver& obs = *observer;
    observers_.push_back(std::move(observer));
    engine_.add_observer(&obs);
    return obs;
}

proto::SessionController& DebugSession::controller() {
    if (controller_ == nullptr)
        controller_ = std::make_unique<proto::SessionController>(*this);
    return *controller_;
}

// The C++ control methods construct protocol requests, so they exercise
// the exact dispatcher handlers remote clients hit — the two surfaces
// cannot drift. Responses are dropped: "resume while running" and
// friends stay no-ops here, as they always were.
void DebugSession::pause() { (void)controller().execute({"pause", {}}); }

void DebugSession::resume() { (void)controller().execute({"resume", {}}); }

void DebugSession::step(const std::string& actor) {
    proto::Request req{"step", {}};
    if (!actor.empty()) req.args.push_back(actor);
    (void)controller().execute(req);
}

void DebugSession::set_step_actor(const std::string& actor_name) {
    proto::Request req{"step-filter", {}};
    if (!actor_name.empty()) req.args.push_back(actor_name);
    (void)controller().execute(req);
}

std::uint64_t DebugSession::corrupt_frames() const {
    std::uint64_t total = 0;
    for (const auto& t : transports_) total += t->stats().corrupt_frames;
    return total;
}

std::string DebugSession::gdm_text() const { return meta::write_model(abstraction_.gdm); }

render::TimingDiagram DebugSession::timing_diagram() const {
    return trace_.timing_diagram(*design_);
}

std::string DebugSession::vcd() const { return trace_.to_vcd(*design_); }

std::vector<std::string> DebugSession::replay_frames(std::size_t stride) const {
    if (stride == 0) stride = 1;
    // Fresh scene + animator; the re-animation loop itself is the shared
    // replay::animate_trace (also behind rewind's scene rebuild and the
    // C3 replay bench).
    AbstractionResult fresh = abstract_model(*design_, mapping_);
    SceneAnimator replay_animator(*design_, fresh.scene);
    replay_animator.set_highlight_half_life(animator_.highlight_half_life());
    std::vector<std::string> frames;
    replay::animate_trace(*design_, engine_.bindings(), trace_.events(),
                          replay_animator, [&](std::size_t i) {
                              if (i % stride == 0)
                                  frames.push_back(render::render_ascii(fresh.scene));
                          });
    return frames;
}

void DebugSession::reset_scene() {
    AbstractionResult fresh = abstract_model(*design_, mapping_);
    abstraction_.scene = std::move(fresh.scene);
}

} // namespace gmdf::core
