#include "core/animator.hpp"

#include <cmath>
#include <cstdio>

namespace gmdf::core {

using meta::MObject;
using meta::ObjectId;

SceneAnimator::SceneAnimator(const meta::Model& design, render::Scene& scene)
    : design_(&design), scene_(&scene) {}

void SceneAnimator::on_command(const link::Command& cmd, rt::SimTime t) {
    (void)cmd;
    // Time-based highlight decay (the animation "cools off" between events).
    if (half_life_ > 0 && last_event_t_ > 0 && t > last_event_t_) {
        double halves = static_cast<double>(t - last_event_t_) /
                        static_cast<double>(half_life_);
        scene_->decay_highlights(std::pow(0.5, halves));
    }
    last_event_t_ = t;
}

void SceneAnimator::on_reaction(const link::Command& cmd, const ReactionSpec& spec,
                                rt::SimTime t) {
    (void)t;
    switch (spec.type) {
    case ReactionType::None: return;
    case ReactionType::Highlight: {
        std::uint64_t element = cmd.kind == link::Cmd::StateEnter ||
                                        cmd.kind == link::Cmd::ModeChange
                                    ? cmd.b
                                    : cmd.a;
        if (spec.exclusive) highlight_exclusive(cmd.a);
        render::SceneNode* node = scene_->find_node(element);
        if (node != nullptr) {
            node->style.highlighted = true;
            node->style.intensity = 1.0;
            ++frames_;
        }
        break;
    }
    case ReactionType::Pulse: {
        render::SceneEdge* edge = scene_->find_edge(cmd.b != 0 ? cmd.b : cmd.a);
        if (edge != nullptr) {
            edge->style.highlighted = true;
            edge->style.intensity = 1.0;
            ++frames_;
        }
        break;
    }
    case ReactionType::LabelUpdate: {
        render::SceneNode* node = scene_->find_node(cmd.a);
        if (node != nullptr) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.4g", static_cast<double>(cmd.value));
            node->sublabel = buf;
            ++frames_;
        }
        break;
    }
    }
}

void SceneAnimator::highlight_exclusive(std::uint64_t owner) {
    // Un-highlight sibling states: every node whose design-model container
    // is `owner` (the machine/modal FB named in the command).
    const MObject* owner_obj = design_->get(ObjectId{owner});
    if (owner_obj == nullptr) return;
    for (const meta::MetaReference* r : owner_obj->meta_class().all_references()) {
        if (!r->containment) continue;
        for (ObjectId child : owner_obj->refs(r->name)) {
            render::SceneNode* node = scene_->find_node(child.raw);
            if (node != nullptr) {
                node->style.highlighted = false;
                node->style.intensity = 0.0;
            }
        }
    }
}

} // namespace gmdf::core
