// Shared stringification of model elements.
//
// One place for the "name it for a human" rules the trace products, the
// protocol layer, and the examples all need: prefer the element's name,
// fall back to Class#id for anonymous elements, and to #id when the id
// is not in the model at all.
#pragma once

#include <cstdint>
#include <string>

#include "meta/model.hpp"

namespace gmdf::core {

/// Label for the element with raw id `raw` in `model`.
[[nodiscard]] std::string element_label(const meta::Model& model, std::uint64_t raw);

/// Label for an observed signal value (4 significant digits) — shared by
/// the timing-diagram lanes and the protocol's `query signal` so the two
/// views always print the same rendering of the same value.
[[nodiscard]] std::string value_label(double v);

} // namespace gmdf::core
