// Scene animation as an engine observer.
//
// Applies the bound reactions (highlight / pulse / label update) to one
// render::Scene, with time-based highlight decay between events. The
// engine no longer touches scenes; register one SceneAnimator per scene
// you want animated — several animators on one engine animate several
// scenes from the same event stream (multi-client fan-out).
#pragma once

#include "core/observer.hpp"
#include "meta/model.hpp"
#include "render/scene.hpp"
#include "rt/des.hpp"

namespace gmdf::core {

class SceneAnimator final : public EngineObserver {
public:
    /// Both `design` and `scene` must outlive the animator.
    SceneAnimator(const meta::Model& design, render::Scene& scene);

    /// Decaying highlight half-life in simulated ns (animation feel).
    void set_highlight_half_life(rt::SimTime ns) { half_life_ = ns; }
    [[nodiscard]] rt::SimTime highlight_half_life() const { return half_life_; }

    /// Scene mutations applied so far (a proxy for rendered frames).
    [[nodiscard]] std::uint64_t frames() const { return frames_; }

    /// Forgets the highlight-decay clock. A scene rebuild after a rewind
    /// re-animates the trace from its beginning, so the next event must
    /// not decay against the abandoned future's timestamp.
    void reset_clock() { last_event_t_ = 0; }

    [[nodiscard]] render::Scene& scene() { return *scene_; }
    [[nodiscard]] const render::Scene& scene() const { return *scene_; }

    void on_command(const link::Command& cmd, rt::SimTime t) override;
    void on_reaction(const link::Command& cmd, const ReactionSpec& spec,
                     rt::SimTime t) override;

private:
    void highlight_exclusive(std::uint64_t owner);

    const meta::Model* design_;
    render::Scene* scene_;
    rt::SimTime half_life_ = 100 * rt::kMs;
    rt::SimTime last_event_t_ = 0;
    std::uint64_t frames_ = 0;
};

} // namespace gmdf::core
