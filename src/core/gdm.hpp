// The Graphical Debugger Model (GDM) metamodel — paper Fig. 3.
//
// The GDM is itself a model in the framework's metamodeling core: an
// event-driven structure of graphical elements plus command->reaction
// bindings, generated from the user's input model by the abstraction step
// and animated by the runtime engine. Expressing it as a meta::Metamodel
// means the generated debug model can be serialized ("an initial GDM file
// is automatically generated", Fig. 6 step 4) and inspected like any
// other model.
#pragma once

#include "meta/metamodel.hpp"

namespace gmdf::core {

struct GdmMeta {
    meta::Metamodel mm{"gdm"};

    const meta::MetaEnum* shape = nullptr;    ///< Rectangle|Circle|Triangle|Diamond|Line|Arrow
    const meta::MetaEnum* reaction = nullptr; ///< highlight|pulse|label_update|none
    const meta::MetaEnum* command = nullptr;  ///< wire command kinds

    meta::MetaClass* debug_model = nullptr; ///< root: elements + bindings
    meta::MetaClass* element = nullptr;     ///< abstract: name, source_id
    meta::MetaClass* node = nullptr;        ///< shape + geometry + label
    meta::MetaClass* edge = nullptr;        ///< from/to node refs
    meta::MetaClass* binding = nullptr;     ///< command -> reaction
};

/// The process-wide GDM metamodel.
[[nodiscard]] const GdmMeta& gdm_metamodel();

} // namespace gmdf::core
