// The runtime debugger engine (paper Fig. 2/Fig. 3).
//
// An event-driven state machine: normally waiting for commands from the
// executing code, reacting by animating the GDM scene, recording the
// trace, enforcing model-level breakpoints (pausing the target), and
// cross-checking observed behaviour against the design model (state-
// sequence consistency: the runtime detector for implementation errors
// introduced by model transformation).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/bindings.hpp"
#include "core/trace.hpp"
#include "expr/parser.hpp"
#include "link/commands.hpp"
#include "meta/model.hpp"
#include "render/scene.hpp"
#include "rt/des.hpp"

namespace gmdf::core {

/// Engine FSM states (Fig. 3: initial waiting state, animating on
/// command arrival, paused on a model-level breakpoint).
enum class EngineState { Waiting, Animating, Paused };

[[nodiscard]] const char* to_string(EngineState s);

/// Model-level breakpoint kinds.
struct Breakpoint {
    enum class Kind {
        StateEnter,      ///< break when a specific state is entered
        TransitionFired, ///< break when a specific transition fires
        SignalPredicate, ///< break when an expression over signals is true
    };
    Kind kind = Kind::StateEnter;
    /// Element for StateEnter/TransitionFired.
    meta::ObjectId element;
    /// Expression over signal names for SignalPredicate (e.g. "speed > 40").
    std::string predicate;
    bool enabled = true;
    bool one_shot = false; ///< auto-remove after the first hit
};

/// A detected inconsistency between observed behaviour and the design
/// model (the paper's "implementation error" class).
struct Divergence {
    rt::SimTime t = 0;
    link::Command cmd;
    std::string message;
};

/// Callbacks into the target platform (pause/resume/single-step).
struct TargetControl {
    std::function<void()> pause;
    std::function<void()> resume;
    std::function<void()> step;
};

struct EngineStats {
    std::uint64_t commands = 0;
    std::uint64_t reactions = 0;
    std::uint64_t breakpoints_hit = 0;
    std::uint64_t frames = 0;
};

/// The debugger engine. Owns neither the scene nor the design model;
/// both must outlive it.
class DebuggerEngine {
public:
    DebuggerEngine(const meta::Model& design, render::Scene& scene);

    void set_bindings(CommandBindingTable bindings) { bindings_ = std::move(bindings); }
    void set_control(TargetControl control) { control_ = std::move(control); }

    /// Decaying highlight half-life in simulated ns (animation feel).
    void set_highlight_half_life(rt::SimTime ns) { half_life_ = ns; }

    /// Ingests one command observed at simulated time `t`: records it,
    /// applies the bound reaction, checks consistency and breakpoints.
    void ingest(const link::Command& cmd, rt::SimTime t);

    [[nodiscard]] EngineState state() const { return state_; }

    /// Resumes a paused target (engine back to Animating).
    void resume();

    /// Model-level step: asks the target to run one task release, then
    /// pauses again at the next command.
    void step();

    /// Breakpoint management; returns a handle usable with remove_breakpoint.
    int add_breakpoint(Breakpoint bp);
    bool remove_breakpoint(int handle);
    [[nodiscard]] const std::map<int, Breakpoint>& breakpoints() const { return breaks_; }

    /// Most recent value per signal element id (from SIGNAL_UPDATE).
    [[nodiscard]] std::optional<double> signal_value(meta::ObjectId signal) const;

    /// Current state per state machine element id (from STATE_ENTER).
    [[nodiscard]] std::optional<meta::ObjectId> current_state(meta::ObjectId sm) const;

    [[nodiscard]] const std::vector<Divergence>& divergences() const { return divergences_; }
    [[nodiscard]] const EngineStats& stats() const { return stats_; }
    [[nodiscard]] TraceRecorder& trace() { return trace_; }
    [[nodiscard]] const TraceRecorder& trace() const { return trace_; }

private:
    void apply_reaction(const link::Command& cmd);
    void check_consistency(const link::Command& cmd, rt::SimTime t);
    void check_breakpoints(const link::Command& cmd, rt::SimTime t);
    void hit_breakpoint(int handle, const link::Command& cmd, rt::SimTime t);
    void highlight_exclusive(std::uint64_t element, std::uint64_t owner);

    const meta::Model* design_;
    render::Scene* scene_;
    CommandBindingTable bindings_ = CommandBindingTable::defaults();
    TargetControl control_;
    TraceRecorder trace_;
    EngineState state_ = EngineState::Waiting;
    bool pause_on_next_command_ = false;

    std::map<int, Breakpoint> breaks_;
    int next_break_ = 1;

    std::map<std::uint64_t, std::uint64_t> current_state_;   // sm -> state
    std::map<std::uint64_t, std::uint32_t> pending_transition_; // sm -> transition
    std::map<std::uint64_t, double> signal_values_;          // signal -> value
    std::map<std::string, std::uint64_t> signal_by_name_;

    std::vector<Divergence> divergences_;
    EngineStats stats_;
    rt::SimTime last_event_t_ = 0;
    rt::SimTime half_life_ = 100 * rt::kMs;
};

} // namespace gmdf::core
