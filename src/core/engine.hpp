// The runtime debugger engine (paper Fig. 2/Fig. 3).
//
// An event-driven state machine: normally waiting for commands from the
// executing code, reacting by fanning typed events out to its observers
// (scene animators, the trace recorder, the divergence log, anything
// else), enforcing model-level breakpoints (pausing the target), and
// cross-checking observed behaviour against the design model (state-
// sequence consistency: the runtime detector for implementation errors
// introduced by model transformation).
//
// The engine owns no scene, no trace, and no divergence storage — it
// emits through EngineObserver only. It is itself a link::CommandSink,
// so any link::Transport can feed it directly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bindings.hpp"
#include "core/observer.hpp"
#include "expr/vm.hpp"
#include "link/commands.hpp"
#include "link/transport.hpp"
#include "meta/model.hpp"
#include "rt/des.hpp"

namespace gmdf::core {

/// Engine-facing aliases for the link-level control types.
using StepFilter = link::StepFilter;
using TargetControl = link::TargetControl;

struct EngineStats {
    std::uint64_t commands = 0;
    std::uint64_t reactions = 0;
    std::uint64_t breakpoints_hit = 0;
    std::uint64_t divergences = 0;
    // Control-plane counters (maintained by the proto layer; surfaced
    // through `query stats`).
    std::uint64_t requests = 0;       ///< protocol requests served
    std::uint64_t request_errors = 0; ///< requests answered with an error
    std::uint64_t events_emitted = 0; ///< asynchronous events queued
    std::uint64_t events_dropped = 0; ///< events evicted from a full queue
};

/// The debugger engine. Owns neither the design model nor its observers;
/// all must outlive it.
class DebuggerEngine final : public link::CommandSink {
public:
    explicit DebuggerEngine(const meta::Model& design);

    /// Registers an observer (non-owning; registration order = delivery
    /// order). Observers must not mutate the engine during a callback.
    void add_observer(EngineObserver* observer);

    /// Unregisters; false when it was not registered.
    bool remove_observer(EngineObserver* observer);

    [[nodiscard]] const std::vector<EngineObserver*>& observers() const {
        return observers_;
    }

    void set_bindings(CommandBindingTable bindings) { bindings_ = std::move(bindings); }
    [[nodiscard]] const CommandBindingTable& bindings() const { return bindings_; }

    void set_control(TargetControl control) { control_ = std::move(control); }

    /// Restricts model-level stepping (empty filter: any task's next
    /// release consumes the step).
    void set_step_filter(StepFilter filter) { step_filter_ = std::move(filter); }
    [[nodiscard]] const StepFilter& step_filter() const { return step_filter_; }

    /// Ingests one command observed at simulated time `t`: fans it out,
    /// applies bound reactions, checks consistency and breakpoints.
    void ingest(const link::Command& cmd, rt::SimTime t);

    /// Replay mode (time-travel catch-up): the engine processes commands
    /// exactly as live — mirrors, consistency checks, breakpoints,
    /// target pausing, data-plane counters — but fans events out only to
    /// observers whose replay_aware() is true, so the trace recorder,
    /// divergence log, and protocol event queue don't double-report the
    /// history being re-executed.
    void set_replay_mode(bool on) { replay_mode_ = on; }
    [[nodiscard]] bool replay_mode() const { return replay_mode_; }

    /// link::CommandSink: transports deliver straight into the engine.
    void deliver(const link::Command& cmd, rt::SimTime at) override { ingest(cmd, at); }

    [[nodiscard]] EngineState state() const { return state_; }

    /// Halts the target (engine to Paused); no-op when already paused.
    void pause();

    /// Resumes a paused target (engine back to Animating).
    void resume();

    /// Model-level step: asks the target to run one task release (honouring
    /// the step filter), then pauses again at the next command.
    void step();

    /// Breakpoint management; returns a handle usable with remove_breakpoint.
    int add_breakpoint(Breakpoint bp);
    bool remove_breakpoint(int handle);
    [[nodiscard]] const std::map<int, Breakpoint>& breakpoints() const { return breaks_; }

    /// Re-creates a breakpoint under its original handle (time-travel
    /// journal replay / snapshot restore). Replaces any breakpoint
    /// already holding the handle.
    void restore_breakpoint(int handle, Breakpoint bp);

    /// Serializes the engine's model-level mirror state: per-SM current
    /// states, pending transitions, signal values, engine FSM state,
    /// breakpoints, and the data-plane counters. The control-plane
    /// counters (requests, events) are host-side bookkeeping and are
    /// deliberately not part of a snapshot.
    void save_state(rt::StateWriter& w) const;

    /// Restores what save_state wrote, silently (no observer callbacks).
    void load_state(rt::StateReader& r);

    /// Most recent value per signal element id (from SIGNAL_UPDATE).
    [[nodiscard]] std::optional<double> signal_value(meta::ObjectId signal) const;

    /// Current state per state machine element id (from STATE_ENTER).
    [[nodiscard]] std::optional<meta::ObjectId> current_state(meta::ObjectId sm) const;

    [[nodiscard]] const EngineStats& stats() const { return stats_; }

    /// Control-plane accounting (called by proto::SessionController).
    void note_request() { ++stats_.requests; }
    void note_request_error() { ++stats_.request_errors; }
    void note_event() { ++stats_.events_emitted; }
    void note_event_dropped() { ++stats_.events_dropped; }

private:
    /// Delivers one callback to every observer eligible under the
    /// current mode (all of them live; replay-aware only during replay).
    template <class F> void notify(F&& deliver);

    void compile_predicate(int handle, const Breakpoint& bp);
    void set_state(EngineState next);
    void diverge(const link::Command& cmd, rt::SimTime t, std::string message);
    void check_consistency(const link::Command& cmd, rt::SimTime t);
    void check_breakpoints(const link::Command& cmd, rt::SimTime t);
    void hit_breakpoint(int handle, const Breakpoint& bp, const link::Command& cmd,
                        rt::SimTime t);

    const meta::Model* design_;
    std::vector<EngineObserver*> observers_;
    CommandBindingTable bindings_ = CommandBindingTable::defaults();
    TargetControl control_;
    StepFilter step_filter_;
    EngineState state_ = EngineState::Waiting;
    bool pause_on_next_command_ = false;
    bool replay_mode_ = false;

    std::map<int, Breakpoint> breaks_;
    /// Bytecode-compiled predicate per SignalPredicate breakpoint
    /// (absent for malformed predicates, which never fire). Signal names
    /// are resolved to dense slot indices once at add_breakpoint time;
    /// evaluation reads signal_slots_ directly — no name lookup, no
    /// boxing, no exceptions on the per-command hot path.
    std::map<int, expr::CompiledExpr> predicates_;
    int next_break_ = 1;

    std::map<std::uint64_t, std::uint64_t> current_state_;   // sm -> state
    std::map<std::uint64_t, std::uint32_t> pending_transition_; // sm -> transition
    /// Values for signal ids with no pre-indexed slot (generic models).
    std::map<std::uint64_t, double> signal_values_;
    /// Dense predicate slot table: slot i = i-th design-model signal,
    /// defaulting to 0.0 until the first SIGNAL_UPDATE (the same default
    /// the old per-name lookup supplied). slot_updated_ distinguishes
    /// "never seen" for signal_value().
    std::vector<double> signal_slots_;
    std::vector<bool> slot_updated_;
    std::unordered_map<std::uint64_t, int> slot_of_signal_;  // signal id -> slot
    std::map<std::string, int, std::less<>> signal_slot_by_name_;

    EngineStats stats_;
};

} // namespace gmdf::core
