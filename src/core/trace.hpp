// Execution trace recording and replay (paper: model-level animation may
// occur in milliseconds, so GDM records the execution trace; the user can
// replay it against a timing diagram).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/observer.hpp"
#include "link/commands.hpp"
#include "meta/model.hpp"
#include "render/timing.hpp"
#include "render/vcd.hpp"
#include "rt/des.hpp"

namespace gmdf::core {

struct TraceEvent {
    rt::SimTime t = 0;
    link::Command cmd;
};

/// Timestamped record of every command the debugger observed. Registers
/// on the engine as an observer (on_command) or is fed directly.
///
/// Optionally bounded: with a ring capacity set, the oldest events are
/// evicted once the recorder is full, so long-running sessions hold the
/// most recent window instead of growing without bound.
class TraceRecorder final : public EngineObserver {
public:
    void on_command(const link::Command& cmd, rt::SimTime t) override { record(cmd, t); }

    void record(const link::Command& cmd, rt::SimTime t) {
        if (capacity_ != 0 && events_.size() >= capacity_) {
            evict_front();
        }
        events_.push_back({t, cmd});
    }
    void clear() {
        events_.clear();
        dropped_ = 0;
        dropped_through_ = 0;
    }

    /// Drops events after simulated time `t` (rewind discards the
    /// abandoned future). Eviction accounting is untouched — only the
    /// newest entries go.
    void truncate_after(rt::SimTime t) {
        while (!events_.empty() && events_.back().t > t) events_.pop_back();
    }

    /// Ring capacity in events; 0 (the default) records unbounded.
    /// Shrinking below the current size evicts the oldest events.
    void set_capacity(std::size_t capacity) {
        capacity_ = capacity;
        while (capacity_ != 0 && events_.size() > capacity_) {
            evict_front();
        }
    }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Events evicted because the ring was full (since the last clear()).
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

    /// Timestamp of the newest evicted event: history at or before this
    /// time is gone from the ring. 0 when nothing was dropped.
    [[nodiscard]] rt::SimTime dropped_through() const { return dropped_through_; }

    /// Simulated time of the oldest retained event; nullopt when empty.
    /// With drops, [earliest_retained, back] is the replayable window.
    [[nodiscard]] std::optional<rt::SimTime> earliest_retained() const {
        if (events_.empty()) return std::nullopt;
        return events_.front().t;
    }

    [[nodiscard]] const std::deque<TraceEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t size() const { return events_.size(); }

    /// Events of one kind, in order.
    [[nodiscard]] std::vector<TraceEvent> filter(link::Cmd kind) const;

    /// Builds the timing diagram: one lane per state machine (value =
    /// state name) and one per signal (value = formatted number); element
    /// names resolved against the design model.
    [[nodiscard]] render::TimingDiagram timing_diagram(const meta::Model& design) const;

    /// Exports the trace as VCD (SM state indices + signal reals).
    [[nodiscard]] std::string to_vcd(const meta::Model& design) const;

private:
    void evict_front() {
        dropped_through_ = events_.front().t;
        events_.pop_front();
        ++dropped_;
    }

    std::deque<TraceEvent> events_;
    std::size_t capacity_ = 0;
    std::uint64_t dropped_ = 0;
    rt::SimTime dropped_through_ = 0;
};

} // namespace gmdf::core
