// Execution trace recording and replay (paper: model-level animation may
// occur in milliseconds, so GDM records the execution trace; the user can
// replay it against a timing diagram).
#pragma once

#include <string>
#include <vector>

#include "core/observer.hpp"
#include "link/commands.hpp"
#include "meta/model.hpp"
#include "render/timing.hpp"
#include "render/vcd.hpp"
#include "rt/des.hpp"

namespace gmdf::core {

struct TraceEvent {
    rt::SimTime t = 0;
    link::Command cmd;
};

/// Timestamped record of every command the debugger observed. Registers
/// on the engine as an observer (on_command) or is fed directly.
class TraceRecorder final : public EngineObserver {
public:
    void on_command(const link::Command& cmd, rt::SimTime t) override { record(cmd, t); }

    void record(const link::Command& cmd, rt::SimTime t) { events_.push_back({t, cmd}); }
    void clear() { events_.clear(); }

    [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t size() const { return events_.size(); }

    /// Events of one kind, in order.
    [[nodiscard]] std::vector<TraceEvent> filter(link::Cmd kind) const;

    /// Builds the timing diagram: one lane per state machine (value =
    /// state name) and one per signal (value = formatted number); element
    /// names resolved against the design model.
    [[nodiscard]] render::TimingDiagram timing_diagram(const meta::Model& design) const;

    /// Exports the trace as VCD (SM state indices + signal reals).
    [[nodiscard]] std::string to_vcd(const meta::Model& design) const;

private:
    std::vector<TraceEvent> events_;
};

} // namespace gmdf::core
