#include "core/bindings.hpp"

namespace gmdf::core {

const char* to_string(ReactionType r) {
    switch (r) {
    case ReactionType::None: return "none";
    case ReactionType::Highlight: return "highlight";
    case ReactionType::Pulse: return "pulse";
    case ReactionType::LabelUpdate: return "label_update";
    }
    return "?";
}

} // namespace gmdf::core
