#include "core/gdm.hpp"

#include "link/commands.hpp"

namespace gmdf::core {

namespace {

void build(GdmMeta& g) {
    auto& mm = g.mm;
    g.shape = &mm.add_enum("GdmShape",
                           {"Rectangle", "Circle", "Triangle", "Diamond", "Line", "Arrow"});
    g.reaction = &mm.add_enum("GdmReaction", {"highlight", "pulse", "label_update", "none"});
    g.command = &mm.add_enum("GdmCommand", link::event_command_names());

    g.element = &mm.add_class("GdmElement", /*is_abstract=*/true);
    mm.add_attribute(*g.element, meta::attr_string("name", true));
    // Identity of the input-model element this GDM element visualizes:
    // the key commands carry on the wire.
    mm.add_attribute(*g.element, meta::attr_int("source_id", true));

    g.node = &mm.add_class("GdmNode", false, g.element);
    mm.add_attribute(*g.node, meta::attr_enum("shape", *g.shape, true,
                                              meta::Value("Rectangle")));
    mm.add_attribute(*g.node, meta::attr_real("x", false, meta::Value(0.0)));
    mm.add_attribute(*g.node, meta::attr_real("y", false, meta::Value(0.0)));
    mm.add_attribute(*g.node, meta::attr_real("w", false, meta::Value(120.0)));
    mm.add_attribute(*g.node, meta::attr_real("h", false, meta::Value(48.0)));
    mm.add_attribute(*g.node, meta::attr_string("label"));
    mm.add_attribute(*g.node, meta::attr_int("group", false, meta::Value(0)));

    g.edge = &mm.add_class("GdmEdge", false, g.element);
    mm.add_reference(*g.edge, meta::ref_plain("from", *g.node, 1, 1));
    mm.add_reference(*g.edge, meta::ref_plain("to", *g.node, 1, 1));
    mm.add_attribute(*g.edge, meta::attr_string("label"));

    g.binding = &mm.add_class("GdmBinding");
    mm.add_attribute(*g.binding, meta::attr_enum("command", *g.command, true));
    mm.add_attribute(*g.binding, meta::attr_enum("reaction", *g.reaction, true));

    g.debug_model = &mm.add_class("DebugModel", false, g.element);
    mm.add_reference(*g.debug_model, meta::ref_contain("elements", *g.element));
    mm.add_reference(*g.debug_model, meta::ref_contain("bindings", *g.binding));
}

struct BuiltGdmMeta : GdmMeta {
    BuiltGdmMeta() { build(*this); }
};

} // namespace

const GdmMeta& gdm_metamodel() {
    static const BuiltGdmMeta instance;
    return instance;
}

} // namespace gmdf::core
