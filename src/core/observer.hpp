// The engine's event bus: typed observation of everything the debugger
// engine does.
//
// The engine itself is a pure event-driven state machine (paper Fig. 3);
// everything downstream of it — scene animation, trace recording, the
// divergence log, future remote clients — subscribes as an EngineObserver
// instead of being a baked-in field. All observers see the same event
// stream in registration order.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/bindings.hpp"
#include "link/commands.hpp"
#include "meta/model.hpp"
#include "rt/des.hpp"

namespace gmdf::core {

/// Engine FSM states (Fig. 3: initial waiting state, animating on
/// command arrival, paused on a model-level breakpoint).
enum class EngineState { Waiting, Animating, Paused };

[[nodiscard]] const char* to_string(EngineState s);

/// Model-level breakpoint kinds.
struct Breakpoint {
    enum class Kind {
        StateEnter,      ///< break when a specific state is entered
        TransitionFired, ///< break when a specific transition fires
        SignalPredicate, ///< break when an expression over signals is true
    };
    Kind kind = Kind::StateEnter;
    /// Element for StateEnter/TransitionFired.
    meta::ObjectId element;
    /// Expression over signal names for SignalPredicate (e.g. "speed > 40").
    std::string predicate;
    bool enabled = true;
    bool one_shot = false; ///< auto-remove after the first hit
};

/// Kebab-case kind name ("state-enter", "transition", "signal-predicate").
[[nodiscard]] const char* to_string(Breakpoint::Kind kind);

/// A detected inconsistency between observed behaviour and the design
/// model (the paper's "implementation error" class).
struct Divergence {
    rt::SimTime t = 0;
    link::Command cmd;
    std::string message;
};

/// Typed event sink the engine fans out to. Default implementations
/// ignore everything; override what you consume. Events per ingested
/// command arrive in a fixed order: on_command first, then any
/// on_divergence, then the bound on_reaction, then on_breakpoint_hit /
/// on_state_change as the engine FSM reacts.
class EngineObserver {
public:
    virtual ~EngineObserver() = default;

    /// Whether this observer also wants events while the engine is in
    /// replay mode (time-travel catch-up re-execution). Most observers
    /// must NOT see them — the trace recorder, divergence log, and
    /// protocol event queue would double-report history they already
    /// hold — so the default is false. Observers that compare or verify
    /// a re-execution (replay::TraceComparator) opt in.
    [[nodiscard]] virtual bool replay_aware() const { return false; }

    /// Every command the engine ingests, before any processing.
    virtual void on_command(const link::Command& cmd, rt::SimTime t) {
        (void)cmd;
        (void)t;
    }

    /// The non-None reaction bound to an ingested command (what a GDM
    /// front-end renders).
    virtual void on_reaction(const link::Command& cmd, const ReactionSpec& spec,
                             rt::SimTime t) {
        (void)cmd;
        (void)spec;
        (void)t;
    }

    /// A model-level breakpoint fired. `bp` is the breakpoint as hit;
    /// one-shot breakpoints are removed right after this callback.
    virtual void on_breakpoint_hit(int handle, const Breakpoint& bp,
                                   const link::Command& cmd, rt::SimTime t) {
        (void)handle;
        (void)bp;
        (void)cmd;
        (void)t;
    }

    /// Observed behaviour disagreed with the design model.
    virtual void on_divergence(const Divergence& d) { (void)d; }

    /// The engine FSM moved (Waiting -> Animating -> Paused -> ...).
    virtual void on_state_change(EngineState from, EngineState to) {
        (void)from;
        (void)to;
    }
};

/// Collects divergences (previously a baked-in engine field). Bounded
/// like core::TraceRecorder: a divergence storm on a long-lived session
/// must not grow memory without limit, so past the capacity the oldest
/// entries are evicted and counted.
class DivergenceLog final : public EngineObserver {
public:
    void on_divergence(const Divergence& d) override {
        if (capacity_ != 0 && divergences_.size() >= capacity_) {
            divergences_.pop_front();
            ++dropped_;
        }
        divergences_.push_back(d);
    }

    [[nodiscard]] const std::deque<Divergence>& divergences() const {
        return divergences_;
    }
    [[nodiscard]] bool empty() const { return divergences_.empty(); }
    [[nodiscard]] std::size_t size() const { return divergences_.size(); }
    void clear() {
        divergences_.clear();
        dropped_ = 0;
    }

    /// Ring capacity in entries; 0 records unbounded. Shrinking below
    /// the current size evicts the oldest entries.
    void set_capacity(std::size_t capacity) {
        capacity_ = capacity;
        while (capacity_ != 0 && divergences_.size() > capacity_) {
            divergences_.pop_front();
            ++dropped_;
        }
    }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Entries evicted because the ring was full (since the last clear).
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

    /// Drops divergences after simulated time `t` (rewind discards the
    /// abandoned future; entries are appended in time order). Eviction
    /// accounting is untouched — only the newest entries go.
    void truncate_after(rt::SimTime t) {
        while (!divergences_.empty() && divergences_.back().t > t)
            divergences_.pop_back();
    }

private:
    std::deque<Divergence> divergences_;
    std::size_t capacity_ = 4096; ///< generous for any real fault hunt
    std::uint64_t dropped_ = 0;
};

} // namespace gmdf::core
