// Model abstraction: user model -> Graphical Debugger Model (paper Fig. 4).
//
// The user pairs input-metamodel elements with GDM patterns ("the
// meta-model element list ... choose the corresponding GDM pattern ...
// displayed in the existing pairing list"). Once the mapping is finished,
// the GDM is obtained automatically: a gdm:: model plus a render scene
// whose item ids are input-model element ids (which is what commands on
// the wire carry).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "meta/model.hpp"
#include "render/layout.hpp"
#include "render/scene.hpp"

namespace gmdf::core {

/// How instances of one input metaclass are displayed.
struct GdmPattern {
    render::Shape shape = render::Shape::Rectangle;
    /// Edge patterns connect two mapped elements instead of drawing a node.
    bool as_edge = false;
    std::string from_ref = "from"; ///< reference naming the edge source
    std::string to_ref = "to";     ///< reference naming the edge target
    std::string label_attr = "name";
    double w = 120, h = 48;
};

/// The pairing list behind the abstraction guide UI.
class MappingTable {
public:
    /// Adds or replaces the pairing for `class_name`.
    void pair(const std::string& class_name, GdmPattern pattern);

    /// Removes a pairing; false when absent.
    bool unpair(const std::string& class_name);

    /// Pattern for a class, resolved through the inheritance chain;
    /// nullptr when neither the class nor any superclass is paired.
    [[nodiscard]] const GdmPattern* lookup(const meta::MetaClass& cls) const;

    /// The pairing list in insertion order (what the UI displays).
    [[nodiscard]] const std::vector<std::pair<std::string, GdmPattern>>& pairings() const {
        return pairings_;
    }

    [[nodiscard]] std::size_t size() const { return pairings_.size(); }

private:
    std::vector<std::pair<std::string, GdmPattern>> pairings_;
};

/// The ready-made mapping for COMDES design models (what the prototype
/// ships with): states as circles, transitions as arrows, function
/// blocks/actors as rectangles, signals as diamonds, connections as lines.
[[nodiscard]] MappingTable comdes_default_mapping();

/// Everything the abstraction step produces.
struct AbstractionResult {
    meta::Model gdm;            ///< serializable debug model (gdm metamodel)
    render::Scene scene;        ///< drawable form; item ids = source element ids
    std::size_t mapped_nodes = 0;
    std::size_t mapped_edges = 0;
    std::size_t skipped = 0;    ///< input objects without a pairing
};

/// Runs the abstraction: every input object whose class (or superclass)
/// is paired becomes a GDM node or edge. Edge endpoints must resolve to
/// mapped node elements or the edge is skipped. The scene is auto-laid-out.
[[nodiscard]] AbstractionResult abstract_model(const meta::Model& input,
                                               const MappingTable& mapping,
                                               const render::LayoutOptions& layout = {});

} // namespace gmdf::core
