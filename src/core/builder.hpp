// SessionBuilder: declarative construction of a DebugSession.
//
// The paper's workflow (Fig. 6) as a fluent pipeline —
// model -> mapping -> bindings -> transports -> observers:
//
//   auto session = core::SessionBuilder(sys.model())
//                      .bindings(core::CommandBindingTable::defaults())
//                      .active_uart(target)
//                      .breakpoint({core::Breakpoint::Kind::StateEnter, state})
//                      .build();
//
// build() may be called once; the builder is then spent.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codegen/loader.hpp"
#include "core/session.hpp"
#include "rt/target.hpp"

namespace gmdf::core {

class SessionBuilder {
public:
    /// The design model must outlive the built session.
    explicit SessionBuilder(const meta::Model& design) : design_(&design) {}

    /// Abstraction mapping (defaults to the COMDES mapping).
    SessionBuilder& mapping(MappingTable m);

    /// Command -> reaction bindings (defaults provided).
    SessionBuilder& bindings(CommandBindingTable b);

    /// Decaying highlight half-life of the default scene animator.
    SessionBuilder& highlight_half_life(rt::SimTime ns);

    /// Bounds the trace recorder to a ring of `capacity` events (0:
    /// unbounded, the default).
    SessionBuilder& trace_capacity(std::size_t capacity);

    /// Restricts model-level stepping to one actor.
    SessionBuilder& step_actor(std::string actor_name);

    /// Adds a model-level breakpoint.
    SessionBuilder& breakpoint(Breakpoint bp);

    /// Attaches a transport (any link::Transport implementation).
    SessionBuilder& transport(std::unique_ptr<link::Transport> t);

    /// Convenience: active RS-232 command interface on `target`.
    SessionBuilder& active_uart(rt::Target& target);

    /// Convenience: passive JTAG watch over `loaded` on `target`.
    SessionBuilder& passive_jtag(rt::Target& target, const codegen::LoadedSystem& loaded,
                                 rt::SimTime poll_period, double tck_hz = 1e6);

    /// Registers an extra engine observer (session-owned).
    SessionBuilder& observer(std::unique_ptr<EngineObserver> o);

    /// Builds the session: abstraction runs, observers register, then
    /// transports attach (in the order they were added).
    [[nodiscard]] std::unique_ptr<DebugSession> build();

private:
    const meta::Model* design_;
    std::optional<MappingTable> mapping_;
    std::optional<CommandBindingTable> bindings_;
    std::optional<rt::SimTime> half_life_;
    std::optional<std::size_t> trace_capacity_;
    std::optional<std::string> step_actor_;
    std::vector<Breakpoint> breakpoints_;
    std::vector<std::unique_ptr<link::Transport>> transports_;
    std::vector<std::unique_ptr<EngineObserver>> observers_;
    bool built_ = false;
};

} // namespace gmdf::core
