// DebugSession: the GMDF public facade.
//
// Mirrors the prototype workflow of paper Fig. 6:
//   1. provide the input model (+ the COMDES metamodel is implicit),
//   2. set up the abstraction mapping (defaults provided),
//   3. configure command->reaction bindings (defaults provided),
//   4. the GDM is generated automatically,
//   5. attach the running target — actively (RS-232 command interface)
//      or passively (JTAG watchpoints) — and the engine animates the GDM,
//      honours model-level breakpoints, and records the trace for replay.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codegen/loader.hpp"
#include "core/abstraction.hpp"
#include "core/engine.hpp"
#include "link/framing.hpp"
#include "link/jtag.hpp"
#include "link/watch.hpp"
#include "render/ascii.hpp"
#include "render/svg.hpp"
#include "rt/target.hpp"

namespace gmdf::core {

class DebugSession {
public:
    /// Builds the GDM from `design` with the default COMDES mapping.
    /// The design model must outlive the session.
    explicit DebugSession(const meta::Model& design);

    /// Same, with a user mapping (the Fig. 4 abstraction guide result).
    DebugSession(const meta::Model& design, const MappingTable& mapping);

    DebugSession(const DebugSession&) = delete;
    DebugSession& operator=(const DebugSession&) = delete;

    /// Attaches via the active command interface: the target's debug UART
    /// traffic is framed commands; engine control uses the host back
    /// channel. Call before Target::start().
    void attach_active(rt::Target& target);

    /// Attaches passively: a JTAG probe per node plus watch pollers on
    /// every mirrored SM/modal state and signal; observed memory changes
    /// are synthesized into the same command stream.
    /// `poll_period` bounds detection latency (bench C4).
    void attach_passive(rt::Target& target, const codegen::LoadedSystem& loaded,
                        rt::SimTime poll_period, double tck_hz = 1e6);

    [[nodiscard]] DebuggerEngine& engine() { return engine_; }
    [[nodiscard]] const DebuggerEngine& engine() const { return engine_; }
    [[nodiscard]] render::Scene& scene() { return abstraction_.scene; }
    [[nodiscard]] const meta::Model& gdm() const { return abstraction_.gdm; }
    [[nodiscard]] const AbstractionResult& abstraction() const { return abstraction_; }

    /// Serialized GDM text (the "initial GDM file").
    [[nodiscard]] std::string gdm_text() const;

    /// Current animation frame.
    [[nodiscard]] std::string render_ascii() const { return render::render_ascii(abstraction_.scene); }
    [[nodiscard]] std::string render_svg() const { return render::render_svg(abstraction_.scene); }

    /// Trace products.
    [[nodiscard]] render::TimingDiagram timing_diagram() const;
    [[nodiscard]] std::string vcd() const;

    /// Deterministic replay: re-animates the recorded trace on a fresh
    /// scene and returns one ASCII frame per `stride` events.
    [[nodiscard]] std::vector<std::string> replay_frames(std::size_t stride = 1) const;

    /// Restricts model-level stepping to one actor's task (empty: any
    /// task's next release consumes the step).
    void set_step_actor(const std::string& actor_name) { *step_filter_ = actor_name; }

    /// Decoder-level link statistics (active mode).
    [[nodiscard]] std::uint64_t corrupt_frames() const { return decoder_.corrupt_frames(); }

private:
    std::shared_ptr<std::string> step_filter_ = std::make_shared<std::string>();
    const meta::Model* design_;
    AbstractionResult abstraction_;
    DebuggerEngine engine_;
    link::FrameDecoder decoder_;

    // Passive-mode plumbing (one per node).
    struct PassiveNode {
        std::unique_ptr<link::JtagTap> tap;
        std::unique_ptr<link::JtagProbe> probe;
        std::unique_ptr<link::WatchPoller> poller;
    };
    std::vector<std::unique_ptr<PassiveNode>> passive_;
};

} // namespace gmdf::core
