// DebugSession: the GMDF public facade.
//
// Mirrors the prototype workflow of paper Fig. 6:
//   1. provide the input model (+ the COMDES metamodel is implicit),
//   2. set up the abstraction mapping (defaults provided),
//   3. configure command->reaction bindings (defaults provided),
//   4. the GDM is generated automatically,
//   5. attach the running target through a link::Transport — actively
//      (RS-232 command interface) or passively (JTAG watchpoints), or any
//      custom probe — and the engine fans events out to its observers:
//      the scene animator, the trace recorder, the divergence log, and
//      whatever else is registered.
//
// The control plane (pause/resume/step) routes through the session's
// proto::SessionController, so the C++ methods and the text protocol
// execute the exact same dispatcher handlers.
//
// Prefer SessionBuilder (core/builder.hpp) for declarative construction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/abstraction.hpp"
#include "core/animator.hpp"
#include "core/engine.hpp"
#include "core/observer.hpp"
#include "core/trace.hpp"
#include "link/transport.hpp"
#include "render/ascii.hpp"
#include "render/svg.hpp"

namespace gmdf::proto {
class SessionController;
} // namespace gmdf::proto

namespace gmdf::core {

class DebugSession {
public:
    /// Builds the GDM from `design` with the default COMDES mapping.
    /// The design model must outlive the session.
    explicit DebugSession(const meta::Model& design);

    /// Same, with a user mapping (the Fig. 4 abstraction guide result).
    DebugSession(const meta::Model& design, const MappingTable& mapping);

    DebugSession(const DebugSession&) = delete;
    DebugSession& operator=(const DebugSession&) = delete;

    ~DebugSession();

    /// Attaches a debug transport: the engine becomes its command sink
    /// and its control path drives pause/resume/step (with several
    /// transports the last attached one controls). Call before
    /// Target::start() so no events are missed. Returns the attached
    /// transport (owned by the session).
    link::Transport& attach(std::unique_ptr<link::Transport> transport);

    /// Registers an additional engine observer, owned by the session
    /// (e.g. a second SceneAnimator to animate another scene). Returns a
    /// reference to the registered observer.
    EngineObserver& add_observer(std::unique_ptr<EngineObserver> observer);

    /// Transports attached so far (session-owned).
    [[nodiscard]] const std::vector<std::unique_ptr<link::Transport>>& transports() const {
        return transports_;
    }

    [[nodiscard]] DebuggerEngine& engine() { return engine_; }
    [[nodiscard]] const DebuggerEngine& engine() const { return engine_; }
    [[nodiscard]] render::Scene& scene() { return abstraction_.scene; }
    [[nodiscard]] const meta::Model& design() const { return *design_; }
    [[nodiscard]] const meta::Model& gdm() const { return abstraction_.gdm; }
    [[nodiscard]] const AbstractionResult& abstraction() const { return abstraction_; }

    /// The session's protocol controller: the typed request/response
    /// surface (proto::Request -> proto::Response + queued proto::Events).
    /// Created on first use; owned by the session.
    [[nodiscard]] proto::SessionController& controller();

    /// The default scene animator (observer driving scene()).
    [[nodiscard]] SceneAnimator& animator() { return animator_; }

    /// The recorded command trace (observer; feeds replay/VCD/timing).
    [[nodiscard]] const TraceRecorder& trace() const { return trace_; }

    /// Mutable trace access for the time-travel layer (rewind truncates
    /// the abandoned future).
    [[nodiscard]] TraceRecorder& trace_recorder() { return trace_; }

    /// Mutable divergence-log access for the time-travel layer.
    [[nodiscard]] DivergenceLog& divergence_log() { return divergence_log_; }

    /// Re-derives the scene from the design model (identical geometry,
    /// all animation state cleared). The scene object's address is
    /// stable, so registered animators stay valid. Used by rewind before
    /// re-animating the surviving trace.
    void reset_scene();

    /// Bounds the trace recorder to a ring of `capacity` events (0:
    /// unbounded, the default). Long-running hub sessions set this so the
    /// trace holds the most recent window instead of growing forever.
    void set_trace_capacity(std::size_t capacity) { trace_.set_capacity(capacity); }

    /// Divergences between observed behaviour and the design model.
    [[nodiscard]] const std::deque<Divergence>& divergences() const {
        return divergence_log_.divergences();
    }

    /// Serialized GDM text (the "initial GDM file").
    [[nodiscard]] std::string gdm_text() const;

    /// Current animation frame.
    [[nodiscard]] std::string render_ascii() const { return render::render_ascii(abstraction_.scene); }
    [[nodiscard]] std::string render_svg() const { return render::render_svg(abstraction_.scene); }

    /// Trace products.
    [[nodiscard]] render::TimingDiagram timing_diagram() const;
    [[nodiscard]] std::string vcd() const;

    /// Deterministic replay: re-animates the recorded trace on a fresh
    /// scene and returns one ASCII frame per `stride` events.
    [[nodiscard]] std::vector<std::string> replay_frames(std::size_t stride = 1) const;

    /// Execution control, routed through the protocol dispatcher (the
    /// same handlers `gmdf_dbg` drives). All are safe no-ops when the
    /// engine is not in a state to honour them.
    void pause();
    void resume();
    void step(const std::string& actor = {});

    /// Restricts model-level stepping to one actor's task (empty: any
    /// task's next release consumes the step).
    void set_step_actor(const std::string& actor_name);

    /// Corrupt frames across all attached transports (active mode).
    [[nodiscard]] std::uint64_t corrupt_frames() const;

private:
    const meta::Model* design_;
    MappingTable mapping_; ///< kept so reset_scene() re-derives identically
    AbstractionResult abstraction_;
    DebuggerEngine engine_;
    SceneAnimator animator_;
    TraceRecorder trace_;
    DivergenceLog divergence_log_;
    std::vector<std::unique_ptr<EngineObserver>> observers_;
    std::vector<std::unique_ptr<link::Transport>> transports_;
    // Declared last: its destructor unsubscribes from engine_.
    std::unique_ptr<proto::SessionController> controller_;
};

} // namespace gmdf::core
