#include "core/transports.hpp"

#include "comdes/metamodel.hpp"

namespace gmdf::core {

std::unique_ptr<link::ActiveUartTransport> make_active_uart_transport(rt::Target& target) {
    return std::make_unique<link::ActiveUartTransport>(target);
}

std::unique_ptr<link::PassiveJtagTransport>
make_passive_jtag_transport(rt::Target& target, const codegen::LoadedSystem& loaded,
                            const meta::Model& design, rt::SimTime poll_period,
                            double tck_hz) {
    const auto& c = comdes::comdes_metamodel();
    std::vector<link::WatchSpec> specs;

    // SM / modal state words, per owning node. Modal FBs mirror their
    // mode the same way SMs mirror their state; the command kind follows
    // the element class.
    for (const codegen::LoadedActor& la : loaded.actors) {
        for (const codegen::ElementMemory& em : la.elements) {
            link::WatchSpec spec;
            spec.node = la.node;
            spec.addr = em.addr;
            spec.kind = link::WatchSpec::Kind::Indexed;
            const meta::MObject* element = design.get(em.element);
            bool is_modal = element != nullptr &&
                            element->meta_class().is_subtype_of(*c.modal_fb);
            spec.cmd = is_modal ? link::Cmd::ModeChange : link::Cmd::StateEnter;
            spec.element = static_cast<std::uint32_t>(em.element.raw);
            spec.indexed.reserve(em.indexed.size());
            for (meta::ObjectId id : em.indexed)
                spec.indexed.push_back(static_cast<std::uint32_t>(id.raw));
            specs.push_back(std::move(spec));
        }
    }

    // Signal mirrors: watch on node 0 only (all replicas converge; one
    // watch avoids duplicate events).
    if (target.node_count() > 0) {
        rt::Node& node0 = target.node(0);
        for (std::size_t i = 0; i < loaded.signal_ids.size(); ++i) {
            const std::string sym = codegen::LoadedSystem::signal_symbol(
                target.signals().name(static_cast<int>(i)));
            if (!node0.memory().has_symbol(sym)) continue;
            link::WatchSpec spec;
            spec.node = 0;
            spec.addr = node0.memory().address_of(sym);
            spec.kind = link::WatchSpec::Kind::Value;
            spec.cmd = link::Cmd::SignalUpdate;
            spec.element = static_cast<std::uint32_t>(loaded.signal_ids[i].raw);
            specs.push_back(std::move(spec));
        }
    }

    // Initial state entries, synthesized from the design model (invisible
    // to a change-based watch: the mirror word is primed with the initial
    // index).
    std::vector<link::Command> initial;
    for (const codegen::LoadedActor& la : loaded.actors) {
        for (const codegen::ElementMemory& em : la.elements) {
            const meta::MObject* element = design.get(em.element);
            if (element == nullptr || !element->meta_class().is_subtype_of(*c.sm_fb))
                continue;
            initial.push_back({link::Cmd::StateEnter,
                               static_cast<std::uint32_t>(em.element.raw),
                               static_cast<std::uint32_t>(element->ref("initial").raw),
                               0.0f});
        }
    }

    return std::make_unique<link::PassiveJtagTransport>(
        target, std::move(specs), std::move(initial), poll_period, tck_hz);
}

} // namespace gmdf::core
