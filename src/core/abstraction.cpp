#include "core/abstraction.hpp"

#include "core/gdm.hpp"

namespace gmdf::core {

using meta::MObject;
using meta::Model;
using meta::ObjectId;

void MappingTable::pair(const std::string& class_name, GdmPattern pattern) {
    for (auto& [name, p] : pairings_) {
        if (name == class_name) {
            p = pattern;
            return;
        }
    }
    pairings_.emplace_back(class_name, pattern);
}

bool MappingTable::unpair(const std::string& class_name) {
    for (auto it = pairings_.begin(); it != pairings_.end(); ++it) {
        if (it->first == class_name) {
            pairings_.erase(it);
            return true;
        }
    }
    return false;
}

const GdmPattern* MappingTable::lookup(const meta::MetaClass& cls) const {
    for (const meta::MetaClass* c = &cls; c != nullptr; c = c->super()) {
        for (const auto& [name, p] : pairings_)
            if (name == c->name()) return &p;
    }
    return nullptr;
}

MappingTable comdes_default_mapping() {
    MappingTable t;
    GdmPattern state{render::Shape::Circle, false, "", "", "name", 90, 44};
    t.pair("State", state);

    GdmPattern transition;
    transition.as_edge = true;
    transition.shape = render::Shape::Arrow;
    transition.label_attr = "event";
    t.pair("Transition", transition);

    GdmPattern sm{render::Shape::Rectangle, false, "", "", "name", 130, 50};
    t.pair("StateMachineFB", sm);
    t.pair("ModalFB", sm);
    t.pair("CompositeFB", sm);
    GdmPattern mode{render::Shape::Circle, false, "", "", "name", 80, 40};
    t.pair("Mode", mode);

    GdmPattern fb{render::Shape::Rectangle, false, "", "", "name", 110, 44};
    t.pair("BasicFB", fb);

    GdmPattern conn;
    conn.as_edge = true;
    conn.shape = render::Shape::Line;
    conn.label_attr = "from_pin";
    t.pair("Connection", conn);

    GdmPattern actor{render::Shape::Rectangle, false, "", "", "name", 150, 56};
    t.pair("Actor", actor);

    GdmPattern signal{render::Shape::Diamond, false, "", "", "name", 95, 42};
    t.pair("Signal", signal);
    return t;
}

AbstractionResult abstract_model(const Model& input, const MappingTable& mapping,
                                 const render::LayoutOptions& layout) {
    const GdmMeta& g = gdm_metamodel();
    AbstractionResult result{Model(g.mm), {}, 0, 0, 0};

    auto& root = result.gdm.create(*g.debug_model);
    root.set_attr("name", meta::Value("debug_model"));
    root.set_attr("source_id", meta::Value(static_cast<std::int64_t>(0)));

    std::map<std::uint64_t, ObjectId> gdm_node_of; // source id -> GdmNode

    auto label_of = [&](const MObject& obj, const GdmPattern& p) -> std::string {
        if (obj.meta_class().find_attribute(p.label_attr) != nullptr) {
            const meta::Value& v = obj.attr(p.label_attr);
            if (v.is_string()) return v.as_string();
            if (!v.is_null()) return v.to_string();
        }
        return obj.meta_class().name();
    };

    // Pass 1: nodes.
    for (ObjectId id : input.ids()) {
        const MObject& obj = input.at(id);
        const GdmPattern* p = mapping.lookup(obj.meta_class());
        if (p == nullptr) {
            ++result.skipped;
            continue;
        }
        if (p->as_edge) continue;
        auto& gn = result.gdm.create(*g.node);
        gn.set_attr("name", meta::Value(obj.name().empty() ? obj.meta_class().name()
                                                           : obj.name()));
        gn.set_attr("source_id", meta::Value(static_cast<std::int64_t>(id.raw)));
        gn.set_attr("shape", meta::Value(render::to_string(p->shape)));
        gn.set_attr("w", meta::Value(p->w));
        gn.set_attr("h", meta::Value(p->h));
        gn.set_attr("label", meta::Value(label_of(obj, *p)));
        root.add_ref("elements", gn.id());
        gdm_node_of[id.raw] = gn.id();

        render::SceneNode sn;
        sn.id = id.raw;
        sn.shape = p->shape;
        sn.rect = {0, 0, p->w, p->h};
        sn.label = label_of(obj, *p);
        const MObject* container = input.container_of(id);
        if (container != nullptr && mapping.lookup(container->meta_class()) != nullptr)
            sn.group = container->id().raw;
        result.scene.add_node(sn);
        ++result.mapped_nodes;
    }

    // Pass 2: edges (endpoints must both be mapped nodes).
    for (ObjectId id : input.ids()) {
        const MObject& obj = input.at(id);
        const GdmPattern* p = mapping.lookup(obj.meta_class());
        if (p == nullptr || !p->as_edge) continue;
        ObjectId from = obj.ref(p->from_ref);
        ObjectId to = obj.ref(p->to_ref);
        auto fi = gdm_node_of.find(from.raw);
        auto ti = gdm_node_of.find(to.raw);
        if (fi == gdm_node_of.end() || ti == gdm_node_of.end()) {
            ++result.skipped;
            continue;
        }
        auto& ge = result.gdm.create(*g.edge);
        ge.set_attr("name", meta::Value("edge_" + std::to_string(id.raw)));
        ge.set_attr("source_id", meta::Value(static_cast<std::int64_t>(id.raw)));
        ge.set_ref("from", fi->second);
        ge.set_ref("to", ti->second);
        ge.set_attr("label", meta::Value(label_of(obj, *p)));
        root.add_ref("elements", ge.id());

        render::SceneEdge se;
        se.id = id.raw;
        se.from = from.raw;
        se.to = to.raw;
        se.label = label_of(obj, *p);
        if (se.label == obj.meta_class().name()) se.label.clear();
        result.scene.add_edge(se);
        ++result.mapped_edges;
    }

    // Geometry back-annotation after layout.
    render::auto_layout(result.scene, layout);
    for (auto& [src, gdm_id] : gdm_node_of) {
        const render::SceneNode* sn = result.scene.find_node(src);
        MObject& gn = result.gdm.at(gdm_id);
        gn.set_attr("x", meta::Value(sn->rect.x));
        gn.set_attr("y", meta::Value(sn->rect.y));
    }
    return result;
}

} // namespace gmdf::core
