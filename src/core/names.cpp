#include "core/names.hpp"

#include <sstream>

namespace gmdf::core {

std::string element_label(const meta::Model& model, std::uint64_t raw) {
    const meta::MObject* obj = model.get(meta::ObjectId{raw});
    if (obj == nullptr) return "#" + std::to_string(raw);
    std::string n = obj->name();
    return n.empty() ? obj->meta_class().name() + "#" + std::to_string(raw) : n;
}

std::string value_label(double v) {
    std::ostringstream os;
    os.precision(4);
    os << v;
    return os.str();
}

} // namespace gmdf::core
