#include "net/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "proto/message.hpp"

namespace gmdf::net {

namespace {

void set_nodelay(int fd) {
    int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_error(std::string* error, std::string what) {
    if (error != nullptr) *error = std::move(what);
}

/// Resolves and dials host:port; -1 with errno-flavoured *error on
/// failure. Shared by the first connect and every redial.
int dial(const std::string& host, std::uint16_t port, std::string* error) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
    if (rc != 0) {
        set_error(error, "resolve " + host + ": " + gai_strerror(rc));
        return -1;
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        set_error(error, "connect " + host + ":" + std::to_string(port) + ": " +
                             std::strerror(errno));
        return -1;
    }
    set_nodelay(fd);
    return fd;
}

} // namespace

bool split_host_port(std::string_view spec, std::string& host, std::uint16_t& port) {
    std::size_t colon = spec.rfind(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= spec.size())
        return false;
    std::uint32_t value = 0;
    for (char c : spec.substr(colon + 1)) {
        if (c < '0' || c > '9') return false;
        value = value * 10 + static_cast<std::uint32_t>(c - '0');
        if (value > 65535) return false;
    }
    if (value == 0) return false;
    host.assign(spec.substr(0, colon));
    port = static_cast<std::uint16_t>(value);
    return true;
}

std::unique_ptr<Channel> Channel::connect(const std::string& host, std::uint16_t port,
                                          std::string* error) {
    int fd = dial(host, port, error);
    if (fd < 0) return nullptr;

    std::unique_ptr<Channel> channel(new Channel(fd));
    channel->host_ = host;
    channel->port_ = port;
    std::string handshake(kMagic);
    handshake += encode_frame(FrameType::Hello, hello_payload());
    if (!channel->send_all(handshake)) {
        set_error(error, "handshake send failed: " + std::string(std::strerror(errno)));
        return nullptr;
    }
    Frame reply;
    std::string read_error;
    if (!channel->read_frame(reply, &read_error)) {
        set_error(error, "handshake: " + read_error);
        return nullptr;
    }
    if (reply.type == FrameType::Error) {
        set_error(error, "server refused: " + reply.payload);
        return nullptr;
    }
    if (reply.type != FrameType::Hello ||
        parse_hello(reply.payload) != kProtocolVersion) {
        set_error(error, "unexpected handshake reply");
        return nullptr;
    }
    return channel;
}

Channel::~Channel() { shutdown(); }

void Channel::shutdown() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool Channel::send_all(std::string_view bytes) {
    while (!bytes.empty()) {
        ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        if (n > 0) {
            bytes.remove_prefix(static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        shutdown();
        return false;
    }
    return true;
}

bool Channel::read_frame(Frame& out, std::string* error) {
    char chunk[16384];
    while (true) {
        FrameReader::Status st = frames_.next(out);
        if (st == FrameReader::Status::Ready) return true;
        if (st == FrameReader::Status::Error) {
            set_error(error, frames_.error());
            shutdown();
            return false;
        }
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            frames_.feed({chunk, static_cast<std::size_t>(n)});
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        set_error(error, n == 0 ? "connection closed by server"
                                : std::string(std::strerror(errno)));
        shutdown();
        return false;
    }
}

std::optional<proto::Response> Channel::roundtrip(std::string_view line,
                                                  std::string* error) {
    auto transport_error = [](std::string message) {
        return proto::Response::make_error(proto::ErrorCode::Internal,
                                           "network: " + std::move(message));
    };
    if (!send_all(encode_frame(FrameType::Request, line))) {
        set_error(error, "send failed");
        return std::nullopt;
    }
    Frame frame;
    std::string read_error;
    while (true) {
        if (!read_frame(frame, &read_error)) {
            set_error(error, read_error);
            return std::nullopt;
        }
        switch (frame.type) {
        case FrameType::Event:
            events_.push_back(std::move(frame.payload));
            break;
        case FrameType::Ping:
            break; // heartbeat echo arriving late; ignore
        case FrameType::Response: {
            auto resp = proto::parse_response(frame.payload);
            if (!resp.has_value())
                return transport_error("unparsable response frame");
            last_done_ = false;
            return *resp;
        }
        case FrameType::Error:
            // The server diagnosed us and will close; redialing with the
            // same traffic would only repeat the offence — not retryable.
            shutdown();
            return transport_error("protocol error: " + frame.payload);
        case FrameType::Done:
            break; // stray marker (skipped drain); keep reading
        default:
            shutdown();
            return transport_error("unexpected frame from server");
        }
    }
}

void Channel::note_session(const proto::Response& resp) {
    if (!resp.ok()) return;
    for (const std::string& line : resp.body) {
        std::string_view v(line);
        if (v.starts_with("current ")) {
            v.remove_prefix(8);
            session_ = v == "(none)" ? std::string() : std::string(v);
        } else if (v.starts_with("attached ")) {
            v.remove_prefix(9);
            session_ = std::string(v.substr(0, v.find(' ')));
        }
    }
}

bool Channel::reconnect_once() {
    shutdown();
    frames_ = FrameReader{1 << 20}; // a torn frame must not poison the redial
    last_done_ = true;
    int fd = dial(host_, port_, nullptr);
    if (fd < 0) return false;
    fd_ = fd;
    std::string handshake(kMagic);
    handshake += encode_frame(FrameType::Hello, hello_payload());
    if (!send_all(handshake)) return false;
    Frame reply;
    if (!read_frame(reply, nullptr)) return false;
    if (reply.type != FrameType::Hello ||
        parse_hello(reply.payload) != kProtocolVersion) {
        shutdown(); // includes a busy Error frame: the server shed us
        return false;
    }
    // Resume where the old connection was: a fresh server context starts
    // on the hub's root session, not ours.
    if (!session_.empty()) {
        std::optional<proto::Response> attached = roundtrip("attach " + session_,
                                                            nullptr);
        if (!attached.has_value()) return false;
        if (!last_done_) (void)drain_event_lines();
        // The session may be gone (closed while we were away): the
        // channel is still usable, just unattached.
        if (!attached->ok()) session_.clear();
    }
    return true;
}

bool Channel::try_reconnect() {
    using clock = std::chrono::steady_clock;
    const clock::time_point start = clock::now();
    int delay = reconnect_.base_delay_ms;
    for (int attempt = 0; attempt < reconnect_.max_attempts; ++attempt) {
        if (attempt > 0) {
            // Full jitter over [delay/2, delay]: deterministic per seed,
            // decorrelated across clients.
            jitter_state_ = jitter_state_ * 1664525u + 1013904223u;
            int lo = delay / 2;
            int span = delay - lo + 1;
            int sleep_ms = lo + static_cast<int>(jitter_state_ %
                                                 static_cast<std::uint32_t>(span));
            std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
            delay = std::min(delay * 2, reconnect_.max_delay_ms);
        }
        if (reconnect_once()) {
            ++reconnects_;
            reconnect_time_us_ += std::chrono::duration_cast<std::chrono::microseconds>(
                                      clock::now() - start)
                                      .count();
            return true;
        }
    }
    return false;
}

proto::Response Channel::execute_line(std::string_view line) {
    auto transport_error = [](std::string message) {
        return proto::Response::make_error(proto::ErrorCode::Internal,
                                           "network: " + std::move(message));
    };
    if (fd_ < 0 && !(reconnect_enabled_ && try_reconnect()))
        return transport_error("not connected");

    // A caller that skipped drain_event_lines() leaves the previous
    // request's tail on the wire; consume through its done marker first.
    if (!last_done_) (void)drain_event_lines();
    if (fd_ < 0 && !(reconnect_enabled_ && try_reconnect()))
        return transport_error("not connected");

    std::string error;
    std::optional<proto::Response> resp = roundtrip(line, &error);
    if (!resp.has_value() && reconnect_enabled_ && try_reconnect()) {
        // At-least-once: the cut may have landed after the server
        // executed the request but before the response reached us — the
        // retry re-runs it (see the class comment for why that is safe
        // for fleet workloads).
        resp = roundtrip(line, &error);
    }
    if (!resp.has_value())
        return transport_error(error.empty() ? "send failed" : error);
    note_session(*resp);
    return *resp;
}

bool Channel::ping() {
    if (fd_ < 0) return false;
    if (!last_done_) (void)drain_event_lines();
    if (fd_ < 0) return false;
    if (!send_all(encode_frame(FrameType::Ping, "hb"))) return false;
    Frame frame;
    while (read_frame(frame, nullptr)) {
        if (frame.type == FrameType::Ping) return true;
        if (frame.type == FrameType::Event) {
            events_.push_back(std::move(frame.payload));
            continue;
        }
        break; // anything else out of band is a protocol violation
    }
    shutdown();
    return false;
}

std::vector<std::string> Channel::drain_event_lines() {
    if (fd_ >= 0 && !last_done_) {
        Frame frame;
        std::string error;
        while (true) {
            if (!read_frame(frame, &error)) break;
            if (frame.type == FrameType::Done) break;
            if (frame.type == FrameType::Event)
                events_.push_back(std::move(frame.payload));
            else
                break; // response frames never precede the done marker
        }
        last_done_ = true;
    }
    std::vector<std::string> out(events_.begin(), events_.end());
    events_.clear();
    return out;
}

} // namespace gmdf::net
