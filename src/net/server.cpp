#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "proto/message.hpp"

namespace gmdf::net {

namespace {

std::string_view trim_view(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

bool set_nonblocking(int fd) {
    int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
    int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// HTTP detection magic: like kMagic, exactly 4 bytes, so the Detect
/// buffer decides among frame / HTTP / line at the same prefix length.
constexpr std::string_view kHttpGet = "GET ";

} // namespace

Server::Server(hub::HubController& hub, ServerConfig config)
    : hub_(hub), config_(std::move(config)) {
    obs::Registry& reg = obs::registry();
    obs_.accepted = &reg.counter("net.accepted");
    obs_.closed = &reg.counter("net.closed");
    obs_.protocol_errors = &reg.counter("net.protocol_errors");
    obs_.pings = &reg.counter("net.pings");
    obs_.scrapes = &reg.counter("net.scrapes");
    obs_.bytes_in = &reg.counter("net.bytes_in");
    obs_.bytes_out = &reg.counter("net.bytes_out");
    const auto per_codec = [&reg](std::string_view name) {
        return PerCodec{&reg.counter(name, "codec", "frame"),
                        &reg.counter(name, "codec", "line")};
    };
    obs_.requests = per_codec("net.requests");
    obs_.events_sent = per_codec("net.events_sent");
    obs_.events_dropped = per_codec("net.events_dropped");
    obs_.backpressure_pauses = per_codec("net.backpressure_pauses");
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
    auto fail = [&](const std::string& what) {
        if (error != nullptr) *error = what + ": " + std::strerror(errno);
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return fail("socket");
    int one = 1;
    (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton " + config_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        return fail("bind " + config_.host + ":" + std::to_string(config_.port));
    if (::listen(listen_fd_, 1024) != 0) return fail("listen");
    if (!set_nonblocking(listen_fd_)) return fail("fcntl");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    hub_.set_event_sink([this](int session_id, std::string_view session_name,
                               const std::string& line) {
        fan_out_event(session_id, session_name, line);
    });
    hub_.set_net_stats_provider([this] { return stats_lines(); });
    // Server-state gauges the inline counters can't carry (current
    // connection count, refusals). Scrapes run on the serving thread, so
    // reading stats_ here is race-free.
    obs::registry().add_collector(this, [this](obs::Registry& reg) {
        reg.gauge("net.connections").set(static_cast<std::int64_t>(connections_.size()));
        reg.gauge("net.refused").set(static_cast<std::int64_t>(stats_.refused));
        reg.gauge("net.idle_closed").set(static_cast<std::int64_t>(stats_.idle_closed));
        reg.gauge("net.busy_shed").set(static_cast<std::int64_t>(stats_.busy_shed));
    });
    return true;
}

void Server::stop() {
    obs::registry().remove_collector(this);
    while (!connections_.empty()) close_connection(connections_.size() - 1);
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        hub_.set_event_sink(nullptr);
        hub_.set_net_stats_provider(nullptr);
    }
}

int Server::poll_once(int timeout_ms) {
    if (listen_fd_ < 0) return -1;

    std::vector<pollfd> fds;
    fds.reserve(connections_.size() + 1);
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : connections_) {
        short events = 0;
        if (!conn->draining) events |= POLLIN;
        if (conn->out_pos < conn->outbuf.size()) events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
    }

    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    // EINTR is a signal, not a failure: report an idle cycle and let the
    // caller's loop (gmdf_serve's run()) decide whether to keep going.
    if (ready < 0) return errno == EINTR ? 0 : -1;

    std::vector<std::size_t> dead;
    if (ready > 0) {
        if ((fds[0].revents & POLLIN) != 0) accept_pending();

        // Connections may be appended by accept_pending(); only the
        // first fds.size()-1 existed when poll() sampled, and indices
        // line up because closes are deferred to the sweep below.
        for (std::size_t i = 1; i < fds.size(); ++i) {
            Connection& conn = *connections_[i - 1];
            short re = fds[i].revents;
            if (re == 0) continue;
            if ((re & (POLLERR | POLLNVAL)) != 0) {
                dead.push_back(i - 1);
                continue;
            }
            if ((re & POLLIN) != 0 && !read_connection(conn)) {
                dead.push_back(i - 1);
                continue;
            }
            if ((re & POLLHUP) != 0 && conn.out_pos >= conn.outbuf.size()) {
                dead.push_back(i - 1);
                continue;
            }
        }
    }

    // Idle sweep: runs on quiet cycles too — an abandoned connection
    // with no traffic at all must still age out.
    if (config_.idle_timeout_ms > 0) {
        const auto now = std::chrono::steady_clock::now();
        const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
        for (std::size_t i = 0; i < connections_.size(); ++i) {
            Connection& conn = *connections_[i];
            if (conn.fd < 0 || conn.draining) continue;
            if (now - conn.last_activity >= limit) {
                ++stats_.idle_closed;
                dead.push_back(i);
            }
        }
    }

    // Resume paused fan-out where the pipe has drained, then push
    // whatever is writable without waiting for the next POLLOUT.
    for (std::size_t i = 0; i < connections_.size(); ++i) {
        Connection& conn = *connections_[i];
        if (conn.fd < 0) continue;
        flush_pending_events(conn);
        if (conn.out_pos < conn.outbuf.size() && !write_connection(conn))
            dead.push_back(i);
        else if (conn.draining && conn.out_pos >= conn.outbuf.size())
            dead.push_back(i);
    }

    // Close in descending index order so earlier indices stay valid.
    std::sort(dead.begin(), dead.end());
    dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
    for (std::size_t k = dead.size(); k-- > 0;) close_connection(dead[k]);
    return ready;
}

void Server::run(const std::atomic<bool>& stop_flag, int timeout_ms) {
    while (!stop_flag.load(std::memory_order_relaxed)) poll_once(timeout_ms);
}

void Server::accept_pending() {
    while (true) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
            return; // transient (ECONNABORTED, EMFILE, ...): retry next cycle
        }
        if (static_cast<int>(connections_.size()) >= config_.max_connections) {
            ++stats_.refused;
            ::close(fd);
            continue;
        }
        if (!set_nonblocking(fd)) {
            ::close(fd);
            continue;
        }
        set_nodelay(fd);
        auto conn =
            std::make_unique<Connection>(config_.max_frame_payload, config_.max_line);
        conn->fd = fd;
        conn->id = next_conn_id_++;
        conn->last_activity = std::chrono::steady_clock::now();
        // A fresh client starts on the same session the hub's own REPL
        // would: the seed (root) current.
        conn->ctx.current = hub_.root_context().current;
        // Over the high-water mark the client is still owed a structured
        // "busy" — which needs its codec, so the shed reply waits for
        // the first bytes (magic or a line) before drain+close.
        if (config_.accept_high_water > 0 &&
            static_cast<int>(connections_.size()) >= config_.accept_high_water) {
            conn->shed = true;
            ++stats_.busy_shed;
        }
        connections_.push_back(std::move(conn));
        ++stats_.accepted;
        obs_.accepted->add();
    }
}

bool Server::read_connection(Connection& conn) {
    char chunk[16384];
    while (true) {
        ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            conn.bytes_in += static_cast<std::uint64_t>(n);
            stats_.bytes_in += static_cast<std::uint64_t>(n);
            obs_.bytes_in->add(static_cast<std::uint64_t>(n));
            conn.last_activity = std::chrono::steady_clock::now();
            switch (conn.mode) {
            case Connection::Mode::Detect:
                conn.detect_buf.append(chunk, static_cast<std::size_t>(n));
                if (conn.detect_buf.size() >= kMagic.size()) {
                    // Both magics are 4 bytes: "GMDF" selects the frame
                    // codec, "GET " one-shot HTTP (the /metrics scrape
                    // surface, which keeps its buffered bytes), anything
                    // else the line codec.
                    if (std::string_view(conn.detect_buf).starts_with(kMagic)) {
                        conn.mode = Connection::Mode::Frame;
                        conn.frames.feed(
                            std::string_view(conn.detect_buf).substr(kMagic.size()));
                        conn.detect_buf.clear();
                    } else if (std::string_view(conn.detect_buf).starts_with(kHttpGet)) {
                        conn.mode = Connection::Mode::Http;
                    } else {
                        conn.mode = Connection::Mode::Line;
                        conn.lines.feed(conn.detect_buf);
                        conn.detect_buf.clear();
                    }
                } else if (!kMagic.starts_with(conn.detect_buf) &&
                           !kHttpGet.starts_with(conn.detect_buf)) {
                    conn.mode = Connection::Mode::Line;
                    conn.lines.feed(conn.detect_buf);
                    conn.detect_buf.clear();
                }
                break;
            case Connection::Mode::Frame:
                conn.frames.feed({chunk, static_cast<std::size_t>(n)});
                break;
            case Connection::Mode::Line:
                conn.lines.feed({chunk, static_cast<std::size_t>(n)});
                break;
            case Connection::Mode::Http:
                conn.detect_buf.append(chunk, static_cast<std::size_t>(n));
                break;
            }
            if (!process_input(conn)) return true; // draining: flush, then close
            continue;
        }
        if (n == 0) return false; // peer closed: release and tear down
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
    }
}

bool Server::process_input(Connection& conn) {
    if (conn.shed && conn.mode != Connection::Mode::Detect) {
        shed_busy(conn);
        return false; // drain the busy reply, then close
    }
    if (conn.mode == Connection::Mode::Http) return process_http(conn);
    if (conn.mode == Connection::Mode::Frame) {
        Frame frame;
        while (true) {
            FrameReader::Status st = conn.frames.next(frame);
            if (st == FrameReader::Status::NeedMore) return true;
            if (st == FrameReader::Status::Error) {
                protocol_error(conn, conn.frames.error());
                return false;
            }
            if (!conn.hello_done) {
                int version = frame.type == FrameType::Hello
                                  ? parse_hello(frame.payload)
                                  : -1;
                if (version < 0) {
                    protocol_error(conn, "expected hello '" + hello_payload() +
                                             "' as the first frame");
                    return false;
                }
                if (version != kProtocolVersion) {
                    protocol_error(conn, "protocol version " +
                                             std::to_string(version) +
                                             " unsupported (server speaks " +
                                             std::to_string(kProtocolVersion) + ")");
                    return false;
                }
                conn.hello_done = true;
                queue_bytes(conn, encode_frame(FrameType::Hello, hello_payload()));
                continue;
            }
            if (frame.type == FrameType::Ping) {
                // Heartbeat: echo the payload back; the recv already
                // refreshed the idle clock, which is the point.
                queue_bytes(conn, encode_frame(FrameType::Ping, frame.payload));
                ++stats_.pings;
                obs_.pings->add();
                continue;
            }
            if (frame.type != FrameType::Request) {
                protocol_error(conn, "clients send only request frames after the "
                                     "hello");
                return false;
            }
            if (!handle_request(conn, frame.payload)) return false;
        }
    }

    std::string line;
    while (true) {
        LineReader::Status st = conn.lines.next(line);
        if (st == LineReader::Status::NeedMore) return true;
        if (st == LineReader::Status::Error) {
            protocol_error(conn, conn.lines.error());
            return false;
        }
        // Interactive line clients get script-style blank/comment
        // tolerance instead of "empty request" errors.
        std::string_view trimmed = trim_view(line);
        if (trimmed.empty() || trimmed.front() == '#') continue;
        if (!handle_request(conn, trimmed)) return false;
    }
}

// One-shot HTTP/1.0 serving for scrape clients (curl, Prometheus): read
// one request, answer it, drain, close. Only GET reaches here (the
// sniffer keyed on "GET "); /metrics gets the exposition, anything else
// a 404.
bool Server::process_http(Connection& conn) {
    const std::string& buf = conn.detect_buf;
    std::size_t header_end = buf.find("\r\n\r\n");
    if (header_end == std::string::npos) header_end = buf.find("\n\n");
    if (header_end == std::string::npos) {
        if (buf.size() > config_.max_line) {
            protocol_error(conn, "oversized http request");
            return false;
        }
        return true; // headers still arriving
    }
    std::string_view request_line = std::string_view(buf).substr(0, buf.find_first_of("\r\n"));
    // "GET <path>[?query] HTTP/1.x" — the target is the second token.
    std::string_view path = request_line.substr(kHttpGet.size());
    path = path.substr(0, path.find_first_of(" \t"));
    path = path.substr(0, path.find('?'));

    std::string status = "200 OK";
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::string body;
    if (path == "/metrics") {
        obs_.scrapes->add();
        body = obs::registry().prometheus_text();
    } else {
        status = "404 Not Found";
        content_type = "text/plain; charset=utf-8";
        body = "not found (try /metrics)\n";
    }
    std::string response = "HTTP/1.0 " + status +
                           "\r\nContent-Type: " + content_type +
                           "\r\nContent-Length: " + std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    queue_bytes(conn, response);
    conn.detect_buf.clear();
    conn.draining = true;
    return false; // flush the response, then close
}

bool Server::handle_request(Connection& conn, std::string_view line) {
    ++conn.requests;
    ++stats_.requests;
    obs_.requests.of(conn).add();
    std::string_view trimmed = trim_view(line);
    bool is_quit = trimmed == "quit" || trimmed == "exit";
    proto::Response resp = hub_.execute_line(trimmed, conn.ctx);
    send_response(conn, proto::format_response(resp));
    // Events raised while the request ran (breakpoints during `run`,
    // state changes, ...) belong to this request's transcript slot:
    // deliver them ahead of the done marker regardless of high water —
    // the pending queue's capacity already bounded them.
    flush_pending_events(conn, /*force=*/true);
    if (conn.mode == Connection::Mode::Frame)
        queue_bytes(conn, encode_frame(FrameType::Done, {}));
    if (is_quit) {
        conn.draining = true;
        return false;
    }
    return true;
}

void Server::send_response(Connection& conn, const std::string& formatted) {
    if (conn.mode == Connection::Mode::Frame)
        queue_bytes(conn, encode_frame(FrameType::Response, formatted));
    else
        queue_bytes(conn, formatted);
}

void Server::fan_out_event(int session_id, std::string_view session_name,
                           const std::string& line) {
    for (auto& conn : connections_) {
        if (conn->fd < 0 || conn->draining) continue;
        if (!conn->ctx.allows(session_id, session_name)) continue;
        if (config_.event_queue_capacity != 0 &&
            conn->pending_events.size() >= config_.event_queue_capacity) {
            conn->pending_events.pop_front();
            ++conn->events_dropped;
            ++stats_.events_dropped;
            obs_.events_dropped.of(*conn).add();
        }
        conn->pending_events.push_back(line);
    }
}

void Server::flush_pending_events(Connection& conn, bool force) {
    if (conn.draining) return;
    while (!conn.pending_events.empty()) {
        // Backpressure: a slow client keeps its events parked (bounded,
        // drop-counted) instead of growing an unbounded write buffer.
        if (!force && conn.outbuf.size() - conn.out_pos >= config_.write_high_water) {
            // Count pause *transitions*, not every skipped flush, so the
            // counter reads as "how often fan-out stalled".
            if (!conn.bp_paused) {
                conn.bp_paused = true;
                obs_.backpressure_pauses.of(conn).add();
            }
            return;
        }
        std::string& line = conn.pending_events.front();
        if (conn.mode == Connection::Mode::Frame)
            queue_bytes(conn, encode_frame(FrameType::Event, line));
        else
            queue_bytes(conn, line);
        ++stats_.events_sent;
        obs_.events_sent.of(conn).add();
        conn.pending_events.pop_front();
    }
    conn.bp_paused = false;
}

void Server::queue_bytes(Connection& conn, std::string_view bytes) {
    // Compact the consumed prefix before growing the buffer again.
    if (conn.out_pos > 0) {
        conn.outbuf.erase(0, conn.out_pos);
        conn.out_pos = 0;
    }
    conn.outbuf.append(bytes);
}

bool Server::write_connection(Connection& conn) {
    while (conn.out_pos < conn.outbuf.size()) {
        ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.out_pos,
                           conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_pos += static_cast<std::size_t>(n);
            conn.bytes_out += static_cast<std::uint64_t>(n);
            stats_.bytes_out += static_cast<std::uint64_t>(n);
            obs_.bytes_out->add(static_cast<std::uint64_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
        if (n < 0 && errno == EINTR) continue;
        return false; // broken pipe etc.
    }
    if (conn.out_pos >= conn.outbuf.size()) {
        conn.outbuf.clear();
        conn.out_pos = 0;
    }
    return true;
}

void Server::shed_busy(Connection& conn) {
    const std::string message =
        "busy: server at its accept high-water mark (" +
        std::to_string(config_.accept_high_water) + " connections); retry later";
    if (conn.mode == Connection::Mode::Frame)
        queue_bytes(conn, encode_frame(FrameType::Error, message));
    else if (conn.mode == Connection::Mode::Http)
        queue_bytes(conn, "HTTP/1.0 503 Service Unavailable\r\nContent-Type: "
                          "text/plain; charset=utf-8\r\nContent-Length: " +
                              std::to_string(message.size() + 1) +
                              "\r\nConnection: close\r\n\r\n" + message + "\n");
    else
        queue_bytes(conn, proto::format_response(proto::Response::make_error(
                              proto::ErrorCode::BadState, message)));
    conn.draining = true;
}

void Server::protocol_error(Connection& conn, const std::string& message) {
    ++stats_.protocol_errors;
    obs_.protocol_errors->add();
    if (conn.mode == Connection::Mode::Frame)
        queue_bytes(conn, encode_frame(FrameType::Error, message));
    else
        queue_bytes(conn, proto::format_response(proto::Response::make_error(
                              proto::ErrorCode::BadRequest, message)));
    conn.draining = true; // flush the diagnosis, then close
}

void Server::close_connection(std::size_t index) {
    Connection& conn = *connections_[index];
    if (conn.fd >= 0) {
        // One last best-effort flush so `quit` responses reach the
        // client even when the close happens outside the write path.
        (void)write_connection(conn);
        ::close(conn.fd);
        conn.fd = -1;
    }
    hub_.release_context(conn.ctx);
    ++stats_.closed;
    obs_.closed->add();
    connections_.erase(connections_.begin() +
                       static_cast<std::ptrdiff_t>(index));
}

std::vector<std::string> Server::stats_lines() const {
    std::vector<std::string> body = {
        "net-listening " + config_.host + ":" + std::to_string(port_),
        "net-connections active " + std::to_string(connections_.size()) +
            " (accepted " + std::to_string(stats_.accepted) + ", closed " +
            std::to_string(stats_.closed) + ", refused " +
            std::to_string(stats_.refused) + ")",
        "net-requests " + std::to_string(stats_.requests),
        "net-bytes in " + std::to_string(stats_.bytes_in) + " out " +
            std::to_string(stats_.bytes_out),
        "net-events sent " + std::to_string(stats_.events_sent) + " dropped " +
            std::to_string(stats_.events_dropped),
        "net-protocol-errors " + std::to_string(stats_.protocol_errors),
    };
    // Robustness counters appear only once nonzero, so pre-existing
    // stats transcripts keep their shape.
    if (stats_.pings > 0) body.push_back("net-pings " + std::to_string(stats_.pings));
    if (stats_.idle_closed > 0)
        body.push_back("net-idle-closed " + std::to_string(stats_.idle_closed));
    if (stats_.busy_shed > 0)
        body.push_back("net-busy-shed " + std::to_string(stats_.busy_shed));
    for (const auto& conn : connections_) {
        const char* codec = conn->mode == Connection::Mode::Frame  ? "frame"
                            : conn->mode == Connection::Mode::Line ? "line"
                            : conn->mode == Connection::Mode::Http ? "http"
                                                                   : "detect";
        const hub::SessionRegistry* reg = &hub_.registry();
        std::string session = "-";
        for (const auto& e : reg->entries())
            if (e->id == conn->ctx.current) session = e->name;
        body.push_back("connection " + std::to_string(conn->id) + " codec=" + codec +
                       " session=" + session + " acl=" +
                       (conn->ctx.restricted ? "restricted" : "open") +
                       " requests=" + std::to_string(conn->requests) + " bytes-in=" +
                       std::to_string(conn->bytes_in) + " bytes-out=" +
                       std::to_string(conn->bytes_out) + " pending-events=" +
                       std::to_string(conn->pending_events.size()) +
                       " events-dropped=" + std::to_string(conn->events_dropped));
    }
    return body;
}

} // namespace gmdf::net
