// net::Server — the hub behind a real TCP listener.
//
// A single-threaded, non-blocking poll(2) event loop accepts N
// concurrent client connections and serves each one the same
// line-oriented protocol the in-process drivers speak, through a
// hub::HubController. Each connection owns:
//
//   - read/write buffers, fed in arbitrary slices across poll wakeups
//     (torn lines and torn frames reassemble; malformed or oversized
//     input gets a structured error and a close, never a crash),
//   - a codec: the '\n' line codec for netcat-style clients, or the
//     length-prefixed frame codec (codec.hpp) negotiated by the "GMDF"
//     magic + versioned hello,
//   - a hub::RouteContext — its own current session, @<session> ACL
//     allowlist (the attach/acl verbs), and the list of sessions it
//     opened,
//   - a bounded pending-event queue with write-side backpressure: when
//     a slow client's write buffer is above the high-water mark, event
//     fan-out to it pauses; when the pending queue overflows, the
//     oldest events drop and are counted per connection.
//
// Disconnect and `quit` drain gracefully: queued responses flush before
// the close, and the hub releases only the sessions this client opened
// — a client can never tear down sessions it didn't open.
//
// The loop is deliberately single-threaded (connection handling is
// commingled with hub state, which is not locked); run() can live on a
// dedicated thread as long as nothing else touches the hub meanwhile.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "hub/controller.hpp"
#include "net/codec.hpp"
#include "obs/metrics.hpp"

namespace gmdf::net {

struct ServerConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0: ephemeral (read the bound one from port())
    int max_connections = 10000;
    std::size_t max_frame_payload = 1 << 20;
    std::size_t max_line = 16 * 1024;
    /// Event fan-out to a connection pauses while its write buffer holds
    /// at least this many bytes (responses still queue — they are
    /// bounded by one per request).
    std::size_t write_high_water = 256 * 1024;
    /// Events parked per connection while fan-out is paused; beyond it
    /// the oldest drop, counted in the connection's events_dropped.
    std::size_t event_queue_capacity = 4096;
    /// Close a connection after this long without client input; 0 (the
    /// default) never idle-closes. Frame clients keep an idle connection
    /// alive with heartbeat Ping frames (echoed by the server).
    int idle_timeout_ms = 0;
    /// Accept load-shed high-water mark: with at least this many live
    /// connections, new clients get a structured "busy" reply in their
    /// own codec and are closed instead of being serviced. 0 disables.
    /// Distinct from max_connections, which refuses silently at the
    /// accept itself (the hard fd ceiling).
    int accept_high_water = 0;
};

/// Server-wide counters (per-connection ones live on the connection and
/// roll up into events_dropped/bytes when it closes).
struct NetStats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t refused = 0;         ///< accepted over max_connections
    std::uint64_t protocol_errors = 0; ///< malformed input, bad hello
    std::uint64_t requests = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t events_sent = 0;
    std::uint64_t events_dropped = 0; ///< backpressure drops, all connections
    std::uint64_t pings = 0;          ///< heartbeat frames echoed
    std::uint64_t idle_closed = 0;    ///< connections closed by the idle timeout
    std::uint64_t busy_shed = 0;      ///< connections shed at the high-water mark
};

class Server {
public:
    explicit Server(hub::HubController& hub, ServerConfig config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds and listens; installs the hub event sink and net-stats
    /// provider. False (with the reason in *error) on socket failure.
    bool start(std::string* error = nullptr);

    /// Closes the listener and every connection (releasing their hub
    /// contexts); the hub's sink/provider hooks are uninstalled.
    void stop();

    /// The bound port (after start()).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// One poll(2) cycle: accept, read, execute, write. Returns the
    /// number of fds with activity; blocks at most timeout_ms.
    int poll_once(int timeout_ms);

    /// Loops poll_once until `stop_flag` goes true.
    void run(const std::atomic<bool>& stop_flag, int timeout_ms = 20);

    [[nodiscard]] std::size_t active_connections() const { return connections_.size(); }
    [[nodiscard]] const NetStats& stats() const { return stats_; }

    /// The `session stats net` body: server totals plus one row per live
    /// connection.
    [[nodiscard]] std::vector<std::string> stats_lines() const;

private:
    struct Connection {
        int fd = -1;
        int id = 0;
        /// Http: a "GET " prefix instead of the GMDF magic switches the
        /// connection to one-shot HTTP serving (the /metrics scrape
        /// surface) — respond, drain, close.
        enum class Mode { Detect, Frame, Line, Http } mode = Mode::Detect;
        bool hello_done = false;
        bool bp_paused = false; ///< event fan-out paused over high water
        std::string detect_buf; ///< bytes held until the codec is known
                                ///< (and the request buffer in Http mode)
        FrameReader frames;
        LineReader lines;
        std::string outbuf;
        std::size_t out_pos = 0;
        std::deque<std::string> pending_events; ///< formatted lines awaiting flush
        hub::RouteContext ctx;
        bool draining = false; ///< close once outbuf flushes
        bool shed = false;     ///< over the high-water mark: busy reply, then close
        std::chrono::steady_clock::time_point last_activity{};
        std::uint64_t bytes_in = 0;
        std::uint64_t bytes_out = 0;
        std::uint64_t requests = 0;
        std::uint64_t events_dropped = 0;

        Connection(std::size_t max_frame_payload, std::size_t max_line)
            : frames(max_frame_payload), lines(max_line) {}
    };

    void accept_pending();
    bool read_connection(Connection& conn); ///< false: close it now
    bool process_input(Connection& conn);
    bool process_http(Connection& conn); ///< false: response queued, drain+close
    bool handle_request(Connection& conn, std::string_view line);
    void send_response(Connection& conn, const std::string& formatted);
    void fan_out_event(int session_id, std::string_view session_name,
                       const std::string& line);
    /// force: ignore the write high-water mark (request-scoped events
    /// must land between their response and the done marker).
    void flush_pending_events(Connection& conn, bool force = false);
    void queue_bytes(Connection& conn, std::string_view bytes);
    bool write_connection(Connection& conn); ///< false: close it now
    void protocol_error(Connection& conn, const std::string& message);
    /// Busy reply in the connection's detected codec, then drain+close.
    void shed_busy(Connection& conn);
    void close_connection(std::size_t index);

    hub::HubController& hub_;
    ServerConfig config_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    int next_conn_id_ = 1;
    std::vector<std::unique_ptr<Connection>> connections_;
    NetStats stats_;

    /// obs registry handles, resolved once at construction so the hot
    /// paths pay a single atomic add. Per-codec families carry a
    /// codec=frame|line label; `first` is the frame handle.
    struct PerCodec {
        obs::Counter* frame;
        obs::Counter* line;
        obs::Counter& of(const Connection& conn) const {
            return conn.mode == Connection::Mode::Frame ? *frame : *line;
        }
    };
    struct ObsCounters {
        obs::Counter* accepted;
        obs::Counter* closed;
        obs::Counter* protocol_errors;
        obs::Counter* pings;
        obs::Counter* scrapes;
        obs::Counter* bytes_in;
        obs::Counter* bytes_out;
        PerCodec requests;
        PerCodec events_sent;
        PerCodec events_dropped;
        PerCodec backpressure_pauses;
    };
    ObsCounters obs_;
};

} // namespace gmdf::net
