#include "net/codec.hpp"

namespace gmdf::net {

std::string encode_frame(FrameType type, std::string_view text) {
    std::uint32_t len = static_cast<std::uint32_t>(text.size() + 1);
    std::string out;
    out.reserve(4 + len);
    out.push_back(static_cast<char>(len & 0xff));
    out.push_back(static_cast<char>((len >> 8) & 0xff));
    out.push_back(static_cast<char>((len >> 16) & 0xff));
    out.push_back(static_cast<char>((len >> 24) & 0xff));
    out.push_back(static_cast<char>(type));
    out.append(text);
    return out;
}

std::string hello_payload() {
    return std::string(kHelloPrefix) + std::to_string(kProtocolVersion);
}

int parse_hello(std::string_view payload) {
    if (!payload.starts_with(kHelloPrefix)) return -1;
    payload.remove_prefix(kHelloPrefix.size());
    if (payload.empty() || payload.size() > 9) return -1;
    int version = 0;
    for (char c : payload) {
        if (c < '0' || c > '9') return -1;
        version = version * 10 + (c - '0');
    }
    return version;
}

// ---- FrameReader ------------------------------------------------------------

void FrameReader::feed(std::string_view bytes) {
    if (failed_) return;
    // Compact lazily so a long-lived connection doesn't accrete every
    // byte it ever received.
    if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(bytes);
}

FrameReader::Status FrameReader::next(Frame& out) {
    if (failed_) return Status::Error;
    if (buf_.size() - pos_ < 4) return Status::NeedMore;
    const unsigned char* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
    std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                        (static_cast<std::uint32_t>(p[1]) << 8) |
                        (static_cast<std::uint32_t>(p[2]) << 16) |
                        (static_cast<std::uint32_t>(p[3]) << 24);
    if (len == 0) {
        failed_ = true;
        error_ = "zero-length frame (a frame carries at least its type byte)";
        return Status::Error;
    }
    if (len > max_payload_ + 1) {
        failed_ = true;
        error_ = "frame of " + std::to_string(len) + " bytes exceeds the " +
                 std::to_string(max_payload_) + "-byte payload limit";
        return Status::Error;
    }
    if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len))
        return Status::NeedMore;
    char type = buf_[pos_ + 4];
    switch (type) {
    case 'H': case 'Q': case 'R': case 'E': case 'D': case 'P': case 'X': break;
    default: {
        failed_ = true;
        unsigned char u = static_cast<unsigned char>(type);
        error_ = "unknown frame type 0x";
        error_ += "0123456789abcdef"[u >> 4];
        error_ += "0123456789abcdef"[u & 0xf];
        return Status::Error;
    }
    }
    out.type = static_cast<FrameType>(type);
    out.payload.assign(buf_, pos_ + 5, len - 1);
    pos_ += 4 + len;
    return Status::Ready;
}

// ---- LineReader -------------------------------------------------------------

void LineReader::feed(std::string_view bytes) {
    if (failed_) return;
    if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(bytes);
}

LineReader::Status LineReader::next(std::string& out) {
    if (failed_) return Status::Error;
    std::size_t nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) {
        if (buf_.size() - pos_ > max_line_) {
            failed_ = true;
            error_ = "line exceeds the " + std::to_string(max_line_) + "-byte limit";
            return Status::Error;
        }
        return Status::NeedMore;
    }
    std::size_t end = nl;
    if (end > pos_ && buf_[end - 1] == '\r') --end;
    if (end - pos_ > max_line_) {
        failed_ = true;
        error_ = "line exceeds the " + std::to_string(max_line_) + "-byte limit";
        return Status::Error;
    }
    out.assign(buf_, pos_, end - pos_);
    pos_ = nl + 1;
    return Status::Ready;
}

} // namespace gmdf::net
