#include "net/chaos.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace gmdf::net {

namespace {

bool set_nonblocking(int fd) {
    int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
    int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking dial of the upstream server; -1 on failure. The upstream is
/// local and live in every intended deployment (tests, campaigns,
/// benches), so a blocking connect completes immediately.
int dial_upstream(const std::string& host, std::uint16_t port) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    set_nodelay(fd);
    return fd;
}

/// Fire-and-forget delivery of a torn prefix right before a cut; the
/// kernel buffer takes a half frame without blocking.
void send_best_effort(int fd, std::string_view bytes) {
    while (!bytes.empty()) {
        ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return;
        }
        bytes.remove_prefix(static_cast<std::size_t>(n));
    }
}

} // namespace

ChaosProxy::ChaosProxy(ChaosConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

ChaosProxy::~ChaosProxy() { stop(); }

bool ChaosProxy::start(std::string* error) {
    auto fail = [&](const std::string& what) {
        if (error != nullptr) *error = what + ": " + std::strerror(errno);
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return fail("socket");
    int one = 1;
    (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.listen_port);
    if (inet_pton(AF_INET, config_.listen_host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton " + config_.listen_host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        return fail("bind " + config_.listen_host + ":" +
                    std::to_string(config_.listen_port));
    if (::listen(listen_fd_, 256) != 0) return fail("listen");
    if (!set_nonblocking(listen_fd_)) return fail("fcntl");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);
    return true;
}

void ChaosProxy::stop() {
    for (auto& pair : pairs_) close_pair(*pair);
    pairs_.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void ChaosProxy::accept_pending() {
    while (true) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return; // EAGAIN or a transient error: next cycle
        }
        int upstream = dial_upstream(config_.upstream_host, config_.upstream_port);
        if (upstream < 0) {
            ::close(fd);
            continue;
        }
        set_nodelay(fd);
        (void)set_nonblocking(fd);
        (void)set_nonblocking(upstream);
        auto pair = std::make_unique<Pair>();
        pair->client_fd = fd;
        pair->server_fd = upstream;
        pairs_.push_back(std::move(pair));
        ++stats_.connections;
    }
}

void ChaosProxy::close_pair(Pair& pair) {
    if (pair.client_fd >= 0) ::close(pair.client_fd);
    if (pair.server_fd >= 0) ::close(pair.server_fd);
    pair.client_fd = -1;
    pair.server_fd = -1;
}

bool ChaosProxy::inject(Pair& pair, bool from_client, std::string chunk) {
    Direction& dir = from_client ? pair.to_server : pair.to_client;
    const int out_fd = from_client ? pair.server_fd : pair.client_fd;
    ++stats_.chunks;

    // Deterministic cut knob: tear the Nth client→server chunk in half
    // and close. One-shot, so the redialed connection runs clean.
    if (from_client && config_.disconnect_after_chunks > 0 && !cut_fired_ &&
        ++pair.chunks_from_client >= config_.disconnect_after_chunks) {
        cut_fired_ = true;
        ++stats_.torn;
        send_best_effort(out_fd, std::string_view(chunk).substr(0, chunk.size() / 2));
        close_pair(pair);
        return false;
    }

    if (config_.fault_rate > 0) {
        std::uniform_real_distribution<double> coin(0.0, 1.0);
        if (coin(rng_) < config_.fault_rate) {
            char kinds[4];
            int n = 0;
            if (config_.tear) kinds[n++] = 't';
            if (config_.stall) kinds[n++] = 's';
            if (config_.disconnect) kinds[n++] = 'd';
            if (config_.corrupt) kinds[n++] = 'c';
            if (n > 0) {
                std::uniform_int_distribution<int> pick(0, n - 1);
                switch (kinds[pick(rng_)]) {
                case 't': {
                    ++stats_.torn;
                    send_best_effort(out_fd, std::string_view(chunk)
                                                 .substr(0, chunk.size() / 2));
                    close_pair(pair);
                    return false;
                }
                case 's': {
                    ++stats_.stalls;
                    dir.hold_until = std::chrono::steady_clock::now() +
                                     std::chrono::milliseconds(config_.stall_ms);
                    break; // parked; falls through to the append below
                }
                case 'd': {
                    ++stats_.disconnects;
                    close_pair(pair);
                    return false;
                }
                case 'c': {
                    ++stats_.corruptions;
                    std::uniform_int_distribution<std::size_t> at(0, chunk.size() - 1);
                    std::size_t i = at(rng_);
                    chunk[i] = static_cast<char>(~chunk[i]);
                    break;
                }
                default: break;
                }
            }
        }
    }

    dir.outbuf.append(chunk);
    flush(pair, dir, out_fd);
    return true;
}

bool ChaosProxy::shuttle(Pair& pair, bool from_client) {
    const int in_fd = from_client ? pair.client_fd : pair.server_fd;
    char chunk[16384];
    ssize_t n = ::recv(in_fd, chunk, sizeof(chunk), 0);
    if (n > 0)
        return inject(pair, from_client, std::string(chunk, static_cast<std::size_t>(n)));
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
        return true;
    // EOF or a hard error: deliver what is already queued, then close.
    pair.draining = true;
    pair.to_server.hold_until = {};
    pair.to_client.hold_until = {};
    return true;
}

void ChaosProxy::flush(Pair& pair, Direction& dir, int fd) {
    if (fd < 0 || !dir.pending()) return;
    if (dir.hold_until != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() < dir.hold_until)
        return;
    dir.hold_until = {};
    while (dir.pending()) {
        ssize_t n = ::send(fd, dir.outbuf.data() + dir.pos, dir.outbuf.size() - dir.pos,
                           MSG_NOSIGNAL);
        if (n > 0) {
            dir.pos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        close_pair(pair); // the other end vanished mid-flush
        return;
    }
    dir.outbuf.clear();
    dir.pos = 0;
}

int ChaosProxy::poll_once(int timeout_ms) {
    if (listen_fd_ < 0) return -1;

    const auto now = std::chrono::steady_clock::now();
    // accept_pending() below can append to pairs_; fds only covers the
    // pairs that existed when it was built.
    const std::size_t polled_pairs = pairs_.size();
    std::vector<pollfd> fds;
    fds.reserve(polled_pairs * 2 + 1);
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& pair : pairs_) {
        auto dir_events = [&](const Direction& dir) -> short {
            if (!dir.pending()) return 0;
            if (dir.hold_until != std::chrono::steady_clock::time_point{} &&
                now < dir.hold_until) {
                // Wake in time for the release instead of on POLLOUT.
                long long wait_ms =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        dir.hold_until - now)
                        .count() +
                    1;
                if (wait_ms < timeout_ms) timeout_ms = static_cast<int>(wait_ms);
                return 0;
            }
            return POLLOUT;
        };
        short client_events = pair->draining ? 0 : POLLIN;
        short server_events = pair->draining ? 0 : POLLIN;
        client_events |= dir_events(pair->to_client);
        server_events |= dir_events(pair->to_server);
        fds.push_back({pair->client_fd, client_events, 0});
        fds.push_back({pair->server_fd, server_events, 0});
    }

    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) return errno == EINTR ? 0 : -1;

    if (ready > 0) {
        if ((fds[0].revents & POLLIN) != 0) accept_pending();
        for (std::size_t i = 0; i < polled_pairs; ++i) {
            Pair& pair = *pairs_[i];
            const pollfd& client = fds[1 + i * 2];
            const pollfd& server = fds[2 + i * 2];
            if (pair.client_fd >= 0 &&
                (client.revents & (POLLIN | POLLERR | POLLHUP)) != 0)
                (void)shuttle(pair, /*from_client=*/true);
            if (pair.client_fd >= 0 &&
                (server.revents & (POLLIN | POLLERR | POLLHUP)) != 0)
                (void)shuttle(pair, /*from_client=*/false);
        }
    }

    // Flush both directions every cycle: stalled chunks release on the
    // clock, not on socket readiness.
    for (auto& pair : pairs_) {
        if (pair->client_fd < 0) continue;
        flush(*pair, pair->to_server, pair->server_fd);
        if (pair->client_fd < 0) continue;
        flush(*pair, pair->to_client, pair->client_fd);
        if (pair->client_fd >= 0 && pair->draining && !pair->to_server.pending() &&
            !pair->to_client.pending())
            close_pair(*pair);
    }
    std::erase_if(pairs_, [](const std::unique_ptr<Pair>& p) {
        return p->client_fd < 0;
    });
    return ready;
}

void ChaosProxy::run(const std::atomic<bool>& stop_flag, int timeout_ms) {
    while (!stop_flag.load(std::memory_order_relaxed)) {
        if (poll_once(timeout_ms) < 0) break;
    }
}

} // namespace gmdf::net
