// net::ChaosProxy — a deterministic network-fault injector for the
// debug service.
//
// A single-threaded poll(2) TCP proxy that sits between net::Channel
// clients and a net::Server, forwarding bytes in both directions while
// injecting faults drawn from a seeded PRNG: torn frames (a prefix of a
// chunk is delivered, then the connection is cut), stalls (a chunk is
// parked for stall_ms before forwarding), mid-request disconnects
// (the chunk is discarded and both sides closed), and byte corruption
// (one byte flipped, then forwarded — the codec's length/type guards
// turn this into a structured protocol error downstream).
//
// Faults are decided per forwarded chunk with probability fault_rate;
// the whole schedule is a pure function of (seed, traffic), so a chaos
// run that found a weakness replays it. For tests that need a cut at an
// exact protocol position rather than a seeded one, the
// disconnect_after_chunks knob tears the Nth client→server chunk in
// half and cuts — once per proxy, so the client's reconnect succeeds.
//
// The proxy is transparent to the codec (it never parses frames) and
// accepts any number of sequential reconnections, dialing the upstream
// server fresh for each — exactly what a redialing Channel needs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

namespace gmdf::net {

struct ChaosConfig {
    std::string listen_host = "127.0.0.1";
    std::uint16_t listen_port = 0; ///< 0: ephemeral (read it from port())
    std::string upstream_host = "127.0.0.1";
    std::uint16_t upstream_port = 0;
    std::uint32_t seed = 1;
    /// Probability in [0,1] that a forwarded chunk draws one fault.
    double fault_rate = 0.0;
    /// How long a stalled chunk is parked before delivery.
    int stall_ms = 5;
    /// Deterministic cut: tear the Nth client→server chunk in half and
    /// close the pair (0 disables). Fires once per proxy lifetime so
    /// the reconnected client gets a clean second run.
    int disconnect_after_chunks = 0;
    /// Which seeded fault kinds the injector may draw.
    bool tear = true;
    bool stall = true;
    bool disconnect = true;
    bool corrupt = true;
};

struct ChaosStats {
    std::uint64_t connections = 0; ///< client connections proxied
    std::uint64_t chunks = 0;      ///< chunks forwarded, both directions
    std::uint64_t torn = 0;        ///< half-delivered chunks followed by a cut
    std::uint64_t stalls = 0;      ///< chunks parked for stall_ms
    std::uint64_t disconnects = 0; ///< chunks swallowed by an immediate cut
    std::uint64_t corruptions = 0; ///< chunks forwarded with one byte flipped
};

class ChaosProxy {
public:
    explicit ChaosProxy(ChaosConfig config);
    ~ChaosProxy();

    ChaosProxy(const ChaosProxy&) = delete;
    ChaosProxy& operator=(const ChaosProxy&) = delete;

    /// Binds and listens. False (reason in *error) on socket failure.
    bool start(std::string* error = nullptr);

    /// Closes the listener and every proxied pair.
    void stop();

    /// The bound port (after start()).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// One poll cycle: accept, shuttle, inject, flush. Returns the
    /// number of fds with activity; blocks at most timeout_ms (less
    /// when a stalled chunk's release is due sooner).
    int poll_once(int timeout_ms);

    /// Loops poll_once until `stop_flag` goes true. The short default
    /// timeout keeps stall releases timely.
    void run(const std::atomic<bool>& stop_flag, int timeout_ms = 5);

    [[nodiscard]] const ChaosStats& stats() const { return stats_; }
    [[nodiscard]] std::size_t active_pairs() const { return pairs_.size(); }

private:
    /// One forwarding direction of a proxied pair.
    struct Direction {
        std::string outbuf;
        std::size_t pos = 0;
        /// Nonzero epoch: the buffer is parked until this instant.
        std::chrono::steady_clock::time_point hold_until{};
        [[nodiscard]] bool pending() const { return pos < outbuf.size(); }
    };

    /// A client connection and its private upstream dial.
    struct Pair {
        int client_fd = -1;
        int server_fd = -1;
        Direction to_server; ///< client → server bytes
        Direction to_client; ///< server → client bytes
        bool draining = false; ///< one side EOFed: flush, then close both
        int chunks_from_client = 0;
    };

    void accept_pending();
    /// Reads one chunk from `from_client ? client : server` and routes
    /// it through the fault injector. False: the pair must close now.
    bool shuttle(Pair& pair, bool from_client);
    /// Applies at most one fault to `chunk` and queues/flushes it.
    /// False: the fault cut the pair.
    bool inject(Pair& pair, bool from_client, std::string chunk);
    void flush(Pair& pair, Direction& dir, int fd);
    void close_pair(Pair& pair);

    ChaosConfig config_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::vector<std::unique_ptr<Pair>> pairs_;
    std::mt19937 rng_;
    bool cut_fired_ = false; ///< disconnect_after_chunks is one-shot
    ChaosStats stats_;
};

} // namespace gmdf::net
