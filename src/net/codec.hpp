// Wire codecs for the network debug service.
//
// Two framings carry the same line-oriented protocol over a TCP byte
// stream:
//
//   Line codec   one request per '\n'-terminated line; responses and
//                events stream back as the text the proto layer already
//                formats. netcat/telnet-friendly.
//
//   Frame codec  4-byte little-endian payload length, then the payload;
//                payload[0] is a one-byte frame type, the rest is text.
//                A connection opens with the 4 magic bytes "GMDF"
//                followed by a versioned hello frame, which is also how
//                the server tells the two codecs apart.
//
// Frame types:
//   'H' hello     "gmdf-net <version>" (client first, server echoes)
//   'Q' request   one request line (client -> server)
//   'R' response  one formatted response, possibly multi-line
//   'E' event     one formatted event line
//   'D' done      response + queued events for one request fully sent
//   'P' ping      heartbeat; the server echoes it and refreshes the
//                 connection's idle clock (either side may send one)
//   'X' error     protocol violation; the sender closes after it
//
// Both decoders are incremental: bytes arrive in arbitrary slices
// across poll(2) wakeups, so a torn line/frame simply waits for more
// input, while an oversized one is a structured, connection-fatal
// error — never a crash, never a corrupted stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gmdf::net {

/// Protocol magic + version, exchanged in the hello.
inline constexpr std::string_view kMagic = "GMDF";
inline constexpr int kProtocolVersion = 1;
inline constexpr std::string_view kHelloPrefix = "gmdf-net ";

/// Frame type bytes (payload[0]).
enum class FrameType : char {
    Hello = 'H',
    Request = 'Q',
    Response = 'R',
    Event = 'E',
    Done = 'D',
    Ping = 'P',
    Error = 'X',
};

/// One decoded frame.
struct Frame {
    FrameType type = FrameType::Error;
    std::string payload; ///< text after the type byte
};

/// Encodes one frame: u32-LE length of (type byte + text), type, text.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view text);

/// The client hello / server echo payload for this protocol version.
[[nodiscard]] std::string hello_payload();

/// Parses a hello payload; returns the version or -1 when malformed.
[[nodiscard]] int parse_hello(std::string_view payload);

/// Incremental frame decoder. feed() bytes as they arrive; next() yields
/// complete frames until NeedMore. An oversized or malformed frame puts
/// the decoder into a sticky Error state (the stream position is lost
/// for good, so the connection must close).
class FrameReader {
public:
    enum class Status { NeedMore, Ready, Error };

    explicit FrameReader(std::size_t max_payload = 1 << 20)
        : max_payload_(max_payload) {}

    void feed(std::string_view bytes);

    /// Decodes the next complete frame into `out`.
    Status next(Frame& out);

    /// Human-readable reason once next() returned Error.
    [[nodiscard]] const std::string& error() const { return error_; }

    /// Bytes buffered but not yet decoded.
    [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

private:
    std::size_t max_payload_;
    std::string buf_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

/// Incremental line decoder: accumulates bytes, yields '\n'-terminated
/// lines with the terminator (and a preceding '\r') stripped. A line
/// longer than max_line is a sticky error, same contract as FrameReader.
class LineReader {
public:
    enum class Status { NeedMore, Ready, Error };

    explicit LineReader(std::size_t max_line = 16 * 1024) : max_line_(max_line) {}

    void feed(std::string_view bytes);
    Status next(std::string& out);
    [[nodiscard]] const std::string& error() const { return error_; }

private:
    std::size_t max_line_;
    std::string buf_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

} // namespace gmdf::net
