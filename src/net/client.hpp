// net::Channel — a proto::ScriptClient that lives across a TCP socket.
//
// The client half of the frame codec: connect() dials a gmdf_serve
// instance, performs the magic + versioned-hello handshake, and then
// every execute_line() becomes a request frame. The server answers with
// a response frame, the event lines the request raised, and a done
// marker; Channel hands them back through the same ScriptClient
// interface an in-process HubController implements, so proto::run_script
// (and with it every .gds script and golden transcript) runs over the
// network unchanged.
//
// The socket is blocking — a script client has nothing useful to do
// while its one outstanding request is in flight. Load generators that
// want thousands of concurrent connections drive raw non-blocking
// sockets with the codec directly (see bench/bench_p5_net.cpp).
//
// Resilience (opt-in via set_reconnect): when a send or read fails
// mid-request, the channel redials with exponential backoff plus
// deterministic jitter, re-shakes hands, re-attaches the session it was
// last on (tracked from "current <name>"/"attached <name>" response
// lines), and re-sends the failed request once. That is at-least-once
// delivery — a request the server finished executing just before the
// cut may run twice; the fleet protocol's verbs are either idempotent
// or advance simulated time, which campaign workloads tolerate by
// design. With reconnect off (the default) failures surface exactly as
// before, as Internal error responses.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/codec.hpp"
#include "proto/script.hpp"

namespace gmdf::net {

class Channel final : public proto::ScriptClient {
public:
    /// Automatic redial policy; disabled unless set_reconnect() is
    /// called. Delays double from base to max per attempt, each with a
    /// deterministic jitter drawn from jitter_seed (so two clients with
    /// different seeds never stampede the server in lockstep, while a
    /// given test run stays reproducible).
    struct ReconnectConfig {
        int max_attempts = 5;
        int base_delay_ms = 10;
        int max_delay_ms = 1000;
        std::uint32_t jitter_seed = 1;
    };

    /// Dials host:port (IPv4 dotted quad or name) and shakes hands.
    /// Null on failure, with the reason in *error when provided.
    static std::unique_ptr<Channel> connect(const std::string& host,
                                            std::uint16_t port,
                                            std::string* error = nullptr);

    ~Channel() override;

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Sends one request and blocks for its response frame. Transport
    /// failures surface as Internal error Responses, never exceptions —
    /// unless reconnect is enabled, in which case the channel redials,
    /// re-attaches, and retries the request once first.
    proto::Response execute_line(std::string_view line) override;

    /// Event lines for the last request (everything up to its done
    /// marker), plus any events the server pushed in between.
    std::vector<std::string> drain_event_lines() override;

    /// Heartbeat: sends a Ping frame and blocks for the echo. False on
    /// any transport failure (the connection is shut down; the next
    /// execute_line reconnects when enabled).
    bool ping();

    [[nodiscard]] bool connected() const { return fd_ >= 0; }

    void set_reconnect(ReconnectConfig config) {
        reconnect_ = config;
        reconnect_enabled_ = true;
        jitter_state_ = config.jitter_seed;
    }

    /// Successful redials so far, and the wall-clock total they took
    /// (dial + handshake + re-attach) — the bench's resume latency.
    [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
    [[nodiscard]] std::int64_t reconnect_time_us() const { return reconnect_time_us_; }

    /// The session this channel last selected ("current"/"attached"
    /// response lines); re-attached after a redial.
    [[nodiscard]] const std::string& session() const { return session_; }

private:
    explicit Channel(int fd) : fd_(fd) {}

    bool send_all(std::string_view bytes);
    /// Reads until a frame arrives; false on EOF/error.
    bool read_frame(Frame& out, std::string* error);
    void shutdown();
    /// One request/response cycle with no redial logic. nullopt only on
    /// a retryable transport failure (send/EOF/errno); protocol errors
    /// come back as non-retryable error Responses.
    std::optional<proto::Response> roundtrip(std::string_view line,
                                             std::string* error);
    /// Updates session_ from a successful response's body lines.
    void note_session(const proto::Response& resp);
    /// Redial + handshake + re-attach, once. False leaves fd_ closed.
    bool reconnect_once();
    /// Backoff loop over reconnect_once per the ReconnectConfig.
    bool try_reconnect();

    int fd_ = -1;
    std::string host_;
    std::uint16_t port_ = 0;
    FrameReader frames_{1 << 20};
    std::deque<std::string> events_; ///< buffered event lines
    bool last_done_ = true; ///< done marker for the last request consumed
    bool reconnect_enabled_ = false;
    ReconnectConfig reconnect_;
    std::uint32_t jitter_state_ = 1;
    std::string session_;
    std::uint64_t reconnects_ = 0;
    std::int64_t reconnect_time_us_ = 0;
};

/// Splits "host:port"; false when the port is missing or malformed.
bool split_host_port(std::string_view spec, std::string& host, std::uint16_t& port);

} // namespace gmdf::net
