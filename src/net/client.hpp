// net::Channel — a proto::ScriptClient that lives across a TCP socket.
//
// The client half of the frame codec: connect() dials a gmdf_serve
// instance, performs the magic + versioned-hello handshake, and then
// every execute_line() becomes a request frame. The server answers with
// a response frame, the event lines the request raised, and a done
// marker; Channel hands them back through the same ScriptClient
// interface an in-process HubController implements, so proto::run_script
// (and with it every .gds script and golden transcript) runs over the
// network unchanged.
//
// The socket is blocking — a script client has nothing useful to do
// while its one outstanding request is in flight. Load generators that
// want thousands of concurrent connections drive raw non-blocking
// sockets with the codec directly (see bench/bench_p5_net.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/codec.hpp"
#include "proto/script.hpp"

namespace gmdf::net {

class Channel final : public proto::ScriptClient {
public:
    /// Dials host:port (IPv4 dotted quad or name) and shakes hands.
    /// Null on failure, with the reason in *error when provided.
    static std::unique_ptr<Channel> connect(const std::string& host,
                                            std::uint16_t port,
                                            std::string* error = nullptr);

    ~Channel() override;

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Sends one request and blocks for its response frame. Transport
    /// failures surface as Internal error Responses, never exceptions.
    proto::Response execute_line(std::string_view line) override;

    /// Event lines for the last request (everything up to its done
    /// marker), plus any events the server pushed in between.
    std::vector<std::string> drain_event_lines() override;

    [[nodiscard]] bool connected() const { return fd_ >= 0; }

private:
    explicit Channel(int fd) : fd_(fd) {}

    bool send_all(std::string_view bytes);
    /// Reads until a frame arrives; false on EOF/error.
    bool read_frame(Frame& out, std::string* error);
    void shutdown();

    int fd_ = -1;
    FrameReader frames_{1 << 20};
    std::deque<std::string> events_; ///< buffered event lines
    bool last_done_ = true; ///< done marker for the last request consumed
};

/// Splits "host:port"; false when the port is missing or malformed.
bool split_host_port(std::string_view spec, std::string& host, std::uint16_t& port);

} // namespace gmdf::net
