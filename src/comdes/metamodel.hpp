// The COMDES metamodel (Angelov et al.), expressed over the meta:: core.
//
// COMDES models a distributed control application as a network of actors
// that exchange labeled signals (non-blocking state messages). Each actor
// owns a function-block network configured from prefabricated components:
// basic (signal-processing) FBs, composite FBs, modal FBs, and
// state-machine FBs. Actors execute under Distributed Timed Multitasking:
// inputs are latched when a task is released and outputs are latched at
// its deadline, eliminating I/O jitter.
//
// Class hierarchy (containment in brackets):
//   NamedElement (abstract)
//     System        [signals: Signal*, actors: Actor*]
//     Signal        (type, init)
//     Actor         (period_us, deadline_us, node, priority)
//                   [network: Network, inputs: ActorInput*, outputs: ActorOutput*]
//     ActorInput    (fb, pin) -> signal       : latch signal into a pin
//     ActorOutput   (fb, pin) -> signal       : latch a pin into a signal
//     Network       [blocks: FunctionBlock*, connections: Connection*]
//     FunctionBlock (abstract)
//       BasicFB     (kind, params, expr)
//       CompositeFB [network: Network, port_maps: PortMap*]
//       ModalFB     (selector_pin) [modes: Mode*]
//       StateMachineFB (inputs, outputs) [states: State*, transitions: Transition*]
//                   -> initial: State
//     Mode          (value) [network: Network, port_maps: PortMap*]
//     PortMap       (outer_pin, inner_fb, inner_pin, direction)
//     State         [entry_actions: Assignment*]
//     Transition    (event, guard, priority) -> from, to  [actions: Assignment*]
//     Assignment    (target, expr)
//     Connection    (from_pin, to_pin) -> from: FunctionBlock, to: FunctionBlock
#pragma once

#include "meta/metamodel.hpp"

namespace gmdf::comdes {

/// Handles to every COMDES metaclass and enum; returned by
/// comdes_metamodel(). Pointers remain valid for the program lifetime.
struct ComdesMeta {
    meta::Metamodel mm{"comdes"};

    const meta::MetaEnum* signal_type = nullptr; // bool_ | int_ | real_
    const meta::MetaEnum* basic_kind = nullptr;  // FB kind literals, see fblib.hpp
    const meta::MetaEnum* port_dir = nullptr;    // in | out

    meta::MetaClass* named = nullptr;
    meta::MetaClass* system = nullptr;
    meta::MetaClass* signal = nullptr;
    meta::MetaClass* actor = nullptr;
    meta::MetaClass* actor_input = nullptr;
    meta::MetaClass* actor_output = nullptr;
    meta::MetaClass* network = nullptr;
    meta::MetaClass* function_block = nullptr;
    meta::MetaClass* basic_fb = nullptr;
    meta::MetaClass* composite_fb = nullptr;
    meta::MetaClass* modal_fb = nullptr;
    meta::MetaClass* sm_fb = nullptr;
    meta::MetaClass* mode = nullptr;
    meta::MetaClass* port_map = nullptr;
    meta::MetaClass* state = nullptr;
    meta::MetaClass* transition = nullptr;
    meta::MetaClass* assignment = nullptr;
    meta::MetaClass* connection = nullptr;
};

/// The process-wide COMDES metamodel (built on first use, immutable after).
[[nodiscard]] const ComdesMeta& comdes_metamodel();

} // namespace gmdf::comdes
