#include "comdes/fblib.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>

#include "comdes/metamodel.hpp"
#include "expr/compile.hpp"
#include "expr/eval.hpp"
#include "expr/parser.hpp"

namespace gmdf::comdes {

namespace {

bool truthy(double v) { return v > 0.5; }

struct KindInfo {
    const char* name;
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    std::size_t n_params;
    std::uint32_t cost;
};

const std::vector<KindInfo>& kind_table() {
    static const std::vector<KindInfo> table = {
        {"const_", {}, {"out"}, 1, 4},
        {"gain_", {"in"}, {"out"}, 1, 8},
        {"offset_", {"in"}, {"out"}, 1, 8},
        {"add_", {"in1", "in2"}, {"out"}, 0, 8},
        {"sub_", {"in1", "in2"}, {"out"}, 0, 8},
        {"mul_", {"in1", "in2"}, {"out"}, 0, 10},
        {"div_", {"in1", "in2"}, {"out"}, 0, 24},
        {"min_", {"in1", "in2"}, {"out"}, 0, 10},
        {"max_", {"in1", "in2"}, {"out"}, 0, 10},
        {"abs_", {"in"}, {"out"}, 0, 8},
        {"not_", {"in"}, {"out"}, 0, 6},
        {"and_", {"in1", "in2"}, {"out"}, 0, 8},
        {"or_", {"in1", "in2"}, {"out"}, 0, 8},
        {"xor_", {"in1", "in2"}, {"out"}, 0, 8},
        {"gt_", {"in"}, {"out"}, 1, 8},
        {"ge_", {"in"}, {"out"}, 1, 8},
        {"lt_", {"in"}, {"out"}, 1, 8},
        {"le_", {"in"}, {"out"}, 1, 8},
        {"hysteresis_", {"in"}, {"out"}, 2, 12},
        {"limit_", {"in"}, {"out"}, 2, 12},
        {"deadband_", {"in"}, {"out"}, 1, 10},
        {"integrator_", {"in"}, {"out"}, 2, 16},
        {"derivative_", {"in"}, {"out"}, 1, 16},
        {"lowpass_", {"in"}, {"out"}, 1, 20},
        {"ratelimit_", {"in"}, {"out"}, 1, 16},
        {"delay_", {"in"}, {"out"}, 1, 12},
        {"counter_", {"inc", "reset"}, {"out"}, 1, 12},
        {"sample_hold_", {"in", "gate"}, {"out"}, 0, 8},
        {"pid_", {"sp", "pv"}, {"out"}, 5, 60},
        {"expression_", {}, {"out"}, 0, 0}, // pins/cost resolved per instance
    };
    return table;
}

const KindInfo& kind_info(std::string_view kind) {
    for (const auto& k : kind_table())
        if (kind == k.name) return k;
    throw std::invalid_argument("unknown BasicFB kind '" + std::string(kind) + "'");
}

std::vector<double> params_of(const meta::MObject& fb) {
    const meta::Value& v = fb.attr("params");
    std::vector<double> out;
    if (v.is_list())
        for (const auto& e : v.as_list()) out.push_back(e.as_number());
    return out;
}

/// Kernel for every BasicFB kind except expression_.
class BasicKernel final : public FBKernel {
public:
    BasicKernel(std::string kind, std::vector<double> params, std::uint32_t cost)
        : kind_(std::move(kind)), p_(std::move(params)), cost_(cost) {
        reset();
    }

    void reset() override {
        state_ = 0.0;
        prev_ = 0.0;
        integ_ = 0.0;
        initialized_ = false;
        if (kind_ == "integrator_") state_ = p_[1];
        if (kind_ == "delay_") {
            buf_.assign(std::max<std::size_t>(1, static_cast<std::size_t>(p_[0])), 0.0);
            head_ = 0;
        }
    }

    void step(std::span<const double> in, std::span<double> out, double dt) override {
        auto x = [&](std::size_t i) { return in[i]; };
        double& y = out[0];
        if (kind_ == "const_") y = p_[0];
        else if (kind_ == "gain_") y = p_[0] * x(0);
        else if (kind_ == "offset_") y = p_[0] + x(0);
        else if (kind_ == "add_") y = x(0) + x(1);
        else if (kind_ == "sub_") y = x(0) - x(1);
        else if (kind_ == "mul_") y = x(0) * x(1);
        else if (kind_ == "div_") y = x(1) == 0.0 ? 0.0 : x(0) / x(1);
        else if (kind_ == "min_") y = std::min(x(0), x(1));
        else if (kind_ == "max_") y = std::max(x(0), x(1));
        else if (kind_ == "abs_") y = std::fabs(x(0));
        else if (kind_ == "not_") y = truthy(x(0)) ? 0.0 : 1.0;
        else if (kind_ == "and_") y = (truthy(x(0)) && truthy(x(1))) ? 1.0 : 0.0;
        else if (kind_ == "or_") y = (truthy(x(0)) || truthy(x(1))) ? 1.0 : 0.0;
        else if (kind_ == "xor_") y = (truthy(x(0)) != truthy(x(1))) ? 1.0 : 0.0;
        else if (kind_ == "gt_") y = x(0) > p_[0] ? 1.0 : 0.0;
        else if (kind_ == "ge_") y = x(0) >= p_[0] ? 1.0 : 0.0;
        else if (kind_ == "lt_") y = x(0) < p_[0] ? 1.0 : 0.0;
        else if (kind_ == "le_") y = x(0) <= p_[0] ? 1.0 : 0.0;
        else if (kind_ == "hysteresis_") {
            if (x(0) >= p_[1]) state_ = 1.0;
            else if (x(0) <= p_[0]) state_ = 0.0;
            y = state_;
        } else if (kind_ == "limit_") y = std::clamp(x(0), p_[0], p_[1]);
        else if (kind_ == "deadband_") y = std::fabs(x(0)) <= p_[0] ? 0.0 : x(0);
        else if (kind_ == "integrator_") {
            state_ += p_[0] * x(0) * dt;
            y = state_;
        } else if (kind_ == "derivative_") {
            y = initialized_ && dt > 0.0 ? p_[0] * (x(0) - prev_) / dt : 0.0;
            prev_ = x(0);
            initialized_ = true;
        } else if (kind_ == "lowpass_") {
            // y += (x - y) * dt / (tau + dt); stable for any dt.
            double tau = p_[0];
            if (!initialized_) {
                state_ = x(0);
                initialized_ = true;
            }
            state_ += (x(0) - state_) * (dt / (tau + dt));
            y = state_;
        } else if (kind_ == "ratelimit_") {
            double max_step = p_[0] * dt;
            if (!initialized_) {
                state_ = x(0);
                initialized_ = true;
            }
            state_ += std::clamp(x(0) - state_, -max_step, max_step);
            y = state_;
        } else if (kind_ == "delay_") {
            publish(out);
            capture(in);
        } else if (kind_ == "counter_") {
            if (truthy(x(1))) state_ = 0.0;
            else if (truthy(x(0)) && !truthy(prev_)) state_ = std::min(state_ + 1.0, p_[0]);
            prev_ = x(0);
            y = state_;
        } else if (kind_ == "sample_hold_") {
            if (truthy(x(1))) state_ = x(0);
            y = state_;
        } else if (kind_ == "pid_") {
            double e = x(0) - x(1);
            double d = initialized_ && dt > 0.0 ? (e - prev_) / dt : 0.0;
            prev_ = e;
            initialized_ = true;
            double candidate = p_[0] * e + p_[1] * (integ_ + e * dt) + p_[2] * d;
            // Conditional integration anti-windup: only integrate while
            // the unsaturated output stays within [out_lo, out_hi].
            if (candidate > p_[3] && candidate < p_[4]) integ_ += e * dt;
            y = std::clamp(p_[0] * e + p_[1] * integ_ + p_[2] * d, p_[3], p_[4]);
        } else {
            throw std::logic_error("unhandled kind " + kind_);
        }
    }

    [[nodiscard]] std::uint32_t cost_cycles() const override { return cost_; }

    [[nodiscard]] bool is_two_phase() const override { return kind_ == "delay_"; }

    void publish(std::span<double> out) override { out[0] = buf_[head_]; }

    void capture(std::span<const double> in) override {
        buf_[head_] = in[0];
        head_ = (head_ + 1) % buf_.size();
    }

    void save_state(std::vector<double>& out) const override {
        out.push_back(state_);
        out.push_back(prev_);
        out.push_back(integ_);
        out.push_back(initialized_ ? 1.0 : 0.0);
        out.push_back(static_cast<double>(head_));
        out.insert(out.end(), buf_.begin(), buf_.end());
    }

    std::size_t load_state(std::span<const double> in) override {
        std::size_t need = 5 + buf_.size();
        if (in.size() < need) throw std::runtime_error("kernel state truncated");
        state_ = in[0];
        prev_ = in[1];
        integ_ = in[2];
        initialized_ = in[3] != 0.0;
        head_ = static_cast<std::size_t>(in[4]);
        if (!buf_.empty()) head_ %= buf_.size();
        std::copy(in.begin() + 5, in.begin() + static_cast<std::ptrdiff_t>(need),
                  buf_.begin());
        return need;
    }

private:
    std::string kind_;
    std::vector<double> p_;
    std::uint32_t cost_;
    double state_ = 0.0, prev_ = 0.0, integ_ = 0.0;
    bool initialized_ = false;
    std::vector<double> buf_;
    std::size_t head_ = 0;
};

/// Raises the same exception class the tree-walk interpreter would for a
/// fault surfaced by the VM as a result code.
[[noreturn]] void throw_vm_fault(expr::VmStatus status) {
    throw expr::EvalError(std::string("expression fault: ") + expr::to_string(status));
}

/// Kernel for expression_ blocks: evaluates a bytecode-compiled
/// expression over the input pins. Pin order = sorted free variables =
/// VM slot order, so the input span is the slot table — no lookup, no
/// boxing, no allocation per step.
class ExprKernel final : public FBKernel {
public:
    ExprKernel(const expr::Expr& ast, std::vector<std::string> vars)
        : compiled_(expr::compile(ast, vars)), n_vars_(vars.size()) {}

    void reset() override {}

    void step(std::span<const double> in, std::span<double> out, double) override {
        double y;
        if (expr::VmStatus s = compiled_.run(in, y); s != expr::VmStatus::Ok)
            throw_vm_fault(s);
        out[0] = y;
    }

    [[nodiscard]] std::uint32_t cost_cycles() const override {
        return 10 + 6 * static_cast<std::uint32_t>(n_vars_);
    }

private:
    expr::CompiledExpr compiled_;
    std::size_t n_vars_;
};

/// Compiled transition: indexes into the SM's pin arrays plus bytecode-
/// compiled guard/action expressions (slots = input pin indices, resolved
/// once here rather than by string scan on every scan step).
struct CompiledTransition {
    meta::ObjectId id;
    std::size_t from = 0, to = 0;
    int event_pin = -1; // -1: no event (guard-only)
    std::optional<expr::CompiledExpr> guard; // nullopt: always true
    std::vector<std::pair<std::size_t, expr::CompiledExpr>> actions; // out pin -> expr
    int priority = 0;
    std::size_t model_order = 0;
};

struct CompiledState {
    meta::ObjectId id;
    std::string name;
    std::vector<std::pair<std::size_t, expr::CompiledExpr>> entry_actions;
};

/// State-machine kernel: event-driven Moore/Mealy hybrid. At each step it
/// takes at most one transition (run-to-completion per scan, matching the
/// clocked synchronous COMDES semantics).
class SmKernel final : public FBKernel {
public:
    SmKernel(meta::ObjectId sm_id, std::vector<CompiledState> states,
             std::vector<CompiledTransition> transitions, std::size_t initial,
             std::size_t n_outputs, SmObserver* observer)
        : sm_id_(sm_id), states_(std::move(states)), transitions_(std::move(transitions)),
          initial_(initial), n_outputs_(n_outputs), observer_(observer) {
        // Transition evaluation order: priority ascending, then model order.
        std::stable_sort(transitions_.begin(), transitions_.end(),
                         [](const auto& a, const auto& b) { return a.priority < b.priority; });
        reset();
    }

    void reset() override {
        current_ = initial_;
        held_outputs_.assign(n_outputs_, 0.0);
        entered_ = false;
    }

    void step(std::span<const double> in, std::span<double> out, double dt) override {
        (void)dt;
        auto run_actions =
            [&](const std::vector<std::pair<std::size_t, expr::CompiledExpr>>& as) {
            for (const auto& [pin, ce] : as) {
                double y;
                if (expr::VmStatus s = ce.run(in, y); s != expr::VmStatus::Ok)
                    throw_vm_fault(s);
                held_outputs_[pin] = y;
            }
        };

        if (!entered_) {
            // Initial state entry happens on the first scan so the
            // debugger observes it like any other entry.
            entered_ = true;
            run_actions(states_[current_].entry_actions);
            if (observer_) observer_->on_state_enter(sm_id_, states_[current_].id);
        }

        for (const auto& t : transitions_) {
            if (t.from != current_) continue;
            if (t.event_pin >= 0 && !truthy(in[static_cast<std::size_t>(t.event_pin)]))
                continue;
            if (t.guard) {
                double g;
                if (expr::VmStatus s = t.guard->run(in, g); s != expr::VmStatus::Ok)
                    throw_vm_fault(s);
                if (g == 0.0) continue; // eval_bool truthiness on the coerced result
            }
            run_actions(t.actions);
            current_ = t.to;
            if (observer_) observer_->on_transition(sm_id_, t.id);
            run_actions(states_[current_].entry_actions);
            if (observer_) observer_->on_state_enter(sm_id_, states_[current_].id);
            break; // one transition per scan
        }

        for (std::size_t i = 0; i < n_outputs_; ++i) out[i] = held_outputs_[i];
        out[n_outputs_] = static_cast<double>(current_); // implicit "state" pin
    }

    [[nodiscard]] std::uint32_t cost_cycles() const override {
        return 30 + 12 * static_cast<std::uint32_t>(transitions_.size());
    }

    void save_state(std::vector<double>& out) const override {
        out.push_back(static_cast<double>(current_));
        out.push_back(entered_ ? 1.0 : 0.0);
        out.insert(out.end(), held_outputs_.begin(), held_outputs_.end());
    }

    std::size_t load_state(std::span<const double> in) override {
        std::size_t need = 2 + n_outputs_;
        if (in.size() < need) throw std::runtime_error("kernel state truncated");
        auto idx = static_cast<std::size_t>(in[0]);
        if (idx >= states_.size()) throw std::runtime_error("SM state out of range");
        current_ = idx;
        entered_ = in[1] != 0.0;
        held_outputs_.assign(in.begin() + 2,
                             in.begin() + static_cast<std::ptrdiff_t>(need));
        return need;
    }

private:
    meta::ObjectId sm_id_;
    std::vector<CompiledState> states_;
    std::vector<CompiledTransition> transitions_;
    std::size_t initial_;
    std::size_t n_outputs_;
    SmObserver* observer_;
    std::size_t current_ = 0;
    std::vector<double> held_outputs_;
    bool entered_ = false;
};

std::vector<std::string> string_list(const meta::Value& v) {
    std::vector<std::string> out;
    if (v.is_list())
        for (const auto& e : v.as_list()) out.push_back(e.as_string());
    return out;
}

} // namespace

std::vector<std::string> basic_kind_names() {
    std::vector<std::string> out;
    out.reserve(kind_table().size());
    for (const auto& k : kind_table()) out.emplace_back(k.name);
    return out;
}

int FBPins::input_index(std::string_view name) const {
    for (std::size_t i = 0; i < inputs.size(); ++i)
        if (inputs[i] == name) return static_cast<int>(i);
    return -1;
}

int FBPins::output_index(std::string_view name) const {
    for (std::size_t i = 0; i < outputs.size(); ++i)
        if (outputs[i] == name) return static_cast<int>(i);
    return -1;
}

FBPins pins_of(const meta::Model& model, const meta::MObject& fb) {
    const auto& c = comdes_metamodel();
    FBPins pins;

    if (fb.meta_class().is_subtype_of(*c.basic_fb)) {
        const std::string& kind = fb.attr("kind").as_string();
        if (kind == "expression_") {
            auto ast = expr::parse(fb.attr("expr").as_string());
            pins.inputs = expr::free_variables(*ast);
            pins.outputs = {"out"};
            return pins;
        }
        const KindInfo& k = kind_info(kind);
        pins.inputs = k.inputs;
        pins.outputs = k.outputs;
        return pins;
    }

    if (fb.meta_class().is_subtype_of(*c.sm_fb)) {
        pins.inputs = string_list(fb.attr("inputs"));
        pins.outputs = string_list(fb.attr("outputs"));
        pins.outputs.emplace_back("state");
        return pins;
    }

    auto pins_from_maps = [&](const meta::MObject& owner) {
        for (meta::ObjectId pm_id : owner.refs("port_maps")) {
            const meta::MObject& pm = model.at(pm_id);
            const std::string& pin = pm.attr("outer_pin").as_string();
            auto& vec = pm.attr("direction").as_string() == "in" ? pins.inputs : pins.outputs;
            if (std::find(vec.begin(), vec.end(), pin) == vec.end()) vec.push_back(pin);
        }
    };

    if (fb.meta_class().is_subtype_of(*c.composite_fb)) {
        pins_from_maps(fb);
        return pins;
    }

    if (fb.meta_class().is_subtype_of(*c.modal_fb)) {
        pins.inputs.push_back(fb.attr("selector_pin").as_string());
        for (meta::ObjectId mode_id : fb.refs("modes")) pins_from_maps(model.at(mode_id));
        return pins;
    }

    throw std::invalid_argument("pins_of: unsupported block class " + fb.meta_class().name());
}

std::unique_ptr<FBKernel> make_basic_kernel(const meta::MObject& fb) {
    const std::string& kind = fb.attr("kind").as_string();
    if (kind == "expression_") {
        auto ast = expr::parse(fb.attr("expr").as_string());
        auto vars = expr::free_variables(*ast);
        return std::make_unique<ExprKernel>(*ast, std::move(vars));
    }
    const KindInfo& k = kind_info(kind);
    auto params = params_of(fb);
    if (params.size() != k.n_params)
        throw std::invalid_argument("BasicFB '" + fb.name() + "' (" + kind + ") needs " +
                                    std::to_string(k.n_params) + " params, got " +
                                    std::to_string(params.size()));
    return std::make_unique<BasicKernel>(kind, std::move(params), k.cost);
}

std::unique_ptr<FBKernel> make_sm_kernel(const meta::Model& model, const meta::MObject& sm_fb,
                                         SmObserver* observer) {
    FBPins pins = pins_of(model, sm_fb);
    std::size_t n_outputs = pins.outputs.size() - 1; // excluding implicit "state"

    auto out_index = [&](const std::string& name, const char* where) {
        int idx = pins.output_index(name);
        if (idx < 0 || static_cast<std::size_t>(idx) >= n_outputs)
            throw std::invalid_argument(std::string(where) + ": '" + name +
                                        "' is not a declared output of SM '" + sm_fb.name() +
                                        "'");
        return static_cast<std::size_t>(idx);
    };
    // Guards and actions compile to bytecode with slots = input pin
    // indices (the kernel's input span doubles as the VM slot table).
    auto compile_expr = [&](const std::string& src) {
        return expr::compile(*expr::parse(src), pins.inputs);
    };
    auto compile_actions = [&](const meta::MObject& owner, const char* ref) {
        std::vector<std::pair<std::size_t, expr::CompiledExpr>> out;
        for (meta::ObjectId a_id : owner.refs(ref)) {
            const meta::MObject& a = model.at(a_id);
            out.emplace_back(out_index(a.attr("target").as_string(), "action"),
                             compile_expr(a.attr("expr").as_string()));
        }
        return out;
    };

    std::vector<CompiledState> states;
    std::map<std::uint64_t, std::size_t> state_index;
    for (meta::ObjectId s_id : sm_fb.refs("states")) {
        const meta::MObject& s = model.at(s_id);
        state_index[s_id.raw] = states.size();
        states.push_back({s_id, s.name(), compile_actions(s, "entry_actions")});
    }

    std::vector<CompiledTransition> transitions;
    std::size_t order = 0;
    for (meta::ObjectId t_id : sm_fb.refs("transitions")) {
        const meta::MObject& t = model.at(t_id);
        CompiledTransition ct;
        ct.id = t_id;
        auto from_it = state_index.find(t.ref("from").raw);
        auto to_it = state_index.find(t.ref("to").raw);
        if (from_it == state_index.end() || to_it == state_index.end())
            throw std::invalid_argument("transition endpoints outside SM '" + sm_fb.name() +
                                        "'");
        ct.from = from_it->second;
        ct.to = to_it->second;
        const meta::Value& ev = t.attr("event");
        if (ev.is_string() && !ev.as_string().empty()) {
            ct.event_pin = pins.input_index(ev.as_string());
            if (ct.event_pin < 0)
                throw std::invalid_argument("event '" + ev.as_string() +
                                            "' is not an input of SM '" + sm_fb.name() + "'");
        }
        const meta::Value& g = t.attr("guard");
        if (g.is_string() && !g.as_string().empty()) ct.guard = compile_expr(g.as_string());
        ct.actions = compile_actions(t, "actions");
        ct.priority = static_cast<int>(t.attr("priority").as_int());
        ct.model_order = order++;
        transitions.push_back(std::move(ct));
    }

    auto init_it = state_index.find(sm_fb.ref("initial").raw);
    if (init_it == state_index.end())
        throw std::invalid_argument("SM '" + sm_fb.name() + "' initial state not in states");

    return std::make_unique<SmKernel>(sm_fb.id(), std::move(states), std::move(transitions),
                                      init_it->second, n_outputs, observer);
}

} // namespace gmdf::comdes
