#include "comdes/validate.hpp"

#include <map>
#include <set>

#include "comdes/fblib.hpp"
#include "comdes/metamodel.hpp"
#include "expr/parser.hpp"
#include "meta/validate.hpp"

namespace gmdf::comdes {

namespace {

using meta::Diagnostic;
using meta::Diagnostics;
using meta::MObject;
using meta::Model;
using meta::ObjectId;
using meta::Severity;

void err(Diagnostics& out, ObjectId id, std::string feature, std::string msg) {
    out.push_back({Severity::Error, id, std::move(feature), std::move(msg)});
}

void check_unique_names(const Model& model, const MObject& owner, const char* ref,
                        const char* what, Diagnostics& out) {
    std::set<std::string> seen;
    for (ObjectId id : owner.refs(ref)) {
        const MObject* o = model.get(id);
        if (o == nullptr) continue;
        if (!seen.insert(o->name()).second)
            err(out, id, "name",
                std::string("duplicate ") + what + " name '" + o->name() + "'");
    }
}

void check_expr(const Model& model, ObjectId id, const std::string& feature,
                const std::string& src, Diagnostics& out,
                const std::vector<std::string>* allowed_vars = nullptr) {
    (void)model;
    try {
        auto ast = expr::parse(src);
        if (allowed_vars != nullptr) {
            for (const std::string& v : expr::free_variables(*ast)) {
                if (std::find(allowed_vars->begin(), allowed_vars->end(), v) ==
                    allowed_vars->end())
                    err(out, id, feature,
                        "expression references '" + v + "' which is not an input pin");
            }
        }
    } catch (const std::exception& e) {
        err(out, id, feature, std::string("expression does not parse: ") + e.what());
    }
}

struct NetworkInfo {
    std::map<std::uint64_t, FBPins> pins;       // block raw id -> pins
    std::map<std::uint64_t, const MObject*> blocks;
};

NetworkInfo network_info(const Model& model, const MObject& network, Diagnostics& out) {
    NetworkInfo info;
    for (ObjectId b_id : network.refs("blocks")) {
        const MObject* b = model.get(b_id);
        if (b == nullptr) continue;
        info.blocks[b_id.raw] = b;
        try {
            info.pins[b_id.raw] = pins_of(model, *b);
        } catch (const std::exception& e) {
            err(out, b_id, "", std::string("pin interface: ") + e.what());
        }
    }
    return info;
}

void check_network(const Model& model, const MObject& network, Diagnostics& out);

void check_sm(const Model& model, const MObject& sm, Diagnostics& out) {
    FBPins pins;
    try {
        pins = pins_of(model, sm);
    } catch (...) {
        return; // already reported by network_info
    }

    std::set<std::uint64_t> member_states;
    for (ObjectId s_id : sm.refs("states")) member_states.insert(s_id.raw);

    auto check_assignments = [&](const MObject& owner, const char* ref) {
        for (ObjectId a_id : owner.refs(ref)) {
            const MObject* a = model.get(a_id);
            if (a == nullptr) continue;
            const std::string& target = a->attr("target").as_string();
            int idx = pins.output_index(target);
            // The last output pin is the implicit state index: not assignable.
            if (idx < 0 || static_cast<std::size_t>(idx) + 1 == pins.outputs.size())
                err(out, a_id, "target",
                    "'" + target + "' is not a declared output of SM '" + sm.name() + "'");
            check_expr(model, a_id, "expr", a->attr("expr").as_string(), out, &pins.inputs);
        }
    };

    // Adjacency for the reachability check.
    std::map<std::uint64_t, std::vector<std::uint64_t>> adj;
    for (ObjectId t_id : sm.refs("transitions")) {
        const MObject* t = model.get(t_id);
        if (t == nullptr) continue;
        ObjectId from = t->ref("from"), to = t->ref("to");
        if (!member_states.contains(from.raw))
            err(out, t_id, "from", "source state is not part of SM '" + sm.name() + "'");
        if (!member_states.contains(to.raw))
            err(out, t_id, "to", "target state is not part of SM '" + sm.name() + "'");
        if (member_states.contains(from.raw) && member_states.contains(to.raw))
            adj[from.raw].push_back(to.raw);
        const meta::Value& ev = t->attr("event");
        if (ev.is_string() && !ev.as_string().empty() &&
            pins.input_index(ev.as_string()) < 0)
            err(out, t_id, "event",
                "event '" + ev.as_string() + "' is not an input of SM '" + sm.name() + "'");
        const meta::Value& g = t->attr("guard");
        if (g.is_string() && !g.as_string().empty())
            check_expr(model, t_id, "guard", g.as_string(), out, &pins.inputs);
        check_assignments(*t, "actions");
    }
    for (ObjectId s_id : sm.refs("states")) {
        const MObject* s = model.get(s_id);
        if (s != nullptr) check_assignments(*s, "entry_actions");
    }

    // Reachability from the initial state.
    ObjectId init = sm.ref("initial");
    if (!member_states.contains(init.raw)) {
        err(out, sm.id(), "initial", "initial state is not part of SM '" + sm.name() + "'");
        return;
    }
    std::set<std::uint64_t> reached{init.raw};
    std::vector<std::uint64_t> frontier{init.raw};
    while (!frontier.empty()) {
        std::uint64_t cur = frontier.back();
        frontier.pop_back();
        for (std::uint64_t next : adj[cur])
            if (reached.insert(next).second) frontier.push_back(next);
    }
    for (std::uint64_t s : member_states)
        if (!reached.contains(s))
            out.push_back({Severity::Warning, ObjectId{s}, "",
                           "state unreachable from initial state in SM '" + sm.name() + "'"});
}

void check_network(const Model& model, const MObject& network, Diagnostics& out) {
    const auto& c = comdes_metamodel();
    check_unique_names(model, network, "blocks", "block", out);
    NetworkInfo info = network_info(model, network, out);

    // Connection endpoints and single-driver rule.
    std::set<std::pair<std::uint64_t, std::string>> driven;
    for (ObjectId conn_id : network.refs("connections")) {
        const MObject* conn = model.get(conn_id);
        if (conn == nullptr) continue;
        ObjectId from = conn->ref("from"), to = conn->ref("to");
        auto from_it = info.pins.find(from.raw);
        auto to_it = info.pins.find(to.raw);
        if (from_it == info.pins.end()) {
            err(out, conn_id, "from", "source block is not part of this network");
            continue;
        }
        if (to_it == info.pins.end()) {
            err(out, conn_id, "to", "target block is not part of this network");
            continue;
        }
        const std::string& fp = conn->attr("from_pin").as_string();
        const std::string& tp = conn->attr("to_pin").as_string();
        if (from_it->second.output_index(fp) < 0)
            err(out, conn_id, "from_pin",
                "block '" + info.blocks[from.raw]->name() + "' has no output '" + fp + "'");
        if (to_it->second.input_index(tp) < 0)
            err(out, conn_id, "to_pin",
                "block '" + info.blocks[to.raw]->name() + "' has no input '" + tp + "'");
        else if (!driven.insert({to.raw, tp}).second)
            err(out, conn_id, "to_pin",
                "input '" + info.blocks[to.raw]->name() + "." + tp +
                    "' driven by more than one connection");
    }

    // Dataflow cycles (delay_ blocks legitimately break cycles).
    std::map<std::uint64_t, std::vector<std::uint64_t>> adj;
    for (ObjectId conn_id : network.refs("connections")) {
        const MObject* conn = model.get(conn_id);
        if (conn == nullptr) continue;
        ObjectId from = conn->ref("from"), to = conn->ref("to");
        if (!info.blocks.contains(from.raw) || !info.blocks.contains(to.raw)) continue;
        const MObject* src = info.blocks[from.raw];
        bool breaks_cycle = src->meta_class().is_subtype_of(*c.basic_fb) &&
                            src->attr("kind").as_string() == "delay_";
        if (!breaks_cycle) adj[from.raw].push_back(to.raw);
    }
    // Iterative DFS 3-colouring.
    std::map<std::uint64_t, int> colour; // 0 white, 1 grey, 2 black
    for (const auto& [start, _] : info.blocks) {
        if (colour[start] != 0) continue;
        std::vector<std::pair<std::uint64_t, std::size_t>> stack{{start, 0}};
        colour[start] = 1;
        while (!stack.empty()) {
            auto& [node, next] = stack.back();
            auto& edges = adj[node];
            if (next < edges.size()) {
                std::uint64_t child = edges[next++];
                if (colour[child] == 1) {
                    err(out, ObjectId{child}, "",
                        "combinational dataflow cycle (insert a delay_ block)");
                } else if (colour[child] == 0) {
                    colour[child] = 1;
                    stack.emplace_back(child, 0);
                }
            } else {
                colour[node] = 2;
                stack.pop_back();
            }
        }
    }

    // Recurse into nested structures and per-kind checks.
    for (const auto& [raw, block] : info.blocks) {
        (void)raw;
        if (block->meta_class().is_subtype_of(*c.basic_fb)) {
            if (block->attr("kind").as_string() == "expression_") {
                const meta::Value& e = block->attr("expr");
                if (!e.is_string() || e.as_string().empty())
                    err(out, block->id(), "expr", "expression_ block without expression");
                else
                    check_expr(model, block->id(), "expr", e.as_string(), out);
            }
        } else if (block->meta_class().is_subtype_of(*c.sm_fb)) {
            check_sm(model, *block, out);
        } else if (block->meta_class().is_subtype_of(*c.composite_fb)) {
            if (const MObject* inner = model.get(block->ref("network")))
                check_network(model, *inner, out);
        } else if (block->meta_class().is_subtype_of(*c.modal_fb)) {
            std::set<std::int64_t> mode_values;
            for (ObjectId m_id : block->refs("modes")) {
                const MObject* mode = model.get(m_id);
                if (mode == nullptr) continue;
                if (!mode_values.insert(mode->attr("value").as_int()).second)
                    err(out, m_id, "value",
                        "duplicate mode value in modal FB '" + block->name() + "'");
                if (const MObject* inner = model.get(mode->ref("network")))
                    check_network(model, *inner, out);
            }
        }
    }
}

void check_actor(const Model& model, const MObject& actor, Diagnostics& out) {
    std::int64_t period = actor.attr("period_us").as_int();
    std::int64_t deadline = actor.attr("deadline_us").as_int();
    if (period <= 0) err(out, actor.id(), "period_us", "period must be positive");
    if (deadline < 0) err(out, actor.id(), "deadline_us", "deadline must be >= 0");
    if (deadline > 0 && deadline > period)
        err(out, actor.id(), "deadline_us", "deadline exceeds period");

    const MObject* network = model.get(actor.ref("network"));
    if (network == nullptr) return;
    check_network(model, *network, out);

    NetworkInfo info;
    {
        Diagnostics scratch; // pins errors already reported by check_network
        info = network_info(model, *network, scratch);
    }
    auto find_block = [&](const std::string& name) -> const MObject* {
        for (const auto& [_, b] : info.blocks)
            if (b->name() == name) return b;
        return nullptr;
    };

    std::set<std::pair<std::uint64_t, std::string>> driven;
    for (ObjectId conn_id : network->refs("connections")) {
        const MObject* conn = model.get(conn_id);
        if (conn == nullptr) continue;
        driven.insert({conn->ref("to").raw, conn->attr("to_pin").as_string()});
    }

    for (ObjectId b_id : actor.refs("inputs")) {
        const MObject* b = model.get(b_id);
        if (b == nullptr) continue;
        const MObject* fb = find_block(b->attr("fb").as_string());
        if (fb == nullptr) {
            err(out, b_id, "fb",
                "input binding names unknown block '" + b->attr("fb").as_string() + "'");
            continue;
        }
        const std::string& pin = b->attr("pin").as_string();
        if (info.pins[fb->id().raw].input_index(pin) < 0)
            err(out, b_id, "pin",
                "block '" + fb->name() + "' has no input pin '" + pin + "'");
        else if (!driven.insert({fb->id().raw, pin}).second)
            err(out, b_id, "pin",
                "input '" + fb->name() + "." + pin + "' both bound and connected");
    }
    for (ObjectId b_id : actor.refs("outputs")) {
        const MObject* b = model.get(b_id);
        if (b == nullptr) continue;
        const MObject* fb = find_block(b->attr("fb").as_string());
        if (fb == nullptr) {
            err(out, b_id, "fb",
                "output binding names unknown block '" + b->attr("fb").as_string() + "'");
            continue;
        }
        const std::string& pin = b->attr("pin").as_string();
        if (info.pins[fb->id().raw].output_index(pin) < 0)
            err(out, b_id, "pin",
                "block '" + fb->name() + "' has no output pin '" + pin + "'");
    }
}

} // namespace

Diagnostics validate_comdes(const Model& model) {
    const auto& c = comdes_metamodel();
    Diagnostics out = meta::validate(model);

    for (const MObject* sys : model.all_of(*c.system)) {
        check_unique_names(model, *sys, "signals", "signal", out);
        check_unique_names(model, *sys, "actors", "actor", out);
    }
    for (const MObject* actor : model.all_of(*c.actor)) check_actor(model, *actor, out);
    return out;
}

} // namespace gmdf::comdes
